"""Tests for PCBs, the scheduler, and task state transitions."""

import pytest

from repro.pecos import (
    Registers,
    RunQueue,
    Scheduler,
    Task,
    TaskFlags,
    TaskState,
    VMA,
    VMAKind,
    balance_assign,
)


class TestTask:
    def test_pids_unique(self):
        a, b = Task(name="a"), Task(name="b")
        assert a.pid != b.pid

    def test_kernel_thread_flag(self):
        t = Task(name="kthread", kernel_thread=True)
        assert TaskFlags.KERNEL_THREAD in t.flags
        assert not t.is_user

    def test_tree_walk(self):
        init = Task(name="init")
        a = init.adopt(Task(name="a"))
        a.adopt(Task(name="a1"))
        init.adopt(Task(name="b"))
        names = [t.name for t in init.walk()]
        assert names == ["init", "a", "a1", "b"]

    def test_sleep_detection(self):
        t = Task(name="t", state=TaskState.INTERRUPTIBLE)
        assert t.is_sleeping
        t.state = TaskState.RUNNING
        assert not t.is_sleeping

    def test_sigpending_and_resched_flags(self):
        t = Task(name="t")
        t.set_sigpending()
        t.set_need_resched()
        assert TaskFlags.SIGPENDING in t.flags
        assert TaskFlags.NEED_RESCHED in t.flags

    def test_lockdown(self):
        t = Task(name="t", state=TaskState.RUNNING)
        t.cpu = 3
        t.set_need_resched()
        t.lockdown()
        assert t.state is TaskState.UNINTERRUPTIBLE
        assert t.cpu is None
        assert TaskFlags.NEED_RESCHED not in t.flags

    def test_release_requires_lockdown(self):
        t = Task(name="t")
        with pytest.raises(RuntimeError):
            t.release()
        t.lockdown()
        t.release()
        assert t.state is TaskState.RUNNABLE

    def test_registers_saved(self):
        t = Task(name="t")
        regs = Registers(pc=0x1000, sp=0x2000, page_table_root=0x3000)
        t.save_registers(regs)
        assert t.registers.pc == 0x1000
        assert t.registers.advanced(4).pc == 0x1004

    def test_vma_dirty_accounting(self):
        vma = VMA(VMAKind.HEAP, start=0, length=4096)
        vma.touch(1000)
        vma.touch(10_000)  # clamps at length
        assert vma.dirty_bytes == 4096
        assert vma.clean() == 4096
        assert vma.dirty_bytes == 0

    def test_task_vma_totals(self):
        t = Task(name="t")
        t.vmas = [
            VMA(VMAKind.HEAP, 0, 4096, dirty_bytes=100),
            VMA(VMAKind.STACK, 8192, 1024, dirty_bytes=50),
        ]
        assert t.total_vma_bytes() == 5120
        assert t.dirty_vma_bytes() == 150


class TestScheduler:
    def test_enqueue_dequeue(self):
        q = RunQueue(cpu=0)
        t = Task(name="t")
        q.enqueue(t)
        assert t.cpu == 0 and len(q) == 1
        q.dequeue(t)
        assert t.cpu is None and len(q) == 0

    def test_dequeue_missing_raises(self):
        q = RunQueue(cpu=0)
        with pytest.raises(RuntimeError):
            q.dequeue(Task(name="ghost"))

    def test_pop_next_marks_running(self):
        q = RunQueue(cpu=0)
        t = Task(name="t")
        q.enqueue(t)
        popped = q.pop_next()
        assert popped is t and t.state is TaskState.RUNNING
        assert q.pop_next() is None

    def test_balanced_enqueue(self):
        sched = Scheduler(cores=4)
        tasks = [Task(name=f"t{i}") for i in range(10)]
        sched.enqueue_balanced(tasks)
        occupancy = sched.occupancy()
        assert max(occupancy) - min(occupancy) <= 1
        assert sched.runnable_count() == 10

    def test_drain_all(self):
        sched = Scheduler(cores=2)
        sched.enqueue_balanced([Task(name=f"t{i}") for i in range(5)])
        removed = sched.drain_all()
        assert len(removed) == 5
        assert sched.runnable_count() == 0

    def test_core_count_validation(self):
        with pytest.raises(ValueError):
            Scheduler(cores=0)

    def test_balance_assign_round_robin(self):
        tasks = [Task(name=f"t{i}") for i in range(7)]
        buckets = balance_assign(tasks, cores=3)
        assert [len(b) for b in buckets] == [3, 2, 2]

    def test_balance_assign_validation(self):
        with pytest.raises(ValueError):
            balance_assign([], cores=0)
