"""The campaign orchestration contract: parallel == serial, bit for bit.

Persistency-model validation is only worth anything if adversarial runs
reproduce ("Lost in Interpretation", arXiv:2405.18575), so the runner's
promises are pinned here rather than trusted:

* merged reports are byte-identical for ``jobs=1`` vs ``jobs=4`` and for
  shuffled shard submission orders, at several seeds;
* each fuzz campaign's coverage at a fixed seed is pinned as a golden
  ``(operations, crashes, violations)`` tuple, so RNG-plumbing refactors
  cannot silently change what the fuzzers explore;
* a warm shard cache serves every shard without re-executing any.
"""

import dataclasses
import io
import os
import random
import time

import pytest

from repro.analysis.crashfuzz import (
    FuzzReport,
    TrialOutcome,
    fuzz_machine,
    fuzz_pool,
    fuzz_psm,
    fuzz_sector,
    psm_trial,
)
from repro.orchestrate import (
    NO_VALUE,
    Campaign,
    CampaignProgress,
    CampaignRunner,
    ShardCache,
    ShardTimeoutError,
    derive_seed,
    fingerprint,
    run_shard,
    run_shard_watched,
    trial_rng,
)


def counted_trial(trial, rng, scale=1):
    """A cheap trial with an observable RNG draw."""
    return (trial, rng.randrange(1_000_000) * scale)


def flaky_trial(trial, rng, sentinel=None, hang_index=2):
    """Hangs at ``hang_index`` on the first attempt only (marker file),
    then returns exactly what ``counted_trial`` would."""
    value = (trial, rng.randrange(1_000_000))
    if trial == hang_index:
        marker = f"{sentinel}.{trial}"
        if not os.path.exists(marker):
            with open(marker, "w"):
                pass
            time.sleep(60)
    return value


def hanging_trial(trial, rng, hang_index=1):
    """Hangs at ``hang_index`` on every attempt."""
    if trial == hang_index:
        time.sleep(60)
    return (trial, rng.randrange(1_000_000))


def failing_trial(trial, rng):
    if trial == 1:
        raise ValueError("boom at trial 1")
    return (trial, rng.randrange(1_000_000))


def report_bytes(report: FuzzReport) -> bytes:
    return repr(dataclasses.astuple(report)).encode()


class TestSeeding:
    def test_same_coordinates_same_stream(self):
        a = trial_rng(7, 3).random()
        b = trial_rng(7, 3).random()
        assert a == b

    def test_streams_are_independent_of_other_trials(self):
        # drawing from trial 0's RNG must not perturb trial 1's stream
        lone = trial_rng(7, 1).random()
        first = trial_rng(7, 0)
        for _ in range(100):
            first.random()
        assert trial_rng(7, 1).random() == lone

    def test_distinct_trials_distinct_streams(self):
        draws = {trial_rng(7, index).random() for index in range(50)}
        assert len(draws) == 50

    def test_no_seed_trial_aliasing(self):
        # Random(seed + trial) would collide (1, 0) with (0, 1)
        assert derive_seed(1, 0) != derive_seed(0, 1)

    def test_namespace_separates_campaigns(self):
        assert derive_seed(5, 2, "psm") != derive_seed(5, 2, "machine")


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_psm_reports_byte_identical(self, seed):
        serial = fuzz_psm(trials=8, ops=80, seed=seed, jobs=1)
        parallel = fuzz_psm(trials=8, ops=80, seed=seed, jobs=4)
        assert report_bytes(serial) == report_bytes(parallel)

    @pytest.mark.parametrize("seed", [3, 51])
    def test_pool_and_sector_reports_byte_identical(self, seed):
        assert report_bytes(fuzz_pool(trials=6, txs=6, seed=seed)) == \
            report_bytes(fuzz_pool(trials=6, txs=6, seed=seed, jobs=4))
        assert report_bytes(fuzz_sector(trials=6, writes=20, seed=seed)) == \
            report_bytes(fuzz_sector(trials=6, writes=20, seed=seed, jobs=4))

    def test_machine_report_byte_identical(self):
        serial = fuzz_machine(trials=4, seed=11, jobs=1)
        parallel = fuzz_machine(trials=4, seed=11, jobs=2)
        assert report_bytes(serial) == report_bytes(parallel)

    @pytest.mark.parametrize("seed", [0, 9])
    def test_shuffled_shard_order_merges_identically(self, seed):
        campaign = Campaign(name="psm", trials=12, trial_fn=psm_trial,
                            seed=seed, params={"ops": 60})
        runner = CampaignRunner(jobs=1, shard_size=2)
        natural = runner.run(campaign)
        order = list(range(len(runner.shards(12))))
        random.Random(99).shuffle(order)
        shuffled = runner.run(campaign, shard_order=order)
        assert [dataclasses.astuple(o) for o in natural] == \
            [dataclasses.astuple(o) for o in shuffled]

    def test_shard_boundaries_do_not_leak_into_results(self):
        campaign = Campaign(name="count", trials=20, trial_fn=counted_trial)
        coarse = CampaignRunner(jobs=1, shard_size=20).run(campaign)
        fine = CampaignRunner(jobs=1, shard_size=1).run(campaign)
        assert coarse == fine

    def test_bad_shard_order_rejected(self):
        campaign = Campaign(name="count", trials=4, trial_fn=counted_trial)
        runner = CampaignRunner(jobs=1, shard_size=2)
        with pytest.raises(ValueError):
            runner.run(campaign, shard_order=[0, 0])


class TestGoldenDeterminism:
    """Pinned coverage per campaign: if an RNG-plumbing refactor shifts
    any trial's stream, these tuples move and the diff is visible."""

    @pytest.mark.parametrize("fuzzer, kwargs, golden", [
        (fuzz_psm, {"trials": 10, "ops": 100, "seed": 1234}, (533, 10, 0)),
        (fuzz_pool, {"trials": 10, "txs": 8, "seed": 1234}, (108, 10, 0)),
        (fuzz_sector, {"trials": 10, "writes": 25, "seed": 1234},
         (158, 10, 0)),
        (fuzz_machine, {"trials": 3, "seed": 1234}, (11498, 3, 0)),
    ])
    def test_campaign_coverage_pinned(self, fuzzer, kwargs, golden):
        report = fuzzer(**kwargs)
        assert (report.operations, report.crashes,
                len(report.violations)) == golden

    def test_back_to_back_campaigns_do_not_leak_seeds(self):
        """Regression: with a shared module/campaign RNG, campaign B's
        streams depended on whether campaign A ran first in-process."""
        first = fuzz_pool(trials=6, txs=6, seed=3)
        fuzz_psm(trials=4, ops=40, seed=8)        # interloper
        second = fuzz_pool(trials=6, txs=6, seed=3)
        assert report_bytes(first) == report_bytes(second)


class TestShardCache:
    def test_roundtrip_and_miss(self, tmp_path):
        cache = ShardCache(tmp_path)
        assert cache.get("absent") is NO_VALUE
        cache.put("key", [TrialOutcome(operations=3)])
        assert cache.get("key")[0].operations == 3
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)

    def test_fingerprint_stability_and_sensitivity(self):
        base = {"name": "psm", "seed": 0, "params": {"ops": 100}}
        assert fingerprint(base) == fingerprint(dict(base))
        assert fingerprint(base) != fingerprint({**base, "seed": 1})
        assert fingerprint(base) != \
            fingerprint({**base, "params": {"ops": 101}})

    def test_warm_rerun_executes_nothing(self, tmp_path):
        kwargs = dict(trials=12, ops=60, seed=5, cache_dir=tmp_path)
        cold = fuzz_psm(jobs=1, **kwargs)
        assert len(list(tmp_path.iterdir())) > 0
        warm_runner_report = fuzz_psm(jobs=1, **kwargs)
        assert report_bytes(cold) == report_bytes(warm_runner_report)

    def test_warm_rerun_stats_all_cached(self, tmp_path):
        campaign = Campaign(name="count", trials=16, trial_fn=counted_trial)
        cold = CampaignRunner(jobs=1, cache_dir=tmp_path, shard_size=4)
        cold_results = cold.run(campaign)
        assert cold.last_stats.executed_shards == 4
        assert cold.last_stats.cached_shards == 0
        warm = CampaignRunner(jobs=1, cache_dir=tmp_path, shard_size=4)
        assert warm.run(campaign) == cold_results
        assert warm.last_stats.executed_shards == 0
        assert warm.last_stats.cached_shards == 4

    def test_cache_survives_parallelism_change(self, tmp_path):
        campaign = Campaign(name="count", trials=16, trial_fn=counted_trial)
        CampaignRunner(jobs=2, cache_dir=tmp_path, shard_size=4).run(campaign)
        warm = CampaignRunner(jobs=1, cache_dir=tmp_path, shard_size=4)
        warm.run(campaign)
        assert warm.last_stats.executed_shards == 0

    def test_param_change_misses_cleanly(self, tmp_path):
        base = Campaign(name="count", trials=8, trial_fn=counted_trial,
                        params={"scale": 1})
        changed = Campaign(name="count", trials=8, trial_fn=counted_trial,
                           params={"scale": 2})
        CampaignRunner(jobs=1, cache_dir=tmp_path).run(base)
        runner = CampaignRunner(jobs=1, cache_dir=tmp_path)
        results = runner.run(changed)
        assert runner.last_stats.cached_shards == 0
        assert all(value % 2 == 0 for _, value in results)


class TestRunnerShape:
    def test_shards_cover_range_without_overlap(self):
        runner = CampaignRunner(jobs=1)
        shards = runner.shards(100)
        covered = [i for lo, hi in shards for i in range(lo, hi)]
        assert covered == list(range(100))

    def test_shard_boundaries_independent_of_jobs(self):
        assert CampaignRunner(jobs=1).shards(200) == \
            CampaignRunner(jobs=8).shards(200)

    def test_zero_trials(self):
        campaign = Campaign(name="count", trials=0, trial_fn=counted_trial)
        assert CampaignRunner(jobs=1).run(campaign) == []

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            CampaignRunner(jobs=0)
        with pytest.raises(ValueError):
            CampaignRunner(shard_size=0)


class TestWatchdog:
    """Per-shard watchdog: hung trials are killed and retried once with
    the same derived seed, so watched results are byte-identical to
    unwatched ones whenever the trials terminate."""

    def test_watched_equals_unwatched(self):
        campaign = Campaign(name="count", trials=6, trial_fn=counted_trial,
                            seed=4)
        assert run_shard_watched(campaign, 0, 6, trial_timeout=30.0) == \
            run_shard(campaign, 0, 6)

    def test_hung_trial_killed_and_retried_with_same_seed(self, tmp_path):
        sentinel = str(tmp_path / "attempt")
        campaign = Campaign(name="count", trials=5, trial_fn=flaky_trial,
                            seed=4, params={"sentinel": sentinel})
        results = run_shard_watched(campaign, 0, 5, trial_timeout=1.5)
        # the first attempt hung (its marker exists) ...
        assert os.path.exists(f"{sentinel}.2")
        # ... and the retry replayed the identical RNG stream
        reference = Campaign(name="count", trials=5, trial_fn=counted_trial,
                             seed=4)
        assert results == run_shard(reference, 0, 5)

    def test_twice_hung_trial_fails_the_shard(self):
        campaign = Campaign(name="count", trials=3, trial_fn=hanging_trial,
                            seed=4)
        with pytest.raises(ShardTimeoutError, match="trial 1 .*twice"):
            run_shard_watched(campaign, 0, 3, trial_timeout=0.8)

    def test_worker_exception_propagates_with_traceback(self):
        campaign = Campaign(name="count", trials=3, trial_fn=failing_trial,
                            seed=4)
        with pytest.raises(RuntimeError, match="boom at trial 1"):
            run_shard_watched(campaign, 0, 3, trial_timeout=30.0)

    def test_runner_timeout_parallel_matches_serial(self):
        campaign = Campaign(name="count", trials=12, trial_fn=counted_trial,
                            seed=9)
        plain = CampaignRunner(jobs=1, shard_size=3).run(campaign)
        watched = CampaignRunner(jobs=2, shard_size=3,
                                 trial_timeout=30.0).run(campaign)
        assert plain == watched

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            CampaignRunner(trial_timeout=0)


class TestProgress:
    def test_counters_and_lines(self):
        stream = io.StringIO()
        import itertools
        # consumed as: start, first line's ETA, then "now" forever after
        ticks = itertools.chain([0.0, 1.0], itertools.repeat(2.0))
        progress = CampaignProgress("psm", total_trials=20, stream=stream,
                                    clock=lambda: next(ticks))
        progress.start()
        progress.shard_done(10, violations=1)
        progress.shard_done(10, cached=True)
        progress.finish()
        assert progress.completed_trials == 20
        assert progress.violations == 1
        assert progress.cached_shards == 1
        assert progress.throughput() == pytest.approx(10.0)
        lines = stream.getvalue().splitlines()
        assert "10/20 trials (50%)" in lines[0]
        assert "ETA 1.0s" in lines[0]
        assert "done" in lines[-1]

    def test_runner_feeds_progress(self, tmp_path):
        progress = CampaignProgress("count", total_trials=8)
        runner = CampaignRunner(jobs=1, shard_size=2, cache_dir=tmp_path,
                                progress=progress)
        runner.run(Campaign(name="count", trials=8, trial_fn=counted_trial))
        assert progress.completed_trials == 8
        assert progress.executed_shards == 4
        warm_progress = CampaignProgress("count", total_trials=8)
        warm = CampaignRunner(jobs=1, shard_size=2, cache_dir=tmp_path,
                              progress=warm_progress)
        warm.run(Campaign(name="count", trials=8, trial_fn=counted_trial))
        assert warm_progress.cached_shards == 4
        assert warm_progress.executed_shards == 0
