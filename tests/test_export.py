"""Tests for experiment-result export (CSV/JSON round trips)."""

import json

import pytest

from repro.analysis import ExperimentResult
from repro.analysis.export import (
    result_from_json,
    to_csv,
    to_json,
    write_results,
)


@pytest.fixture
def result():
    return ExperimentResult(
        experiment="figX",
        title="A test figure",
        columns=["name", "value", "ok"],
        rows=[["alpha", 1.5, True], ["beta", 2, False]],
        notes={"headline": 3.25},
    )


class TestCsv:
    def test_header_and_rows(self, result):
        text = to_csv(result)
        lines = text.strip().splitlines()
        assert lines[0] == "name,value,ok"
        assert lines[1] == "alpha,1.5,True"

    def test_notes_as_comments(self, result):
        assert "# headline = 3.25" in to_csv(result)


class TestJson:
    def test_round_trip(self, result):
        restored = result_from_json(to_json(result))
        assert restored.experiment == result.experiment
        assert restored.columns == result.columns
        assert restored.rows == result.rows
        assert restored.notes == result.notes

    def test_valid_json(self, result):
        payload = json.loads(to_json(result))
        assert payload["title"] == "A test figure"

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            result_from_json('{"experiment": "x"}')


class TestWriteResults:
    def test_writes_both_formats(self, result, tmp_path):
        paths = write_results([result], tmp_path)
        names = {p.name for p in paths}
        assert names == {"figX.csv", "figX.json"}
        assert (tmp_path / "figX.json").exists()

    def test_unknown_format_rejected(self, result, tmp_path):
        with pytest.raises(ValueError):
            write_results([result], tmp_path, formats=("xml",))

    def test_real_experiment_exports(self, tmp_path):
        from repro.analysis import figure8

        paths = write_results([figure8()], tmp_path, formats=("json",))
        restored = result_from_json(paths[0].read_text())
        assert restored.experiment == "fig8"
        assert restored.notes["busy_stop_ms"] > 0
