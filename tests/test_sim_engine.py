"""Tests for the discrete-event engine."""

import pytest

from repro.sim import Event, SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_clock_custom_start():
    assert Simulator(start_time=5.0).now == 5.0


def test_timeout_fires_at_delay():
    sim = Simulator()
    fired = []
    t = sim.timeout(10.0, value="x")
    t.add_callback(lambda e: fired.append((sim.now, e.value)))
    sim.run()
    assert fired == [(10.0, "x")]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_call_at_and_after():
    sim = Simulator()
    log = []
    sim.call_at(7.0, lambda: log.append(("at", sim.now)))
    sim.call_after(3.0, lambda: log.append(("after", sim.now)))
    sim.run()
    assert log == [("after", 3.0), ("at", 7.0)]


def test_call_at_past_rejected():
    sim = Simulator()
    sim.now = 10.0
    with pytest.raises(SimulationError):
        sim.call_at(5.0, lambda: None)


def test_equal_time_events_fire_in_insertion_order():
    sim = Simulator()
    log = []
    for i in range(5):
        sim.call_at(4.0, lambda i=i: log.append(i))
    sim.run()
    assert log == [0, 1, 2, 3, 4]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    log = []
    event = sim.call_at(2.0, lambda: log.append("boom"))
    event.cancel()
    sim.run()
    assert log == []
    assert not event.fired


def test_run_until_time_advances_clock_even_when_queue_drains():
    sim = Simulator()
    sim.timeout(2.0)
    sim.run(until=50.0)
    assert sim.now == 50.0


def test_run_until_does_not_fire_later_events():
    sim = Simulator()
    log = []
    sim.call_at(100.0, lambda: log.append("late"))
    sim.run(until=10.0)
    assert log == []
    sim.run()
    assert log == ["late"]


def test_run_until_event_stops_early():
    sim = Simulator()
    log = []
    marker = sim.call_at(5.0, lambda: log.append("marker"))
    sim.call_at(10.0, lambda: log.append("late"))
    sim.run(until_event=marker)
    assert log == ["marker"]


def test_process_sequences_timeouts():
    sim = Simulator()
    log = []

    def proc():
        yield sim.timeout(3.0)
        log.append(sim.now)
        yield sim.timeout(4.0)
        log.append(sim.now)
        return "done"

    p = sim.process(proc())
    sim.run()
    assert log == [3.0, 7.0]
    assert p.fired and p.value == "done"


def test_process_receives_event_values():
    sim = Simulator()
    got = []

    def proc():
        value = yield sim.timeout(1.0, value=42)
        got.append(value)

    sim.process(proc())
    sim.run()
    assert got == [42]


def test_processes_can_wait_on_each_other():
    sim = Simulator()
    log = []

    def child():
        yield sim.timeout(5.0)
        return "child-result"

    def parent():
        result = yield sim.process(child(), name="child")
        log.append((sim.now, result))

    sim.process(parent())
    sim.run()
    assert log == [(5.0, "child-result")]


def test_process_yielding_non_event_raises():
    sim = Simulator()

    def bad():
        yield 42

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_succeed_delivers_value():
    sim = Simulator()
    event = sim.event("manual")
    got = []
    event.add_callback(lambda e: got.append(e.value))
    sim.succeed(event, value="v", delay=2.0)
    sim.run()
    assert got == ["v"] and sim.now == 2.0


def test_callback_after_fire_rejected():
    sim = Simulator()
    event = sim.call_at(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        event.add_callback(lambda e: None)


def test_advance_moves_clock():
    sim = Simulator()
    sim.advance(12.5)
    assert sim.now == 12.5


def test_advance_cannot_skip_pending_events():
    sim = Simulator()
    sim.timeout(5.0)
    with pytest.raises(SimulationError):
        sim.advance(10.0)


def test_advance_negative_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.advance(-1.0)


def test_step_on_empty_queue_raises():
    with pytest.raises(SimulationError):
        Simulator().step()


def test_max_events_guard():
    sim = Simulator()

    def forever():
        while True:
            yield sim.timeout(1.0)

    sim.process(forever())
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_drain_waits_for_all_events():
    sim = Simulator()
    a = sim.timeout(3.0)
    b = sim.timeout(9.0)
    sim.drain([a, b])
    assert a.fired and b.fired
    assert sim.now == 9.0


def test_events_processed_counter():
    sim = Simulator()
    for i in range(4):
        sim.timeout(float(i + 1))
    sim.run()
    assert sim.events_processed == 4


def test_waiting_on_already_fired_event_resumes_immediately():
    sim = Simulator()
    log = []

    def fast():
        yield sim.timeout(1.0)
        return "early"

    def joiner(child):
        yield sim.timeout(10.0)   # child fires long before this
        result = yield child      # must not blow up; resumes at once
        log.append((sim.now, result))

    child = sim.process(fast())
    sim.process(joiner(child))
    sim.run()
    assert log == [(10.0, "early")]


# ---------------------------------------------------------------------------
# edge cases: past scheduling, same-timestamp ordering, mid-yield exits
# ---------------------------------------------------------------------------


def test_schedule_into_past_raises():
    sim = Simulator()
    sim.advance(10.0)
    with pytest.raises(SimulationError):
        sim._schedule(Event(sim, "stale"), when=3.0)


def test_succeed_with_negative_delay_schedules_into_past():
    sim = Simulator()
    sim.advance(5.0)
    with pytest.raises(SimulationError):
        sim.succeed(sim.event("late"), delay=-1.0)


def test_same_timestamp_priority_beats_insertion_order():
    sim = Simulator()
    log = []
    for name, priority in (("low-a", 1), ("high", 0), ("low-b", 1),
                           ("urgent", -1)):
        event = Event(sim, name)
        event.add_callback(lambda _e, name=name: log.append(name))
        sim._schedule(event, when=4.0, priority=priority)
    sim.run()
    assert log == ["urgent", "high", "low-a", "low-b"]


def test_same_timestamp_equal_priority_is_fifo():
    sim = Simulator()
    log = []
    for i in range(6):
        event = Event(sim, f"e{i}")
        event.add_callback(lambda _e, i=i: log.append(i))
        sim._schedule(event, when=2.0, priority=7)
    sim.run()
    assert log == [0, 1, 2, 3, 4, 5]


def test_interrupted_process_does_not_wedge_queue():
    """A process torn down mid-yield must not stall unrelated events."""
    sim = Simulator()
    log = []

    def waiter():
        yield sim.timeout(100.0)
        log.append("waiter-ran")  # must never happen

    proc = sim.process(waiter())
    sim.call_at(1.0, lambda: proc.interrupt())
    sim.call_at(5.0, lambda: log.append("bystander"))
    sim.run()
    assert log == ["bystander"]
    assert not proc.fired


def test_process_exiting_mid_yield_releases_joiners_queue():
    """A generator that returns between yields still fires its Process
    event, so joiners resume instead of waiting forever."""
    sim = Simulator()
    log = []

    def quits_early():
        yield sim.timeout(2.0)
        return "bail"  # exits with a pending sibling timeout outstanding

    def joiner(child):
        result = yield child
        log.append((sim.now, result))

    child = sim.process(quits_early())
    sim.process(joiner(child))
    sim.timeout(50.0)  # unrelated later event; queue must reach it
    sim.run()
    assert log == [(2.0, "bail")]
    assert sim.now == 50.0


def test_cancel_drops_registered_callbacks():
    """cancel() must clear the callback list immediately — a callback
    registered before the cancel can never run, even if the event is
    somehow fired afterwards."""
    sim = Simulator()
    log = []
    event = Event(sim, "doomed")
    event.add_callback(lambda _e: log.append("ran"))
    event.cancel()
    assert event._callbacks == []
    event._fire()  # even a forced fire finds nothing to run
    assert log == []


def test_add_callback_after_cancel_raises():
    """The cancel/add race resolves deterministically: late registration
    is an error, not a silently-dropped (or forever-parked) callback."""
    sim = Simulator()
    event = sim.call_at(2.0, lambda: None)
    event.cancel()
    with pytest.raises(SimulationError):
        event.add_callback(lambda _e: None)
    sim.run()
    assert not event.fired


def test_cancelled_event_releases_callback_references():
    """Cancelling must drop the closures it holds (they pin arbitrary
    object graphs until the queue entry drains otherwise)."""
    import weakref

    class Payload:
        pass

    sim = Simulator()
    payload = Payload()
    ref = weakref.ref(payload)
    event = sim.call_at(1_000_000.0, lambda p=payload: p)
    del payload
    assert ref() is not None  # the callback closure keeps it alive
    event.cancel()
    assert ref() is None


def test_generator_close_during_yield_runs_cleanup():
    sim = Simulator()
    cleaned = []

    def careful():
        try:
            yield sim.timeout(10.0)
        finally:
            cleaned.append(sim.now)

    proc = sim.process(careful())
    sim.call_at(3.0, lambda: proc.interrupt())
    sim.run()
    assert cleaned == [3.0]
