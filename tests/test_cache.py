"""Tests for the set-associative write-back cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu import Cache, CacheConfig


def _cache(size=1024, ways=2):
    return Cache(CacheConfig(size_bytes=size, ways=ways))


class TestCacheBasics:
    def test_geometry(self):
        config = CacheConfig(size_bytes=16 * 1024, ways=4)
        assert config.sets == 64
        assert config.lines == 256

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, ways=3)

    def test_cold_miss_then_hit(self):
        cache = _cache()
        hit, victim = cache.access(0, is_write=False)
        assert not hit and victim is None
        hit, _ = cache.access(0, is_write=False)
        assert hit

    def test_same_line_different_offsets_hit(self):
        cache = _cache()
        cache.access(0, is_write=False)
        hit, _ = cache.access(63, is_write=False)
        assert hit

    def test_lru_eviction(self):
        cache = _cache(size=256, ways=2)  # 2 sets
        sets = cache.config.sets
        stride = sets * 64  # same set
        cache.access(0, is_write=False)
        cache.access(stride, is_write=False)
        cache.access(0, is_write=False)  # refresh LRU
        cache.access(2 * stride, is_write=False)  # evicts `stride`
        hit, _ = cache.access(0, is_write=False)
        assert hit
        hit, _ = cache.access(stride, is_write=False)
        assert not hit

    def test_clean_eviction_returns_none(self):
        cache = _cache(size=256, ways=1)
        stride = cache.config.sets * 64
        cache.access(0, is_write=False)
        _, victim = cache.access(stride, is_write=False)
        assert victim is None

    def test_dirty_eviction_returns_victim_address(self):
        cache = _cache(size=256, ways=1)
        stride = cache.config.sets * 64
        cache.access(64, is_write=True)
        _, victim = cache.access(64 + stride, is_write=False)
        assert victim == 64
        assert cache.dirty_evictions == 1

    def test_write_hit_dirties_line(self):
        cache = _cache()
        cache.access(0, is_write=False)
        cache.access(0, is_write=True)
        assert cache.dirty_count() == 1

    def test_flush_dirty_cleans(self):
        cache = _cache()
        cache.access(0, is_write=True)
        cache.access(128, is_write=True)   # distinct set
        cache.access(256, is_write=False)  # clean line
        flushed = cache.flush_dirty()
        assert sorted(flushed) == [0, 128]
        assert cache.dirty_count() == 0
        # lines stay resident after a flush
        hit, _ = cache.access(0, is_write=False)
        assert hit

    def test_dirty_lines_reports_addresses(self):
        cache = _cache()
        cache.access(128, is_write=True)
        assert cache.dirty_lines() == [128]

    def test_invalidate_all(self):
        cache = _cache()
        cache.access(0, is_write=True)
        cache.invalidate_all()
        assert cache.occupancy == 0
        hit, _ = cache.access(0, is_write=False)
        assert not hit

    def test_hit_ratio_accounting(self):
        cache = _cache()
        cache.access(0, is_write=False)
        cache.access(0, is_write=False)
        cache.access(0, is_write=True)
        assert cache.read_hit_ratio == pytest.approx(0.5)
        assert cache.write_hit_ratio == pytest.approx(1.0)


class TestCacheProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 1 << 16), st.booleans()),
                    min_size=1, max_size=400))
    def test_occupancy_never_exceeds_capacity(self, accesses):
        cache = _cache(size=512, ways=2)
        for address, is_write in accesses:
            cache.access(address, is_write)
            assert cache.occupancy <= cache.config.lines
            assert cache.dirty_count() <= cache.occupancy

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 1 << 14), st.booleans()),
                    min_size=1, max_size=300))
    def test_flush_then_no_dirty_evictions(self, accesses):
        cache = _cache(size=512, ways=2)
        for address, is_write in accesses:
            cache.access(address, is_write)
        cache.flush_dirty()
        # after a flush, reading new lines never produces dirty victims
        before = cache.dirty_evictions
        for i in range(cache.config.lines * 2):
            cache.access(1 << 20 | (i * 64), is_write=False)
        assert cache.dirty_evictions == before

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 1 << 12), min_size=1, max_size=100))
    def test_working_set_within_capacity_always_hits_after_warmup(self, lines):
        cache = Cache(CacheConfig(size_bytes=16 * 1024, ways=4))
        addresses = [l * 64 % (8 * 1024) for l in lines]
        for address in addresses:
            cache.access(address, is_write=False)
        for address in addresses:
            hit, _ = cache.access(address, is_write=False)
            assert hit  # 8 KB footprint in a 16 KB cache
