"""Tests for the workload registry, trace generation, and STREAM kernels."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import (
    CATEGORIES,
    LocalityProfile,
    STREAM_KERNELS,
    TraceGenerator,
    WORKLOAD_SPECS,
    all_workloads,
    load_workload,
    spec,
    stream_kernel,
    workload_names,
)


class TestRegistry:
    def test_seventeen_workloads(self):
        assert len(WORKLOAD_SPECS) == 17

    def test_categories_cover_paper_suites(self):
        assert set(CATEGORIES) == {"crypto", "hpc", "spec", "inmemdb"}
        assert len(workload_names("crypto")) == 2
        assert len(workload_names("hpc")) == 3
        assert len(workload_names("spec")) == 8
        assert len(workload_names("inmemdb")) == 4

    def test_unknown_lookups_rejected(self):
        with pytest.raises(KeyError):
            spec("doom")
        with pytest.raises(ValueError):
            workload_names("games")

    def test_multithreading_matches_paper(self):
        assert spec("redis").threads == 8
        assert spec("mcf").threads == 1
        assert spec("snap").threads == 8

    def test_rw_ratio_consistent_with_counts(self):
        for s in WORKLOAD_SPECS.values():
            implied = s.paper_reads / s.paper_writes
            assert implied == pytest.approx(s.paper_rw_ratio, rel=0.30), s.name

    def test_mcf_is_least_write_intensive(self):
        ratios = {n: s.paper_rw_ratio for n, s in WORKLOAD_SPECS.items()}
        assert max(ratios, key=ratios.get) == "mcf"


class TestLocalityProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            LocalityProfile(hot_lines=100, working_set_lines=50)
        with pytest.raises(ValueError):
            LocalityProfile(write_fraction=1.5)


class TestTraceGenerator:
    def _profile(self, **kw):
        defaults = dict(working_set_lines=1024, hot_lines=128)
        defaults.update(kw)
        return LocalityProfile(**defaults)

    def test_deterministic_replay(self):
        gen = TraceGenerator(self._profile(), seed=3)
        a = list(gen.records(500))
        b = list(gen.records(500))
        assert a == b

    def test_different_seeds_differ(self):
        a = list(TraceGenerator(self._profile(), seed=1).records(200))
        b = list(TraceGenerator(self._profile(), seed=2).records(200))
        assert a != b

    def test_addresses_within_working_set(self):
        profile = self._profile()
        limit = profile.working_set_lines * 64 + 4096  # RAW page slop
        for record in TraceGenerator(profile, seed=5).records(2000):
            assert 0 <= record.address < limit

    def test_base_address_offset(self):
        base = 1 << 20
        for record in TraceGenerator(self._profile(), seed=5,
                                     base_address=base).records(200):
            assert record.address >= base

    def test_write_fraction_approximate(self):
        profile = self._profile(write_fraction=0.3)
        records = list(TraceGenerator(profile, seed=7).records(5000))
        writes = sum(r.is_write for r in records)
        assert writes / len(records) == pytest.approx(0.3, abs=0.03)

    def test_instruction_gap_mean(self):
        profile = self._profile(instructions_per_access=5.0)
        records = list(TraceGenerator(profile, seed=9).records(5000))
        mean = sum(r.instructions for r in records) / len(records)
        assert mean == pytest.approx(5.0, rel=0.25)

    @settings(max_examples=15, deadline=None)
    @given(st.floats(0.05, 0.95), st.integers(0, 1000))
    def test_any_profile_generates_valid_records(self, write_fraction, seed):
        profile = self._profile(write_fraction=write_fraction)
        for record in TraceGenerator(profile, seed=seed).records(300):
            assert record.instructions >= 0
            assert record.address % 8 == 0


class TestWorkloads:
    def test_traces_per_thread(self):
        w = load_workload("redis", refs=800)
        traces = w.traces()
        assert len(traces) == 8
        counts = [sum(1 for _ in t) for t in traces]
        assert all(c == 100 for c in counts)

    def test_traces_reiterable(self):
        w = load_workload("aes", refs=100)
        trace = w.traces()[0]
        assert list(trace) == list(trace)

    def test_threads_use_disjoint_regions(self):
        w = load_workload("snap", refs=1600)
        firsts = []
        ws = w.spec.profile.working_set_lines * 64
        for thread, trace in enumerate(w.traces()):
            for record in trace:
                assert record.address >= thread * ws
            firsts.append(thread)
        assert len(firsts) == 8

    def test_all_workloads_filter(self):
        assert len(all_workloads()) == 17
        assert len(all_workloads(category="hpc")) == 3


class TestStream:
    def test_kernel_shapes(self):
        copy = stream_kernel("copy", elements=16)
        records = list(copy)
        assert len(records) == 32  # 1 read + 1 write per element
        add = stream_kernel("add", elements=16)
        assert len(list(add)) == 48  # 2 reads + 1 write

    def test_reads_before_write_per_element(self):
        triad = stream_kernel("triad", elements=4)
        records = list(triad)
        for i in range(0, len(records), 3):
            assert not records[i].is_write
            assert not records[i + 1].is_write
            assert records[i + 2].is_write

    def test_sequential_addresses(self):
        scale = stream_kernel("scale", elements=8)
        reads = [r.address for r in scale if not r.is_write]
        assert reads == sorted(reads)
        assert reads[1] - reads[0] == 8

    def test_bytes_moved(self):
        assert stream_kernel("copy", elements=100).bytes_moved == 1600
        assert stream_kernel("add", elements=100).bytes_moved == 2400

    def test_arrays_do_not_overlap(self):
        kernel = stream_kernel("copy", elements=64)
        reads = {r.address for r in kernel if not r.is_write}
        writes = {r.address for r in kernel if r.is_write}
        assert not reads & writes

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            stream_kernel("sort")

    def test_element_bounds(self):
        with pytest.raises(ValueError):
            stream_kernel("copy", elements=100, array_bytes=64)

    def test_all_kernels_iterate(self):
        for name in STREAM_KERNELS:
            assert sum(1 for _ in stream_kernel(name, elements=8)) > 0
