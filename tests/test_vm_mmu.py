"""Tests for virtual memory (page tables in simulated memory) and the MMU."""

import pytest

from repro.cpu.mmu import MMU, TLB, TLBConfig
from repro.memory import DRAMConfig, DRAMSubsystem
from repro.ocpmem import PSM, PSMConfig
from repro.pecos.vm import (
    AddressSpace,
    PAGE_BYTES,
    PageFault,
    PageFlags,
    PageTableAllocator,
)

PT_BASE = 1 << 20
PT_LIMIT = PT_BASE + (1 << 20)


def _space_on(backend, asid=1):
    allocator = PageTableAllocator(base=PT_BASE, limit=PT_LIMIT)
    return AddressSpace(backend, allocator, asid=asid)


def _psm():
    return PSM(PSMConfig(lines_per_dimm=1 << 16), functional=True)


class TestAddressSpace:
    def test_map_translate_roundtrip(self):
        space = _space_on(_psm())
        space.map(0x4000_0000, 0x0001_0000)
        assert space.translate(0x4000_0000) == 0x0001_0000
        assert space.translate(0x4000_0123) == 0x0001_0123

    def test_unmapped_faults(self):
        space = _space_on(_psm())
        with pytest.raises(PageFault):
            space.translate(0xDEAD_0000)

    def test_alignment_enforced(self):
        space = _space_on(_psm())
        with pytest.raises(ValueError):
            space.map(0x1001, 0x2000)

    def test_permissions(self):
        space = _space_on(_psm())
        space.map(0x5000_0000, 0x2000, flags=PageFlags.READ)
        space.translate(0x5000_0000, want=PageFlags.READ)
        with pytest.raises(PageFault):
            space.translate(0x5000_0000, want=PageFlags.WRITE)

    def test_unmap(self):
        space = _space_on(_psm())
        space.map(0x6000_0000, 0x3000)
        space.unmap(0x6000_0000)
        with pytest.raises(PageFault):
            space.translate(0x6000_0000)
        assert space.mapped_pages == 0

    def test_map_range(self):
        space = _space_on(_psm())
        space.map_range(0x7000_0000, 0x10_0000, 4 * PAGE_BYTES)
        for i in range(4):
            assert space.translate(0x7000_0000 + i * PAGE_BYTES) == \
                0x10_0000 + i * PAGE_BYTES

    def test_distinct_regions_distinct_nodes(self):
        space = _space_on(_psm())
        space.map(0x0000_1000, 0x2000)
        space.map(0x70_0000_0000, 0x3000)  # far apart: new level-1 node
        assert space.translate(0x0000_1000) == 0x2000
        assert space.translate(0x70_0000_0000) == 0x3000

    def test_allocator_exhaustion(self):
        allocator = PageTableAllocator(base=PT_BASE,
                                       limit=PT_BASE + 2 * PAGE_BYTES)
        space = AddressSpace(_psm(), allocator)
        with pytest.raises(MemoryError):
            space.map(0x1000, 0x2000)  # needs two more nodes

    def test_allocator_alignment(self):
        with pytest.raises(ValueError):
            PageTableAllocator(base=123, limit=1 << 20)


class TestPersistenceOfPageTables:
    def test_tables_on_ocpmem_survive_power_cycle(self):
        psm = _psm()
        space = _space_on(psm)
        space.map(0x4000_0000, 0x8000)
        psm.flush(1_000.0)
        blob = psm.capture_registers()   # EP-cut saves the wear registers
        psm.power_cycle()
        psm.restore_wear_registers(blob)
        assert space.translate(0x4000_0000) == 0x8000

    def test_tables_in_dram_die_with_power(self):
        dram = DRAMSubsystem(DRAMConfig(capacity=1 << 22))
        allocator = PageTableAllocator(base=0, limit=1 << 21)
        space = AddressSpace(dram, allocator)
        space.map(0x4000_0000, 0x8000)
        assert space.translate(0x4000_0000) == 0x8000
        dram.power_cycle()
        with pytest.raises(PageFault):
            space.translate(0x4000_0000)


class TestTLB:
    def test_miss_then_hit(self):
        tlb = TLB()
        assert tlb.lookup(1, 0x1000) is None
        tlb.fill(1, 0x1000, 0x9000)
        assert tlb.lookup(1, 0x1234) == 0x9234

    def test_asid_isolation(self):
        tlb = TLB()
        tlb.fill(1, 0x1000, 0x9000)
        assert tlb.lookup(2, 0x1000) is None

    def test_lru_capacity(self):
        tlb = TLB(TLBConfig(entries=2))
        tlb.fill(1, 0x1000, 0xA000)
        tlb.fill(1, 0x2000, 0xB000)
        tlb.lookup(1, 0x1000)            # refresh
        tlb.fill(1, 0x3000, 0xC000)      # evicts 0x2000
        assert tlb.lookup(1, 0x1000) is not None
        assert tlb.lookup(1, 0x2000) is None

    def test_flush_all_and_per_asid(self):
        tlb = TLB()
        tlb.fill(1, 0x1000, 0xA000)
        tlb.fill(2, 0x1000, 0xB000)
        assert tlb.flush(asid=1) == 1
        assert tlb.lookup(2, 0x1000) is not None
        assert tlb.flush() == 1
        assert tlb.occupancy == 0

    def test_hit_ratio(self):
        tlb = TLB()
        tlb.lookup(1, 0)
        tlb.fill(1, 0, 0x1000)
        tlb.lookup(1, 0)
        assert tlb.hit_ratio == pytest.approx(0.5)


class TestMMU:
    def test_walk_then_tlb_hit(self):
        psm = _psm()
        space = _space_on(psm)
        space.map(0x4000_0000, 0x8000)
        mmu = MMU()
        pa, cost_miss = mmu.translate(space, 0x4000_0010)
        assert pa == 0x8010
        assert mmu.walks == 1
        pa, cost_hit = mmu.translate(space, 0x4000_0020)
        assert pa == 0x8020
        assert mmu.walks == 1
        assert cost_hit < cost_miss

    def test_walk_generates_memory_reads(self):
        psm = _psm()
        space = _space_on(psm)
        space.map(0x4000_0000, 0x8000)
        before = sum(d.counters()["reads"] for d in psm.nvdimms)
        MMU().translate(space, 0x4000_0000)
        after = sum(d.counters()["reads"] for d in psm.nvdimms)
        assert after > before  # the walk really read the tables

    def test_fault_counted(self):
        mmu = MMU()
        space = _space_on(_psm())
        with pytest.raises(PageFault):
            mmu.translate(space, 0xBAD_000)
        assert mmu.faults == 1

    def test_context_switch_flushes(self):
        psm = _psm()
        space = _space_on(psm)
        space.map(0x4000_0000, 0x8000)
        mmu = MMU()
        mmu.translate(space, 0x4000_0000)
        mmu.context_switch()
        assert mmu.tlb.occupancy == 0
