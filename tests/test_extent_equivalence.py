"""Extent-flush/scalar equivalence for every backend and interposer.

``flush_extents`` is a pure performance port: for any extent list it
must be observationally identical to the scalar line loop
(:func:`~repro.memory.extent.default_flush_extents`) — same report, same
per-line responses, same stats tree, wear registers, counters and device
state.  These tests drive the same dirty populations through two fresh
instances of each backend, one per path, and diff everything observable.

Also covered here: the interposer chain and partition routing, the
FaultInjector's exact mid-extent crash split (the served prefix must
match the scalar loop line for line), flush/drain stats restarting from
zero after ``power_cycle`` under a full chain, SnG Stop/Go report
identity across the two flush paths, and the incremental PCB snapshot's
reuse accounting.
"""

from __future__ import annotations

import dataclasses
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.batch import ResponseWindow
from repro.memory.dram import DRAMConfig, DRAMSubsystem
from repro.memory.extent import (
    DirtyExtentMap,
    Extent,
    backend_flush_extents,
    coalesce_lines,
    default_flush_extents,
)
from repro.memory.port import (
    AddressRange,
    AddressRangePartition,
    BandwidthThrottle,
    FaultInjector,
    InjectedPowerFailure,
    LatencyTap,
)
from repro.memory.request import (
    AddressSpaceError,
    CACHELINE_BYTES,
    MemoryOp,
    MemoryRequest,
)
from repro.ocpmem.psm import PSM, PSMConfig
from repro.pecos.kernel import Kernel
from repro.pecos.sng import SnG
from repro.persistence.acheckpc import ACheckPC
from repro.persistence.scheckpc import SCheckPC
from repro.pmem.controller import NMEMController, PMEMController
from repro.pmem.dimm import PMEMDIMM
from repro.sim.stats import StatsRegistry


@pytest.fixture(autouse=True, scope="module")
def _kernel_mode_matrix(kernel_mode):
    """Run this whole suite once per columnar-kernel mode.

    Scalar/batched (and scalar/extent) identity must hold both when the
    batch path runs the pure Python loops and when it runs the numpy
    kernels; the module-scoped matrix proves stats trees, wear
    registers and fault splits match in either mode.
    """
    yield


def _pmem():
    return PMEMController(
        [PMEMDIMM(capacity=1 << 22), PMEMDIMM(capacity=1 << 22)]
    )


BACKENDS = {
    "dram": lambda: DRAMSubsystem(DRAMConfig(capacity=1 << 22, ranks=4)),
    "psm": lambda: PSM(PSMConfig(dimms=2, lines_per_dimm=1 << 10)),
    "pmem": _pmem,
    "nmem": lambda: NMEMController(
        DRAMSubsystem(DRAMConfig(capacity=1 << 20, ranks=4)), _pmem()
    ),
}

#: Tiers whose ``flush_extents`` is a native columnar path (must return
#: ResponseWindow-backed reports, not fall back to the default loop).
NATIVE = ("dram", "psm", "pmem")


def _capacity(backend) -> int:
    cap = getattr(backend, "capacity", None)
    if cap is None:
        cap = backend.config.capacity
    return cap if isinstance(cap, int) else backend.config.capacity


def make_extents(capacity: int, count: int, seed: int) -> list[Extent]:
    """A cache-shaped dirty population: clustered runs plus scatter."""
    rng = random.Random(seed)
    lines = capacity // CACHELINE_BYTES
    chosen: set[int] = set()
    while len(chosen) < count:
        base = rng.randrange(lines)
        run = rng.choice((1, 4, 16, 48)) if rng.random() < 0.75 else 1
        for i in range(run):
            if len(chosen) >= count:
                break
            chosen.add((base + i) % lines)
    return coalesce_lines(line * CACHELINE_BYTES for line in chosen)


def state_of(backend):
    """Everything observable about a backend, comparison-ready."""
    registry = StatsRegistry()
    backend.register_stats(registry.scoped("memory"))
    return (registry.flat(), backend.counters(),
            backend.capture_registers())


def assert_equivalent(scalar_backend, extent_backend, scalar_report,
                      extent_report):
    assert scalar_report.lines == extent_report.lines
    assert scalar_report.extents == extent_report.extents
    assert scalar_report.start_ns == extent_report.start_ns
    assert scalar_report.done_ns == extent_report.done_ns
    assert scalar_report.blocked_ns == extent_report.blocked_ns
    assert scalar_report.latencies() == extent_report.latencies()
    for index in range(len(scalar_report.responses)):
        a = scalar_report.responses[index]
        b = extent_report.responses[index]
        assert repr(a) == repr(b), f"response {index} diverged"
    assert state_of(scalar_backend) == state_of(extent_backend)


def warm_up(backend, capacity: int, seed: int, count: int = 200) -> None:
    """Run a mixed scalar stream so the flush starts from a dirty,
    mid-generation device state (open row buffers, moved gaps)."""
    rng = random.Random(seed)
    lines = capacity // CACHELINE_BYTES
    t = 0.0
    for _ in range(count):
        op = MemoryOp.WRITE if rng.random() < 0.5 else MemoryOp.READ
        backend.access(MemoryRequest(
            op, rng.randrange(lines) * CACHELINE_BYTES, time=t))
        t += rng.choice((0.0, 1.0, 25.0))


class TestBackendEquivalence:
    @pytest.mark.parametrize("name", sorted(BACKENDS))
    @pytest.mark.parametrize("count", (1, 64, 700))
    def test_flush_matches_scalar_loop(self, name, count):
        capacity = _capacity(BACKENDS[name]())
        extents = make_extents(capacity, count, seed=hash(name) & 0xFFFF)
        scalar = BACKENDS[name]()
        native = BACKENDS[name]()
        scalar_report = default_flush_extents(scalar, extents, 0.0)
        extent_report = backend_flush_extents(native, extents, 0.0)
        if name in NATIVE:
            assert isinstance(extent_report.responses, ResponseWindow), \
                f"{name} silently fell back to the default loop"
        assert_equivalent(scalar, native, scalar_report, extent_report)

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_flush_from_warm_state(self, name):
        """Equivalence from a dirty mid-run state, nonzero issue time."""
        capacity = _capacity(BACKENDS[name]())
        extents = make_extents(capacity, 300, seed=3)
        scalar = BACKENDS[name]()
        native = BACKENDS[name]()
        warm_up(scalar, capacity, seed=11)
        warm_up(native, capacity, seed=11)
        scalar_report = default_flush_extents(scalar, extents, 5_000.0)
        extent_report = backend_flush_extents(native, extents, 5_000.0)
        assert_equivalent(scalar, native, scalar_report, extent_report)

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    @settings(max_examples=12, deadline=None)
    @given(data=st.data())
    def test_property_random_extent_lists(self, name, data):
        """Hypothesis-shaped dirty sets: singletons, runs, duplicates."""
        runs = data.draw(st.lists(
            st.tuples(st.integers(0, 255), st.integers(1, 48)),
            min_size=1, max_size=30))
        addresses = []
        for start, length in runs:
            addresses.extend(
                (start + i) * CACHELINE_BYTES for i in range(length))
        extents = coalesce_lines(addresses)
        scalar = BACKENDS[name]()
        native = BACKENDS[name]()
        scalar_report = default_flush_extents(scalar, extents, 0.0)
        extent_report = backend_flush_extents(native, extents, 0.0)
        assert_equivalent(scalar, native, scalar_report, extent_report)

    def test_psm_sweep_config_lowers_onto_batch(self):
        """Seed rotation disables the inlined loop but the access_batch
        lowering it falls back to is still scalar-identical."""
        config = PSMConfig(
            dimms=2, lines_per_dimm=1 << 10, rotate_seed_every=2,
            wear_threshold=10,
        )
        extents = make_extents(
            PSM(config).capacity, 600, seed=9)
        scalar = PSM(config)
        native = PSM(config)
        scalar_report = default_flush_extents(scalar, extents, 0.0)
        extent_report = native.flush_extents(extents, 0.0)
        assert_equivalent(scalar, native, scalar_report, extent_report)

    def test_psm_out_of_capacity_matches_scalar_error(self):
        """Both paths raise the same AddressSpaceError text and leave
        identical served-prefix state behind."""
        psm_scalar = PSM(PSMConfig(dimms=2, lines_per_dimm=1 << 10))
        psm_native = PSM(PSMConfig(dimms=2, lines_per_dimm=1 << 10))
        lines = psm_scalar.capacity // CACHELINE_BYTES
        extents = [
            Extent(0, 8),
            Extent((lines - 4) * CACHELINE_BYTES, 16),  # runs past the end
        ]
        with pytest.raises(AddressSpaceError) as scalar_err:
            default_flush_extents(psm_scalar, extents, 0.0)
        with pytest.raises(AddressSpaceError) as native_err:
            psm_native.flush_extents(extents, 0.0)
        assert str(scalar_err.value) == str(native_err.value)
        assert state_of(psm_scalar) == state_of(psm_native)

    def test_protocol_only_backend_gets_default_loop(self):
        class Minimal:
            def __init__(self):
                self.inner = DRAMSubsystem(
                    DRAMConfig(capacity=1 << 20, ranks=4))

            def access(self, request):
                return self.inner.access(request)

        extents = make_extents(1 << 20, 120, seed=77)
        scalar = Minimal()
        fallback = Minimal()
        scalar_report = default_flush_extents(scalar, extents, 0.0)
        extent_report = backend_flush_extents(fallback, extents, 0.0)
        assert isinstance(extent_report.responses, list)  # default loop
        assert scalar_report.done_ns == extent_report.done_ns
        assert scalar_report.blocked_ns == extent_report.blocked_ns
        assert state_of(scalar.inner) == state_of(fallback.inner)


class TestInterposerEquivalence:
    def _chain(self):
        """tap -> throttle -> PSM, the shape machine platforms build."""
        psm = PSM(PSMConfig(dimms=2, lines_per_dimm=1 << 10))
        return LatencyTap(BandwidthThrottle(psm, bytes_per_ns=2.0),
                          name="port")

    def test_tap_throttle_chain_matches_scalar(self):
        capacity = _capacity(PSM(PSMConfig(dimms=2, lines_per_dimm=1 << 10)))
        extents = make_extents(capacity, 500, seed=21)
        scalar = self._chain()
        native = self._chain()
        scalar_report = default_flush_extents(scalar, extents, 0.0)
        extent_report = native.flush_extents(extents, 0.0)
        assert_equivalent(scalar, native, scalar_report, extent_report)
        assert extent_report.lines == sum(e.lines for e in extents)

    def test_partition_routes_extents_like_scalar(self):
        half = 1 << 20

        def build():
            return AddressRangePartition([
                AddressRange(0, half, DRAMSubsystem(
                    DRAMConfig(capacity=half, ranks=4))),
                AddressRange(half, 2 * half, PSM(
                    PSMConfig(dimms=2, lines_per_dimm=1 << 13))),
            ])

        extents = make_extents(2 * half, 500, seed=33)
        scalar = build()
        native = build()
        scalar_report = default_flush_extents(scalar, extents, 0.0)
        extent_report = native.flush_extents(extents, 0.0)
        assert_equivalent(scalar, native, scalar_report, extent_report)

    def test_partition_subdivides_straddling_extent(self):
        """A line-aligned extent across the boundary is split, not
        rejected — exactly what the scalar per-line loop does."""
        half = 1 << 20

        def build():
            return AddressRangePartition([
                AddressRange(0, half, DRAMSubsystem(
                    DRAMConfig(capacity=half, ranks=4))),
                AddressRange(half, 2 * half, PSM(
                    PSMConfig(dimms=2, lines_per_dimm=1 << 13))),
            ])

        straddling = [Extent(half - 2 * CACHELINE_BYTES, 4)]
        scalar = build()
        native = build()
        scalar_report = default_flush_extents(scalar, straddling, 0.0)
        extent_report = native.flush_extents(straddling, 0.0)
        assert_equivalent(scalar, native, scalar_report, extent_report)

    def test_partition_boundary_crossing_matches_scalar_error(self):
        """A line that spans a non-line-aligned region edge raises the
        same boundary-crossing error on both paths."""
        edge = (1 << 20) + 32  # mid-line region edge

        def build():
            return AddressRangePartition([
                AddressRange(0, edge, DRAMSubsystem(
                    DRAMConfig(capacity=1 << 20, ranks=4))),
                AddressRange(edge, 1 << 21, PSM(
                    PSMConfig(dimms=2, lines_per_dimm=1 << 13))),
            ])

        crossing = [Extent(0, 2), Extent(1 << 20, 1)]
        scalar = build()
        native = build()
        with pytest.raises(AddressSpaceError) as scalar_err:
            default_flush_extents(scalar, crossing, 0.0)
        with pytest.raises(AddressSpaceError) as native_err:
            native.flush_extents(crossing, 0.0)
        assert str(scalar_err.value) == str(native_err.value)
        assert "crosses the region boundary" in str(native_err.value)

    def test_partition_outside_region_matches_scalar_error(self):
        region = AddressRange(0, 1 << 20, DRAMSubsystem(
            DRAMConfig(capacity=1 << 20, ranks=4)))
        scalar = AddressRangePartition([region])
        native = AddressRangePartition([AddressRange(
            0, 1 << 20, DRAMSubsystem(DRAMConfig(capacity=1 << 20,
                                                 ranks=4)))])
        outside = [Extent(0, 2), Extent(1 << 21, 1)]
        with pytest.raises(AddressSpaceError) as scalar_err:
            default_flush_extents(scalar, outside, 0.0)
        with pytest.raises(AddressSpaceError) as native_err:
            native.flush_extents(outside, 0.0)
        assert str(scalar_err.value) == str(native_err.value)
        assert "outside every partition region" in str(native_err.value)


class TestFaultInjectorMidExtent:
    """Satellite regression: the crash index must split extents exactly —
    served prefix, wear registers and ``completed`` length all equal to
    the scalar loop's."""

    CONFIG = dict(dimms=2, lines_per_dimm=1 << 10)

    def _build(self, crash_at):
        return FaultInjector(PSM(PSMConfig(**self.CONFIG)),
                             crash_at_op=crash_at)

    @pytest.mark.parametrize("crash_at", (0, 1, 5, 37, 250, 499))
    def test_crash_splits_extent_exactly(self, crash_at):
        capacity = PSM(PSMConfig(**self.CONFIG)).capacity
        extents = make_extents(capacity, 500, seed=55)
        scalar = self._build(crash_at)
        native = self._build(crash_at)

        with pytest.raises(InjectedPowerFailure) as scalar_err:
            default_flush_extents(scalar, extents, 0.0)
        with pytest.raises(InjectedPowerFailure) as native_err:
            native.flush_extents(extents, 0.0)

        assert str(scalar_err.value) == str(native_err.value)
        scalar_served = scalar_err.value.completed
        native_served = native_err.value.completed
        assert len(scalar_served) == crash_at
        assert len(native_served) == crash_at
        for index, (a, b) in enumerate(zip(scalar_served, native_served)):
            assert repr(a) == repr(b), f"served line {index} diverged"
        assert scalar.op_index == native.op_index
        assert scalar.tripped and native.tripped
        assert state_of(scalar.inner) == state_of(native.inner)

    def test_no_crash_in_window_advances_op_index(self):
        scalar = self._build(10_000)
        native = self._build(10_000)
        extents = [Extent(0, 8), Extent(1 << 12, 4)]
        scalar_report = default_flush_extents(scalar, extents, 0.0)
        extent_report = native.flush_extents(extents, 0.0)
        assert scalar.op_index == native.op_index == 12
        assert not scalar.tripped and not native.tripped
        assert_equivalent(scalar.inner, native.inner, scalar_report,
                          extent_report)


class TestStatsResetAfterPowerCycle:
    """Satellite: flush/drain counters under a full interposer chain
    restart from zero after ``power_cycle``; registry paths stay live."""

    def _chain(self):
        psm = PSM(PSMConfig(dimms=2, lines_per_dimm=1 << 10))
        return LatencyTap(
            BandwidthThrottle(
                FaultInjector(psm, crash_at_op=None), bytes_per_ns=2.0
            ),
            name="port",
        )

    def test_counters_restart_from_zero(self):
        chain = self._chain()
        registry = StatsRegistry()
        chain.register_stats(registry.scoped("memory"))
        before_keys = set(registry.flat())

        extents = make_extents(
            _capacity(PSM(PSMConfig(dimms=2, lines_per_dimm=1 << 10))),
            400, seed=5)
        chain.flush_extents(extents, 0.0)
        flat = registry.flat()
        tap_writes = [v for k, v in flat.items() if "write" in k and v]
        assert tap_writes, "flush produced no write stats through the tap"

        chain.power_cycle()
        flat = registry.flat()
        assert set(flat) == before_keys, "stale registry nodes leaked"
        # Controller-side state zeroes in place (registry references keep
        # resolving); host-side simulation stats on the PSM persist.
        assert chain.read_latency.count == 0
        assert chain.write_latency.count == 0
        assert chain.inner.throttled_ns == 0.0
        psm = chain.inner.inner.inner
        assert not psm._pending and not psm._buffers
        assert not psm._channel_busy

        # The same chain keeps serving after the cycle, from zero.
        report = chain.flush_extents(extents[:4], 0.0)
        assert chain.write_latency.count == report.lines


class TestSnGReportIdentity:
    """Stop/Go reports must be byte-identical whichever flush path the
    port drains the dirty population through."""

    def _dirty(self, psm):
        extents = make_extents(psm.capacity, 256, seed=13)
        per_core = [extents[i::8] for i in range(8)]
        return [chunk for chunk in per_core if chunk]

    def _run(self, flush_fn):
        psm = PSM()
        per_core = self._dirty(psm)
        counts = [sum(e.lines for e in chunk) for chunk in per_core]

        def flush_port(t):
            done = t
            for chunk in per_core:
                report = flush_fn(psm, chunk, t)
                if report.done_ns > done:
                    done = report.done_ns
            flushed = psm.flush(done)
            return flushed if flushed > done else done

        kernel = Kernel()
        kernel.populate()
        sng = SnG(kernel, flush_port=flush_port,
                  dirty_lines_fn=lambda: list(counts))
        stop = sng.stop()
        go = sng.go()
        assert sng.verify_resumed_state()
        return dataclasses.asdict(stop), dataclasses.asdict(go)

    def test_stop_and_go_reports_identical(self):
        scalar_stop, scalar_go = self._run(default_flush_extents)
        extent_stop, extent_go = self._run(backend_flush_extents)
        assert scalar_stop == extent_stop
        assert scalar_go == extent_go

    def test_incremental_snapshot_reuses_unchanged_tasks(self):
        kernel = Kernel()
        kernel.populate()
        sng = SnG(kernel, flush_port=lambda t: t,
                  dirty_lines_fn=lambda: [0] * kernel.config.cores)
        sng.stop()
        first_serialized = sng.pcb_entries_serialized
        assert first_serialized == len(kernel.all_tasks())
        assert sng.pcb_entries_reused == 0
        # verify_resumed_state re-snapshots; parked registers compare
        # equal, so every entry is a cache hit and bytes still match.
        assert sng.verify_resumed_state()
        assert sng.pcb_entries_serialized == first_serialized
        assert sng.pcb_entries_reused == first_serialized


class TestDirtyExtentMap:
    def test_coalesces_adjacent_lines(self):
        dirty = DirtyExtentMap()
        dirty.note_write(0)
        dirty.note_write(64)
        dirty.note_write(65)  # same line as 64
        dirty.note_write(256)
        assert dirty.line_count == 3
        assert dirty.dirty_bytes == 3 * CACHELINE_BYTES
        assert dirty.extents() == [Extent(0, 2), Extent(256, 1)]

    def test_take_is_a_delta_cut(self):
        dirty = DirtyExtentMap()
        dirty.note_lines([0, 64, 128])
        assert dirty.take() == [Extent(0, 3)]
        assert not dirty
        assert dirty.take() == []

    def test_note_window_records_only_writes(self):
        from repro.memory.batch import RequestWindow

        dirty = DirtyExtentMap()
        dirty.note_window(RequestWindow(
            [True, False, True], [0, 64, 128], [0.0, 0.0, 0.0]))
        assert sorted(e.start for e in dirty.extents()) == [0, 128]

    def test_delta_checkpoint_costing_is_quiet_when_clean(self):
        psm = PSM(PSMConfig(dimms=2, lines_per_dimm=1 << 10))
        dirty = DirtyExtentMap()
        dirty.note_lines(range(0, 64 * CACHELINE_BYTES, CACHELINE_BYTES))

        scheck = SCheckPC()
        first = scheck.period_dump_port_ns(psm, dirty)
        assert first > 0.0
        assert scheck.period_dump_port_ns(psm, dirty) == 0.0  # drained

        acheck = ACheckPC()
        dirty.note_lines([0, 64])
        cost = acheck.checkpoint_port_ns(psm, dirty)
        assert cost > acheck.commit_ns
        assert acheck.checkpoint_port_ns(psm, dirty) == acheck.commit_ns


class TestFaultInjectorExtentEdges:
    """Satellite regression: the off-by-one edges of the crash split —
    op 0, the final line of an extent list, and one past the end."""

    CONFIG = dict(dimms=2, lines_per_dimm=1 << 10)
    EXTENTS = [Extent(0, 8), Extent(1 << 12, 4)]   # 12 lines exactly

    def _build(self, crash_at):
        return FaultInjector(PSM(PSMConfig(**self.CONFIG)),
                             crash_at_op=crash_at)

    def test_crash_at_op_zero_serves_empty_prefix(self):
        scalar = self._build(0)
        native = self._build(0)
        with pytest.raises(InjectedPowerFailure) as scalar_err:
            default_flush_extents(scalar, self.EXTENTS, 0.0)
        with pytest.raises(InjectedPowerFailure) as native_err:
            native.flush_extents(self.EXTENTS, 0.0)
        assert scalar_err.value.completed == []
        assert native_err.value.completed == []
        assert scalar.op_index == native.op_index == 0
        assert state_of(scalar.inner) == state_of(native.inner)

    def test_crash_at_final_line_serves_all_but_one(self):
        scalar = self._build(11)
        native = self._build(11)
        with pytest.raises(InjectedPowerFailure) as scalar_err:
            default_flush_extents(scalar, self.EXTENTS, 0.0)
        with pytest.raises(InjectedPowerFailure) as native_err:
            native.flush_extents(self.EXTENTS, 0.0)
        assert len(scalar_err.value.completed) == 11
        assert len(native_err.value.completed) == 11
        for a, b in zip(scalar_err.value.completed,
                        native_err.value.completed):
            assert repr(a) == repr(b)
        assert scalar.op_index == native.op_index == 11
        assert state_of(scalar.inner) == state_of(native.inner)

    def test_crash_one_past_the_end_forwards_whole(self):
        scalar = self._build(12)
        native = self._build(12)
        scalar_report = default_flush_extents(scalar, self.EXTENTS, 0.0)
        native_report = native.flush_extents(self.EXTENTS, 0.0)
        assert not scalar.tripped and not native.tripped
        assert scalar.op_index == native.op_index == 12
        assert_equivalent(scalar.inner, native.inner, scalar_report,
                          native_report)
        # the *next* op is the crashed one
        with pytest.raises(InjectedPowerFailure):
            native.access(MemoryRequest(MemoryOp.READ, 0, time=0.0))


class TestDirtyExtentMapAdversarial:
    """Satellite: overlap, rewrite-after-take, and region-abutting
    extents — the patterns a litmus cut writeback actually produces."""

    def test_overlapping_note_lines_ranges_coalesce_once(self):
        dirty = DirtyExtentMap()
        dirty.note_lines(range(0, 10 * CACHELINE_BYTES, CACHELINE_BYTES))
        dirty.note_lines(range(5 * CACHELINE_BYTES, 15 * CACHELINE_BYTES,
                               CACHELINE_BYTES))
        assert dirty.line_count == 15
        assert dirty.extents() == [Extent(0, 15)]

    def test_write_take_rewrite_same_line(self):
        dirty = DirtyExtentMap()
        dirty.note_write(CACHELINE_BYTES)
        assert dirty.take() == [Extent(CACHELINE_BYTES, 1)]
        assert dirty.take() == []
        dirty.note_write(CACHELINE_BYTES)            # re-dirty after cut
        dirty.note_write(CACHELINE_BYTES)            # idempotent
        assert dirty.line_count == 1
        assert dirty.take() == [Extent(CACHELINE_BYTES, 1)]
        assert not dirty

    def test_interior_offsets_map_to_their_line(self):
        dirty = DirtyExtentMap()
        dirty.note_write(CACHELINE_BYTES + 1)
        dirty.note_write(2 * CACHELINE_BYTES - 1)
        assert dirty.extents() == [Extent(CACHELINE_BYTES, 1)]

    def _partition(self, half_lines):
        half = half_lines * CACHELINE_BYTES
        return AddressRangePartition([
            AddressRange(0, half, PSM(PSMConfig(**{
                "dimms": 2, "lines_per_dimm": 1 << 10}))),
            AddressRange(half, 2 * half, PSM(PSMConfig(**{
                "dimms": 2, "lines_per_dimm": 1 << 10}))),
        ])

    @pytest.mark.parametrize("shape", ("straddle", "end_at", "start_at"))
    def test_extents_abutting_region_boundary(self, shape):
        half_lines = 64
        boundary = half_lines * CACHELINE_BYTES
        dirty = DirtyExtentMap()
        if shape == "straddle":
            lines = range(boundary - 3 * CACHELINE_BYTES,
                          boundary + 3 * CACHELINE_BYTES, CACHELINE_BYTES)
        elif shape == "end_at":
            lines = range(boundary - 4 * CACHELINE_BYTES, boundary,
                          CACHELINE_BYTES)
        else:
            lines = range(boundary, boundary + 4 * CACHELINE_BYTES,
                          CACHELINE_BYTES)
        dirty.note_lines(lines)
        extents = dirty.take()
        assert len(extents) == 1     # coalesced across the seam

        scalar = self._partition(half_lines)
        native = self._partition(half_lines)
        scalar_report = default_flush_extents(scalar, extents, 0.0)
        native_report = backend_flush_extents(native, extents, 0.0)
        assert scalar_report.lines == native_report.lines == len(list(lines))
        assert_equivalent(scalar, native, scalar_report, native_report)
