"""Zero-copy and caching contracts of the columnar window layer.

``RequestWindow.subwindow`` promises ndarray columns slice into *views*
(aliasing the parent's memory) while list columns shallow-copy;
``RequestWindow.from_arrays`` adopts matching-dtype buffers without
copying; ``ResponseWindow.latencies`` computes its column once and hands
back the same object; ``LatencyStats.record_many`` on an ndarray must be
observationally identical to the scalar ``record`` loop.  These are the
load-bearing assumptions of the columnar kernels and the campaign fast
path, so they get pinned here rather than implied by the equivalence
suites.
"""

from __future__ import annotations

import pytest

from repro import _np as _nphelper
from repro.memory.batch import RequestWindow, ResponseWindow
from repro.sim.stats import LatencyStats

np = _nphelper.np

needs_numpy = pytest.mark.skipif(
    not _nphelper.HAVE_NUMPY, reason="numpy unavailable"
)


def _list_window(n: int = 16) -> RequestWindow:
    return RequestWindow(
        [i % 3 == 0 for i in range(n)],
        [i * 64 for i in range(n)],
        [float(i) * 10.0 for i in range(n)],
    )


def _array_window(n: int = 16) -> RequestWindow:
    w = np.asarray([i % 3 == 0 for i in range(n)], dtype=np.bool_)
    a = np.arange(n, dtype=np.int64) * 64
    t = np.arange(n, dtype=np.float64) * 10.0
    return RequestWindow.from_arrays(w, a, t)


@needs_numpy
def test_from_arrays_adopts_matching_dtypes_without_copy():
    a = np.arange(8, dtype=np.int64) * 64
    t = np.arange(8, dtype=np.float64)
    w = np.zeros(8, dtype=np.bool_)
    window = RequestWindow.from_arrays(w, a, t)
    assert window.addresses is a
    assert window.times is t
    assert window.is_write is w
    # The ndarray mirror is the very same objects — arrays() is free.
    assert window.arrays() == (w, a, t)
    assert window.arrays()[1] is a


@needs_numpy
def test_subwindow_of_array_window_aliases_parent_memory():
    window = _array_window(16)
    sub = window.subwindow(4, 12)
    assert len(sub) == 8
    assert np.shares_memory(sub.addresses, window.addresses)
    assert np.shares_memory(sub.times, window.times)
    # The cached mirror slices into views too.
    sub_arrays = sub.arrays()
    assert np.shares_memory(sub_arrays[1], window.arrays()[1])
    assert sub.addresses.tolist() == window.addresses.tolist()[4:12]


def test_subwindow_of_list_window_copies_shallowly():
    window = _list_window(16)
    sub = window.subwindow(4, 12)
    assert sub.addresses == window.addresses[4:12]
    sub.addresses[0] = 0xDEAD
    assert window.addresses[4] == 4 * 64  # parent untouched


@needs_numpy
def test_replace_addresses_rebases_without_writing_through_views():
    window = _array_window(16)
    before = window.addresses.copy()
    sub = window.subwindow(0, 8)
    sub.replace_addresses(sub.addresses + 4096)
    # Rebasing replaced the column object; the parent's memory (which
    # the original subwindow columns aliased) must be untouched.
    assert window.addresses.tolist() == before.tolist()
    assert sub.addresses.tolist() == (before[:8] + 4096).tolist()
    assert sub.arrays()[1].tolist() == sub.addresses.tolist()


@needs_numpy
def test_request_at_coerces_ndarray_scalars_to_builtins():
    window = _array_window(4)
    request = window.request_at(1)
    assert type(request.address) is int
    assert type(request.time) is float


@needs_numpy
def test_arrays_cached_and_mirrors_list_columns():
    window = _list_window(8)
    first = window.arrays()
    assert window.arrays() is first
    assert first[1].tolist() == window.addresses
    assert first[2].tolist() == window.times


@needs_numpy
def test_latencies_cached_column_ndarray():
    window = _array_window(8)
    complete = window.arrays()[2] + 25.0
    responses = ResponseWindow(window, complete, complete, complete * 0.0)
    column = responses.latencies()
    assert isinstance(column, np.ndarray)
    assert responses.latencies() is column
    assert column.tolist() == [25.0] * 8
    assert [r.latency for r in responses] == column.tolist()


def test_latencies_cached_column_list_fallback():
    window = _list_window(8)
    complete = [t + 30.0 for t in window.times]
    responses = ResponseWindow(window, complete, complete, [0.0] * 8)
    column = responses.latencies()
    assert isinstance(column, list)
    assert responses.latencies() is column
    assert column == [30.0] * 8


@needs_numpy
def test_record_many_ndarray_identical_to_scalar_loop():
    rng = np.random.default_rng(7)
    values = rng.uniform(10.0, 500.0, size=20000)
    scalar = LatencyStats(capacity=256)
    for value in values.tolist():
        scalar.record(value)
    bulk = LatencyStats(capacity=256)
    bulk.record_many(values)
    assert bulk.count == scalar.count
    assert bulk.total == scalar.total
    assert bulk.total_sq == scalar.total_sq
    assert bulk.min == scalar.min
    assert bulk.max == scalar.max
    assert bulk._reservoir == scalar._reservoir
    assert bulk._cursor == scalar._cursor
    assert bulk._stride == scalar._stride
    assert bulk._skip == scalar._skip


def test_record_many_sequence_identical_to_scalar_loop():
    import random

    rng = random.Random(11)
    values = [rng.uniform(10.0, 500.0) for _ in range(5000)]
    scalar = LatencyStats(capacity=128)
    for value in values:
        scalar.record(value)
    bulk = LatencyStats(capacity=128)
    bulk.record_many(values)
    assert bulk.count == scalar.count
    assert bulk.total == scalar.total
    assert bulk._reservoir == scalar._reservoir
    assert bulk._stride == scalar._stride


@needs_numpy
def test_summarize_responses_consumes_cached_column():
    from repro.engine.columnar import summarize_responses

    window = _array_window(8)
    complete = window.arrays()[2] + 40.0
    blocked = np.zeros(8, dtype=np.float64)
    responses = ResponseWindow(window, complete, complete, blocked)
    summary = summarize_responses(responses)
    assert summary.responses == 8
    assert summary.latency_total == 8 * 40.0
    assert summary.latency_min == 40.0 == summary.latency_max
    # The summarizer consumed the cached column itself, not a copy.
    assert responses.latencies() is responses._latencies
