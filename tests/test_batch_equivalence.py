"""Batch/scalar equivalence for every registered memory backend.

``access_batch`` is a pure performance port: for any request stream it
must be observationally identical to looping scalar ``access`` — same
responses, same stats tree, same wear registers and counters, same
device state.  These tests drive the same deterministic (and
hypothesis-generated) streams through two fresh instances of each
backend, one per path, and diff everything observable.

The native fast paths (DRAM, PSM, PMEM controller/DIMM) are also pinned
to actually return a :class:`ResponseWindow`, so a silent fall-back to
the default loop fails the suite instead of quietly losing the speedup.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.batch import (
    RequestWindow,
    ResponseWindow,
    backend_access_batch,
)
from repro.memory.dram import DRAMConfig, DRAMSubsystem
from repro.memory.port import (
    AddressRange,
    AddressRangePartition,
    BandwidthThrottle,
    FaultInjector,
    InjectedPowerFailure,
    LatencyTap,
)
from repro.memory.request import CACHELINE_BYTES, MemoryOp, MemoryRequest
from repro.ocpmem.psm import PSM, PSMConfig
from repro.pmem.controller import NMEMController, PMEMController
from repro.pmem.dimm import PMEMDIMM
from repro.sim.stats import StatsRegistry


@pytest.fixture(autouse=True, scope="module")
def _kernel_mode_matrix(kernel_mode):
    """Run this whole suite once per columnar-kernel mode.

    Scalar/batched (and scalar/extent) identity must hold both when the
    batch path runs the pure Python loops and when it runs the numpy
    kernels; the module-scoped matrix proves stats trees, wear
    registers and fault splits match in either mode.
    """
    yield


def _pmem():
    return PMEMController(
        [PMEMDIMM(capacity=1 << 22), PMEMDIMM(capacity=1 << 22)]
    )


BACKENDS = {
    "dram": lambda: DRAMSubsystem(DRAMConfig(capacity=1 << 22, ranks=4)),
    "psm": lambda: PSM(PSMConfig(dimms=2, lines_per_dimm=1 << 10)),
    "pmem": _pmem,
    "nmem": lambda: NMEMController(
        DRAMSubsystem(DRAMConfig(capacity=1 << 20, ranks=4)), _pmem()
    ),
}

#: Tiers whose ``access_batch`` is a native columnar loop (must return a
#: ResponseWindow for window-shaped input, not fall back to the default).
NATIVE = ("dram", "psm", "pmem")


def _capacity(backend) -> int:
    cap = getattr(backend, "capacity", None)
    if cap is None:
        cap = backend.config.capacity
    return cap if isinstance(cap, int) else backend.config.capacity


def make_columns(capacity: int, count: int, seed: int):
    """A deterministic line-granular stream with reuse and bursts."""
    rng = random.Random(seed)
    lines = capacity // CACHELINE_BYTES
    hot = [rng.randrange(lines) for _ in range(24)]
    is_write, addresses, times = [], [], []
    t = 0.0
    for _ in range(count):
        line = rng.choice(hot) if rng.random() < 0.6 else rng.randrange(lines)
        addresses.append(line * CACHELINE_BYTES)
        is_write.append(rng.random() < 0.35)
        times.append(t)
        t += rng.choice((0.0, 0.5, 2.0, 19.0))
    return is_write, addresses, times


def run_scalar(backend, columns) -> list:
    is_write, addresses, times = columns
    out = []
    for w, address, t in zip(is_write, addresses, times):
        out.append(backend.access(MemoryRequest(
            MemoryOp.WRITE if w else MemoryOp.READ, address, time=t)))
    return out


def run_batched(backend, columns, window: int):
    """Push the stream through ``access_batch`` in window chunks."""
    is_write, addresses, times = columns
    outputs = []
    responses = []
    for lo in range(0, len(addresses), window):
        hi = lo + window
        out = backend_access_batch(backend, RequestWindow(
            is_write[lo:hi], addresses[lo:hi], times[lo:hi]))
        outputs.append(out)
        responses.extend(out)
    return outputs, responses


def state_of(backend):
    """Everything observable about a backend, comparison-ready."""
    registry = StatsRegistry()
    backend.register_stats(registry.scoped("memory"))
    return (registry.flat(), backend.counters(),
            backend.capture_registers())


def assert_equivalent(scalar_backend, batch_backend, scalar_responses,
                      batch_responses):
    assert len(scalar_responses) == len(batch_responses)
    for index, (a, b) in enumerate(zip(scalar_responses, batch_responses)):
        assert repr(a) == repr(b), f"response {index} diverged"
    assert state_of(scalar_backend) == state_of(batch_backend)


class TestBackendEquivalence:
    @pytest.mark.parametrize("name", sorted(BACKENDS))
    @pytest.mark.parametrize("window", (1, 64, 4096))
    def test_window_batches_match_scalar(self, name, window):
        capacity = _capacity(BACKENDS[name]())
        columns = make_columns(capacity, 600, seed=hash(name) & 0xFFFF)
        scalar = BACKENDS[name]()
        batched = BACKENDS[name]()
        scalar_responses = run_scalar(scalar, columns)
        outputs, batch_responses = run_batched(batched, columns, window)
        if name in NATIVE:
            for out in outputs:
                assert isinstance(out, ResponseWindow), \
                    f"{name} silently fell back to the default loop"
        assert_equivalent(scalar, batched, scalar_responses, batch_responses)

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_request_list_matches_scalar(self, name):
        """The list form (plain MemoryRequest sequence) is equivalent too."""
        capacity = _capacity(BACKENDS[name]())
        columns = make_columns(capacity, 200, seed=7)
        is_write, addresses, times = columns
        requests = [
            MemoryRequest(MemoryOp.WRITE if w else MemoryOp.READ, a, time=t)
            for w, a, t in zip(is_write, addresses, times)
        ]
        scalar = BACKENDS[name]()
        batched = BACKENDS[name]()
        scalar_responses = run_scalar(scalar, columns)
        batch_responses = list(backend_access_batch(batched, requests))
        assert_equivalent(scalar, batched, scalar_responses, batch_responses)

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    @settings(max_examples=12, deadline=None)
    @given(data=st.data())
    def test_property_random_streams(self, name, data):
        """Hypothesis-shaped streams: mixes, reuse, ties and zero gaps."""
        ops = data.draw(st.lists(
            st.tuples(st.booleans(), st.integers(0, 255),
                      st.sampled_from((0.0, 1.0, 33.0))),
            min_size=1, max_size=120))
        window = data.draw(st.sampled_from((1, 7, 64, 200)))
        is_write, addresses, times = [], [], []
        t = 0.0
        for w, line, gap in ops:
            is_write.append(w)
            addresses.append(line * CACHELINE_BYTES)
            times.append(t)
            t += gap
        columns = (is_write, addresses, times)
        scalar = BACKENDS[name]()
        batched = BACKENDS[name]()
        scalar_responses = run_scalar(scalar, columns)
        _, batch_responses = run_batched(batched, columns, window)
        assert_equivalent(scalar, batched, scalar_responses, batch_responses)


class TestInterposerEquivalence:
    def _chain(self):
        """tap -> throttle -> PSM, the shape machine platforms build."""
        psm = PSM(PSMConfig(dimms=2, lines_per_dimm=1 << 10))
        return LatencyTap(BandwidthThrottle(psm, bytes_per_ns=2.0),
                          name="port")

    def test_tap_throttle_chain_matches_scalar(self):
        capacity = _capacity(PSM(PSMConfig(dimms=2, lines_per_dimm=1 << 10)))
        columns = make_columns(capacity, 500, seed=21)
        scalar = self._chain()
        batched = self._chain()
        scalar_responses = run_scalar(scalar, columns)
        _, batch_responses = run_batched(batched, columns, 128)
        assert_equivalent(scalar, batched, scalar_responses, batch_responses)

    def test_partition_routes_batches_like_scalar(self):
        half = 1 << 20

        def build():
            return AddressRangePartition([
                AddressRange(0, half, DRAMSubsystem(
                    DRAMConfig(capacity=half, ranks=4))),
                AddressRange(half, 2 * half, PSM(
                    PSMConfig(dimms=2, lines_per_dimm=1 << 13))),
            ])

        columns = make_columns(2 * half, 500, seed=33)
        scalar = build()
        batched = build()
        scalar_responses = run_scalar(scalar, columns)
        _, batch_responses = run_batched(batched, columns, 128)
        assert_equivalent(scalar, batched, scalar_responses, batch_responses)

    @pytest.mark.parametrize("crash_at", (0, 1, 7, 250, 499))
    def test_fault_injection_split_matches_scalar(self, crash_at):
        """A window containing the crash op serves exactly the scalar
        prefix, then raises with that prefix in ``completed``."""

        def build():
            return FaultInjector(
                PSM(PSMConfig(dimms=2, lines_per_dimm=1 << 10)),
                crash_at_op=crash_at)

        capacity = _capacity(PSM(PSMConfig(dimms=2, lines_per_dimm=1 << 10)))
        columns = make_columns(capacity, 500, seed=55)
        scalar = build()
        batched = build()

        scalar_responses = []
        is_write, addresses, times = columns
        with pytest.raises(InjectedPowerFailure):
            for w, address, t in zip(is_write, addresses, times):
                scalar_responses.append(scalar.access(MemoryRequest(
                    MemoryOp.WRITE if w else MemoryOp.READ, address,
                    time=t)))

        # Windows before the crash return normally; the crashing window
        # raises with its served prefix in ``completed``.  Scalar-served
        # work is the concatenation of both.
        batch_responses = []
        with pytest.raises(InjectedPowerFailure) as excinfo:
            for lo in range(0, len(addresses), 128):
                hi = lo + 128
                batch_responses.extend(backend_access_batch(
                    batched, RequestWindow(
                        is_write[lo:hi], addresses[lo:hi], times[lo:hi])))
        batch_responses.extend(excinfo.value.completed)

        assert len(scalar_responses) == crash_at
        assert len(batch_responses) == crash_at
        for a, b in zip(scalar_responses, batch_responses):
            assert repr(a) == repr(b)
        assert scalar.op_index == batched.op_index
        assert scalar.tripped and batched.tripped
        assert state_of(scalar.inner) == state_of(batched.inner)

    def test_protocol_only_backend_gets_default_loop(self):
        """A third-party backend implementing only scalar ``access`` is
        served by the default loop through ``backend_access_batch``."""

        class Minimal:
            def __init__(self):
                self.inner = DRAMSubsystem(
                    DRAMConfig(capacity=1 << 20, ranks=4))

            def access(self, request):
                return self.inner.access(request)

        columns = make_columns(1 << 20, 150, seed=77)
        scalar = Minimal()
        batched = Minimal()
        scalar_responses = run_scalar(scalar, columns)
        outputs, batch_responses = run_batched(batched, columns, 64)
        for out in outputs:
            assert isinstance(out, list)  # default loop, not a window
        for a, b in zip(scalar_responses, batch_responses):
            assert repr(a) == repr(b)
        assert state_of(scalar.inner) == state_of(batched.inner)


class TestFaultInjectorWindowEdges:
    """Satellite regression: the off-by-one edges of the batch split —
    op 0, the final element of a window, and one past the end."""

    N = 12

    def _build(self, crash_at):
        return FaultInjector(
            PSM(PSMConfig(dimms=2, lines_per_dimm=1 << 10)),
            crash_at_op=crash_at)

    def _window(self):
        return RequestWindow([True] * self.N,
                             [i * CACHELINE_BYTES for i in range(self.N)],
                             [0.0] * self.N)

    def test_crash_at_op_zero_serves_empty_prefix(self):
        port = self._build(0)
        with pytest.raises(InjectedPowerFailure) as excinfo:
            backend_access_batch(port, self._window())
        assert excinfo.value.completed == []
        assert port.op_index == 0 and port.tripped
        assert state_of(port.inner) == state_of(self._build(0).inner)

    def test_crash_at_final_element_serves_all_but_one(self):
        batched = self._build(self.N - 1)
        scalar = self._build(self.N - 1)
        with pytest.raises(InjectedPowerFailure) as batch_err:
            backend_access_batch(batched, self._window())
        scalar_served = []
        window = self._window()
        with pytest.raises(InjectedPowerFailure):
            for index in range(self.N):
                scalar_served.append(scalar.access(window.request_at(index)))
        assert len(batch_err.value.completed) == self.N - 1
        assert len(scalar_served) == self.N - 1
        for a, b in zip(scalar_served, batch_err.value.completed):
            assert repr(a) == repr(b)
        assert scalar.op_index == batched.op_index == self.N - 1
        assert state_of(scalar.inner) == state_of(batched.inner)

    def test_crash_one_past_the_end_forwards_whole(self):
        port = self._build(self.N)
        responses = backend_access_batch(port, self._window())
        assert len(responses) == self.N
        assert not port.tripped and port.op_index == self.N
        with pytest.raises(InjectedPowerFailure):
            port.access(MemoryRequest(MemoryOp.READ, 0, time=0.0))
