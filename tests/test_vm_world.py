"""Per-task address spaces across the EP-cut (§IV-C end to end)."""

import pytest

from repro.core import Machine, PlatformConfig
from repro.memory import DRAMConfig, DRAMSubsystem
from repro.pecos import Kernel, KernelConfig, PageFault
from repro.power.psu import ATX_PSU
from repro.workloads import load_workload

TABLE_BASE = 1 << 22


def _small_kernel():
    return KernelConfig(user_processes=6, kernel_threads=4)


class TestAttachment:
    def test_every_user_task_gets_a_table(self):
        workload = load_workload("aes", refs=100)
        machine = Machine.for_workload(
            "lightpc", workload,
            PlatformConfig(kernel=_small_kernel()), functional=True)
        count = machine.kernel.attach_address_spaces(
            machine.backend, TABLE_BASE)
        assert count == 6
        for task in machine.kernel.user_tasks():
            assert task.registers.page_table_root != 0

    def test_vmas_translate(self):
        workload = load_workload("aes", refs=100)
        machine = Machine.for_workload(
            "lightpc", workload,
            PlatformConfig(kernel=_small_kernel()), functional=True)
        machine.kernel.attach_address_spaces(machine.backend, TABLE_BASE)
        task = machine.kernel.user_tasks()[0]
        space = machine.kernel.address_spaces[task.pid]
        for vma in task.vmas:
            assert space.translate(vma.start) > 0


class TestAcrossThePowerCut:
    def test_lightpc_address_spaces_survive(self):
        """After Stop/Go, every task's page-table root still walks —
        the tables live on OC-PMEM (the paper's §IV-C argument)."""
        workload = load_workload("aes", refs=100)
        machine = Machine.for_workload(
            "lightpc", workload,
            PlatformConfig(kernel=_small_kernel()), functional=True)
        machine.kernel.attach_address_spaces(machine.backend, TABLE_BASE)
        expected = {}
        for task in machine.kernel.user_tasks():
            space = machine.kernel.address_spaces[task.pid]
            expected[task.pid] = space.translate(task.vmas[0].start)
        machine.backend.flush(0.0)  # tables durable before the cut
        outcome = machine.power_fail(ATX_PSU)
        assert outcome.survived
        machine.recover()
        for task in machine.kernel.user_tasks():
            space = machine.kernel.address_spaces[task.pid]
            assert space.translate(task.vmas[0].start) == \
                expected[task.pid]
            assert task.registers.page_table_root == space.root

    def test_dram_tables_do_not_survive(self):
        """The same tables in DRAM die with power — why SysPC must dump
        whole images."""
        from repro.pecos.vm import AddressSpace, PageTableAllocator

        dram = DRAMSubsystem(DRAMConfig(capacity=1 << 24))
        kernel = Kernel(_small_kernel())
        kernel.populate()
        kernel.attach_address_spaces(dram, TABLE_BASE)
        task = kernel.user_tasks()[0]
        space = kernel.address_spaces[task.pid]
        assert space.translate(task.vmas[0].start) > 0
        dram.power_cycle()
        with pytest.raises(PageFault):
            space.translate(task.vmas[0].start)
