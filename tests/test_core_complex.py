"""Tests for the core timing model and the multi-core complex."""

import pytest

from repro.cpu import Core, CoreConfig, MultiCoreComplex
from repro.memory import DRAMConfig, DRAMSubsystem
from repro.pmem.modes import SoftwareOverhead
from repro.workloads.trace import TraceRecord


def _backend():
    return DRAMSubsystem(DRAMConfig(capacity=1 << 22))


class TestCore:
    def test_compute_advances_time(self):
        core = Core(0, _backend())
        core.execute(100, 0, is_write=False)
        assert core.stats.compute_ns == pytest.approx(
            100 * core.config.base_cpi * core.config.cycle_ns)

    def test_read_miss_stalls(self):
        core = Core(0, _backend())
        core.execute(0, 0, is_write=False)
        assert core.stats.read_stall_ns > 0.0

    def test_read_hit_cheap(self):
        core = Core(0, _backend())
        core.execute(0, 0, is_write=False)
        stall_after_miss = core.stats.read_stall_ns
        core.execute(0, 0, is_write=False)
        assert core.stats.read_stall_ns == stall_after_miss

    def test_write_miss_partially_exposed(self):
        core = Core(0, _backend())
        core.execute(0, 0, is_write=True)
        read_core = Core(1, _backend())
        read_core.execute(0, 0, is_write=False)
        assert core.stats.write_stall_ns < read_core.stats.read_stall_ns

    def test_dirty_eviction_issues_memory_write(self):
        backend = _backend()
        core = Core(0, backend, CoreConfig(cache=__import__(
            "repro.cpu.cache", fromlist=["CacheConfig"]).CacheConfig(
                size_bytes=256, ways=1)))
        stride = core.cache.config.sets * 64
        core.execute(0, 0, is_write=True)
        core.execute(0, stride, is_write=False)
        assert backend.counters()["writes"] == 1
        assert core.stats.evictions == 1

    def test_software_overhead_charged(self):
        overhead = SoftwareOverhead(per_read_ns=100.0, per_write_ns=50.0,
                                    coverage=1.0)
        core = Core(0, _backend(), overhead=overhead)
        core.execute(0, 0, is_write=False)
        assert core.stats.software_ns == pytest.approx(100.0)
        core.execute(0, 64, is_write=True)
        assert core.stats.software_ns == pytest.approx(150.0)

    def test_flush_writes_extra_lines(self):
        backend = _backend()
        overhead = SoftwareOverhead(per_write_ns=0.0, coverage=1.0,
                                    extra_flush_writes=1.0)
        core = Core(0, backend, overhead=overhead)
        core.execute(0, 0, is_write=True)
        core.execute(0, 0, is_write=True)
        assert backend.counters()["writes"] == 2

    def test_flush_cache_writes_back_dirty(self):
        backend = _backend()
        core = Core(0, backend)
        core.execute(0, 0, is_write=True)
        count, addresses = core.flush_cache()
        assert count == 1 and addresses == [0]
        assert backend.counters()["writes"] == 1

    def test_ipc_sane(self):
        core = Core(0, _backend())
        for i in range(50):
            core.execute(10, (i * 64) % 4096, is_write=False)
        ipc = core.stats.ipc(core.config.frequency_ghz)
        assert 0.0 < ipc <= 1.0


class TestMultiCoreComplex:
    def _trace(self, n, base=0, write_every=5):
        return [
            TraceRecord(instructions=3, address=base + (i * 64) % 8192,
                        is_write=(i % write_every == 0))
            for i in range(n)
        ]

    def test_threads_round_robin_over_cores(self):
        cx = MultiCoreComplex(_backend(), cores=2)
        result = cx.run_traces([self._trace(10), self._trace(10, base=16384),
                                self._trace(10, base=32768)])
        # thread 2 landed back on core 0
        assert result.per_core[0].reads > result.per_core[1].reads

    def test_wall_time_is_max_core_time(self):
        cx = MultiCoreComplex(_backend(), cores=2)
        result = cx.run_traces([self._trace(50), self._trace(5, base=16384)])
        busiest = max(s.total_ns for s in result.per_core if s.instructions)
        assert result.wall_ns == pytest.approx(busiest, rel=1e-6) or \
            result.wall_ns > busiest

    def test_instructions_counted(self):
        cx = MultiCoreComplex(_backend(), cores=4)
        result = cx.run_traces([self._trace(25)])
        assert result.instructions == 25 * 4  # 3 compute + 1 mem each

    def test_ipc_positive(self):
        cx = MultiCoreComplex(_backend(), cores=2)
        result = cx.run_traces([self._trace(100)])
        assert 0.0 < result.ipc < 4.0

    def test_dirty_line_counts(self):
        cx = MultiCoreComplex(_backend(), cores=2)
        cx.run_traces([self._trace(64, write_every=1)])
        counts = cx.dirty_line_counts()
        assert len(counts) == 2
        assert counts[0] > 0

    def test_flush_all_caches(self):
        backend = _backend()
        cx = MultiCoreComplex(backend, cores=2)
        cx.run_traces([self._trace(64, write_every=1)])
        flushed = cx.flush_all_caches()
        assert flushed > 0
        assert all(c == 0 for c in cx.dirty_line_counts())

    def test_ipi_roundtrip(self):
        cx = MultiCoreComplex(_backend(), cores=2)
        got = []
        cx.register_ipi_handler(1, lambda src, payload: got.append((src, payload)))
        cx.send_ipi(0, 1, payload="offline")
        assert got == [(0, "offline")]

    def test_ipi_without_handler_raises(self):
        cx = MultiCoreComplex(_backend(), cores=2)
        with pytest.raises(RuntimeError):
            cx.send_ipi(0, 1)

    def test_needs_at_least_one_core(self):
        with pytest.raises(ValueError):
            MultiCoreComplex(_backend(), cores=0)

    def test_memory_stall_fraction_bounded(self):
        cx = MultiCoreComplex(_backend(), cores=1)
        result = cx.run_traces([self._trace(100)])
        assert 0.0 <= result.memory_stall_fraction <= 1.0
