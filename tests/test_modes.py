"""Tests for the five PMEM operating-mode configurations (Fig. 4 setups)."""

import pytest

from repro.memory import DRAMSubsystem
from repro.pmem import MODE_NAMES, NMEMController, PMEMController, build_mode
from repro.pmem.modes import SoftwareOverhead


class TestBuildMode:
    def test_all_modes_build(self):
        for name in MODE_NAMES:
            mode = build_mode(name)
            assert mode.name == name
            assert hasattr(mode.backend, "access")
            assert hasattr(mode.backend, "drain")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            build_mode("turbo_mode")

    def test_dram_only_backend(self):
        mode = build_mode("dram_only")
        assert isinstance(mode.backend, DRAMSubsystem)
        assert mode.backend.is_volatile
        assert mode.pmem is None

    def test_mem_mode_is_volatile_cached_pmem(self):
        mode = build_mode("mem_mode")
        assert isinstance(mode.backend, NMEMController)
        assert mode.backend.is_volatile  # memory mode drops non-volatility
        assert mode.dram is not None and mode.pmem is not None

    def test_app_direct_is_nonvolatile(self):
        mode = build_mode("app_mode")
        assert isinstance(mode.backend, PMEMController)
        assert not mode.backend.is_volatile

    def test_capacity_scaling(self):
        mode = build_mode("app_mode", pmem_capacity=1 << 24, pmem_dimms=4)
        assert len(mode.pmem.dimms) == 4
        assert mode.pmem.capacity == 1 << 24


class TestOverheads:
    def test_dram_and_mem_mode_have_no_software_cost(self):
        for name in ("dram_only", "mem_mode"):
            overhead = build_mode(name).overhead
            assert overhead.read_cost() == 0.0
            assert overhead.write_cost() == 0.0

    def test_overheads_escalate_across_modes(self):
        costs = {
            name: build_mode(name).overhead.write_cost()
            for name in MODE_NAMES
        }
        assert costs["dram_only"] <= costs["app_mode"] \
            <= costs["object_mode"] < costs["trans_mode"]

    def test_trans_mode_flushes_stores(self):
        assert build_mode("trans_mode").overhead.extra_flush_writes > 0
        assert build_mode("object_mode").overhead.extra_flush_writes == 0

    def test_coverage_scales_costs(self):
        full = SoftwareOverhead(per_read_ns=100.0, coverage=1.0)
        half = SoftwareOverhead(per_read_ns=100.0, coverage=0.5)
        assert half.read_cost() == pytest.approx(full.read_cost() / 2)

    def test_trans_reads_also_pay(self):
        overhead = build_mode("trans_mode").overhead
        assert overhead.read_cost() > build_mode("object_mode").overhead.read_cost()
