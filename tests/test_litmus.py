"""The crash-consistency litmus engine, end to end.

Covers the IR/timeline algebra, generator determinism, the persistency
oracle's rule folding, exhaustive crash-point enumeration over all
three execution paths, the prefix-digest dedup, the intentionally
broken oracle rules (the engine must *detect* a violation and emit a
1-minimal counterexample), campaign determinism (serial == parallel,
byte-identical) and the ``repro litmus`` CLI.
"""

from __future__ import annotations

import dataclasses
import pickle
import random

import pytest

from repro.cli import main
from repro.litmus import (
    EXECUTION_PATHS,
    SHAPES,
    build_timeline,
    generate_program,
    minimize_counterexample,
    run_litmus,
    run_program,
)
from repro.litmus.campaign import LitmusOutcome, litmus_trial
from repro.litmus.ir import (
    LitmusOp,
    LitmusProgram,
    OpKind,
    iter_crash_points,
    line_value,
    prefix_digest,
    prefix_events,
    total_ticks,
)
from repro.litmus.oracle import (
    AllowedState,
    PersistencyModel,
    allowed_after,
    check_observation,
)


def _program(*ops: LitmusOp, lines: int = 8,
             regions: int = 1) -> LitmusProgram:
    return LitmusProgram("t", tuple(ops), lines, regions=regions)


S = lambda line, version: LitmusOp(OpKind.STORE, line, version)  # noqa: E731
L = lambda line: LitmusOp(OpKind.LOAD, line)                     # noqa: E731
F = lambda line=0: LitmusOp(OpKind.FLUSH, line)                  # noqa: E731
FENCE = LitmusOp(OpKind.FENCE)
CUT = LitmusOp(OpKind.SNG_CUT)
MARK = LitmusOp(OpKind.CHECKPOINT)

#: a seed whose store-store-reorder program includes a fence and passes
#: under the true model but violates under ``fence_is_barrier``
_FENCE_SEED = 0


class TestIR:
    def test_timeline_ticks_per_opcode(self):
        program = _program(S(0, 1), L(0), F(0), FENCE, MARK)
        timeline = build_timeline(program)
        assert [(e.event[0], e.ticks) for e in timeline] == [
            ("store", 1), ("load", 1), ("flush", 1), ("fence", 1),
            ("checkpoint", 0),
        ]
        assert total_ticks(timeline) == 4

    def test_cut_expands_to_sorted_writebacks_flush_commit(self):
        program = _program(S(3, 1), S(1, 2), CUT, S(3, 3), CUT)
        events = [e.event for e in build_timeline(program)]
        assert events == [
            ("store", 3, 1), ("store", 1, 2),
            ("writeback", 1), ("writeback", 3), ("flush",), ("commit",),
            ("store", 3, 3),
            ("writeback", 3), ("flush",), ("commit",),
        ]
        # the commit marker costs no injector tick
        assert total_ticks(build_timeline(program)) == 8

    def test_prefix_events_stops_before_crash_tick(self):
        program = _program(S(0, 1), S(1, 2), CUT)
        timeline = build_timeline(program)
        assert prefix_events(timeline, 0) == []
        assert prefix_events(timeline, 2) == [("store", 0, 1),
                                              ("store", 1, 2)]
        # crash exactly on the cut's flush: writebacks applied, no commit
        assert prefix_events(timeline, 4)[-1] == ("writeback", 1)
        # one tick later the flush applied and the commit marker with it
        assert prefix_events(timeline, 5)[-2:] == [("flush",), ("commit",)]

    def test_digest_ignores_loads_but_not_fences(self):
        stores = (S(0, 1),)
        plain = build_timeline(_program(*stores, L(0)))
        with_load = build_timeline(_program(*stores, L(1)))
        assert prefix_digest(plain, 2) == prefix_digest(with_load, 2)
        fenced = build_timeline(_program(*stores, FENCE))
        # a broken fence_is_barrier model distinguishes these prefixes,
        # so dedup must too — fences stay in the digest
        assert prefix_digest(plain, 2) != prefix_digest(fenced, 2)

    def test_iter_crash_points_ends_with_completion(self):
        timeline = build_timeline(_program(S(0, 1), F(0)))
        assert list(iter_crash_points(timeline)) == [0, 1, None]

    def test_line_value_is_whole_line(self):
        assert line_value(7) == bytes([7]) * 64
        assert len(set(line_value(200))) == 1

    def test_program_validation(self):
        with pytest.raises(ValueError):
            _program(S(99, 1), lines=4)          # line out of range
        with pytest.raises(ValueError):
            _program(S(0, 1), S(1, 1))           # duplicate version
        with pytest.raises(ValueError):
            _program(S(0, 0))                    # version 0 is "initial"
        with pytest.raises(ValueError):
            LitmusProgram("t", (), lines=0)

    def test_observe_lines_covers_stores_and_neighbours(self):
        program = _program(S(3, 1), lines=8)
        assert program.observe_lines() == [2, 3, 4]


class TestGenerators:
    @pytest.mark.parametrize("shape", sorted(SHAPES))
    def test_deterministic_per_seed(self, shape):
        a = generate_program(random.Random(42), shape)
        b = generate_program(random.Random(42), shape)
        assert a == b
        assert a.name == shape

    def test_all_picks_a_shape_from_the_registry(self):
        program = generate_program(random.Random(7), "all")
        assert program.name in SHAPES

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError, match="unknown litmus shape"):
            generate_program(random.Random(0), "nope")

    def test_partition_straddle_has_two_regions_abutting_stores(self):
        program = generate_program(random.Random(3), "partition-straddle")
        assert program.regions == 2
        half = program.lines // 2
        stored = program.stored_lines()
        assert half - 1 in stored and half in stored

    @pytest.mark.parametrize("seed", range(20))
    def test_fuzz_always_stores_something(self, seed):
        program = generate_program(random.Random(seed), "fuzz")
        assert program.stored_lines()


class TestOracle:
    LINES = (0, 1)

    def test_flush_is_the_only_default_barrier(self):
        events = [("store", 0, 1), ("fence",), ("store", 0, 2)]
        states = allowed_after(events, self.LINES)
        assert states[0].allowed(PersistencyModel()) == {0, 1, 2}
        events.append(("flush",))
        states = allowed_after(events, self.LINES)
        assert states[0].allowed(PersistencyModel()) == {2}

    def test_broken_fence_rule_changes_the_allowed_set(self):
        events = [("store", 0, 1), ("fence",)]
        broken = PersistencyModel(fence_is_barrier=True)
        states = allowed_after(events, self.LINES, broken)
        assert states[0].allowed(broken) == {1}

    def test_strict_no_early_drain_rule(self):
        strict = PersistencyModel(stores_may_drain_early=False)
        states = allowed_after([("store", 0, 1)], self.LINES, strict)
        assert states[0].allowed(strict) == {0}

    def test_check_observation_final_demands_latest(self):
        states = {0: AllowedState(base=0, maybe={1}, latest=1)}
        ok = check_observation({0: (1, False)}, states,
                               PersistencyModel(), final=True)
        assert ok == []
        bad = check_observation({0: (0, False)}, states,
                                PersistencyModel(), final=True)
        assert bad == [(0, 0, (1,), False)]

    def test_torn_line_always_violates(self):
        states = {0: AllowedState(base=0, maybe={1}, latest=1)}
        bad = check_observation({0: (1, True)}, states, PersistencyModel())
        assert bad and bad[0][3] is True


class TestEngine:
    def test_crash_at_op_zero_observes_initial_state(self):
        program = _program(S(0, 1), F(0))
        from repro.litmus.engine import _execute

        for path in EXECUTION_PATHS:
            observed = _execute(program, path, 0)
            assert all(version == 0 and not torn
                       for version, torn in observed.values())

    def test_flushed_store_survives_every_later_crash(self):
        program = _program(S(2, 1), F(2), S(2, 2), L(2))
        verdict = run_program(program)
        assert verdict.ok
        timeline = build_timeline(program)
        from repro.litmus.engine import _execute

        for crash_at in range(2, total_ticks(timeline)):
            for path in EXECUTION_PATHS:
                version, torn = _execute(program, path, crash_at)[2]
                assert version in (1, 2) and not torn

    def test_enumerates_every_crash_point(self):
        program = _program(S(0, 1), S(1, 2), CUT, L(0))
        verdict = run_program(program)
        # T = 2 stores + 2 writebacks + 1 flush + 1 load
        assert verdict.crash_points == 6
        # per path: crash points minus dedups, plus the completion run
        per_path = verdict.crash_points + 1 - verdict.deduped // len(
            EXECUTION_PATHS)
        assert verdict.executed == per_path * len(EXECUTION_PATHS)

    def test_dedup_prunes_load_only_suffixes(self):
        program = _program(S(0, 1), L(0), L(1), L(0))
        verdict = run_program(program, paths=("scalar",))
        # crashes at ticks 2 and 3 share tick 1's mutating prefix
        assert verdict.deduped == 2
        assert verdict.ok

    @pytest.mark.parametrize("shape", sorted(SHAPES))
    def test_shapes_pass_on_all_paths(self, shape):
        for seed in range(4):
            program = generate_program(random.Random(seed), shape)
            verdict = run_program(program)
            assert verdict.ok, (verdict.violations + verdict.divergences)

    def test_unknown_path_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_program(_program(S(0, 1)), paths=("warp",))


class TestBrokenOracle:
    """The acceptance-criterion proof: a wrong durability rule must be
    *detected* and shrunk to a 1-minimal counterexample."""

    BROKEN = PersistencyModel(fence_is_barrier=True)
    PROGRAM = _program(S(0, 1), S(1, 2), FENCE, L(0), lines=4)

    def test_violation_detected_on_every_path(self):
        verdict = run_program(self.PROGRAM, model=self.BROKEN)
        assert not verdict.ok
        paths = {ce.path for ce in verdict.violations}
        assert paths == set(EXECUTION_PATHS)
        first = verdict.violations[0]
        assert first.observed == 0 and first.allowed == (1,)
        assert "allowed {v1}" in first.render()

    def test_counterexample_is_minimized(self):
        minimized = minimize_counterexample(self.PROGRAM, model=self.BROKEN)
        assert minimized is not None
        assert "+min" in minimized.program
        # 1-minimal: one store, the fence, and one op to crash on after
        # the fence tick — dropping any of the three loses the violation
        ops = minimized.program.split(": ", 1)[1].count(";") + 1
        assert ops == 3

    def test_minimizer_returns_none_when_program_passes(self):
        assert minimize_counterexample(self.PROGRAM) is None

    def test_trial_reports_minimized_counterexample(self):
        # the true model passes this seed...
        outcome = litmus_trial(
            0, random.Random(_FENCE_SEED), shape="store-store-reorder")
        assert outcome.violations == []
        # ...and the broken fence rule both flags it and ships a
        # 1-minimal counterexample alongside the original trace
        broken = litmus_trial(
            0, random.Random(_FENCE_SEED), shape="store-store-reorder",
            rules={"fence_is_barrier": True})
        assert broken.violations
        assert any("(minimized)" in line for line in broken.violations)


class TestCampaign:
    def test_serial_equals_parallel_byte_identical(self, tmp_path):
        serial = run_litmus(trials=8, seed=5)
        parallel = run_litmus(trials=8, seed=5, jobs=2)
        assert pickle.dumps(serial) == pickle.dumps(parallel)
        assert serial.summary() == parallel.summary()
        assert serial.ok

    def test_shard_cache_replays_byte_identical(self, tmp_path):
        cold = run_litmus(trials=6, seed=9, cache_dir=tmp_path)
        warm = run_litmus(trials=6, seed=9, cache_dir=tmp_path)
        assert pickle.dumps(cold) == pickle.dumps(warm)

    def test_outcomes_pickle_for_worker_processes(self):
        outcome = litmus_trial(3, random.Random(3), shape="fuzz")
        clone = pickle.loads(pickle.dumps(outcome))
        assert dataclasses.asdict(clone) == dataclasses.asdict(outcome)

    def test_runner_aggregates_operations(self):
        from repro.orchestrate import Campaign, CampaignRunner

        runner = CampaignRunner()
        outcomes = runner.run(Campaign(
            name="litmus-ops", trials=4, trial_fn=litmus_trial, seed=1,
            params={"shape": "flush-without-fence"}))
        assert runner.last_stats.operations == sum(
            outcome.operations for outcome in outcomes)
        assert runner.last_stats.operations > 0

    def test_report_counts_are_consistent(self):
        report = run_litmus(trials=5, seed=2)
        assert report.trials == report.programs == 5
        assert report.executed + report.deduped >= report.crash_points
        assert report.summary().endswith("OK")


class TestLitmusCLI:
    def test_litmus_subcommand_runs_ok(self, capsys):
        status = main(["litmus", "--trials", "4", "--seed", "1"])
        out = capsys.readouterr().out
        assert status == 0
        assert "-> OK" in out
        assert "crash points" in out

    def test_litmus_shape_flag(self, capsys):
        status = main(["litmus", "--trials", "2", "--seed", "1",
                       "--shape", "flush-without-fence"])
        assert status == 0
        assert "litmus-flush-without-fence:" in capsys.readouterr().out

    def test_litmus_unknown_shape_is_a_usage_error(self, capsys):
        status = main(["litmus", "--trials", "1", "--shape", "bogus"])
        assert status == 2
        assert "unknown litmus shape" in capsys.readouterr().err

    def test_litmus_serial_equals_parallel_stdout(self, capsys):
        main(["litmus", "--trials", "4", "--seed", "3"])
        serial = capsys.readouterr().out
        main(["litmus", "--trials", "4", "--seed", "3", "--jobs", "2"])
        assert capsys.readouterr().out == serial

    def test_litmus_cache_dir_must_be_a_directory(self, tmp_path, capsys):
        bogus = tmp_path / "file"
        bogus.write_text("x")
        status = main(["litmus", "--trials", "1",
                       "--cache-dir", str(bogus)])
        assert status == 2
