"""Tests for the Bare-NVDIMM channel layouts."""

import pytest

from repro.ocpmem import BareNVDIMM


class TestGeometry:
    def test_dual_channel_groups(self):
        dimm = BareNVDIMM(lines=256, layout="dual_channel")
        assert dimm.groups == 4
        assert dimm.dies_per_group == 2
        assert len(dimm.dies) == 8

    def test_dram_like_single_group(self):
        dimm = BareNVDIMM(lines=256, layout="dram_like")
        assert dimm.groups == 1
        assert dimm.dies_per_group == 8

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError):
            BareNVDIMM(lines=256, layout="weird")

    def test_lines_validation(self):
        with pytest.raises(ValueError):
            BareNVDIMM(lines=0)

    def test_group_of_interleaves(self):
        dimm = BareNVDIMM(lines=256)
        assert [dimm.group_of(i) for i in range(5)] == [0, 1, 2, 3, 0]

    def test_slots_dual_channel(self):
        dimm = BareNVDIMM(lines=256)
        slots = dimm.slots_of(0)
        assert len(slots) == 2
        assert slots[0].die == 0 and slots[1].die == 1
        slots = dimm.slots_of(1)
        assert slots[0].die == 2 and slots[1].die == 3

    def test_slots_advance_within_group(self):
        dimm = BareNVDIMM(lines=256)
        a = dimm.slots_of(0)[0].address
        b = dimm.slots_of(4)[0].address
        assert b == a + 64  # half + parity per slot

    def test_slots_dram_like_touch_all_dies(self):
        dimm = BareNVDIMM(lines=256, layout="dram_like")
        assert len(dimm.slots_of(0)) == 8

    def test_line_bounds(self):
        dimm = BareNVDIMM(lines=16)
        with pytest.raises(ValueError):
            dimm.slots_of(16)


class TestFunctionalStorage:
    def test_store_load_roundtrip_with_parity(self):
        dimm = BareNVDIMM(lines=64)
        line = bytes(range(64))
        dimm.store_line(3, line)
        half0, parity0 = dimm.load_slot(3, 0)
        half1, parity1 = dimm.load_slot(3, 1)
        assert half0 + half1 == line
        assert parity0 == parity1
        assert bytes(a ^ b for a, b in zip(half0, half1)) == parity0

    def test_store_requires_full_line(self):
        dimm = BareNVDIMM(lines=64)
        with pytest.raises(ValueError):
            dimm.store_line(0, b"short")

    def test_dram_like_has_no_functional_storage(self):
        dimm = BareNVDIMM(lines=64, layout="dram_like")
        with pytest.raises(ValueError):
            dimm.store_line(0, bytes(64))

    def test_corruption_flag_and_clear(self):
        dimm = BareNVDIMM(lines=64)
        dimm.store_line(0, bytes(64))
        dimm.corrupt_slot(0, 0)
        assert dimm.is_corrupt(0, 0)
        assert not dimm.is_corrupt(0, 1)
        dimm.store_line(0, bytes(64))  # rewrite heals the slot
        assert not dimm.is_corrupt(0, 0)

    def test_corruption_changes_bytes(self):
        dimm = BareNVDIMM(lines=64)
        dimm.store_line(0, bytes(64))
        before, _ = dimm.load_slot(0, 0)
        dimm.corrupt_slot(0, 0)
        after, _ = dimm.load_slot(0, 0)
        assert before != after

    def test_wipe_clears_everything(self):
        dimm = BareNVDIMM(lines=64)
        dimm.store_line(0, bytes(range(64)))
        dimm.corrupt_slot(0, 0)
        dimm.wipe()
        assert not dimm.is_corrupt(0, 0)
        half, parity = dimm.load_slot(0, 0)
        assert half == bytes(32)

    def test_power_cycle_keeps_contents(self):
        dimm = BareNVDIMM(lines=64)
        dimm.store_line(5, bytes(range(64)))
        dimm.dies[0].write(0.0, 0, size=32)
        dimm.power_cycle()
        half0, _ = dimm.load_slot(5, 0)
        assert half0 == bytes(range(32))
        assert all(d.busy_until == 0.0 for d in dimm.dies)
