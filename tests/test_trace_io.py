"""Tests for trace save/load."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import TraceGenerator, load_workload
from repro.workloads.trace import LocalityProfile, TraceRecord
from repro.workloads.trace_io import (
    TraceFormatError,
    load_trace,
    open_trace,
    read_window,
    save_trace,
    save_trace_columnar,
    trace_meta,
    trace_stats,
)


class TestRoundTrip:
    def test_generated_trace_round_trips(self, tmp_path):
        workload = load_workload("aes", refs=1_000)
        records = list(workload.traces()[0])
        path = tmp_path / "aes.trace"
        assert save_trace(records, path) == len(records)
        assert list(load_trace(path)) == records

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(
        st.integers(0, 1 << 20), st.integers(0, 1 << 40), st.booleans()),
        max_size=60))
    def test_arbitrary_records_round_trip(self, raw):
        import tempfile
        from pathlib import Path

        records = [TraceRecord(instructions=i, address=a - a % 8,
                               is_write=w) for i, a, w in raw]
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "t.trace"
            save_trace(records, path)
            assert list(load_trace(path)) == records

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.trace"
        assert save_trace([], path) == 0
        assert list(load_trace(path)) == []


class TestValidation:
    def test_not_a_trace(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"definitely not a trace file")
        with pytest.raises(TraceFormatError):
            list(load_trace(path))

    def test_truncated_body(self, tmp_path):
        path = tmp_path / "t.trace"
        save_trace([TraceRecord(1, 64, False)] * 4, path)
        blob = path.read_bytes()
        path.write_bytes(blob[:-5])
        with pytest.raises(TraceFormatError):
            list(load_trace(path))

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_bytes(b"LPC")
        with pytest.raises(TraceFormatError):
            list(load_trace(path))


class TestStats:
    def test_stats_match_trace(self, tmp_path):
        profile = LocalityProfile(working_set_lines=512, hot_lines=64,
                                  write_fraction=0.5)
        records = list(TraceGenerator(profile, seed=3).records(500))
        path = tmp_path / "t.trace"
        save_trace(records, path)
        stats = trace_stats(path)
        assert stats["records"] == 500
        assert stats["reads"] + stats["writes"] == 500
        assert stats["write_fraction"] == pytest.approx(0.5, abs=0.1)
        assert stats["footprint_bytes"] > 0


class TestColumnar:
    """v2 columnar format: O(1) windows, byte-identical record streams."""

    def _records(self, count=400, seed=5):
        profile = LocalityProfile(working_set_lines=256, hot_lines=32,
                                  write_fraction=0.3)
        return list(TraceGenerator(profile, seed=seed).records(count))

    def test_columnar_round_trips(self, tmp_path):
        records = self._records()
        path = tmp_path / "t.coltrace"
        assert save_trace_columnar(records, path) == len(records)
        assert list(load_trace(path)) == records

    def test_columnar_matches_row_format(self, tmp_path):
        records = self._records()
        row, col = tmp_path / "row.trace", tmp_path / "col.trace"
        save_trace(records, row)
        save_trace_columnar(records, col)
        assert list(load_trace(row)) == list(load_trace(col))

    def test_window_equals_slice(self, tmp_path):
        records = self._records()
        path = tmp_path / "t.coltrace"
        save_trace_columnar(records, path)
        trace = open_trace(path, shared=False)
        assert trace.count == len(records)
        window = trace.window(100, 180)
        assert window.count == len(window) == 80
        assert list(window) == records[100:180]
        assert list(window) == records[100:180]  # re-iterable
        assert window.stationary is True

    def test_read_window_version_agnostic(self, tmp_path):
        records = self._records()
        row, col = tmp_path / "row.trace", tmp_path / "col.trace"
        save_trace(records, row)
        save_trace_columnar(records, col)
        assert read_window(row, 37, 101) == records[37:101]
        assert read_window(col, 37, 101) == records[37:101]
        with pytest.raises(IndexError):
            read_window(col, 0, len(records) + 1)

    def test_trace_meta(self, tmp_path):
        records = self._records(count=123)
        row, col = tmp_path / "row.trace", tmp_path / "col.trace"
        save_trace(records, row)
        save_trace_columnar(records, col)
        assert trace_meta(row) == {"version": 1, "records": 123}
        assert trace_meta(col) == {"version": 2, "records": 123}

    def test_columns_from_generator_match_record_save(self, tmp_path):
        """The column-wise writer fast path emits identical bytes."""
        workload = load_workload("aes", refs=600)
        via_stream = tmp_path / "stream.coltrace"
        via_records = tmp_path / "records.coltrace"
        stream = workload.traces()[0]
        save_trace_columnar(stream, via_stream)       # columns() path
        save_trace_columnar(iter(stream), via_records)  # record path
        assert via_stream.read_bytes() == via_records.read_bytes()

    def test_shared_handle_cached_per_path(self, tmp_path):
        path = tmp_path / "t.coltrace"
        save_trace_columnar(self._records(50), path)
        first = open_trace(path)
        assert open_trace(path) is first
        assert open_trace(path, shared=False) is not first

    def test_pure_python_fallback_parity(self, tmp_path, monkeypatch):
        from repro.workloads import trace_io

        if not trace_io.HAVE_NUMPY:
            pytest.skip("already on the fallback path")
        records = self._records()
        with_numpy = tmp_path / "np.coltrace"
        save_trace_columnar(records, with_numpy)
        monkeypatch.setattr(trace_io, "HAVE_NUMPY", False)
        without = tmp_path / "plain.coltrace"
        save_trace_columnar(records, without)
        assert with_numpy.read_bytes() == without.read_bytes()
        trace = open_trace(with_numpy, shared=False)
        assert list(trace.window(40, 90)) == records[40:90]
        trace.close()

    def test_truncated_columns_rejected(self, tmp_path):
        path = tmp_path / "t.coltrace"
        save_trace_columnar(self._records(60), path)
        path.write_bytes(path.read_bytes()[:-11])
        with pytest.raises(TraceFormatError):
            open_trace(path, shared=False)

    def test_row_file_has_no_columnar_index(self, tmp_path):
        path = tmp_path / "t.trace"
        save_trace(self._records(20), path)
        with pytest.raises(TraceFormatError):
            open_trace(path, shared=False)
