"""Tests for trace save/load."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import TraceGenerator, load_workload
from repro.workloads.trace import LocalityProfile, TraceRecord
from repro.workloads.trace_io import (
    TraceFormatError,
    load_trace,
    save_trace,
    trace_stats,
)


class TestRoundTrip:
    def test_generated_trace_round_trips(self, tmp_path):
        workload = load_workload("aes", refs=1_000)
        records = list(workload.traces()[0])
        path = tmp_path / "aes.trace"
        assert save_trace(records, path) == len(records)
        assert list(load_trace(path)) == records

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(
        st.integers(0, 1 << 20), st.integers(0, 1 << 40), st.booleans()),
        max_size=60))
    def test_arbitrary_records_round_trip(self, raw):
        import tempfile
        from pathlib import Path

        records = [TraceRecord(instructions=i, address=a - a % 8,
                               is_write=w) for i, a, w in raw]
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "t.trace"
            save_trace(records, path)
            assert list(load_trace(path)) == records

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.trace"
        assert save_trace([], path) == 0
        assert list(load_trace(path)) == []


class TestValidation:
    def test_not_a_trace(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"definitely not a trace file")
        with pytest.raises(TraceFormatError):
            list(load_trace(path))

    def test_truncated_body(self, tmp_path):
        path = tmp_path / "t.trace"
        save_trace([TraceRecord(1, 64, False)] * 4, path)
        blob = path.read_bytes()
        path.write_bytes(blob[:-5])
        with pytest.raises(TraceFormatError):
            list(load_trace(path))

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_bytes(b"LPC")
        with pytest.raises(TraceFormatError):
            list(load_trace(path))


class TestStats:
    def test_stats_match_trace(self, tmp_path):
        profile = LocalityProfile(working_set_lines=512, hot_lines=64,
                                  write_fraction=0.5)
        records = list(TraceGenerator(profile, seed=3).records(500))
        path = tmp_path / "t.trace"
        save_trace(records, path)
        stats = trace_stats(path)
        assert stats["records"] == 500
        assert stats["reads"] + stats["writes"] == 500
        assert stats["write_fraction"] == pytest.approx(0.5, abs=0.1)
        assert stats["footprint_bytes"] > 0
