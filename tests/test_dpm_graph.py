"""Tests for dependency-derived dpm ordering."""

import pytest

from repro.pecos import DeviceDriver, DeviceState
from repro.pecos.dpm_graph import (
    DependencyCycleError,
    build_dpm_list,
    suspend_order,
)


def _drivers(*names):
    return [DeviceDriver(name, order=i) for i, name in enumerate(names)]


class TestSuspendOrder:
    def test_consumer_suspends_before_supplier(self):
        drivers = _drivers("pcie0", "eth0", "nvme0")
        order = suspend_order(drivers, [("eth0", "pcie0"),
                                        ("nvme0", "pcie0")])
        assert order.index("eth0") < order.index("pcie0")
        assert order.index("nvme0") < order.index("pcie0")

    def test_chain(self):
        drivers = _drivers("bus", "bridge", "leaf")
        order = suspend_order(drivers, [("bridge", "bus"),
                                        ("leaf", "bridge")])
        assert order == ["leaf", "bridge", "bus"]

    def test_unconstrained_keep_declaration_bias(self):
        drivers = _drivers("a", "b", "c")
        order = suspend_order(drivers, [])
        assert set(order) == {"a", "b", "c"}

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            suspend_order(_drivers("a"), [("a", "ghost")])

    def test_cycle_rejected_with_cycle_named(self):
        drivers = _drivers("a", "b")
        with pytest.raises(DependencyCycleError) as excinfo:
            suspend_order(drivers, [("a", "b"), ("b", "a")])
        assert "a" in str(excinfo.value)


class TestBuildDpmList:
    def test_suspend_resume_honours_dag(self):
        drivers = _drivers("pcie0", "eth0", "gpu0")
        dpm = build_dpm_list(drivers, [("eth0", "pcie0"),
                                       ("gpu0", "pcie0")])
        names = [d.name for d in dpm.drivers]
        assert names.index("eth0") < names.index("pcie0")
        # the chain still runs cleanly end to end
        dpm.suspend_all()
        assert dpm.all_state(DeviceState.SUSPENDED_NOIRQ)
        dpm.resume_all()
        assert dpm.all_state(DeviceState.ACTIVE)

    def test_deterministic(self):
        a = build_dpm_list(_drivers("x", "y", "z"), [("y", "x")])
        b = build_dpm_list(_drivers("x", "y", "z"), [("y", "x")])
        assert [d.name for d in a.drivers] == [d.name for d in b.drivers]
