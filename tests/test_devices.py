"""Tests for the raw device models (PRAM, DRAM, SRAM buffer)."""

import pytest

from repro.memory import AddressSpaceError, DRAMDevice, PRAMDevice, SRAMBuffer
from repro.memory.device import DeviceBusyError, PRAMTiming


class TestPRAMDevice:
    def test_read_latency(self):
        die = PRAMDevice(capacity=4096)
        complete, _ = die.read(0.0, 0, 32)
        assert complete == die.timing.read_ns

    def test_synchronous_write_waits_for_stability(self):
        die = PRAMDevice(capacity=4096)
        complete, stable = die.write(0.0, 0, size=32)
        assert complete == die.timing.write_occupancy_ns
        assert stable == die.timing.write_occupancy_ns
        # the die itself frees at the pulse, before the row is stable
        assert die.busy_until == die.timing.write_service_ns

    def test_early_return_write_completes_at_accept(self):
        die = PRAMDevice(capacity=4096)
        complete, occupied = die.write(0.0, 0, size=32, early_return=True)
        assert complete == die.timing.accept_ns
        assert occupied == die.timing.write_occupancy_ns

    def test_writes_pipeline_at_pulse_rate_across_rows(self):
        die = PRAMDevice(capacity=4096)
        die.write(0.0, 0, size=32)
        die.write(0.0, 2048, size=32)  # different 1 KB row
        assert die.busy_until == pytest.approx(
            2 * die.timing.write_service_ns)

    def test_overwrite_of_cooling_row_waits(self):
        die = PRAMDevice(capacity=4096)
        die.write(0.0, 0, size=32)
        _, stable = die.write(0.0, 32, size=32)  # same row: wait cooling
        assert stable == pytest.approx(2 * die.timing.write_occupancy_ns)

    def test_read_after_write_waits_out_cooling(self):
        die = PRAMDevice(capacity=4096)
        die.write(0.0, 0, size=32)
        complete, _ = die.read(10.0, 0, 32)  # same row
        assert complete == pytest.approx(
            die.timing.write_occupancy_ns + die.timing.read_ns
        )

    def test_read_of_other_row_waits_only_for_pulse(self):
        die = PRAMDevice(capacity=4096)
        die.write(0.0, 0, size=32)
        complete, _ = die.read(10.0, 2048, 32)
        assert complete == pytest.approx(
            die.timing.write_service_ns + die.timing.read_ns
        )

    def test_nonblocking_read_raises_when_busy(self):
        die = PRAMDevice(capacity=4096)
        die.write(0.0, 0, size=32)
        with pytest.raises(DeviceBusyError):
            die.read(10.0, 0, 32, blocking=False)

    def test_busy_wait(self):
        die = PRAMDevice(capacity=4096)
        die.write(0.0, 0, size=32)
        assert die.busy_wait(100.0) == pytest.approx(
            die.timing.write_service_ns - 100.0
        )
        assert die.busy_wait(100.0, 0) == pytest.approx(
            die.timing.write_occupancy_ns - 100.0
        )
        assert die.busy_wait(1e9) == 0.0

    def test_storage_roundtrip(self):
        die = PRAMDevice(capacity=4096)
        die.write(0.0, 64, data=b"\xAA" * 32)
        complete, data = die.read(2000.0, 64, 32)
        assert data == b"\xAA" * 32

    def test_storage_bounds(self):
        die = PRAMDevice(capacity=64)
        with pytest.raises(AddressSpaceError):
            die.write(0.0, 48, size=32)

    def test_write_requires_data_or_size(self):
        die = PRAMDevice(capacity=4096)
        with pytest.raises(ValueError):
            die.write(0.0, 0)

    def test_power_cycle_preserves_contents(self):
        die = PRAMDevice(capacity=4096)
        die.write(0.0, 0, data=b"\x11" * 32)
        die.power_cycle()
        assert die.busy_until == 0.0
        assert die.peek(0, 32) == b"\x11" * 32

    def test_wear_tracking_opt_in(self):
        die = PRAMDevice(capacity=4096)
        die.write(0.0, 0, size=32)
        assert die.max_wear() == 0
        die.track_wear = True
        die.write(0.0, 0, size=32)
        die.write(0.0, 0, size=32)
        assert die.max_wear() == 2

    def test_custom_timing(self):
        timing = PRAMTiming(read_ns=10.0, write_service_ns=100.0,
                            cooling_ns=50.0)
        die = PRAMDevice(capacity=64, timing=timing)
        complete, stable = die.write(0.0, 0, size=32)
        assert (complete, stable) == (150.0, 150.0)
        assert die.busy_until == 100.0


class TestDRAMDevice:
    def test_row_hit_faster_than_miss(self):
        bank = DRAMDevice(capacity=4096)
        hit, _ = bank.access(0.0, 0, 64, is_write=False, row_hit=True)
        bank.busy_until = 0.0
        miss, _ = bank.access(0.0, 0, 64, is_write=False, row_hit=False)
        assert hit < miss

    def test_write_storage_and_volatility(self):
        bank = DRAMDevice(capacity=4096)
        bank.access(0.0, 0, 4, is_write=True, row_hit=True, data=b"abcd")
        _, data = bank.access(100.0, 0, 4, is_write=False, row_hit=True)
        assert data == b"abcd"
        bank.power_cycle()
        _, data = bank.access(0.0, 0, 4, is_write=False, row_hit=True)
        assert data is None  # contents destroyed

    def test_refresh_stalls_bank(self):
        bank = DRAMDevice(capacity=4096)
        done = bank.refresh(0.0)
        assert done == bank.timing.refresh_ns
        complete, _ = bank.access(0.0, 0, 64, is_write=False, row_hit=True)
        assert complete >= done

    def test_accesses_serialize(self):
        bank = DRAMDevice(capacity=4096)
        first, _ = bank.access(0.0, 0, 64, is_write=False, row_hit=True)
        second, _ = bank.access(0.0, 64, 64, is_write=False, row_hit=True)
        assert second == pytest.approx(2 * bank.timing.row_hit_ns)


class TestSRAMBuffer:
    def test_lookup_miss_then_hit(self):
        sram = SRAMBuffer(frames=4)
        assert not sram.lookup(0)
        sram.fill(0)
        assert sram.lookup(0)
        assert sram.hits == 1 and sram.misses == 1

    def test_frame_granularity(self):
        sram = SRAMBuffer(frames=4, frame_bytes=256)
        sram.fill(0)
        assert sram.lookup(255)
        assert not sram.lookup(256)

    def test_lru_eviction(self):
        sram = SRAMBuffer(frames=2, frame_bytes=256)
        sram.fill(0)
        sram.fill(256)
        sram.lookup(0)  # make frame 0 MRU
        evicted = sram.fill(512)
        assert evicted == 256

    def test_invalidate_all(self):
        sram = SRAMBuffer(frames=2)
        sram.fill(0)
        sram.invalidate_all()
        assert sram.occupancy == 0
        assert not sram.lookup(0)

    def test_zero_frames_rejected(self):
        with pytest.raises(ValueError):
            SRAMBuffer(frames=0)
