"""Tests for sector-mode PMEM (BTT-style atomic block device)."""

import pytest

from repro.pmem import PMEMController, PMEMDIMM
from repro.pmem.sector import SECTOR_BYTES, SectorDevice, SectorError


def _device(sectors=16):
    pmem = PMEMController([PMEMDIMM(capacity=1 << 20) for _ in range(2)])
    return SectorDevice(pmem, sectors=sectors)


class TestBasics:
    def test_fresh_sectors_read_zero(self):
        dev = _device()
        assert dev.read_sector(0) == bytes(SECTOR_BYTES)

    def test_write_read_roundtrip(self):
        dev = _device()
        payload = bytes(range(256)) * 16
        dev.write_sector(3, payload)
        assert dev.read_sector(3) == payload

    def test_sectors_independent(self):
        dev = _device()
        dev.write_sector(1, b"\x11" * SECTOR_BYTES)
        dev.write_sector(2, b"\x22" * SECTOR_BYTES)
        assert dev.read_sector(1) == b"\x11" * SECTOR_BYTES
        assert dev.read_sector(2) == b"\x22" * SECTOR_BYTES

    def test_overwrite(self):
        dev = _device()
        dev.write_sector(0, b"\xAA" * SECTOR_BYTES)
        dev.write_sector(0, b"\xBB" * SECTOR_BYTES)
        assert dev.read_sector(0) == b"\xBB" * SECTOR_BYTES

    def test_bounds(self):
        dev = _device(sectors=4)
        with pytest.raises(SectorError):
            dev.read_sector(4)
        with pytest.raises(SectorError):
            dev.write_sector(-1, bytes(SECTOR_BYTES))

    def test_size_enforced(self):
        dev = _device()
        with pytest.raises(SectorError):
            dev.write_sector(0, b"short")

    def test_capacity_validated(self):
        pmem = PMEMController([PMEMDIMM(capacity=1 << 16)])
        with pytest.raises(SectorError):
            SectorDevice(pmem, sectors=1024)

    def test_ops_take_time(self):
        dev = _device()
        dev.write_sector(0, bytes(SECTOR_BYTES))
        assert dev.last_op_ns > 0
        dev.read_sector(0)
        assert dev.last_op_ns > 0


class TestAtomicity:
    def test_committed_write_survives_crash(self):
        dev = _device()
        payload = b"\xCD" * SECTOR_BYTES
        dev.write_sector(5, payload)
        dev.crash_and_reattach()
        assert dev.read_sector(5) == payload

    def test_torn_write_exposes_old_contents(self):
        dev = _device()
        old = b"\x01" * SECTOR_BYTES
        dev.write_sector(5, old)
        dev.write_sector(5, b"\xFF" * SECTOR_BYTES, crash_before_commit=True)
        dev.crash_and_reattach()
        assert dev.read_sector(5) == old  # never half-old/half-new

    def test_free_pool_rotates(self):
        dev = _device(sectors=4)
        initial_free = list(dev._free)
        dev.write_sector(0, bytes(SECTOR_BYTES))
        assert dev._free != initial_free
        # all blocks still distinct (no aliasing after rotation)
        blocks = dev._map + dev._free
        assert len(set(blocks)) == len(blocks)

    def test_many_writes_keep_map_bijective(self):
        dev = _device(sectors=8)
        for i in range(64):
            dev.write_sector(i % 8, bytes([i]) * SECTOR_BYTES)
        blocks = dev._map + dev._free
        assert len(set(blocks)) == len(blocks)
        for i in range(8):
            expected = 56 + i if 56 + i < 64 else i
        # last writes win
        for sector in range(8):
            last = max(i for i in range(64) if i % 8 == sector)
            assert dev.read_sector(sector) == bytes([last]) * SECTOR_BYTES

    def test_map_rebuilt_from_media(self):
        dev = _device()
        dev.write_sector(2, b"\x42" * SECTOR_BYTES)
        before_map = list(dev._map)
        dev._map = [0] * dev.geometry.sectors  # corrupt the volatile cache
        dev.crash_and_reattach()
        assert dev._map == before_map
