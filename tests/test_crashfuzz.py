"""Crash-consistency fuzzing campaigns as tests.

Each campaign kills the power at adversarial instants and checks the
component's consistency contract; an empty violation list is the pass
condition.  The pool campaign is the one that caught a real undo-log
termination bug during development — keep these honest.
"""

import pytest

from repro.analysis.crashfuzz import (
    fuzz_machine,
    fuzz_pool,
    fuzz_psm,
    fuzz_sector,
)
from repro.power.psu import SERVER_PSU


class TestCampaigns:
    def test_psm_consistency(self):
        report = fuzz_psm(trials=12, ops=100, seed=5)
        assert report.ok, report.violations[:3]
        assert report.crashes == 12

    def test_psm_consistency_alternate_seed(self):
        report = fuzz_psm(trials=8, ops=150, seed=77)
        assert report.ok, report.violations[:3]

    def test_pool_transaction_atomicity(self):
        report = fuzz_pool(trials=15, txs=8, seed=6)
        assert report.ok, report.violations[:3]

    def test_pool_atomicity_many_small_txs(self):
        report = fuzz_pool(trials=8, txs=20, seed=42)
        assert report.ok, report.violations[:3]

    def test_sector_no_torn_writes(self):
        report = fuzz_sector(trials=8, writes=25, seed=7)
        assert report.ok, report.violations[:3]

    def test_machine_ep_cut_all_or_nothing(self):
        report = fuzz_machine(trials=3, seed=8)
        assert report.ok, report.violations[:3]

    def test_machine_with_server_psu(self):
        report = fuzz_machine(trials=2, seed=9, psu=SERVER_PSU)
        assert report.ok, report.violations[:3]

    def test_report_summary(self):
        report = fuzz_sector(trials=2, writes=10, seed=1)
        assert "sector-device" in report.summary()
        assert "OK" in report.summary()


class TestFailedStopSemantics:
    def test_missed_holdup_forces_cold_boot(self):
        """If Stop exceeds the hold-up window, the commit must not count
        and recovery must be a cold boot — never a half-restored world."""
        from repro.core import Machine, PlatformConfig
        from repro.pecos import KernelConfig
        from repro.power.psu import PSUModel
        from repro.workloads import load_workload

        tiny_psu = PSUModel(name="weak", stored_j=0.00001,
                            max_holdup_ms=0.5, spec_holdup_ms=0.5)
        workload = load_workload("aes", refs=1_000)
        machine = Machine.for_workload("lightpc", workload)
        machine.run(workload)
        outcome = machine.power_fail(tiny_psu)
        assert not outcome.survived
        go = machine.recover()
        assert not go.warm  # cold boot, not a torn resume
