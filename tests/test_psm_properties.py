"""Property-based tests on the PSM's functional semantics.

hypothesis drives random operation sequences against a functional PSM
and checks the contracts everything above relies on:

* sequential consistency of the data path (reads observe the youngest
  write, flushed or not);
* flush is idempotent and monotone;
* the Start-Gap mapping stays a bijection under any write pattern;
* wear-register capture/restore commutes with arbitrary traffic.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.memory import MemoryOp, MemoryRequest
from repro.ocpmem import PSM, PSMConfig

LINES = 64

line_st = st.integers(0, LINES - 1)
value_st = st.integers(1, 255)
op_st = st.one_of(
    st.tuples(st.just("write"), line_st, value_st),
    st.tuples(st.just("read"), line_st, st.just(0)),
    st.tuples(st.just("flush"), st.just(0), st.just(0)),
)


def _psm(threshold=25):
    return PSM(PSMConfig(lines_per_dimm=256, wear_threshold=threshold),
               functional=True)


def _value(tag: int) -> bytes:
    return bytes([tag]) * 64


class TestDataPathProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(op_st, min_size=1, max_size=60))
    def test_reads_observe_youngest_write(self, ops):
        psm = _psm()
        shadow: dict[int, int] = {}
        t = 0.0
        for kind, line, value in ops:
            if kind == "write":
                response = psm.access(MemoryRequest(
                    MemoryOp.WRITE, address=line * 64,
                    data=_value(value), time=t))
                shadow[line] = value
                t = response.complete_time
            elif kind == "flush":
                t = psm.flush(t)
            else:
                response = psm.access(MemoryRequest(
                    MemoryOp.READ, address=line * 64, time=t))
                t = response.complete_time
                expected = _value(shadow[line]) if line in shadow else bytes(64)
                assert response.data == expected, (kind, line)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(line_st, value_st), min_size=1, max_size=40))
    def test_flush_then_power_cycle_preserves_everything(self, writes):
        psm = _psm()
        shadow: dict[int, int] = {}
        t = 0.0
        for line, value in writes:
            response = psm.access(MemoryRequest(
                MemoryOp.WRITE, address=line * 64, data=_value(value),
                time=t))
            shadow[line] = value
            t = response.complete_time
        t = psm.flush(t)
        blob = psm.capture_registers()
        psm.power_cycle()
        psm.restore_wear_registers(blob)
        for line, value in shadow.items():
            response = psm.access(MemoryRequest(
                MemoryOp.READ, address=line * 64, time=0.0))
            assert response.data == _value(value)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(line_st, value_st), min_size=1, max_size=20))
    def test_flush_idempotent(self, writes):
        psm = _psm()
        t = 0.0
        for line, value in writes:
            response = psm.access(MemoryRequest(
                MemoryOp.WRITE, address=line * 64, data=_value(value),
                time=t))
            t = response.complete_time
        first = psm.flush(t)
        second = psm.flush(first)
        assert second >= first
        # nothing new drained on the second flush
        assert psm.media_line_writes == psm.counters()["media_line_writes"]


class TestWearProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(line_st, min_size=1, max_size=300), st.integers(2, 50))
    def test_mapping_stays_bijective(self, lines, threshold):
        psm = _psm(threshold=threshold)
        t = 0.0
        for line in lines:
            response = psm.access(MemoryRequest(
                MemoryOp.WRITE, address=line * 64, time=t))
            t = response.complete_time
        mapped = {psm.wear.map(l) for l in range(psm.wear.lines)}
        assert len(mapped) == psm.wear.lines

    @settings(max_examples=20, deadline=None)
    @given(st.lists(line_st, min_size=1, max_size=150))
    def test_register_roundtrip_commutes_with_traffic(self, lines):
        psm = _psm(threshold=7)
        t = 0.0
        for line in lines:
            response = psm.access(MemoryRequest(
                MemoryOp.WRITE, address=line * 64, time=t))
            t = response.complete_time
        expected = {l: psm.wear.map(l) for l in range(16)}
        blob = psm.capture_registers()
        psm.power_cycle()
        psm.restore_wear_registers(blob)
        assert {l: psm.wear.map(l) for l in range(16)} == expected
