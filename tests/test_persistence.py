"""Tests for the persistence mechanisms (SysPC, A/S-CheckPC, SnG wrapper)."""

import pytest

from repro.pecos import Kernel, SnG
from repro.persistence import (
    ACheckPC,
    ExecutionProfile,
    LightPCSnG,
    SCheckPC,
    SysPC,
)


def _profile(wall_s=2.0, instructions=2e9, footprint=64 << 20,
             dirty_rate=50e6):
    return ExecutionProfile(
        workload="test",
        wall_ns=wall_s * 1e9,
        instructions=instructions,
        footprint_bytes=footprint,
        dirty_bytes_per_s=dirty_rate,
    )


class TestExecutionProfile:
    def test_cycles(self):
        p = _profile(wall_s=1.0)
        assert p.cycles == pytest.approx(1.6e9)

    def test_scaled(self):
        p = _profile(wall_s=1.0).scaled(10.0)
        assert p.wall_ns == pytest.approx(10e9)
        assert p.instructions == pytest.approx(2e10)
        assert p.footprint_bytes == 64 << 20  # footprint does not scale

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            _profile().scaled(0.0)


class TestSysPC:
    def test_no_runtime_interference(self):
        outcome = SysPC().outcome(_profile())
        assert outcome.execution_ns == _profile().wall_ns

    def test_flush_is_full_image(self):
        mech = SysPC()
        p = _profile()
        expected = mech.image_bytes(p) / mech.dump_bw * 1e9
        assert mech.flush_latency_ns(p) == pytest.approx(expected)

    def test_flush_grows_with_footprint(self):
        mech = SysPC()
        small = mech.flush_latency_ns(_profile(footprint=1 << 20))
        big = mech.flush_latency_ns(_profile(footprint=1 << 30))
        assert big > small

    def test_cannot_survive_holdup_overrun(self):
        assert not SysPC().outcome(_profile()).survives_holdup_overrun

    def test_flush_dwarfs_holdup(self):
        from repro.power.psu import ATX_PSU
        flush_ms = SysPC().flush_latency_ns(_profile()) / 1e6
        assert flush_ms > 20 * ATX_PSU.spec_holdup_ms


class TestACheckPC:
    def test_control_scales_with_instructions(self):
        mech = ACheckPC()
        small = mech.outcome(_profile(instructions=1e8)).control_ns
        big = mech.outcome(_profile(instructions=1e10)).control_ns
        assert big == pytest.approx(100 * small)

    def test_nothing_to_flush_at_fail(self):
        assert ACheckPC().outcome(_profile()).flush_at_fail_ns == 0.0

    def test_recovery_needs_cold_reboot(self):
        outcome = ACheckPC().outcome(_profile())
        assert outcome.recover_ns >= ACheckPC().cold_reboot_ns

    def test_slowest_mechanism(self):
        p = _profile()
        a = ACheckPC().outcome(p).total_ns
        s = SysPC().outcome(p).total_ns
        sc = SCheckPC().outcome(p).total_ns
        assert a > s and a > sc


class TestSCheckPC:
    def test_periodic_dumps_counted(self):
        mech = SCheckPC(period_ns=1e9)
        assert mech.periods(_profile(wall_s=5.0)) == pytest.approx(5.0)

    def test_dump_capped_at_footprint(self):
        mech = SCheckPC()
        p = _profile(footprint=1 << 20, dirty_rate=1e12)
        assert mech.dump_bytes_per_period(p) == 1 << 20

    def test_interference_slows_execution(self):
        outcome = SCheckPC().outcome(_profile())
        assert outcome.execution_ns > _profile().wall_ns

    def test_flush_is_one_period(self):
        mech = SCheckPC()
        p = _profile()
        assert mech.flush_latency_ns(p) == pytest.approx(
            mech.dump_bytes_per_period(p) / mech.dump_bw * 1e9)

    def test_between_syspc_and_acheckpc(self):
        # Paper ordering (SysPC < S-CheckPC < A-CheckPC) holds at
        # full-run magnitudes, where SysPC's one-time image dump
        # amortizes; a seconds-long run would let it dominate.
        p = _profile(wall_s=40.0, instructions=4e10, dirty_rate=120e6)
        total_s = SysPC().outcome(p).total_ns
        total_sc = SCheckPC().outcome(p).total_ns
        total_a = ACheckPC().outcome(p).total_ns
        assert total_s < total_sc < total_a


class TestLightPCSnG:
    def _mechanism(self):
        kernel = Kernel()
        kernel.populate()
        sng = SnG(kernel, flush_port=lambda t: t + 2_000.0,
                  dirty_lines_fn=lambda: [256] * 8)
        stop = sng.stop()
        go = sng.go()
        return LightPCSnG.from_reports(stop, go)

    def test_flush_is_stop_latency(self):
        mech = self._mechanism()
        assert mech.flush_latency_ns(_profile()) == mech.stop_ns
        assert mech.stop_ns < 16e6  # inside the ATX spec window

    def test_tiny_control_overhead(self):
        mech = self._mechanism()
        outcome = mech.outcome(_profile(wall_s=10.0))
        assert outcome.control_ns / outcome.execution_ns < 0.01

    def test_fastest_overall(self):
        mech = self._mechanism()
        p = _profile()
        light = mech.outcome(p).total_ns + mech.outcome(p).recover_ns
        for baseline in (SysPC(), ACheckPC(), SCheckPC()):
            other = baseline.outcome(p)
            assert light < other.total_ns + other.recover_ns

    def test_energy_tiny_vs_syspc(self):
        mech = self._mechanism()
        p = _profile()
        assert mech.outcome(p).flush_energy_j < SysPC().outcome(p).flush_energy_j / 50
