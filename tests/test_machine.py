"""Integration tests for the Machine (platform life cycle)."""

import pytest

from repro.core import Machine, PlatformConfig
from repro.power.psu import ATX_PSU, SERVER_PSU
from repro.workloads import load_workload


@pytest.fixture(scope="module")
def workload():
    return load_workload("aes", refs=4000)


class TestBuild:
    def test_unknown_platform_rejected(self):
        with pytest.raises(ValueError):
            Machine("pentium")

    def test_legacy_uses_dram(self):
        from repro.memory import DRAMSubsystem
        assert isinstance(Machine("legacy").backend, DRAMSubsystem)
        assert Machine("legacy").sng is None

    def test_lightpc_uses_psm(self):
        from repro.ocpmem import PSM
        machine = Machine("lightpc")
        assert isinstance(machine.backend, PSM)
        assert machine.backend.config.ecc_reconstruction
        assert machine.sng is not None

    def test_lightpc_b_disables_psm_features(self):
        machine = Machine("lightpc_b")
        assert not machine.backend.config.ecc_reconstruction
        assert not machine.backend.config.write_aggregation

    def test_for_workload_sizes_memory(self):
        big = load_workload("redis", refs=100)
        machine = Machine.for_workload("lightpc", big)
        footprint = big.spec.profile.working_set_lines * 64 * big.threads
        assert machine.backend.capacity >= footprint

    def test_sized_for_is_idempotent_when_large_enough(self):
        config = PlatformConfig()
        assert config.sized_for(1024) is config


class TestRun(object):
    def test_run_produces_result(self, workload):
        machine = Machine.for_workload("lightpc", workload)
        result = machine.run(workload)
        assert result.platform == "lightpc"
        assert result.workload == "aes"
        assert result.wall_ns > 0
        assert 0 < result.ipc < 4
        assert result.total_w > 0
        assert 0 <= result.cache_read_hit <= 1

    def test_kernel_noise_adds_traffic(self, workload):
        noisy = Machine.for_workload("lightpc", workload)
        noisy.run(workload)
        quiet_config = PlatformConfig(kernel_noise=False)
        quiet = Machine.for_workload("lightpc", workload, quiet_config)
        quiet.run(workload)
        noisy_refs = sum(
            s.reads + s.writes for s in noisy.runs[0].complex_result.per_core)
        quiet_refs = sum(
            s.reads + s.writes for s in quiet.runs[0].complex_result.per_core)
        assert noisy_refs > quiet_refs

    def test_power_platforms_differ(self, workload):
        legacy = Machine.for_workload("legacy", workload)
        light = Machine.for_workload("lightpc", workload)
        lw = legacy.run(workload).total_w
        pw = light.run(workload).total_w
        assert pw < lw * 0.45


class TestPowerFailure:
    def test_lightpc_survives_atx(self, workload):
        machine = Machine.for_workload("lightpc", workload)
        machine.run(workload)
        outcome = machine.power_fail(ATX_PSU)
        assert outcome.survived
        assert outcome.stop is not None
        assert outcome.margin_ns > 0

    def test_legacy_loses_dram(self, workload):
        machine = Machine.for_workload("legacy", workload)
        machine.run(workload)
        outcome = machine.power_fail(ATX_PSU)
        assert not outcome.survived
        assert "DRAM" in outcome.lost

    def test_run_while_off_rejected(self, workload):
        machine = Machine.for_workload("lightpc", workload)
        machine.run(workload)
        machine.power_fail(ATX_PSU)
        with pytest.raises(RuntimeError):
            machine.run(workload)

    def test_double_power_fail_rejected(self, workload):
        machine = Machine.for_workload("lightpc", workload)
        machine.power_fail(ATX_PSU)
        with pytest.raises(RuntimeError):
            machine.power_fail(ATX_PSU)

    def test_recover_resumes_lightpc(self, workload):
        machine = Machine.for_workload("lightpc", workload)
        machine.run(workload)
        machine.power_fail(SERVER_PSU)
        go = machine.recover()
        assert go.warm
        assert machine.sng.verify_resumed_state()
        # machine is usable again
        result = machine.run(workload)
        assert result.wall_ns > 0

    def test_recover_cold_boots_legacy(self, workload):
        machine = Machine.for_workload("legacy", workload)
        machine.run(workload)
        machine.power_fail(ATX_PSU)
        assert machine.recover() is None
        assert machine.kernel.task_count() > 0

    def test_recover_while_on_rejected(self, workload):
        machine = Machine.for_workload("lightpc", workload)
        with pytest.raises(RuntimeError):
            machine.recover()


class TestFunctionalCrashConsistency:
    def test_flushed_data_survives_power_fail(self):
        from repro.memory import MemoryOp, MemoryRequest
        workload = load_workload("aes", refs=200)
        machine = Machine.for_workload("lightpc", workload, functional=True)
        payload = bytes(range(64))
        machine.backend.access(MemoryRequest(
            MemoryOp.WRITE, address=0, data=payload, time=0.0))
        machine.power_fail(ATX_PSU)  # SnG hits the flush port
        machine.recover()
        read = machine.backend.access(MemoryRequest(
            MemoryOp.READ, address=0, time=0.0))
        assert read.data == payload

    def test_wear_registers_survive_ep_cut(self):
        workload = load_workload("aes", refs=200)
        machine = Machine.for_workload("lightpc", workload, functional=True)
        from repro.memory import MemoryOp, MemoryRequest
        for i in range(120):
            machine.backend.access(MemoryRequest(
                MemoryOp.WRITE, address=(i % 5) * 64, time=i * 30.0))
        before = machine.backend.wear.registers()
        machine.power_fail(ATX_PSU)
        machine.recover()
        after = machine.backend.wear.registers()
        assert after.write_count == before.write_count
        assert after.start == before.start and after.gap == before.gap


class TestWearRegisterVolatility:
    def test_power_cycle_without_ep_cut_loses_wear_registers(self):
        """Without SnG's EP-cut, the PSM's wear registers reset — and the
        Start-Gap mapping with them (paper §VIII motivates persisting
        them)."""
        from repro.memory import MemoryOp, MemoryRequest
        from repro.ocpmem import PSM, PSMConfig

        psm = PSM(PSMConfig(lines_per_dimm=512), functional=True)
        for i in range(250):  # enough writes to move the gap
            psm.access(MemoryRequest(
                MemoryOp.WRITE, address=(i % 9) * 64, time=i * 20.0))
        before = psm.wear.registers()
        assert before.gap_moves if hasattr(before, "gap_moves") else True
        psm.power_cycle()  # no SnG capture: raw power loss
        after = psm.wear.registers()
        assert after.write_count == 0
        assert after.start == 0

    def test_capture_restore_roundtrip(self):
        from repro.memory import MemoryOp, MemoryRequest
        from repro.ocpmem import PSM, PSMConfig

        psm = PSM(PSMConfig(lines_per_dimm=512))
        for i in range(250):
            psm.access(MemoryRequest(
                MemoryOp.WRITE, address=(i % 9) * 64, time=i * 20.0))
        blob = psm.capture_registers()
        before = psm.wear.registers()
        psm.power_cycle()
        psm.restore_wear_registers(blob)
        assert psm.wear.registers() == before


class TestRepeatedPowerCycles:
    def test_ten_outage_soak(self):
        """The platform survives repeated outage/recovery cycles; wear
        bookkeeping accumulates monotonically across all of them."""
        from repro.workloads import load_workload

        workload = load_workload("aes", refs=1_500)
        machine = Machine.for_workload("lightpc", workload)
        last_writes = -1
        for cycle in range(10):
            result = machine.run(workload)
            assert result.wall_ns > 0
            outcome = machine.power_fail(ATX_PSU)
            assert outcome.survived, f"cycle {cycle} missed the window"
            go = machine.recover()
            assert go.warm and machine.sng.verify_resumed_state()
            writes = machine.backend.wear.write_count
            assert writes > last_writes
            last_writes = writes

    def test_cache_dump_writes_back_through_the_ep_cut(self):
        """Data living only in a dirty CPU cacheline at the cut must be
        readable from OC-PMEM after recovery (SnG's cache dump)."""
        from repro.memory import MemoryOp, MemoryRequest
        from repro.workloads import load_workload

        workload = load_workload("aes", refs=200)
        machine = Machine.for_workload("lightpc", workload, functional=True)
        core = machine.complex.cores[0]
        # a store that stays dirty in the D$ (no eviction pressure)
        payload_address = 0x2000
        core.cache.access(payload_address, is_write=True)
        machine.backend.access(MemoryRequest(
            MemoryOp.WRITE, address=payload_address,
            data=b"\x7E" * 64, time=0.0))
        # the line is dirty in core 0's cache at the power event
        assert core.cache.dirty_count() >= 1
        machine.power_fail(ATX_PSU)
        assert core.cache.dirty_count() == 0  # dumped at the cut
        machine.recover()
        read = machine.backend.access(MemoryRequest(
            MemoryOp.READ, address=payload_address, time=0.0))
        assert read.data == b"\x7E" * 64
