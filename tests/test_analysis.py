"""Structural tests for the experiment drivers and table rendering."""

import pytest

from repro.analysis import (
    figure2b,
    figure4,
    figure8,
    figure14,
    figure17,
    figure20,
    figure21,
    figure22,
    full_run_scale,
    platform_matrix,
    render_result,
    table1,
    table2,
)
from repro.workloads import load_workload

SMALL = ("aes", "mcf")


@pytest.fixture(scope="module")
def small_matrix():
    return platform_matrix(SMALL, refs=4000)


class TestMatrix:
    def test_matrix_covers_all_platform_pairs(self, small_matrix):
        assert set(small_matrix) == {
            (w, p) for w in SMALL for p in ("legacy", "lightpc_b", "lightpc")
        }

    def test_matrix_cached(self):
        a = platform_matrix(SMALL, refs=4000)
        b = platform_matrix(SMALL, refs=4000)
        assert a is b

    def test_full_run_scale(self):
        w = load_workload("aes", refs=1000)
        scale = full_run_scale(w, 1000)
        assert scale == pytest.approx((21.7e6 + 4.5e6) / 1000)


class TestDrivers:
    def test_figure2b_structure(self):
        result = figure2b(samples=300)
        assert result.experiment == "fig2b"
        assert len(result.rows) == 6
        assert "dimm_read_vs_bare" in result.notes

    def test_figure4_structure(self):
        result = figure4(workloads=("aes",), refs=2000)
        assert [row[0] for row in result.rows] == [
            "dram_only", "mem_mode", "app_mode", "object_mode", "trans_mode"]
        assert result.notes["trans_vs_dram_latency"] > 1.0

    def test_figure8_structure(self):
        result = figure8()
        cases = result.column("case")
        assert "sng/busy" in cases and "holdup/atx/busy" in cases
        assert result.notes["busy_stop_ms"] < result.notes["atx_spec_ms"]

    def test_figure14_trend(self):
        result = figure14(workloads=("redis",), refs=3000,
                          frequencies=(0.8, 1.6))
        assert len(result.rows) == 2
        # higher frequency => larger memory-stall share
        assert result.rows[1][2] > result.rows[0][2]

    def test_figure17_structure(self):
        result = figure17(elements=4000)
        assert [row[0] for row in result.rows] == [
            "copy", "scale", "add", "triad"]
        assert 0.2 < result.notes["mean_ratio"] <= 1.4

    def test_figure20_structure(self):
        result = figure20(workload="aes", refs=4000)
        by = result.row_by("syspc")
        assert "syspc" in by and "lightpc_stop" in by
        assert result.notes["syspc_vs_atx"] > 1.0
        assert result.notes["lightpc_vs_atx"] < 1.0

    def test_figure21_phases(self):
        result = figure21(workload="aes", refs=4000)
        mechanisms = {row[0] for row in result.rows}
        assert mechanisms == {"lightpc", "syspc", "acheckpc", "scheckpc"}
        phases = [row[1] for row in result.rows if row[0] == "lightpc"]
        assert phases == ["execute", "flush", "off", "recover", "resume"]

    def test_figure22_notes(self):
        result = figure22(core_counts=(8, 32, 64),
                          cache_sizes=(16 << 10, 40 << 20))
        assert result.notes["cores32_16kb_fits_atx"] == 1.0
        assert result.notes["cores64_40mb_fits_server"] == 1.0
        assert result.notes["cores64_16kb_fits_atx"] == 0.0

    def test_table1_echoes_config(self):
        result = table1()
        by = result.row_by("cores")
        assert by["cores"][1] == 8

    def test_table2_measures_back(self):
        result = table2(SMALL, refs=4000)
        assert len(result.rows) == len(SMALL)
        for row in result.rows:
            assert row[2] > 0  # reads measured


class TestRendering:
    def test_render_contains_all_rows(self):
        result = figure8()
        text = render_result(result)
        assert result.title in text
        for row in result.rows:
            assert str(row[0]) in text

    def test_render_notes_included(self):
        text = render_result(figure8())
        assert "busy_stop_ms" in text

    def test_bool_formatting(self):
        result = figure22(core_counts=(8,), cache_sizes=(16 << 10,))
        text = render_result(result)
        assert "yes" in text or "no" in text
