"""Epoch engine: forced-boundary identity and exactness escape hatches.

Three contracts keep the analytical fast path honest:

* **Forced boundaries degenerate to exact.**  With ``probe_interval=1``
  every window replays for real, so the epoch engine must be
  byte-identical to the extent engine it extends — RunResult, stats
  tree and wear registers — across seeds (the hypothesis leg) and on a
  figure-driver cell (the golden leg).
* **Fault points always land on exact traffic.**  An armed injector
  anywhere in the port chain disables skipping for the whole drain.
* **A persistence cut mid-epoch replays the pending block exactly.**
  The white-box regression steps a session into skip mode, lands a
  ``flush_cache`` with windows pending, and diffs clock, stats, cache
  and backend state against a fully exact drain of the same prefix —
  no analytically-skipped dirty line may be missing from the dump.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Machine
from repro.core.config import PlatformConfig
from repro.cpu.core import Core
from repro.engine import base as engine_base
from repro.engine.epoch import EpochEngine, EpochReport, _armed_fault
from repro.engine.extent import ExtentEngine
from repro.faults.compound import CompoundFaultInjector
from repro.memory.port import BandwidthThrottle, FaultInjector, LatencyTap
from repro.ocpmem.psm import PSM
from repro.sim.stats import StatsRegistry
from repro.workloads import load_workload
from repro.workloads.trace import LocalityProfile, TraceGenerator

WINDOW = 512


def _forced_boundary(window: int = WINDOW) -> EpochEngine:
    """Every window probes: the degenerate, provably-exact configuration."""
    return EpochEngine(window=window, stable_windows=2, probe_interval=1,
                       min_windows=2)


def _quiet_config() -> PlatformConfig:
    """Single-trace machines: the whole drain goes through the engine."""
    return PlatformConfig(kernel_noise=False)


def _run(workload_name: str, refs: int, seed: int, engine):
    workload = load_workload(workload_name, refs=refs, seed=seed)
    machine = Machine.for_workload("lightpc", workload,
                                   config=_quiet_config(), engine=engine)
    return machine.run(workload), machine


def _comparable(result) -> dict:
    fields = dataclasses.asdict(result)
    fields.pop("engine")
    fields.pop("epoch")
    return fields


def _backend_state(machine):
    registry = StatsRegistry()
    machine.backend.register_stats(registry.scoped("memory"))
    return (registry.flat(), machine.backend.counters(),
            machine.backend.capture_registers())


class TestForcedBoundaryIdentity:
    def test_degenerates_to_the_extent_engine(self):
        exact, exact_machine = _run("mcf", 12_000, 7, ExtentEngine(WINDOW))
        epoch, epoch_machine = _run("mcf", 12_000, 7, _forced_boundary())
        assert epoch.engine == "epoch"
        assert _comparable(epoch) == _comparable(exact)
        assert epoch_machine.stats_tree() == exact_machine.stats_tree()
        assert _backend_state(epoch_machine) == _backend_state(exact_machine)

    def test_forced_probes_never_skip(self):
        result, _ = _run("mcf", 12_000, 7, _forced_boundary())
        assert result.epoch is not None
        assert result.epoch["windows_skipped"] == 0
        assert result.epoch["records_skipped"] == 0
        assert result.epoch["counter_deltas"] == {}
        assert result.epoch["records_exact"] == 12_000

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 2**16), workload=st.sampled_from(
        ("mcf", "aes", "gcc")))
    def test_stats_tree_and_wear_identity_across_seeds(self, seed, workload):
        exact, exact_machine = _run(workload, 6_000, seed,
                                    ExtentEngine(WINDOW))
        epoch, epoch_machine = _run(workload, 6_000, seed,
                                    _forced_boundary())
        assert _comparable(epoch) == _comparable(exact)
        assert epoch_machine.stats_tree() == exact_machine.stats_tree()
        assert epoch_machine.backend.capture_registers() == \
            exact_machine.backend.capture_registers()

    def test_figure_driver_cell_is_golden_identical(self):
        """Satellite: a platform_matrix cell under the forced-boundary
        epoch engine reproduces the default engine's figure golden."""
        from repro.analysis.experiments import platform_matrix

        register = engine_base.register_engine
        register("epoch-forced", _forced_boundary)
        try:
            baseline = platform_matrix(("aes",), refs=6_000)
            forced = platform_matrix(("aes",), refs=6_000,
                                     engine="epoch-forced")
        finally:
            engine_base._ENGINE_FACTORIES.pop("epoch-forced")
        for cell, result in baseline.items():
            assert _comparable(forced[cell]) == _comparable(result), cell


class TestEpochAcceleration:
    def test_stationary_run_skips_and_stays_close(self):
        engine = EpochEngine(window=256, stable_windows=3, probe_interval=8,
                             tolerance=0.5, min_windows=6)
        exact, _ = _run("mcf", 30_000, 11, ExtentEngine(256))
        epoch, _ = _run("mcf", 30_000, 11, engine)
        report = epoch.epoch
        assert report is not None
        assert report["phases"] >= 1
        assert report["windows_skipped"] > 0
        assert report["records_skipped"] > 0
        total = report["records_skipped"] + report["records_exact"]
        assert total == 30_000 - 30_000 % 256 + report["records_exact"] % 256 \
            or total <= 30_000
        # Analytical settlement is an estimate; it must stay close.
        assert epoch.wall_ns == pytest.approx(exact.wall_ns, rel=0.15)
        assert epoch.instructions == pytest.approx(exact.instructions,
                                                   rel=0.15)
        assert epoch.energy_j == pytest.approx(exact.energy_j, rel=0.2)

    def test_skipped_counters_fold_into_run_counters(self):
        engine = EpochEngine(window=256, stable_windows=3, probe_interval=8,
                             tolerance=0.5, min_windows=6)
        exact, _ = _run("mcf", 30_000, 11, ExtentEngine(256))
        epoch, _ = _run("mcf", 30_000, 11, engine)
        assert epoch.epoch["counter_deltas"], \
            "skipped traffic produced no counter estimate"
        for key, exact_value in exact.backend_counters.items():
            if "ratio" in key or not isinstance(exact_value, (int, float)):
                continue
            if exact_value >= 100:
                assert epoch.backend_counters[key] == pytest.approx(
                    exact_value, rel=0.25), key

    def test_report_round_trip(self):
        report = EpochReport(windows_skipped=3, records_skipped=768,
                             windows_exact=9, records_exact=2304, phases=1,
                             boundaries=2, windows_forced_exact=1,
                             counter_deltas={"writes": 12.0})
        payload = report.as_dict()
        assert payload["windows_skipped"] == 3
        assert payload["counter_deltas"] == {"writes": 12.0}
        # as_dict copies: mutating the payload leaves the report alone
        payload["counter_deltas"]["writes"] = 0.0
        assert report.counter_deltas["writes"] == 12.0


def _stationary_source(count: int, seed: int = 13):
    """A size-hinted stationary trace over a PSM-sized footprint."""

    class _Source:
        stationary = True

        def __init__(self):
            self.count = count
            self._generator = TraceGenerator(
                LocalityProfile(working_set_lines=2_048), seed=seed)

        def __iter__(self):
            return self._generator.records(self.count)

    return _Source()


class TestExactnessEscapeHatches:
    def test_armed_injector_detected_through_the_chain(self):
        psm = PSM()
        assert not _armed_fault(psm)
        idle = LatencyTap(FaultInjector(psm, crash_at_op=None), name="t")
        assert not _armed_fault(idle)
        armed = LatencyTap(
            BandwidthThrottle(FaultInjector(PSM(), crash_at_op=100),
                              bytes_per_ns=2.0), name="t")
        assert _armed_fault(armed)
        compound = CompoundFaultInjector(PSM(), cuts=[50, 90])
        assert _armed_fault(compound)
        drained = CompoundFaultInjector(PSM(), cuts=[])
        assert not _armed_fault(drained)

    def test_armed_injector_forces_exact_drain(self):
        engine = EpochEngine(window=128, min_windows=2)
        source = _stationary_source(4_096)
        core = Core(0, FaultInjector(PSM(), crash_at_op=10**9),
                    engine=engine)
        session = engine.open_session(core, iter(source), source=source)
        assert not session.analytic
        engine.close_session(core)

    def test_unsized_or_drifting_sources_drain_exactly(self):
        engine = EpochEngine(window=128, min_windows=2)
        core = Core(0, PSM(), engine=engine)

        class Unsized:
            stationary = True

        source = _stationary_source(4_096)
        session = engine.open_session(core, iter(source), source=Unsized())
        assert not session.analytic       # no count/refs hint
        engine.close_session(core)

        class Sized:
            count = 4_096                 # no stationary marker

        session = engine.open_session(core, iter(source), source=Sized())
        assert not session.analytic
        engine.close_session(core)

        short = _stationary_source(192)   # under min_windows * window
        session = engine.open_session(core, iter(short), source=short)
        assert not session.analytic
        engine.close_session(core)


class TestMidEpochPersistenceCut:
    """Satellite regression: a cut with windows pending forces exact
    replay from the last phase boundary before the cache dump."""

    COUNT = 24_576  # 48 windows of 512

    def _epoch_engine(self):
        # Wide tolerance: this test pins the cut mechanics, not drift
        # detection, so skip mode must engage deterministically.
        return EpochEngine(window=WINDOW, stable_windows=3,
                           probe_interval=16, tolerance=0.9, min_windows=4)

    def _core_state(self, core):
        registry = StatsRegistry()
        core.backend.register_stats(registry.scoped("memory"))
        return (
            core.now, dataclasses.asdict(core.stats),
            core.cache.read_hits.hits, core.cache.read_hits.total,
            core.cache.write_hits.hits, core.cache.write_hits.total,
            registry.flat(), core.backend.counters(),
            core.backend.capture_registers(),
        )

    def test_cut_mid_epoch_replays_pending_windows_exactly(self):
        engine = self._epoch_engine()
        source = _stationary_source(self.COUNT)
        core = Core(0, PSM(), engine=engine)
        session = engine.open_session(core, iter(source), source=source)
        steps = 0
        while session.pending < 4:
            assert session.step(), "drain ended before skip mode engaged"
            steps += 1
            assert steps < self.COUNT // WINDOW
        assert session.skipping
        pending = session.pending
        prefix = engine._report.records_exact + pending * WINDOW

        count, dirty = engine.flush_cache(core)
        # The pending block was generated and replayed for real...
        assert session.pending == 0
        assert engine._report.windows_forced_exact == pending
        assert engine._report.windows_skipped == 0
        # ...and the flush perturbed the cache, so the phase recalibrates.
        assert not session.skipping
        assert session.history == []

        # Reference: a fully exact drain of the same prefix, same cut.
        reference = Core(0, PSM(), engine=ExtentEngine(WINDOW))
        records = iter(_stationary_source(self.COUNT))
        consumed = 0
        while consumed < prefix:
            chunk = [next(records) for _ in range(WINDOW)]
            reference.execute_window(chunk)
            consumed += WINDOW
        ref_count, ref_dirty = reference.engine.flush_cache(reference)

        assert count == ref_count
        assert sorted(dirty) == sorted(ref_dirty)
        flush, ref_flush = core.last_flush_report, reference.last_flush_report
        assert flush.lines == ref_flush.lines
        assert flush.extents == ref_flush.extents
        assert flush.start_ns == ref_flush.start_ns
        assert flush.done_ns == ref_flush.done_ns
        assert flush.blocked_ns == ref_flush.blocked_ns
        assert flush.latencies() == ref_flush.latencies()
        assert self._core_state(core) == self._core_state(reference)

    def test_drain_after_cut_recalibrates_and_finishes(self):
        engine = self._epoch_engine()
        source = _stationary_source(self.COUNT)
        core = Core(0, PSM(), engine=engine)
        session = engine.open_session(core, iter(source), source=source)
        while session.pending < 4:
            assert session.step()
        engine.flush_cache(core)
        while session.step():
            pass
        engine.close_session(core)
        report = engine.take_run_report()
        total = (report.records_exact + report.records_skipped)
        assert total == self.COUNT
        assert report.windows_forced_exact >= 4

    def test_clean_flush_without_pending_is_undisturbed(self):
        engine = self._epoch_engine()
        source = _stationary_source(2_048)
        core = Core(0, PSM(), engine=engine)
        engine.drain(core, iter(source), source=source)
        count, dirty = engine.flush_cache(core)   # no session, no pending
        assert count == len(dirty)
        assert engine._report.windows_forced_exact == 0
