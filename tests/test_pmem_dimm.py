"""Tests for the conventional PMEM DIMM complex (LSQ, caches, media)."""

import pytest

from repro.memory import MemoryOp, MemoryRequest
from repro.pmem import LoadStoreQueue, PMEMDIMM


class TestLoadStoreQueue:
    def test_first_write_allocates(self):
        lsq = LoadStoreQueue(depth=4)
        assert lsq.push_write(0.0, 0) is None
        assert lsq.occupancy == 1

    def test_same_frame_combines(self):
        lsq = LoadStoreQueue(depth=4)
        lsq.push_write(0.0, 0)
        assert lsq.push_write(1.0, 64) is None
        assert lsq.occupancy == 1
        assert lsq.combines == 1

    def test_coverage_bits(self):
        lsq = LoadStoreQueue(depth=4)
        lsq.push_write(0.0, 0)
        lsq.push_write(0.0, 64)
        lsq.push_write(0.0, 128)
        lsq.push_write(0.0, 192)
        (entry,) = lsq.drain()
        assert entry.coverage == 0b1111

    def test_full_queue_evicts_oldest(self):
        lsq = LoadStoreQueue(depth=2)
        lsq.push_write(0.0, 0)
        lsq.push_write(1.0, 256)
        evicted = lsq.push_write(2.0, 512)
        assert evicted is not None and evicted.frame == 0
        assert lsq.evictions == 1

    def test_forwarding_covers_only_written_slots(self):
        lsq = LoadStoreQueue(depth=4)
        lsq.push_write(0.0, 64)
        assert lsq.forward_read(64)
        assert not lsq.forward_read(0)
        assert not lsq.forward_read(256)

    def test_drain_empties_oldest_first(self):
        lsq = LoadStoreQueue(depth=4)
        lsq.push_write(5.0, 512)
        lsq.push_write(1.0, 0)
        frames = [e.frame for e in lsq.drain()]
        assert frames == [0, 512]
        assert lsq.occupancy == 0

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            LoadStoreQueue(depth=0)


class TestPMEMDIMM:
    def _read(self, dimm, address, time=0.0):
        return dimm.access(
            MemoryRequest(MemoryOp.READ, address=address, time=time))

    def _write(self, dimm, address, time=0.0):
        return dimm.access(
            MemoryRequest(MemoryOp.WRITE, address=address, time=time))

    def test_cold_read_pays_full_media_path(self):
        dimm = PMEMDIMM(capacity=1 << 20)
        response = self._read(dimm, 0)
        # lsq + sram lookup + dram lookup + AIT + firmware + media read
        assert response.latency > 100.0
        assert dimm.media_reads == 1

    def test_warm_read_hits_internal_cache(self):
        dimm = PMEMDIMM(capacity=1 << 20)
        cold = self._read(dimm, 0)
        warm = self._read(dimm, 0, time=cold.complete_time + 10)
        assert warm.latency < cold.latency * 0.7

    def test_write_much_faster_than_media_program(self):
        dimm = PMEMDIMM(capacity=1 << 20)
        response = self._write(dimm, 0)
        assert response.latency < 500.0  # vs ~2 us media pulse

    def test_store_to_load_forwarding(self):
        dimm = PMEMDIMM(capacity=1 << 20)
        w = self._write(dimm, 0)
        r = self._read(dimm, 0, time=w.complete_time)
        assert r.latency < 150.0  # forwarded from the LSQ, no media trip

    def test_lsq_eviction_triggers_media_write(self):
        dimm = PMEMDIMM(capacity=1 << 20)
        t = 0.0
        for i in range(dimm.lsq.depth + 1):
            response = self._write(dimm, i * 256, time=t)
            t = response.complete_time + 5.0
        assert dimm.media_writes >= 1

    def test_partial_frame_eviction_costs_rmw(self):
        dimm = PMEMDIMM(capacity=1 << 20)
        t = 0.0
        # one 64 B line per 256 B frame: every evicted frame is partial
        for i in range(dimm.lsq.depth + 2):
            response = self._write(dimm, i * 256, time=t)
            t = response.complete_time + 5.0
        assert dimm.rmw_count >= 1

    def test_flush_drains_lsq_and_media(self):
        dimm = PMEMDIMM(capacity=1 << 20)
        self._write(dimm, 0)
        done = dimm.flush(100.0)
        assert done >= 100.0
        assert dimm.lsq.occupancy == 0
        assert dimm.media_writes >= 1

    def test_latency_varies_with_hit_level(self):
        dimm = PMEMDIMM(capacity=1 << 20)
        t = 0.0
        for i in range(200):
            # a hot line amid a random stream: the lookup path answers
            # from different levels, so latency is non-deterministic
            address = 0 if i % 3 == 0 else (i * 7919 * 64) % (1 << 20)
            response = self._read(dimm, address, time=t)
            t = max(t, response.complete_time) + 50.0
        assert dimm.read_latency.spread() > 1.5

    def test_media_banks_parallelism(self):
        dimm = PMEMDIMM(capacity=1 << 20, media_banks=4)
        assert len(dimm.banks) == 4
        assert dimm._bank_of(0) is not dimm._bank_of(256)

    def test_power_cycle_clears_volatile_state(self):
        dimm = PMEMDIMM(capacity=1 << 20)
        self._write(dimm, 0)
        self._read(dimm, 4096)
        dimm.power_cycle()
        assert dimm.lsq.occupancy == 0
        assert dimm.sram.occupancy == 0
        assert all(d.busy_until == 0.0 for d in dimm.dies)

    def test_reset_rejected(self):
        dimm = PMEMDIMM(capacity=1 << 20)
        with pytest.raises(ValueError):
            dimm.access(MemoryRequest(MemoryOp.RESET))

    def test_out_of_range_rejected(self):
        dimm = PMEMDIMM(capacity=1 << 12)
        with pytest.raises(ValueError):
            self._read(dimm, 1 << 12)

    def test_counters_exposed(self):
        dimm = PMEMDIMM(capacity=1 << 20)
        self._read(dimm, 0)
        counters = dimm.counters()
        assert counters["media_reads"] == 1
        assert counters["sram_misses"] == 1
