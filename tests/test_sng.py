"""Tests for the kernel world and Stop-and-Go."""

import pytest

from repro.pecos import Kernel, KernelConfig, SnG, SnGTiming, TaskState
from repro.power.psu import ATX_PSU


def _sng(kernel=None, dirty=256, cores=None):
    kernel = kernel or Kernel()
    if not kernel._populated:
        kernel.populate()
    n = cores or kernel.config.cores
    return SnG(
        kernel,
        flush_port=lambda t: t + 2_000.0,
        dirty_lines_fn=lambda: [dirty] * n,
    )


class TestKernelWorld:
    def test_population_counts(self):
        kernel = Kernel()
        kernel.populate()
        cfg = kernel.config
        assert kernel.task_count() == cfg.user_processes + cfg.kernel_threads

    def test_double_populate_rejected(self):
        kernel = Kernel()
        kernel.populate()
        with pytest.raises(RuntimeError):
            kernel.populate()

    def test_sleeping_fraction_respected(self):
        kernel = Kernel(KernelConfig(sleeping_fraction=0.5))
        kernel.populate()
        sleeping = len(kernel.sleeping_tasks())
        assert abs(sleeping - kernel.task_count() * 0.5) <= 1

    def test_user_tasks_have_vmas(self):
        kernel = Kernel()
        kernel.populate()
        for task in kernel.user_tasks():
            assert task.total_vma_bytes() > 0

    def test_not_locked_down_initially(self):
        kernel = Kernel()
        kernel.populate()
        assert not kernel.everything_locked_down()


class TestStop:
    def test_stop_locks_down_the_world(self):
        sng = _sng()
        report = sng.stop()
        assert sng.kernel.everything_locked_down()
        assert report.tasks_stopped == sng.kernel.task_count()
        assert report.commit_stored

    def test_stop_fits_atx_holdup(self):
        report = _sng().stop()
        assert report.total_ms < ATX_PSU.spec_holdup_ms

    def test_decomposition_positive_and_ordered(self):
        report = _sng().stop()
        fractions = report.fractions()
        assert fractions["process_stop"] < fractions["device_stop"]
        assert fractions["process_stop"] < fractions["offline"]
        assert abs(sum(fractions.values()) - 1.0) < 1e-9

    def test_devices_suspended(self):
        sng = _sng()
        sng.stop()
        from repro.pecos import DeviceState
        assert sng.kernel.dpm.all_state(DeviceState.SUSPENDED_NOIRQ)

    def test_persistent_flag_cleared_before_commit(self):
        sng = _sng()
        sng.stop()
        assert not sng.kernel.persistent_flag

    def test_more_dirty_lines_cost_more(self):
        a = _sng(Kernel(), dirty=0).stop()
        b = _sng(Kernel(), dirty=4096).stop()
        assert b.total_ns > a.total_ns

    def test_more_tasks_cost_more(self):
        small = _sng(Kernel(KernelConfig(user_processes=10,
                                         kernel_threads=10))).stop()
        big = _sng(Kernel(KernelConfig(user_processes=100,
                                       kernel_threads=60))).stop()
        assert big.process_stop_ns > small.process_stop_ns

    def test_dirty_lines_fn_validated(self):
        kernel = Kernel()
        kernel.populate()
        sng = SnG(kernel, flush_port=lambda t: t,
                  dirty_lines_fn=lambda: [0])  # wrong core count
        with pytest.raises(ValueError):
            sng.stop()


class TestGo:
    def test_warm_recovery_resumes_everything(self):
        sng = _sng()
        sng.stop()
        report = sng.go()
        assert report.warm
        assert report.tasks_resumed == sng.kernel.task_count()
        assert all(
            t.state is TaskState.RUNNABLE for t in sng.kernel.all_tasks()
        )

    def test_resumed_state_matches_ep_cut(self):
        sng = _sng()
        sng.stop()
        sng.go()
        assert sng.verify_resumed_state()

    def test_devices_active_after_go(self):
        from repro.pecos import DeviceState
        sng = _sng()
        sng.stop()
        sng.go()
        assert sng.kernel.dpm.all_state(DeviceState.ACTIVE)

    def test_go_without_stop_is_cold_boot(self):
        sng = _sng()
        report = sng.go()
        assert not report.warm
        assert report.total_ns == 0.0

    def test_second_go_is_cold(self):
        sng = _sng()
        sng.stop()
        assert sng.go().warm
        assert not sng.go().warm  # commit consumed

    def test_go_faster_than_stop(self):
        sng = _sng()
        stop = sng.stop()
        go = sng.go()
        assert go.total_ns < stop.total_ns

    def test_verify_without_snapshot_raises(self):
        sng = _sng()
        with pytest.raises(RuntimeError):
            sng.verify_resumed_state()


class TestScalability:
    def test_worst_case_32_cores_fits_atx(self):
        kernel = Kernel(KernelConfig(cores=32, extra_drivers=720))
        kernel.populate()
        sng = SnG(kernel, flush_port=lambda t: t + 2_000.0,
                  dirty_lines_fn=lambda: [256] * 32)
        assert sng.stop().total_ms <= ATX_PSU.spec_holdup_ms

    def test_worst_case_64_cores_exceeds_atx(self):
        kernel = Kernel(KernelConfig(cores=64, extra_drivers=720))
        kernel.populate()
        sng = SnG(kernel, flush_port=lambda t: t + 2_000.0,
                  dirty_lines_fn=lambda: [256] * 64)
        assert sng.stop().total_ms > ATX_PSU.spec_holdup_ms

    def test_timing_knobs_respected(self):
        fast = SnGTiming(core_offline_ns=1_000.0)
        kernel = Kernel()
        kernel.populate()
        sng = SnG(kernel, flush_port=lambda t: t,
                  dirty_lines_fn=lambda: [0] * 8, timing=fast)
        slow_report = _sng(Kernel(), dirty=0).stop()
        assert sng.stop().offline_ns < slow_report.offline_ns
