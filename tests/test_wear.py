"""Tests for the Start-Gap wear-leveler and the Feistel randomizer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ocpmem import FeistelPermutation, StartGap


class TestFeistelPermutation:
    @given(st.integers(1, 3000), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_bijective_on_domain(self, n, seed):
        perm = FeistelPermutation(n, seed)
        outputs = {perm.apply(x) for x in range(n)}
        assert outputs == set(range(n))

    def test_out_of_domain_rejected(self):
        perm = FeistelPermutation(16, 1)
        with pytest.raises(ValueError):
            perm.apply(16)

    def test_different_seeds_differ(self):
        a = FeistelPermutation(256, 1)
        b = FeistelPermutation(256, 2)
        assert [a.apply(i) for i in range(256)] != [b.apply(i) for i in range(256)]

    def test_deterministic(self):
        a = FeistelPermutation(512, 99)
        b = FeistelPermutation(512, 99)
        assert all(a.apply(i) == b.apply(i) for i in range(0, 512, 7))

    def test_domain_validation(self):
        with pytest.raises(ValueError):
            FeistelPermutation(0, 1)


class TestStartGapMapping:
    def test_mapping_is_injective_initially(self):
        sg = StartGap(lines=100, threshold=10)
        mapped = {sg.map(l) for l in range(100)}
        assert len(mapped) == 100
        assert all(0 <= p <= 100 for p in mapped)

    def test_mapping_stays_injective_through_gap_cycles(self):
        sg = StartGap(lines=50, threshold=1)
        for i in range(137):  # push through multiple wraps
            sg.record_write(i % 50)
            mapped = {sg.map(l) for l in range(50)}
            assert len(mapped) == 50, f"collision after write {i}"

    def test_gap_excluded_from_mapping(self):
        sg = StartGap(lines=50, threshold=1)
        for i in range(23):
            sg.record_write(i % 50)
        mapped = {sg.map(l) for l in range(50)}
        assert sg.gap not in mapped

    def test_out_of_range_rejected(self):
        sg = StartGap(lines=10)
        with pytest.raises(ValueError):
            sg.map(10)

    def test_gap_moves_every_threshold_writes(self):
        sg = StartGap(lines=16, threshold=4)
        for i in range(8):
            sg.record_write(i % 16)
        assert sg.gap_moves == 2

    def test_gap_move_overhead_reported(self):
        sg = StartGap(lines=16, threshold=2)
        assert sg.record_write(0) == 0.0
        assert sg.record_write(1) == StartGap.GAP_MOVE_NS

    def test_start_advances_after_full_gap_cycle(self):
        sg = StartGap(lines=8, threshold=1)
        for i in range(9):  # 8 moves + 1 wrap step
            sg.record_write(i % 8)
        assert sg.gap_cycles >= 1
        assert sg.start == 1

    def test_page_granular_randomization_preserves_adjacency(self):
        sg = StartGap(lines=64 * 8, threshold=1_000_000, randomize_unit=64)
        base = sg.map(0)
        for offset in range(1, 64):
            assert sg.map(offset) == base + offset

    def test_randomize_unit_validation(self):
        with pytest.raises(ValueError):
            StartGap(lines=8, randomize_unit=0)


class TestStartGapData:
    def test_gap_moves_relocate_data(self):
        data = {p: None for p in range(17)}
        store = {}

        def move(src, dst):
            store[dst] = store.pop(src, ("empty", src))

        sg = StartGap(lines=16, threshold=1, move_fn=move)
        # place logical contents at their initial physical homes
        for logical in range(16):
            store[sg.map(logical)] = ("data", logical)
        for i in range(40):
            sg.record_write(i % 16)
            # every logical line's data must be where map() now says
            for logical in range(16):
                assert store.get(sg.map(logical)) == ("data", logical)

    def test_registers_roundtrip(self):
        sg = StartGap(lines=32, threshold=2)
        for i in range(11):
            sg.record_write(i % 32)
        regs = sg.registers()
        fresh = StartGap(lines=32, threshold=2)
        fresh.restore_registers(regs)
        assert all(fresh.map(l) == sg.map(l) for l in range(32))

    def test_seed_rotation_changes_mapping_and_migrates(self):
        store = {}

        def move(src, dst):
            store[dst] = store.pop(src, None)

        sg = StartGap(lines=16, threshold=1_000_000, move_fn=move)
        for logical in range(16):
            store[sg.map(logical)] = logical
        before = {l: sg.map(l) for l in range(16)}
        cost = sg.rotate_seed()
        assert cost > 0
        after = {l: sg.map(l) for l in range(16)}
        assert before != after
        assert len(set(after.values())) == 16
        for logical in range(16):
            assert store.get(after[logical]) == logical

    def test_wear_leveling_moves_hot_line_one_slot_per_cycle(self):
        """Start-Gap shifts a hot line by ~one physical slot per gap cycle
        — exactly the single-hot-address weakness §VIII discusses."""
        sg = StartGap(lines=64, threshold=1, track_wear=True,
                      randomize_unit=1)
        for _ in range(65 * 6):
            sg.record_write(7)  # adversarially hot logical line
        touched = len(sg.physical_writes)
        assert 5 <= touched <= 10, f"hot line visited {touched} slots"

    def test_seed_rotation_beats_adversarial_pattern(self):
        """The future-work seed rotation spreads a hot line much further."""
        sg = StartGap(lines=64, threshold=1, track_wear=True,
                      randomize_unit=1, rotate_seed_every=1)
        for _ in range(65 * 6):
            sg.record_write(7)
        assert sg.seed_rotations >= 1
        plain = StartGap(lines=64, threshold=1, track_wear=True,
                         randomize_unit=1)
        for _ in range(65 * 6):
            plain.record_write(7)
        assert len(sg.physical_writes) > len(plain.physical_writes)

    def test_no_leveling_without_gap_movement(self):
        sg = StartGap(lines=64, threshold=10**9, track_wear=True)
        for _ in range(100):
            sg.record_write(7)
        assert len(sg.physical_writes) == 1
