"""Tests for the ASCII chart renderers."""

import pytest

from repro.analysis import ExperimentResult
from repro.analysis.charts import bar_chart, chart_result, series_strip


class TestBarChart:
    def test_proportional_bars(self):
        text = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("█") * 2 == pytest.approx(
            lines[1].count("█"), abs=2)

    def test_labels_aligned(self):
        text = bar_chart(["short", "a-much-longer-label"], [1, 1])
        starts = [line.index("█") for line in text.splitlines()]
        assert len(set(starts)) == 1

    def test_values_printed(self):
        assert "3.5x" in bar_chart(["w"], [3.5], unit="x")

    def test_baseline_marker(self):
        text = bar_chart(["a"], [4.0], width=20, baseline=2.0)
        assert "|" in text

    def test_title(self):
        assert bar_chart(["a"], [1.0], title="Fig. X").startswith("Fig. X")

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty_ok(self):
        assert bar_chart([], [], title="t") == "t"

    def test_zero_values_do_not_crash(self):
        assert bar_chart(["a", "b"], [0.0, 0.0])


class TestSeriesStrip:
    def test_height_rows(self):
        text = series_strip([1, 2, 3, 4], height=3)
        assert sum(1 for l in text.splitlines() if l.startswith("|")) == 3

    def test_peak_reported(self):
        assert "peak=4" in series_strip([1, 4, 2])

    def test_monotone_series_renders_staircase(self):
        text = series_strip([1, 2, 3, 4, 5], height=5)
        top = [l for l in text.splitlines() if l.startswith("|")][0]
        # only the tallest value reaches the top row
        assert top.count("█") == 1


class TestChartResult:
    def _result(self):
        return ExperimentResult(
            experiment="figX", title="t",
            columns=["workload", "ratio"],
            rows=[["aes", 1.5], ["mcf", 3.0]],
        )

    def test_charts_a_column(self):
        text = chart_result(self._result(), "ratio")
        assert "aes" in text and "mcf" in text
        assert "figX: ratio" in text

    def test_unknown_column_raises(self):
        with pytest.raises(ValueError):
            chart_result(self._result(), "nope")

    def test_real_figure(self):
        from repro.analysis import figure8

        result = figure8()
        text = chart_result(result, "ms")
        assert "sng/busy" in text
