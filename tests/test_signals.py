"""Tests for signal delivery and its interplay with SnG's lockdown."""

import pytest

from repro.pecos import Task, TaskFlags, TaskState
from repro.pecos.signals import DeliveryRecord, Signal, SignalDelivery


def _sleeper(user=True):
    task = Task(name="sleeper", kernel_thread=not user)
    task.state = TaskState.INTERRUPTIBLE
    return task


class TestPosting:
    def test_signal_wakes_interruptible_sleeper(self):
        delivery = SignalDelivery()
        task = _sleeper()
        assert delivery.post(task, Signal.SIGUSR1)
        assert task.state is TaskState.RUNNABLE
        assert TaskFlags.SIGPENDING in task.flags

    def test_uninterruptible_task_is_immune(self):
        """The whole point of lockdown: nothing can wake the task."""
        delivery = SignalDelivery()
        task = _sleeper()
        task.lockdown()
        assert not delivery.post(task, Signal.SIGKILL)
        assert task.state is TaskState.UNINTERRUPTIBLE

    def test_fake_signal_targets_user_tasks_only(self):
        delivery = SignalDelivery()
        kthread = _sleeper(user=False)
        with pytest.raises(ValueError):
            delivery.post_fake_signal(kthread)

    def test_fake_signal_wakes_user_sleeper(self):
        delivery = SignalDelivery()
        task = _sleeper()
        assert delivery.post_fake_signal(task)
        assert delivery.pending_count(task) == 1

    def test_runnable_task_just_queues(self):
        delivery = SignalDelivery()
        task = Task(name="runner", state=TaskState.RUNNABLE)
        assert not delivery.post(task, Signal.SIGUSR1)
        assert delivery.pending_count(task) == 1


class TestDelivery:
    def test_delivery_drains_queue_and_clears_flag(self):
        delivery = SignalDelivery()
        task = _sleeper()
        delivery.post(task, Signal.SIGUSR1)
        delivery.post(task, Signal.SIGHUP)
        records = delivery.deliver_pending(task)
        assert [r.signal for r in records] == [Signal.SIGUSR1, Signal.SIGHUP]
        assert not delivery.has_pending(task)
        assert TaskFlags.SIGPENDING not in task.flags

    def test_handler_invoked(self):
        delivery = SignalDelivery()
        task = _sleeper()
        hits = []
        delivery.register_handler(task, Signal.SIGUSR1,
                                  lambda t: hits.append(t.pid))
        delivery.post(task, Signal.SIGUSR1)
        delivery.deliver_pending(task)
        assert hits == [task.pid]

    def test_sigkill_uncatchable(self):
        delivery = SignalDelivery()
        task = _sleeper()
        with pytest.raises(ValueError):
            delivery.register_handler(task, Signal.SIGKILL, lambda t: None)
        delivery.post(task, Signal.SIGKILL)
        delivery.deliver_pending(task)
        assert task.state is TaskState.ZOMBIE

    def test_fake_signal_has_no_effect_beyond_the_trip(self):
        """SIGFAKE exists to ride the exit path; it must not change the
        task's fate."""
        delivery = SignalDelivery()
        task = _sleeper()
        delivery.post_fake_signal(task)
        delivery.deliver_pending(task)
        assert task.state is TaskState.RUNNABLE  # woken, nothing else

    def test_delivery_audit_accumulates(self):
        delivery = SignalDelivery()
        a, b = _sleeper(), _sleeper()
        delivery.post(a, Signal.SIGUSR1)
        delivery.post(b, Signal.SIGTERM)
        delivery.deliver_pending(a)
        delivery.deliver_pending(b)
        assert len(delivery.delivered) == 2


class TestDriveToIdleScenario:
    def test_fake_signal_park_lockdown_sequence(self):
        """The §IV-A sequence end to end: wake by fake signal, drain
        signals on the exit path, park, lockdown; afterwards no signal —
        not even SIGKILL — can disturb the task until Go releases it."""
        delivery = SignalDelivery()
        task = _sleeper()
        delivery.post_fake_signal(task)                # master nudges
        assert task.state is TaskState.RUNNABLE
        delivery.deliver_pending(task)                 # entry.S drain
        task.lockdown()                                # switched out for good
        assert not delivery.post(task, Signal.SIGKILL)
        assert task.state is TaskState.UNINTERRUPTIBLE
        task.release()                                 # Go
        assert task.state is TaskState.RUNNABLE
