"""Refactor guard: the port layer must not move a single bit of output.

``tests/data/golden_port_refactor.json`` was captured from the pre-port
code (ad-hoc backends, isinstance dispatch in Machine) at pinned seeds.
These tests regenerate the same experiments through the port layer and
compare with ``repr()`` serialization — byte-identical floats, not
approximately-equal ones — so any timing, counter, or power drift the
refactor introduces fails loudly.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.experiments import figure2b, platform_matrix
from repro.analysis.report import render_result

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_port_refactor.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


class TestFigure2bUnchanged:
    @pytest.fixture(scope="class")
    def live(self):
        fig = figure2b(samples=600, seed=11)
        return {
            "experiment": fig.experiment,
            "columns": fig.columns,
            "rows": fig.rows,
            "notes": {k: repr(v) for k, v in fig.notes.items()},
            "rendered": render_result(fig),
        }

    def test_rows_identical(self, golden, live):
        # round-trip through JSON so tuples/lists compare like the capture
        assert json.loads(json.dumps(live["rows"])) == \
            golden["figure2b"]["rows"]

    def test_notes_identical(self, golden, live):
        assert live["notes"] == golden["figure2b"]["notes"]

    def test_rendering_identical(self, golden, live):
        assert live["rendered"] == golden["figure2b"]["rendered"]
        assert live["columns"] == golden["figure2b"]["columns"]
        assert live["experiment"] == golden["figure2b"]["experiment"]


class TestPlatformMatrixUnchanged:
    @pytest.fixture(scope="class")
    def live(self):
        cells = platform_matrix(("aes", "redis"), refs=4000, seed=7)
        matrix = {}
        for (name, platform), result in sorted(cells.items()):
            matrix[f"{name}/{platform}"] = {
                "wall_ns": repr(result.wall_ns),
                "instructions": result.instructions,
                "ipc": repr(result.ipc),
                "total_w": repr(result.total_w),
                "energy_j": repr(result.energy_j),
                "mean_read_latency_ns": repr(result.mean_read_latency_ns),
                "cache_read_hit": repr(result.cache_read_hit),
                "cache_write_hit": repr(result.cache_write_hit),
                "row_buffer_hit": repr(result.row_buffer_hit),
                "backend_counters": {
                    k: repr(v)
                    for k, v in sorted(result.backend_counters.items())
                },
            }
        return matrix

    def test_all_cells_present(self, golden, live):
        assert sorted(live) == sorted(golden["platform_matrix"])

    @pytest.mark.parametrize("cell", [
        f"{w}/{p}"
        for w in ("aes", "redis")
        for p in ("legacy", "lightpc_b", "lightpc")
    ])
    def test_cell_byte_identical(self, golden, live, cell):
        assert live[cell] == golden["platform_matrix"][cell]
