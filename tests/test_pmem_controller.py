"""Tests for the PMEM channel controller and the NMEM (memory-mode) cache."""

import pytest

from repro.memory import DRAMConfig, DRAMSubsystem, MemoryOp, MemoryRequest
from repro.pmem import NMEMController, PMEMController, PMEMDIMM


def _controller(dimms=2, capacity=1 << 20):
    return PMEMController([PMEMDIMM(capacity=capacity) for _ in range(dimms)])


class TestPMEMController:
    def test_requires_dimms(self):
        with pytest.raises(ValueError):
            PMEMController([])

    def test_capacity_is_sum(self):
        ctrl = _controller(dimms=3, capacity=1 << 20)
        assert ctrl.capacity == 3 << 20

    def test_lines_interleave_across_dimms(self):
        ctrl = _controller(dimms=2)
        d0, local0 = ctrl._route(0)
        d1, local1 = ctrl._route(64)
        d2, local2 = ctrl._route(128)
        assert d0 is not d1
        assert d0 is d2
        assert local2 == 64

    def test_ddrt_handshake_charged(self):
        ctrl = _controller()
        response = ctrl.access(MemoryRequest(MemoryOp.READ, address=0))
        inner = ctrl.dimms[0].read_latency.mean
        assert response.latency == pytest.approx(
            inner + ctrl.ddrt.request_ns + ctrl.ddrt.completion_ns
        )

    def test_flush_fans_out(self):
        ctrl = _controller()
        ctrl.access(MemoryRequest(MemoryOp.WRITE, address=0))
        ctrl.access(MemoryRequest(MemoryOp.WRITE, address=64))
        done = ctrl.drain(0.0)
        assert done > 0.0
        assert all(d.lsq.occupancy == 0 for d in ctrl.dimms)

    def test_nonvolatile(self):
        assert not _controller().is_volatile


class TestNMEMController:
    def _nmem(self):
        dram = DRAMSubsystem(DRAMConfig(capacity=1 << 20))
        return NMEMController(dram, _controller())

    def test_miss_then_hit(self):
        nmem = self._nmem()
        miss = nmem.access(MemoryRequest(MemoryOp.READ, address=0))
        hit = nmem.access(MemoryRequest(
            MemoryOp.READ, address=0, time=miss.complete_time))
        assert hit.latency < miss.latency
        assert nmem.hit_ratio == pytest.approx(0.5)

    def test_snarf_overlap_bounds_miss_cost(self):
        """Miss cost ~ max(pmem, dram) + snarf, not the sum."""
        nmem = self._nmem()
        miss = nmem.access(MemoryRequest(MemoryOp.READ, address=0))
        pmem_alone = nmem.pmem.access(
            MemoryRequest(MemoryOp.READ, address=1 << 16))
        assert miss.latency < pmem_alone.latency + 60.0

    def test_memory_mode_is_volatile(self):
        assert self._nmem().is_volatile

    def test_power_cycle_drops_tags(self):
        nmem = self._nmem()
        nmem.access(MemoryRequest(MemoryOp.READ, address=0))
        nmem.power_cycle()
        assert nmem.hit_stats.hits == 0 or nmem._tags == {}

    def test_flush_drains_both_sides(self):
        nmem = self._nmem()
        nmem.access(MemoryRequest(MemoryOp.WRITE, address=0))
        response = nmem.access(MemoryRequest(MemoryOp.FLUSH, time=0.0))
        assert response.complete_time >= 0.0
