"""Tests for the XOR codec (XCC) and the symbol-based RS fallback."""

import pytest
from hypothesis import given, strategies as st

from repro.ocpmem import SymbolECC, UncorrectableError, XORCodec, xor_bytes

HALF = st.binary(min_size=32, max_size=32)


class TestXorBytes:
    def test_basic(self):
        assert xor_bytes(b"\x0f", b"\xf0") == b"\xff"

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_bytes(b"\x00", b"\x00\x00")


class TestXORCodec:
    def test_encode_parity(self):
        xcc = XORCodec(half_bytes=2)
        assert xcc.encode(b"\x01\x02", b"\x03\x04") == b"\x02\x06"

    def test_wrong_half_size_rejected(self):
        xcc = XORCodec(half_bytes=32)
        with pytest.raises(ValueError):
            xcc.encode(b"\x00" * 16, b"\x00" * 32)

    @given(HALF, HALF)
    def test_reconstruct_either_half(self, half0, half1):
        xcc = XORCodec()
        parity = xcc.encode(half0, half1)
        assert xcc.reconstruct(half1, parity) == half0
        assert xcc.reconstruct(half0, parity) == half1

    @given(HALF, HALF)
    def test_verify_accepts_consistent(self, half0, half1):
        xcc = XORCodec()
        parity = xcc.encode(half0, half1)
        assert xcc.verify(half0, half1, parity)

    @given(HALF, HALF)
    def test_verify_rejects_corruption(self, half0, half1):
        xcc = XORCodec()
        parity = xcc.encode(half0, half1)
        corrupted = bytes([half0[0] ^ 0xFF]) + half0[1:]
        assert not xcc.verify(corrupted, half1, parity)

    def test_correct_with_missing_half(self):
        xcc = XORCodec()
        half0, half1 = bytes(range(32)), bytes(range(32, 64))
        parity = xcc.encode(half0, half1)
        result = xcc.correct(None, half1, parity)
        assert result.data == half0 + half1 and result.reconstructed
        result = xcc.correct(half0, None, parity)
        assert result.data == half0 + half1 and result.reconstructed

    def test_correct_with_nothing_missing(self):
        xcc = XORCodec()
        half0, half1 = b"\x00" * 32, b"\xff" * 32
        result = xcc.correct(half0, half1, None)
        assert result.data == half0 + half1 and not result.reconstructed

    def test_two_missing_components_uncorrectable(self):
        xcc = XORCodec()
        with pytest.raises(UncorrectableError):
            xcc.correct(None, None, b"\x00" * 32)
        with pytest.raises(UncorrectableError):
            xcc.correct(None, b"\x00" * 32, None)

    def test_stats_counted(self):
        xcc = XORCodec()
        parity = xcc.encode(b"\x00" * 32, b"\x01" * 32)
        xcc.reconstruct(b"\x01" * 32, parity)
        assert xcc.encodes == 1 and xcc.reconstructions == 1


class TestSymbolECC:
    def test_clean_decode(self):
        rs = SymbolECC(data_symbols=8)
        data = list(range(8))
        codeword = rs.encode(data)
        assert rs.decode(codeword).data == bytes(data)

    @given(st.lists(st.integers(0, 255), min_size=8, max_size=8),
           st.integers(0, 7), st.integers(1, 255))
    def test_single_symbol_corrected(self, data, position, flip):
        rs = SymbolECC(data_symbols=8)
        codeword = rs.encode(data)
        corrupted = list(codeword)
        corrupted[position] ^= flip
        result = rs.decode(corrupted)
        assert result.data == bytes(data)
        assert result.corrected_symbols == 1

    @given(st.lists(st.integers(0, 255), min_size=8, max_size=8))
    def test_double_symbol_detected(self, data):
        rs = SymbolECC(data_symbols=8)
        codeword = rs.encode(data)
        corrupted = list(codeword)
        corrupted[0] ^= 0x55
        corrupted[3] ^= 0xAA
        try:
            result = rs.decode(corrupted)
        except UncorrectableError:
            return  # detected: good
        # If decoding "succeeded", it must not silently produce wrong data
        # while claiming zero corrections.
        assert result.corrected_symbols >= 1

    def test_wrong_length_rejected(self):
        rs = SymbolECC(data_symbols=4)
        with pytest.raises(ValueError):
            rs.encode([1, 2, 3])
        with pytest.raises(ValueError):
            rs.decode([0] * 5)

    def test_symbol_range_validated(self):
        rs = SymbolECC(data_symbols=2)
        with pytest.raises(ValueError):
            rs.encode([0, 256])

    def test_data_symbols_bounds(self):
        with pytest.raises(ValueError):
            SymbolECC(data_symbols=0)
        with pytest.raises(ValueError):
            SymbolECC(data_symbols=254)
