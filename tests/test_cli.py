"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "doom"])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "redis"
        assert args.platform == "lightpc"


class TestCommands:
    def test_run(self, capsys):
        assert main(["run", "--workload", "aes", "--refs", "2000"]) == 0
        out = capsys.readouterr().out
        assert "aes on lightpc" in out
        assert "W," in out

    def test_run_legacy(self, capsys):
        assert main(["run", "--workload", "aes", "--platform", "legacy",
                     "--refs", "2000"]) == 0
        assert "legacy" in capsys.readouterr().out

    def test_drill_survives(self, capsys):
        assert main(["drill", "--workload", "aes", "--refs", "2000"]) == 0
        out = capsys.readouterr().out
        assert "SURVIVED" in out
        assert "EP-cut state intact: True" in out

    def test_characterize(self, capsys):
        assert main(["characterize", "--workload", "mcf",
                     "--refs", "4000"]) == 0
        out = capsys.readouterr().out
        assert "read/write ratio" in out
        assert "D$ read hit" in out

    def test_bench_single(self, capsys):
        assert main(["bench", "tab1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_bench_fig8(self, capsys):
        assert main(["bench", "fig8"]) == 0
        assert "sng/busy" in capsys.readouterr().out

    def test_fuzz_sector(self, capsys):
        assert main(["fuzz", "sector", "--trials", "3"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_fuzz_pool(self, capsys):
        assert main(["fuzz", "pool", "--trials", "4"]) == 0
        assert "pmdk-pool" in capsys.readouterr().out

    def test_profile(self, capsys):
        assert main(["profile", "tab1", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "cumulative" in out
        assert "function calls" in out

    def test_profile_dump(self, capsys, tmp_path):
        out_file = tmp_path / "tab1.pstats"
        assert main(["profile", "tab1", "--top", "3", "--sort", "tottime",
                     "--out", str(out_file)]) == 0
        assert out_file.exists()
        import pstats

        pstats.Stats(str(out_file))  # round-trips as a valid pstats dump

    def test_trace_export_and_stats(self, capsys, tmp_path):
        out = tmp_path / "aes.trace"
        assert main(["trace", "export", "--workload", "aes",
                     "--refs", "1000", "--out", str(out)]) == 0
        assert out.exists()
        assert main(["trace", "stats", str(out)]) == 0
        text = capsys.readouterr().out
        assert "records" in text and "write_fraction" in text

    def test_bench_export(self, capsys, tmp_path):
        assert main(["bench", "fig8", "--export", str(tmp_path)]) == 0
        assert (tmp_path / "fig8.json").exists()
        assert (tmp_path / "fig8.csv").exists()


class TestErrorPaths:
    """Bad inputs exit 2 with a one-line message, never a traceback."""

    def test_trace_stats_missing_file(self, capsys):
        assert main(["trace", "stats", "/nonexistent/trace.bin"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot read trace")
        assert err.count("\n") == 1

    def test_cache_dir_is_a_file(self, capsys, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        assert main(["litmus", "--trials", "1",
                     "--cache-dir", str(blocker)]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_cache_dir_uncreatable_under_a_file(self, capsys, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        nested = blocker / "cache"
        assert main(["drill", "--trials", "1",
                     "--cache-dir", str(nested)]) == 2
        assert "cannot be created" in capsys.readouterr().err

    def test_fuzz_cache_dir_is_a_file(self, capsys, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        assert main(["fuzz", "psm", "--trials", "1",
                     "--cache-dir", str(blocker)]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_drill_unknown_shape(self, capsys):
        assert main(["drill", "--trials", "1", "--shape", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown litmus shape 'bogus'" in err
        assert err.count("\n") == 1


class TestDrillCampaign:
    def test_clean_campaign(self, capsys):
        assert main(["drill", "--trials", "3", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("drill:")
        assert "-> OK" in out

    def test_trial_timeout_flag_flows_through(self, capsys):
        assert main(["drill", "--trials", "2", "--seed", "3",
                     "--trial-timeout", "120"]) == 0
        assert "-> OK" in capsys.readouterr().out

    def test_broken_remap_detected_and_artifacts_written(self, capsys,
                                                         tmp_path):
        assert main(["drill", "--trials", "2", "--seed", "7",
                     "--break-remap", "--artifacts", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "VIOLATIONS" in out
        assert "(minimized)" in out
        artifact = tmp_path / "drill-counterexamples.json"
        assert artifact.exists()
        import json

        payload = json.loads(artifact.read_text())
        assert payload["remap_enabled"] is False
        assert payload["violations"]
