"""The compound-fault engine: nested cuts, degraded media, drilled.

Three layers are pinned here:

* mechanism — :class:`CompoundFaultInjector` fires its whole schedule on
  one global tick count (so a follow-on cut lands inside recovery
  traffic), and :class:`MediaFaultModel` implements retry / ECC-correct /
  retire semantics identically on every execution path via the
  scalar-only override contract;
* engine — explicit crash-during-recovery and torn-extent-flush plans
  run clean against the fixed oracle on all three lowerings, with
  byte-identical recovered state, and the deliberately broken
  degradation rule (retired-unit remap disabled) is detected and
  1-minimized end to end;
* plumbing — drill campaigns are pure functions of ``(seed, trial)``,
  byte-identical at any parallelism, and warm-cache stable.

Plus the crash-during-Go wear regression (satellite of PR 7): a second
power cut landing between ``power_cycle`` and the wear-register restore
must not lose the mapping, because Go simply restores again.
"""

import dataclasses
import random

import pytest

from repro.faults import (
    STUCK,
    TRANSIENT,
    CompoundFaultInjector,
    FaultPlan,
    MediaFault,
    MediaFaultModel,
    drill_trial,
    execute_plan,
    generate_plan,
    minimize_drill,
    run_drill,
    run_drill_program,
)
from repro.litmus.engine import EXECUTION_PATHS, litmus_backend
from repro.litmus.ir import (
    LitmusOp,
    LitmusProgram,
    OpKind,
    build_timeline,
    line_value,
    total_ticks,
)
from repro.litmus.generate import generate_program
from repro.litmus.oracle import PersistencyModel
from repro.memory.batch import backend_access_batch
from repro.memory.port import InjectedPowerFailure
from repro.memory.request import CACHELINE_BYTES, MemoryOp, MemoryRequest
from repro.ocpmem.psm import PSM, PSMConfig
from repro.orchestrate import trial_rng


def store(line, version):
    return LitmusOp(OpKind.STORE, line, version)


def cut():
    return LitmusOp(OpKind.SNG_CUT)


def program_of(*ops, lines=8, name="t"):
    return LitmusProgram(name, tuple(ops), lines)


def read_line(port, line):
    return port.access(MemoryRequest(
        MemoryOp.READ, address=line * CACHELINE_BYTES, time=0.0))


def write_line(port, line, version):
    return port.access(MemoryRequest(
        MemoryOp.WRITE, address=line * CACHELINE_BYTES,
        data=line_value(version), time=0.0))


class TestFaultPlan:
    def test_cuts_must_strictly_increase(self):
        with pytest.raises(ValueError):
            FaultPlan(cuts=(3, 3))
        with pytest.raises(ValueError):
            FaultPlan(cuts=(5, 2))
        with pytest.raises(ValueError):
            FaultPlan(cuts=(-1,))

    def test_media_fault_validation(self):
        with pytest.raises(ValueError):
            MediaFault(-1)
        with pytest.raises(ValueError):
            MediaFault(0, kind="cosmic-ray")
        with pytest.raises(ValueError):
            MediaFault(0, escalate_after=-1)

    def test_render(self):
        plan = FaultPlan("p", cuts=(0, 5),
                         media=(MediaFault(4, STUCK, escalate_after=2),
                                MediaFault(7, TRANSIENT)))
        assert plan.render() == "p[cuts=0,5; media=stuck@L4/esc2,transient@L7]"
        assert FaultPlan().render() == "plan[cuts=-; media=-]"

    def test_truncated_keeps_first_cut_and_media(self):
        plan = FaultPlan("p", cuts=(2, 9, 11), media=(MediaFault(1),))
        probe = plan.truncated()
        assert probe.cuts == (2,)
        assert probe.media == plan.media

    def test_generated_plans_are_seeded_and_always_crash(self):
        for seed in range(30):
            rng = random.Random(seed)
            program = generate_program(rng, "fuzz")
            plan = generate_plan(rng, program)
            ticks = total_ticks(build_timeline(program))
            assert plan.cuts[0] < ticks
            assert list(plan.cuts) == sorted(set(plan.cuts))
            for fault in plan.media:
                assert fault.line in program.observe_lines()
        a = generate_plan(random.Random(7), generate_program(
            random.Random(7), "fuzz"))
        b = generate_plan(random.Random(7), generate_program(
            random.Random(7), "fuzz"))
        assert a == b


class TestCompoundFaultInjector:
    def backend(self):
        return litmus_backend(program_of(store(0, 1)))

    def test_schedule_fires_on_one_global_tick_count(self):
        port = CompoundFaultInjector(self.backend(), cuts=(2, 4))
        write_line(port, 0, 1)
        write_line(port, 1, 2)
        with pytest.raises(InjectedPowerFailure):
            write_line(port, 2, 3)          # tick 2: first cut (not consumed)
        port.power_fail()                   # re-arms cut 4 on the same count
        read_line(port, 0)                  # tick 2 (recovery traffic)
        read_line(port, 1)                  # tick 3
        with pytest.raises(InjectedPowerFailure):
            read_line(port, 1)              # tick 4: second cut, inside Go
        port.power_fail()
        read_line(port, 1)                  # schedule exhausted: no more cuts
        assert port.cuts_fired == 2
        assert port.cuts_remaining == 0

    def test_cut_inside_batch_serves_prefix(self):
        port = CompoundFaultInjector(self.backend(), cuts=(1,))
        requests = [MemoryRequest(MemoryOp.WRITE,
                                  address=line * CACHELINE_BYTES,
                                  data=line_value(line + 1), time=0.0)
                    for line in range(3)]
        with pytest.raises(InjectedPowerFailure) as failure:
            backend_access_batch(port, requests)
        assert len(failure.value.completed) == 1   # torn: only line 0 served
        port.flush(0.0)
        assert read_line(port, 0).data == line_value(1)
        assert not any(read_line(port, 1).data)
        assert not any(read_line(port, 2).data)

    def test_disarm_drops_remaining_schedule(self):
        port = CompoundFaultInjector(self.backend(), cuts=(0,))
        port.disarm()
        read_line(port, 0)                  # would have cut at tick 0
        assert port.cuts_fired == 0

    def test_invalid_schedules_rejected(self):
        with pytest.raises(ValueError):
            CompoundFaultInjector(self.backend(), cuts=(4, 4))
        with pytest.raises(ValueError):
            CompoundFaultInjector(self.backend(), cuts=(-1, 2))

    def test_single_cut_rearming_is_closed(self):
        port = CompoundFaultInjector(self.backend(), cuts=(1,))
        with pytest.raises(NotImplementedError):
            port.schedule(5)


class TestMediaFaultModel:
    def port(self, faults, **kwargs):
        inner = litmus_backend(program_of(store(0, 1)))
        return MediaFaultModel(inner, faults=faults, **kwargs)

    def test_transient_retries_once_then_clean(self):
        port = self.port([MediaFault(3, TRANSIENT)])
        write_line(port, 3, 5)
        clean = read_line(port, 3)
        assert clean.data == line_value(5)          # retry returns true data
        assert clean.blocked_ns >= port.retry_ns
        assert read_line(port, 3).blocked_ns < port.retry_ns
        assert port.fault_counters()["transient_retries"] == 1

    def test_stuck_corrects_then_retires_then_clean(self):
        port = self.port([MediaFault(2, STUCK, escalate_after=1)])
        write_line(port, 2, 9)
        corrected = read_line(port, 2)
        assert corrected.data == line_value(9)
        assert corrected.reconstructed
        retired = read_line(port, 2)                # escalation: remap
        assert retired.data == line_value(9)
        assert retired.blocked_ns >= port.migration_ns
        assert read_line(port, 2).blocked_ns < port.correction_ns
        counters = port.fault_counters()
        assert counters["ecc_corrections"] == 1
        assert counters["units_retired"] == 1
        assert counters["uncorrectable_reads"] == 0

    def test_remap_disabled_hands_host_corrupt_bytes(self):
        port = self.port([MediaFault(2, STUCK, escalate_after=1)],
                         remap_enabled=False)
        write_line(port, 2, 9)
        read_line(port, 2)                          # the one tolerated correct
        broken = read_line(port, 2)
        assert not broken.error_contained
        assert broken.data[0] == 9 ^ 0xFF
        assert len(set(broken.data)) != 1           # the torn detector fires
        assert port.fault_counters()["uncorrectable_reads"] == 1

    def test_fault_state_survives_power_cycle(self):
        port = self.port([MediaFault(2, STUCK, escalate_after=0)])
        write_line(port, 2, 9)
        read_line(port, 2)                          # retires immediately
        port.power_cycle()
        assert port.fault_counters()["units_retired"] == 1
        assert not any(read_line(port, 2).data)     # media wiped, still clean

    def test_batch_path_sees_identical_fault_semantics(self):
        scalar = self.port([MediaFault(1, STUCK, escalate_after=2)])
        batch = self.port([MediaFault(1, STUCK, escalate_after=2)])
        for port in (scalar, batch):
            write_line(port, 1, 4)
        reads = [MemoryRequest(MemoryOp.READ, address=CACHELINE_BYTES,
                               time=0.0) for _ in range(3)]
        scalar_data = [scalar.access(request).data for request in reads]
        batch_data = [response.data
                      for response in backend_access_batch(batch, reads)]
        assert scalar_data == batch_data
        assert scalar.fault_counters() == batch.fault_counters()


class TestDrillEngine:
    def test_crash_during_recovery_is_clean_on_all_paths(self):
        # ticks: store, store, writeback x2, flush -> first cut tick 3 is
        # inside the SnG writeback; tick 6 is Go's BCB probe read (after
        # power_cycle, BEFORE the wear-register restore); tick 7 lands
        # in the second recovery's scrub.
        program = program_of(store(0, 1), store(1, 2), cut())
        plan = FaultPlan("nested", cuts=(3, 6, 7))
        verdict = run_drill_program(program, plan)
        assert verdict.ok
        assert verdict.recoveries == 3              # two aborted Go passes

    def test_torn_extent_flush_every_split_point(self):
        program = program_of(store(0, 1), store(1, 2), store(2, 3), cut())
        ticks = total_ticks(build_timeline(program))
        for first in range(ticks):
            plan = FaultPlan("split", cuts=(first, first + 2))
            verdict = run_drill_program(program, plan)
            assert verdict.ok, (first, verdict.violations,
                                verdict.divergences)

    def test_paths_converge_to_identical_state(self):
        program = program_of(store(0, 1), cut(), store(1, 2), store(0, 3))
        plan = FaultPlan("conv", cuts=(1, 4),
                         media=(MediaFault(1, TRANSIENT),))
        runs = {path: execute_plan(program, path, plan)
                for path in EXECUTION_PATHS}
        states = {repr(sorted(run.observed.items()))
                  for run in runs.values()}
        assert len(states) == 1

    def test_broken_remap_detected_and_one_minimized(self):
        # Extra removable structure on purpose: minimization must strip
        # the scenario to one op, one cut, one stuck fault.
        program = program_of(store(0, 1), store(2, 2), store(4, 3))
        plan = FaultPlan("p", cuts=(0, 4),
                         media=(MediaFault(1, TRANSIENT),
                                MediaFault(2, STUCK, escalate_after=1)))
        verdict = run_drill_program(program, plan, remap_enabled=False)
        assert not verdict.ok
        assert all(violation.torn for violation in verdict.violations)
        minimized = minimize_drill(program, plan, remap_enabled=False)
        assert minimized is not None
        rendered = minimized.render()
        assert "+min" in rendered
        assert rendered.count("store") == 1
        assert rendered.count("cuts=0]") == 0       # render sanity
        assert "stuck@L2" in rendered
        assert "transient" not in rendered
        assert "torn" in rendered

    def test_fixed_oracle_passes_where_broken_remap_fails(self):
        program = program_of(store(2, 1))
        plan = FaultPlan("p", cuts=(0,),
                         media=(MediaFault(2, STUCK, escalate_after=1),))
        assert run_drill_program(program, plan).ok
        assert not run_drill_program(program, plan,
                                     remap_enabled=False).ok

    def test_uncontained_media_rule_wrongly_accepts_torn(self):
        program = program_of(store(2, 1))
        plan = FaultPlan("p", cuts=(0,),
                         media=(MediaFault(2, STUCK, escalate_after=1),))
        loose = PersistencyModel(media_errors_contained=False)
        verdict = run_drill_program(program, plan, remap_enabled=False,
                                    model=loose)
        assert not verdict.violations       # the wrong-loose rule hides it

    def test_idempotence_cross_check_runs_only_when_meaningful(self):
        program = program_of(store(0, 1), store(1, 2), cut())
        nested = FaultPlan("p", cuts=(1, 5))
        strict = run_drill_program(program, nested)
        assert strict.executed == len(EXECUTION_PATHS) + 1  # + truncated probe
        loose = run_drill_program(
            program, nested,
            model=PersistencyModel(recovery_is_idempotent=False))
        assert loose.executed == len(EXECUTION_PATHS)
        single = run_drill_program(program, FaultPlan("p", cuts=(1,)))
        assert single.executed == len(EXECUTION_PATHS)

    def test_media_faults_never_perturb_observed_values(self):
        program = program_of(store(1, 1), cut(), store(1, 2))
        clean = execute_plan(program, "scalar", FaultPlan(cuts=(2,)))
        faulty = execute_plan(
            program, "scalar",
            FaultPlan(cuts=(2,), media=(MediaFault(1, STUCK),
                                        MediaFault(0, TRANSIENT))))
        assert clean.observed == faulty.observed
        assert faulty.counters["ecc_corrections"] >= 1


class TestCrashDuringGoWearRegression:
    """A second cut between ``power_cycle`` and the register restore
    must not lose the Start-Gap mapping — Go just restores again."""

    #: lines 125/126 sit in the band the moved gap displaces, so a read
    #: through default (unrestored) wear registers misses their data
    CONTENT = {**{line: line + 1 for line in range(10)}, 125: 11, 126: 12}

    def worn_psm(self):
        psm = PSM(PSMConfig(dimms=2, lines_per_dimm=64, wear_threshold=4),
                  functional=True)
        for line, version in sorted(self.CONTENT.items()):
            write_line(psm, line, version)
        psm.flush(0.0)
        return psm

    def test_double_power_cycle_then_restore_reads_true_data(self):
        psm = self.worn_psm()
        blob = psm.capture_registers()
        psm.power_cycle()           # first cut
        read_line(psm, 0)           # Go's BCB probe, registers NOT restored
        psm.power_cycle()           # second cut, inside the Go window
        psm.restore_wear_registers(blob)
        for line, version in self.CONTENT.items():
            assert read_line(psm, line).data == line_value(version)

    def test_skipping_restore_reads_through_a_stale_mapping(self):
        psm = self.worn_psm()
        assert psm.wear.gap_moves >= 2
        psm.power_cycle()           # registers reset to defaults
        assert any(read_line(psm, line).data != line_value(version)
                   for line, version in self.CONTENT.items())

    def test_drill_engine_survives_cut_on_probe_read(self):
        # The cut at tick 4 lands exactly on Go's first probe read; the
        # drill's looping protocol must re-cycle and re-restore.
        program = program_of(store(0, 1), store(1, 2), cut())
        verdict = run_drill_program(program, FaultPlan(cuts=(2, 4)))
        assert verdict.ok
        assert verdict.recoveries == 2


class TestDrillCampaign:
    def report_bytes(self, report):
        return repr(dataclasses.astuple(report)).encode()

    def test_trials_are_pure_functions_of_seed_and_index(self):
        a = drill_trial(3, trial_rng(11, 3, namespace="drill"))
        b = drill_trial(3, trial_rng(11, 3, namespace="drill"))
        assert dataclasses.astuple(a) == dataclasses.astuple(b)

    def test_serial_parallel_byte_identical(self):
        serial = run_drill(trials=6, seed=5, jobs=1)
        parallel = run_drill(trials=6, seed=5, jobs=2)
        assert self.report_bytes(serial) == self.report_bytes(parallel)

    def test_watched_run_byte_identical(self):
        plain = run_drill(trials=4, seed=5)
        watched = run_drill(trials=4, seed=5, trial_timeout=120.0)
        assert self.report_bytes(plain) == self.report_bytes(watched)

    def test_warm_cache_rerun_identical(self, tmp_path):
        cold = run_drill(trials=6, seed=9, cache_dir=tmp_path)
        warm = run_drill(trials=6, seed=9, cache_dir=tmp_path)
        assert self.report_bytes(cold) == self.report_bytes(warm)

    def test_campaign_accounting_is_populated(self):
        report = run_drill(trials=8, seed=3)
        assert report.ok
        assert report.programs == 8
        assert report.cuts >= 8             # every plan has >= 1 cut
        assert report.executed >= 8 * len(EXECUTION_PATHS)
        assert report.recoveries >= 8       # every first cut crashes
        assert "-> OK" in report.summary()

    def test_broken_remap_campaign_detects_and_minimizes(self):
        report = run_drill(trials=8, seed=7, remap_enabled=False)
        assert not report.ok
        assert any("(minimized)" in violation
                   for violation in report.violations)
        assert any("torn" in violation for violation in report.violations)

    def test_rules_flow_through_params(self):
        broken = run_drill(trials=8, seed=7, remap_enabled=False,
                           rules={"media_errors_contained": False})
        assert broken.ok                    # wrong-loose rule hides the tear
