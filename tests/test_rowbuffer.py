"""Tests for the open-row tracker and the PSM write-aggregation buffer."""

import pytest

from repro.memory import OpenRowTracker, WriteAggregationBuffer


class TestOpenRowTracker:
    def test_first_access_is_miss(self):
        rows = OpenRowTracker(banks=2)
        assert not rows.access(0, 0)

    def test_same_row_hits(self):
        rows = OpenRowTracker(banks=1)
        rows.access(0, 0)
        assert rows.access(0, 64)
        assert rows.access(0, 4095)

    def test_row_change_misses(self):
        rows = OpenRowTracker(banks=1)
        rows.access(0, 0)
        assert not rows.access(0, 4096)

    def test_banks_independent(self):
        rows = OpenRowTracker(banks=2)
        rows.access(0, 0)
        assert not rows.access(1, 0)

    def test_hit_ratio(self):
        rows = OpenRowTracker(banks=1)
        rows.access(0, 0)
        rows.access(0, 8)
        rows.access(0, 8192)
        assert rows.hit_ratio == pytest.approx(1 / 3)

    def test_close_all(self):
        rows = OpenRowTracker(banks=1)
        rows.access(0, 0)
        rows.close_all()
        assert not rows.access(0, 0)

    def test_bank_count_validation(self):
        with pytest.raises(ValueError):
            OpenRowTracker(banks=0)


class TestWriteAggregationBuffer:
    def test_first_write_opens_page(self):
        buf = WriteAggregationBuffer()
        absorbed, drain = buf.write(0.0, 128)
        assert not absorbed and drain is None
        assert buf.open_page == 0
        assert buf.dirty_beats == 1

    def test_same_page_writes_absorbed(self):
        buf = WriteAggregationBuffer()
        buf.write(0.0, 0)
        absorbed, drain = buf.write(1.0, 96)
        assert absorbed and drain is None
        assert buf.dirty_beats == 2

    def test_repeat_write_to_same_beat_absorbed_once(self):
        buf = WriteAggregationBuffer()
        buf.write(0.0, 0)
        buf.write(1.0, 0)
        assert buf.dirty_beats == 1

    def test_page_change_returns_drain_set(self):
        buf = WriteAggregationBuffer()
        buf.write(0.0, 0)
        buf.write(1.0, 64)
        absorbed, drain = buf.write(2.0, 4096)
        assert not absorbed
        page, beats = drain
        assert page == 0
        assert beats == {0, 2}

    def test_read_hit_only_for_dirty_beats_of_open_page(self):
        buf = WriteAggregationBuffer(beat_bytes=64)
        buf.write(0.0, 64)
        assert buf.read_hit(64)
        assert buf.read_hit(96)  # same 64 B beat
        assert not buf.read_hit(128)
        assert not buf.read_hit(4096 + 64)

    def test_flush_closes_and_drains(self):
        buf = WriteAggregationBuffer()
        buf.write(0.0, 0)
        page, beats = buf.flush()
        assert page == 0 and beats == {0}
        assert buf.open_page is None
        assert buf.flush() is None

    def test_drain_counter(self):
        buf = WriteAggregationBuffer()
        buf.write(0.0, 0)
        buf.write(1.0, 8192)
        assert buf.drains == 1
        buf.flush()
        assert buf.drains == 2

    def test_hit_ratio(self):
        buf = WriteAggregationBuffer()
        buf.write(0.0, 0)
        buf.write(1.0, 64)
        buf.write(2.0, 128)
        assert buf.hit_ratio == pytest.approx(2 / 3)

    def test_custom_beat_size(self):
        buf = WriteAggregationBuffer(beat_bytes=32)
        buf.write(0.0, 0)
        buf.write(1.0, 32)
        assert buf.dirty_beats == 2
