"""Tests for the functional checkpoint substrates (A/S-CheckPC, SysPC)."""

import pytest

from repro.ocpmem import PSM, PSMConfig
from repro.persistence.functional import (
    ApplicationCheckpointer,
    CheckpointArea,
    CheckpointError,
    SystemCheckpointer,
    SystemImager,
)

AREA_BASE = 1 << 16
AREA_LEN = 1 << 16


def _area():
    psm = PSM(PSMConfig(lines_per_dimm=1 << 12), functional=True)
    return psm, CheckpointArea(psm, base=AREA_BASE, length=AREA_LEN)


class TestCheckpointArea:
    def test_append_scan_roundtrip(self):
        _, area = _area()
        area.append(b"hello world", tag=7)
        area.append(b"second", tag=8)
        records = area.scan()
        assert records == [(7, b"hello world"), (8, b"second")]

    def test_alignment_validated(self):
        psm, _ = _area()
        with pytest.raises(CheckpointError):
            CheckpointArea(psm, base=10, length=64)

    def test_area_full(self):
        psm, _ = _area()
        area = CheckpointArea(psm, base=AREA_BASE, length=128)
        area.append(b"x" * 64)
        with pytest.raises(CheckpointError):
            area.append(b"y" * 64)

    def test_durable_record_survives_power_cycle(self):
        psm, area = _area()
        area.append(b"durable", tag=1)
        psm.power_cycle()
        assert area.scan() == [(1, b"durable")]

    def test_undurable_tail_is_torn_off(self):
        psm, area = _area()
        area.append(b"committed", tag=1)
        area.append(b"in-flight", tag=2, durable=False)
        psm.power_cycle()  # rails die before the flush
        assert area.scan() == [(1, b"committed")]


class TestApplicationCheckpointer:
    def test_checkpoint_restore(self):
        _, area = _area()
        ckpt = ApplicationCheckpointer(area)
        ckpt.checkpoint({"stack": b"\x01\x02", "heap": b"\x03" * 32})
        restored = ckpt.restore_latest()
        assert restored == {"stack": b"\x01\x02", "heap": b"\x03" * 32}

    def test_latest_committed_wins(self):
        psm, area = _area()
        ckpt = ApplicationCheckpointer(area)
        ckpt.checkpoint({"x": b"old"})
        ckpt.checkpoint({"x": b"new"})
        psm.power_cycle()
        assert ckpt.restore_latest() == {"x": b"new"}

    def test_work_after_last_checkpoint_lost(self):
        psm, area = _area()
        ckpt = ApplicationCheckpointer(area)
        ckpt.checkpoint({"x": b"safe"})
        ckpt.checkpoint({"x": b"doomed"}, durable=False)
        psm.power_cycle()
        assert ckpt.restore_latest() == {"x": b"safe"}

    def test_no_checkpoints(self):
        _, area = _area()
        assert ApplicationCheckpointer(area).restore_latest() is None


class TestSystemCheckpointer:
    def test_per_task_vma_dumps(self):
        _, area = _area()
        sckpt = SystemCheckpointer(area)
        sckpt.dump_task(11, {0x1000: b"\xAA" * 64, 0x4000: b"\xBB" * 16})
        sckpt.dump_task(12, {0x1000: b"\xCC" * 8})
        assert sckpt.restore_task(11) == {
            0x1000: b"\xAA" * 64, 0x4000: b"\xBB" * 16}
        assert sckpt.restore_task(12) == {0x1000: b"\xCC" * 8}
        assert sckpt.restore_task(99) is None

    def test_periodic_dumps_keep_newest(self):
        psm, area = _area()
        sckpt = SystemCheckpointer(area)
        sckpt.dump_task(11, {0x1000: b"epoch-1"})
        sckpt.dump_task(11, {0x1000: b"epoch-2"})
        psm.power_cycle()
        assert sckpt.restore_task(11) == {0x1000: b"epoch-2"}


class TestSystemImager:
    def test_image_roundtrip(self):
        psm, area = _area()
        imager = SystemImager(area)
        image = bytes(range(256)) * 8
        imager.dump(image)
        psm.power_cycle()
        assert imager.load() == image

    def test_interrupted_dump_leaves_previous_image(self):
        psm, area = _area()
        imager = SystemImager(area)
        imager.dump(b"good-image" * 10)
        imager.dump(b"torn-image" * 10, interrupted=True)
        psm.power_cycle()
        assert imager.load() == b"good-image" * 10

    def test_no_image(self):
        _, area = _area()
        assert SystemImager(area).load() is None
