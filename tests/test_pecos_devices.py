"""Tests for the dpm framework, bootloader, and interrupt fabric."""

import pytest

from repro.pecos import (
    BCB,
    Bootloader,
    DeviceDriver,
    DevicePMError,
    DevicePMList,
    DeviceState,
    InterruptController,
    MachineRegisters,
    default_dpm_list,
)
from repro.sim import Simulator


class TestDeviceDriver:
    def test_suspend_chain_order_enforced(self):
        drv = DeviceDriver("dev", order=0)
        with pytest.raises(DevicePMError):
            drv.dpm_suspend()  # prepare first
        drv.dpm_prepare()
        with pytest.raises(DevicePMError):
            drv.dpm_suspend_noirq()  # suspend first
        drv.dpm_suspend()
        cost, dcb = drv.dpm_suspend_noirq()
        assert drv.state is DeviceState.SUSPENDED_NOIRQ
        assert dcb.device == "dev"
        assert not dcb.irq_enabled

    def test_resume_chain_order_enforced(self):
        drv = DeviceDriver("dev", order=0)
        drv.dpm_prepare()
        drv.dpm_suspend()
        _, dcb = drv.dpm_suspend_noirq()
        with pytest.raises(DevicePMError):
            drv.dpm_resume()  # noirq first
        drv.dpm_resume_noirq(dcb)
        drv.dpm_resume()
        drv.dpm_complete()
        assert drv.state is DeviceState.ACTIVE
        assert drv.irq_enabled

    def test_dcb_restores_mmio(self):
        drv = DeviceDriver("dev", order=0)
        original = drv.mmio_snapshot
        drv.dpm_prepare()
        drv.dpm_suspend()
        _, dcb = drv.dpm_suspend_noirq()
        drv.scribble_mmio()
        assert drv.mmio_snapshot != original
        drv.dpm_resume_noirq(dcb)
        assert drv.mmio_snapshot == original

    def test_wrong_dcb_rejected(self):
        a = DeviceDriver("a", order=0)
        b = DeviceDriver("b", order=1)
        for drv in (a, b):
            drv.dpm_prepare()
            drv.dpm_suspend()
        _, dcb_a = a.dpm_suspend_noirq()
        b.dpm_suspend_noirq()
        with pytest.raises(DevicePMError):
            b.dpm_resume_noirq(dcb_a)

    def test_manual_peripherals_cost_more(self):
        auto = DeviceDriver("auto", order=0)
        manual = DeviceDriver("manual", order=1, manual=True)
        auto.dpm_prepare()
        manual.dpm_prepare()
        assert manual.dpm_suspend() > auto.dpm_suspend()


class TestDevicePMList:
    def test_suspend_resume_roundtrip(self):
        dpm = default_dpm_list(extra_drivers=5)
        suspend_ns = dpm.suspend_all()
        assert suspend_ns > 0
        assert dpm.all_state(DeviceState.SUSPENDED_NOIRQ)
        assert len(dpm.dcbs) == len(dpm)
        resume_ns = dpm.resume_all()
        assert resume_ns > 0
        assert dpm.all_state(DeviceState.ACTIVE)
        assert not dpm.dcbs

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            DevicePMList([DeviceDriver("x", 0), DeviceDriver("x", 1)])

    def test_dependency_order(self):
        dpm = DevicePMList([DeviceDriver("late", 5), DeviceDriver("early", 1)])
        assert [d.name for d in dpm.drivers] == ["early", "late"]

    def test_resume_without_dcb_raises(self):
        dpm = default_dpm_list()
        with pytest.raises(DevicePMError):
            dpm.resume_all()

    def test_worst_case_population(self):
        dpm = default_dpm_list(extra_drivers=720)
        assert len(dpm) == 730


class TestBootloader:
    def _bcb(self):
        return BCB(
            machine_registers=MachineRegisters(mstatus=1),
            mepc=0x8020_0000,
            cpu_up_task_pointers=(0,) * 8,
        )

    def test_cold_boot_without_commit(self):
        boot = Bootloader()
        decision, cost = boot.power_on()
        assert not decision.warm and cost == 0.0

    def test_store_then_commit_then_warm(self):
        boot = Bootloader()
        boot.store_bcb(self._bcb())
        decision, _ = boot.power_on()
        assert not decision.warm  # commit missing: still a cold boot
        boot.commit()
        decision, cost = boot.power_on()
        assert decision.warm and cost > 0
        assert decision.bcb.mepc == 0x8020_0000

    def test_commit_without_bcb_raises(self):
        with pytest.raises(RuntimeError):
            Bootloader().commit()

    def test_precommitted_bcb_rejected(self):
        boot = Bootloader()
        bcb = BCB(machine_registers=MachineRegisters(), mepc=0,
                  cpu_up_task_pointers=(), committed=True)
        with pytest.raises(ValueError):
            boot.store_bcb(bcb)

    def test_clear_commit_forces_cold_boot(self):
        boot = Bootloader()
        boot.store_bcb(self._bcb())
        boot.commit()
        boot.clear_commit()
        decision, _ = boot.power_on()
        assert not decision.warm


class TestInterruptController:
    def test_power_event_nominates_master(self):
        ic = InterruptController(sim=Simulator(), cores=4)
        assert ic.raise_power_event(2) == 2
        assert ic.master == 2

    def test_double_seize_rejected(self):
        ic = InterruptController(sim=Simulator(), cores=4)
        ic.raise_power_event(0)
        with pytest.raises(RuntimeError):
            ic.raise_power_event(1)

    def test_ipi_delivery_with_latency(self):
        sim = Simulator()
        ic = InterruptController(sim=sim, cores=2)
        got = []
        ic.register(1, lambda src, payload: got.append((sim.now, src, payload)))
        ic.send_ipi(0, 1, payload="stop")
        sim.run()
        assert got == [(ic.ipi_latency_ns, 0, "stop")]
        assert ic.ipis_sent == 1

    def test_ipi_without_handler(self):
        ic = InterruptController(sim=Simulator(), cores=2)
        with pytest.raises(RuntimeError):
            ic.send_ipi(0, 1)

    def test_invalid_core_ids(self):
        ic = InterruptController(sim=Simulator(), cores=2)
        with pytest.raises(ValueError):
            ic.register(5, lambda s, p: None)
        with pytest.raises(ValueError):
            ic.raise_power_event(9)
