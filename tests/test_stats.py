"""Tests for the statistics accumulators."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim import (
    Counter,
    Histogram,
    LatencyStats,
    RatioStat,
    TimeSeries,
    geometric_mean,
    weighted_mean,
)


class TestLatencyStats:
    def test_empty(self):
        s = LatencyStats()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.percentile(50) == 0.0
        assert s.spread() == 0.0

    def test_single_value(self):
        s = LatencyStats()
        s.record(5.0)
        assert s.mean == 5.0
        assert s.min == s.max == 5.0
        assert s.stdev == 0.0

    def test_mean_min_max_exact(self):
        s = LatencyStats()
        s.extend([1.0, 2.0, 3.0, 4.0])
        assert s.mean == 2.5
        assert s.min == 1.0
        assert s.max == 4.0

    def test_spread_is_max_over_min(self):
        s = LatencyStats()
        s.extend([10.0, 50.0])
        assert s.spread() == 5.0

    def test_percentiles_of_uniform_ramp(self):
        s = LatencyStats()
        s.extend(float(i) for i in range(1, 101))
        assert abs(s.percentile(50) - 50.5) < 2.0
        assert s.percentile(0) == 1.0
        assert s.percentile(100) == 100.0

    def test_reservoir_bounded(self):
        s = LatencyStats(capacity=64)
        s.extend(float(i) for i in range(10_000))
        assert len(s._reservoir) == 64
        assert s.count == 10_000

    def test_summary_keys(self):
        s = LatencyStats()
        s.record(1.0)
        summary = s.summary()
        for key in ("count", "mean", "stdev", "min", "max", "p50", "p95", "p99"):
            assert key in summary

    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1,
                    max_size=300))
    def test_mean_matches_reference(self, values):
        s = LatencyStats()
        s.extend(values)
        assert s.mean == pytest.approx(sum(values) / len(values), rel=1e-9)
        assert s.min == min(values)
        assert s.max == max(values)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e3), min_size=2,
                    max_size=200))
    def test_variance_nonnegative(self, values):
        s = LatencyStats()
        s.extend(values)
        assert s.variance >= 0.0


class TestHistogram:
    def test_bins_and_edges(self):
        h = Histogram(0.0, 10.0, bins=5)
        assert len(h.edges()) == 6
        h.record(0.5)
        h.record(9.9)
        assert h.counts[0] == 1 and h.counts[4] == 1

    def test_under_and_overflow(self):
        h = Histogram(0.0, 10.0, bins=2)
        h.record(-1.0)
        h.record(10.0)
        assert h.underflow == 1 and h.overflow == 1
        assert h.total == 2

    def test_normalized_sums_to_one_without_overflow(self):
        h = Histogram(0.0, 4.0, bins=4)
        for v in (0.5, 1.5, 2.5, 3.5):
            h.record(v)
        assert sum(h.normalized()) == pytest.approx(1.0)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            Histogram(5.0, 5.0)
        with pytest.raises(ValueError):
            Histogram(0.0, 1.0, bins=0)


class TestCounterAndRatio:
    def test_counter_add_get(self):
        c = Counter()
        c.add("x")
        c.add("x", 4)
        assert c["x"] == 5
        assert c["missing"] == 0
        assert c.as_dict() == {"x": 5}

    def test_ratio_stat(self):
        r = RatioStat()
        assert r.ratio == 0.0
        r.record(True)
        r.record(False)
        r.record(True)
        assert r.ratio == pytest.approx(2 / 3)


class TestTimeSeries:
    def test_window_means(self):
        ts = TimeSeries(window=10.0)
        ts.record(1.0, 2.0)
        ts.record(9.0, 4.0)
        ts.record(15.0, 6.0)
        points = list(ts.points())
        assert points == [(5.0, 3.0), (15.0, 6.0)]

    def test_values_in_time_order(self):
        ts = TimeSeries(window=1.0)
        ts.record(5.5, 50.0)
        ts.record(0.5, 10.0)
        assert ts.values() == [10.0, 50.0]


class TestMeans:
    def test_geometric_mean_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_empty(self):
        assert geometric_mean([]) == 0.0

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_weighted_mean(self):
        assert weighted_mean([1.0, 3.0], [1.0, 1.0]) == 2.0
        assert weighted_mean([1.0, 3.0], [3.0, 1.0]) == 1.5

    def test_weighted_mean_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])

    def test_weighted_mean_zero_weights(self):
        assert weighted_mean([1.0], [0.0]) == 0.0

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1,
                    max_size=50))
    def test_geometric_mean_between_min_and_max(self, values):
        g = geometric_mean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9


class TestZeroSampleRendering:
    """Satellite: zero-sample nodes must render everywhere — summaries,
    registry snapshots, the ``repro stats`` outline and JSON — with
    exact zeros, never an inf/NaN leaking from the min/max bookkeeping."""

    def _registry(self):
        from repro.sim import StatsRegistry

        stats = LatencyStats("lat")
        ratio = RatioStat()
        registry = StatsRegistry()
        scope = registry.scoped("memory")
        scope.register("lat", stats)
        scope.register("hit_ratio", lambda: ratio.ratio)
        return registry, stats, ratio

    def test_zero_sample_summary_is_exact_zeros(self):
        summary = LatencyStats().summary()
        assert summary == {"count": 0, "mean": 0.0, "stdev": 0.0,
                           "min": 0.0, "max": 0.0, "p50": 0.0,
                           "p95": 0.0, "p99": 0.0}

    def test_summary_after_reset_matches_fresh(self):
        s = LatencyStats()
        s.extend([3.0, 9.0, 27.0])
        s.reset()
        assert s.summary() == LatencyStats().summary()
        assert s.percentile(99) == 0.0
        assert s.spread() == 0.0

    def test_freshly_reset_registry_snapshot_renders(self):
        import json
        import math as _math

        from repro.analysis.report import render_stats

        registry, stats, ratio = self._registry()
        stats.extend([1.0, 2.0])
        ratio.record(True)
        stats.reset()
        ratio.hits = ratio.total = 0

        tree = registry.snapshot()
        for value in registry.flat().values():
            assert _math.isfinite(value)
        rendered = render_stats(tree)
        assert any("lat" in line for line in rendered)
        assert not any("inf" in line or "nan" in line for line in rendered)
        encoded = json.dumps(tree, sort_keys=True)
        assert "Infinity" not in encoded and "NaN" not in encoded

    def test_summary_is_consistent_with_percentile(self):
        s = LatencyStats()
        s.extend(float(v) for v in range(1, 101))
        summary = s.summary()
        assert summary["p50"] == s.percentile(50)
        assert summary["p95"] == s.percentile(95)
        assert summary["p99"] == s.percentile(99)
        assert summary["min"] == 1.0 and summary["max"] == 100.0
