"""Campaign fast path: warm pools, columnar shards, cache hygiene.

This file enforces the fast-path contract rather than trusting it:

* a ``Machine.reset()`` machine is byte-identical to a freshly built
  one — run results, power-fail/recover outcomes, and the full stats
  tree (the :class:`~repro.orchestrate.pool.MachinePool` contract);
* warm-pool campaigns are byte-identical to cold-parallel and serial
  runs across seeds, for all four campaign consumers;
* :class:`~repro.orchestrate.results.PackedShard` reconstructs the
  original result objects exactly and falls back to pickling cleanly;
* a corrupt shard-cache entry is deleted on load failure, so the miss
  is paid once instead of on every warm re-run.
"""

import dataclasses
import os
import time

import pytest

from repro.analysis.crashfuzz import fuzz_machine, fuzz_trace
from repro.analysis.sensitivity import read_latency_sweep
from repro.core import Machine
from repro.faults import run_drill
from repro.litmus import run_litmus
from repro.orchestrate import (
    NO_VALUE,
    Campaign,
    CampaignRunner,
    MachinePool,
    PackedShard,
    ShardCache,
    fingerprint,
    pack_results,
)
from repro.power.psu import ATX_PSU
from repro.workloads import load_workload


@dataclasses.dataclass
class FastOutcome:
    """Columnar-shaped outcome: int counters + violations list."""

    ops: int = 0
    crashes: int = 0
    violations: list = dataclasses.field(default_factory=list)


def fast_trial(trial, rng):
    outcome = FastOutcome(ops=rng.randrange(100), crashes=trial % 2)
    if trial == 3:
        outcome.violations.append(f"trial {trial}: synthetic violation")
    return outcome


def tuple_trial(trial, rng):
    """Not a dataclass: exercises the pickle fallback codec."""
    return (trial, rng.randrange(1_000_000))


def flaky_trial(trial, rng, sentinel=None, hang_index=2):
    """Hangs at ``hang_index`` on the first attempt only (marker file)."""
    value = (trial, rng.randrange(1_000_000))
    if trial == hang_index:
        marker = f"{sentinel}.{trial}"
        if not os.path.exists(marker):
            with open(marker, "w"):
                pass
            time.sleep(60)
    return value


def _campaign(trial_fn=fast_trial, trials=8, seed=7, **params):
    return Campaign(name="fastpath", trials=trials, trial_fn=trial_fn,
                    seed=seed, params=params)


class TestPackedShard:
    def test_columnar_roundtrip_is_exact(self):
        results = [fast_trial(i, _rng(i)) for i in range(6)]
        packed = pack_results(results)
        assert packed.codec == "columnar"
        assert packed.count == 6
        assert packed.payload is None
        assert packed.results() == results

    def test_columnar_aggregates_match_objects(self):
        results = [fast_trial(i, _rng(i)) for i in range(6)]
        packed = pack_results(results)
        assert packed.sums()["ops"] == sum(r.ops for r in results)
        assert packed.sums()["crashes"] == sum(r.crashes for r in results)
        assert packed.violation_texts() == [
            text for r in results for text in r.violations]

    def test_meta_is_json_safe(self):
        import json

        packed = pack_results([fast_trial(i, _rng(i)) for i in range(4)])
        meta = packed.meta()
        assert json.loads(json.dumps(meta)) == meta
        assert meta["count"] == 4

    def test_non_dataclass_results_fall_back_to_pickle(self):
        results = [tuple_trial(i, _rng(i)) for i in range(5)]
        packed = pack_results(results)
        assert packed.codec == "pickle"
        assert packed.results() == results
        assert packed.meta()["count"] == 5

    def test_mixed_types_fall_back_to_pickle(self):
        results = [fast_trial(0, _rng(0)), tuple_trial(1, _rng(1))]
        assert pack_results(results).codec == "pickle"

    def test_empty_shard(self):
        packed = pack_results([])
        assert packed.count == 0
        assert packed.results() == []
        assert packed.meta()["violations"] == []


def _rng(trial):
    import random

    return random.Random(trial)


class TestShardCacheHygiene:
    """A corrupt cache entry is deleted on load failure (paid once)."""

    def _seed_cache(self, tmp_path):
        runner = CampaignRunner(jobs=1, cache_dir=tmp_path)
        expected = runner.run(_campaign())
        paths = sorted(tmp_path.glob("*.pkl"))
        assert paths, "campaign should have stored shards"
        return expected, paths

    def test_truncated_body_purged_then_recomputed(self, tmp_path):
        expected, paths = self._seed_cache(tmp_path)
        victim = paths[0]
        victim.write_bytes(victim.read_bytes()[:-7])

        runner = CampaignRunner(jobs=1, cache_dir=tmp_path)
        assert runner.run(_campaign()) == expected
        assert runner.cache.purged == 1
        # the bad file was deleted and a fresh entry written in its place
        assert runner.last_stats.executed_shards == 1
        runner = CampaignRunner(jobs=1, cache_dir=tmp_path)
        assert runner.run(_campaign()) == expected
        assert runner.last_stats.executed_shards == 0

    def test_bad_magic_purged_on_read(self, tmp_path):
        expected, paths = self._seed_cache(tmp_path)
        paths[0].write_bytes(b"not a shard entry at all")
        runner = CampaignRunner(jobs=1, cache_dir=tmp_path)
        assert runner.run(_campaign()) == expected
        assert runner.cache.purged == 1
        assert not paths[0].read_bytes().startswith(b"not a shard")

    def test_direct_cache_purge_counters(self, tmp_path):
        cache = ShardCache(tmp_path)
        key = fingerprint({"k": 1})
        cache.put(key, [1, 2, 3], meta={"count": 3})
        path = cache.path_for(key)
        path.write_bytes(path.read_bytes()[:-2])
        assert cache.get(key) is NO_VALUE
        assert cache.purged == 1
        assert not path.exists()

    def test_header_only_merge_never_touches_bodies(self, tmp_path):
        """run_summaries on a warm cache must not unpickle shard bodies."""
        runner = CampaignRunner(jobs=1, cache_dir=tmp_path)
        expected = runner.run_summaries(_campaign())
        # scribble over every pickled body, keeping the two header lines
        for path in tmp_path.glob("*.pkl"):
            blob = path.read_bytes()
            cut = blob.index(b"\n", blob.index(b"\n") + 1) + 1
            path.write_bytes(blob[:cut] + b"\xde\xad\xbe\xef")
        runner = CampaignRunner(jobs=1, cache_dir=tmp_path)
        assert runner.run_summaries(_campaign()) == expected
        assert runner.last_stats.executed_shards == 0


class TestMachineResetConformance:
    """A reset machine is byte-identical to a freshly constructed one."""

    @pytest.mark.parametrize("platform", ("legacy", "lightpc_b", "lightpc"))
    def test_reset_machine_matches_fresh(self, platform):
        workload = load_workload("aes", refs=2_000)
        fresh = Machine.for_workload(platform, workload)
        baseline = fresh.run(workload)
        baseline_tree = fresh.stats_tree()

        dirty = Machine.for_workload(platform, workload)
        dirty.run(workload)
        if not dirty.backend.is_volatile:
            dirty.power_fail(ATX_PSU)
            dirty.recover()
        dirty.reset()
        assert dirty.run(workload) == baseline
        assert dirty.stats_tree() == baseline_tree

    def test_reset_restores_power_fail_recover_cycle(self):
        workload = load_workload("aes", refs=2_000)
        fresh = Machine.for_workload("lightpc", workload, functional=True)
        fresh.run(workload)
        fail = fresh.power_fail(ATX_PSU)
        go = fresh.recover()
        verified = fresh.sng.verify_resumed_state()

        recycled = Machine.for_workload("lightpc", workload, functional=True)
        recycled.run(workload)
        recycled.power_fail(ATX_PSU)
        recycled.recover()
        recycled.reset()
        recycled.run(workload)
        assert recycled.power_fail(ATX_PSU) == fail
        assert recycled.recover() == go
        assert recycled.sng.verify_resumed_state() == verified

    def test_reset_discards_attached_backend(self):
        from repro.memory.device import PRAMTiming
        from repro.ocpmem.psm import PSM, PSMConfig

        workload = load_workload("aes", refs=1_500)
        machine = Machine.for_workload("lightpc", workload)
        baseline = machine.run(workload)
        machine.reset()
        psm_config = machine.config.psm_config()
        machine.attach_backend(PSM(PSMConfig(
            dimms=psm_config.dimms,
            lines_per_dimm=psm_config.lines_per_dimm,
            layout=psm_config.layout,
            write_aggregation=psm_config.write_aggregation,
            early_return_writes=psm_config.early_return_writes,
            ecc_reconstruction=psm_config.ecc_reconstruction,
            pram_timing=PRAMTiming(read_ns=999.0),
        )))
        assert machine.run(workload) != baseline  # the swap took effect
        machine.reset()
        assert machine.run(workload) == baseline  # ...and reset undid it


class TestMachinePool:
    def test_lease_builds_once_then_resets(self):
        workload = load_workload("aes", refs=1_500)
        pool = MachinePool()
        builds = []

        def build():
            machine = Machine.for_workload("lightpc", workload)
            builds.append(machine)
            return machine

        first = pool.lease("k", build)
        second = pool.lease("k", build)
        assert first is second
        assert len(builds) == 1
        assert (pool.built, pool.reused) == (1, 2 - 1)

    def test_lru_eviction_at_capacity(self):
        pool = MachinePool(capacity=2)

        class Stub:
            def reset(self):
                return self

        pool.lease("a", Stub)
        pool.lease("b", Stub)
        pool.lease("c", Stub)  # evicts "a"
        assert len(pool) == 2
        pool.lease("a", Stub)  # rebuilt
        assert pool.built == 4
        with pytest.raises(ValueError):
            MachinePool(capacity=0)


SEEDS = (3, 11, 2026)


class TestWarmIdentity:
    """serial == cold-parallel == warm-pool, per consumer, per seed."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fuzz_machine_identity(self, seed):
        serial = fuzz_machine(trials=4, seed=seed)
        cold = fuzz_machine(trials=4, seed=seed, warm=False)
        pooled = fuzz_machine(trials=4, seed=seed, jobs=2)
        assert serial == cold == pooled

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fuzz_trace_identity(self, seed, tmp_path):
        kwargs = dict(trials=6, window=96, seed=seed, refs=6_000,
                      trace_dir=tmp_path)
        serial = fuzz_trace(**kwargs)
        cold = fuzz_trace(warm=False, **kwargs)
        pooled = fuzz_trace(jobs=2, **kwargs)
        assert serial == cold == pooled

    @pytest.mark.parametrize("seed", SEEDS)
    def test_litmus_identity(self, seed):
        serial = run_litmus(trials=6, seed=seed)
        pooled = run_litmus(trials=6, seed=seed, jobs=2)
        assert serial == pooled

    @pytest.mark.parametrize("seed", SEEDS)
    def test_drill_identity(self, seed):
        serial = run_drill(trials=4, seed=seed)
        pooled = run_drill(trials=4, seed=seed, jobs=2)
        assert serial == pooled

    def test_sensitivity_identity(self, tmp_path):
        kwargs = dict(multipliers=(1.0, 2.0), refs=1_500,
                      trace_dir=tmp_path)
        serial = read_latency_sweep(**kwargs)
        cold = read_latency_sweep(warm=False, **kwargs)
        pooled = read_latency_sweep(jobs=2, **kwargs)
        assert serial == cold == pooled

    def test_cold_pool_matches_warm_pool(self):
        campaign = _campaign(trials=24, seed=5)
        warm = CampaignRunner(jobs=2).run(campaign)
        cold = CampaignRunner(jobs=2, reuse_pool=False).run(campaign)
        inline = CampaignRunner(jobs=1).run(campaign)
        assert warm == cold == inline


class TestWatchdogWarmPool:
    def test_retried_shard_matches_serial_under_warm_pool(self, tmp_path):
        """A timed-out-then-retried shard merges byte-identically, and
        the session's warm executor is unharmed by the watchdog path."""
        sentinel = str(tmp_path / "hung")
        flaky = Campaign(name="flaky", trials=6, trial_fn=flaky_trial,
                         seed=13, params={"sentinel": sentinel,
                                          "hang_index": 2})
        serial = CampaignRunner(jobs=1).run(
            Campaign(name="flaky", trials=6, trial_fn=tuple_trial, seed=13))
        # strip the params: tuple_trial is flaky_trial minus the hang
        watched = CampaignRunner(jobs=2, trial_timeout=3.0).run(flaky)
        assert watched == serial
        # the warm pool still answers after the watchdog detour
        after = CampaignRunner(jobs=2).run(_campaign(trials=12, seed=5))
        assert after == CampaignRunner(jobs=1).run(_campaign(trials=12,
                                                             seed=5))


class TestProgressThroughput:
    def test_executed_throughput_counts_only_executed(self):
        from repro.orchestrate import CampaignProgress

        state = {"now": 0.0}
        progress = CampaignProgress("x", total_trials=20,
                                    clock=lambda: state["now"])
        progress.start()
        state["now"] = 1.0
        progress.shard_done(10, cached=True)
        progress.shard_done(5, cached=False)
        assert progress.executed_throughput() == pytest.approx(5.0)
        assert progress.throughput() == pytest.approx(15.0)
