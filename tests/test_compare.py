"""Tests for the result-comparison regression tool."""

import pytest

from repro.analysis import ExperimentResult
from repro.analysis.compare import compare_files, compare_results
from repro.analysis.export import to_json


def _result(**overrides):
    payload = dict(
        experiment="figX",
        title="t",
        columns=["workload", "ratio"],
        rows=[["aes", 1.50], ["mcf", 3.00]],
        notes={"mean": 2.25},
    )
    payload.update(overrides)
    return ExperimentResult(**payload)


class TestCompareResults:
    def test_identical(self):
        assert compare_results(_result(), _result()).identical

    def test_within_tolerance(self):
        candidate = _result(rows=[["aes", 1.51], ["mcf", 3.01]],
                            notes={"mean": 2.26})
        assert compare_results(_result(), candidate, rel_tol=0.02).identical

    def test_numeric_drift_detected(self):
        candidate = _result(rows=[["aes", 1.50], ["mcf", 4.20]])
        comparison = compare_results(_result(), candidate)
        assert not comparison.identical
        assert any("mcf" in str(d) for d in comparison.differences)

    def test_note_drift_detected(self):
        comparison = compare_results(_result(), _result(notes={"mean": 9.0}))
        assert any("note[mean]" in str(d) for d in comparison.differences)

    def test_row_reordering_is_not_a_diff(self):
        candidate = _result(rows=[["mcf", 3.00], ["aes", 1.50]])
        assert compare_results(_result(), candidate).identical

    def test_missing_row_detected(self):
        candidate = _result(rows=[["aes", 1.50]])
        comparison = compare_results(_result(), candidate)
        assert any("missing" in str(d) for d in comparison.differences)

    def test_different_experiments_refuse(self):
        comparison = compare_results(_result(), _result(experiment="figY"))
        assert comparison.differences[0].where == "experiment"

    def test_column_change_refuses(self):
        candidate = _result(columns=["workload", "speedup"])
        assert compare_results(_result(), candidate).differences

    def test_summary_strings(self):
        assert "identical" in compare_results(_result(), _result()).summary()
        drifted = compare_results(_result(), _result(notes={"mean": 9.0}))
        assert "differences" in drifted.summary()


class TestCompareFiles:
    def test_file_round_trip(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(to_json(_result()))
        b.write_text(to_json(_result(rows=[["aes", 1.5], ["mcf", 3.3]])))
        comparison = compare_files(a, b, rel_tol=0.02)
        assert not comparison.identical

    def test_real_experiment_self_compare(self, tmp_path):
        from repro.analysis import figure8

        result = figure8()
        path = tmp_path / "fig8.json"
        path.write_text(to_json(result))
        assert compare_files(path, path).identical
