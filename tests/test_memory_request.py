"""Tests for memory request types and address helpers."""

import pytest

from repro.memory import (
    CACHELINE_BYTES,
    AddressSpaceError,
    MemoryOp,
    MemoryRequest,
    MemoryResponse,
    cacheline_of,
    row_of,
    split_cacheline,
)


class TestMemoryRequest:
    def test_defaults(self):
        r = MemoryRequest(MemoryOp.READ, address=128)
        assert r.size == CACHELINE_BYTES
        assert r.is_read and not r.is_write
        assert r.end_address == 128 + 64

    def test_write_flag(self):
        assert MemoryRequest(MemoryOp.WRITE).is_write

    def test_negative_address_rejected(self):
        with pytest.raises(AddressSpaceError):
            MemoryRequest(MemoryOp.READ, address=-1)

    def test_zero_size_rejected_for_data_ops(self):
        with pytest.raises(ValueError):
            MemoryRequest(MemoryOp.READ, size=0)

    def test_data_length_must_match_size(self):
        with pytest.raises(ValueError):
            MemoryRequest(MemoryOp.WRITE, size=64, data=b"\x00" * 32)

    def test_data_accepted_when_matching(self):
        r = MemoryRequest(MemoryOp.WRITE, size=4, data=b"abcd")
        assert r.data == b"abcd"


class TestMemoryResponse:
    def test_latency(self):
        req = MemoryRequest(MemoryOp.READ, time=10.0)
        resp = MemoryResponse(req, complete_time=35.0)
        assert resp.latency == 25.0

    def test_occupied_never_before_complete(self):
        req = MemoryRequest(MemoryOp.WRITE, time=0.0)
        resp = MemoryResponse(req, complete_time=50.0, occupied_until=10.0)
        assert resp.occupied_until == 50.0

    def test_occupied_preserved_when_later(self):
        req = MemoryRequest(MemoryOp.WRITE, time=0.0)
        resp = MemoryResponse(req, complete_time=50.0, occupied_until=400.0)
        assert resp.occupied_until == 400.0


class TestAddressHelpers:
    def test_cacheline_of(self):
        assert cacheline_of(0) == 0
        assert cacheline_of(63) == 0
        assert cacheline_of(64) == 64
        assert cacheline_of(130) == 128

    def test_row_of(self):
        assert row_of(0) == 0
        assert row_of(4095) == 0
        assert row_of(4096) == 1

    def test_split_cacheline_pram(self):
        assert split_cacheline(0x80, 32) == [0x80, 0xA0]

    def test_split_cacheline_dram(self):
        beats = split_cacheline(0, 8)
        assert len(beats) == 8
        assert beats[-1] == 56

    def test_split_unaligned_address_snaps_to_line(self):
        assert split_cacheline(0x8C, 32) == [0x80, 0xA0]
