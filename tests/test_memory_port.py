"""The memory port layer: protocol conformance, interposers, stats registry.

One parametrized suite runs the same contract against every backend —
DRAM, both PSM generations, and the conventional-PMEM controllers — so a
new tier only has to join the fixture list to inherit the whole battery.
"""

from __future__ import annotations

import pytest

from repro.core.machine import (
    Machine,
    _BACKEND_FACTORIES,
    register_backend_factory,
)
from repro.memory.dram import DRAMConfig, DRAMSubsystem
from repro.memory.port import (
    AddressRange,
    AddressRangePartition,
    BandwidthThrottle,
    FaultInjector,
    InjectedPowerFailure,
    Interposer,
    LatencyTap,
    MemoryBackend,
    PortNotSupportedError,
    assert_memory_backend,
)
from repro.memory.request import AddressSpaceError, MemoryOp, MemoryRequest
from repro.ocpmem.psm import PSM, PSMConfig
from repro.pmem.controller import NMEMController, PMEMController
from repro.pmem.dimm import PMEMDIMM
from repro.sim.stats import LatencyStats, RatioStat, StatsRegistry
from repro.workloads.suites import load_workload

CAPACITY = 1 << 20


def _dram():
    return DRAMSubsystem(DRAMConfig(capacity=CAPACITY))


def _psm():
    return PSM(PSMConfig(lines_per_dimm=1 << 10), functional=True)


def _psm_b():
    return PSM(PSMConfig.lightpc_b(lines_per_dimm=1 << 10))


def _pmem():
    return PMEMController([PMEMDIMM(capacity=CAPACITY) for _ in range(2)])


def _nmem():
    return NMEMController(_dram(), _pmem())


BACKENDS = {
    "dram": _dram,
    "psm": _psm,
    "psm_b": _psm_b,
    "pmem": _pmem,
    "nmem": _nmem,
}


@pytest.fixture(params=sorted(BACKENDS), ids=sorted(BACKENDS))
def backend(request):
    return BACKENDS[request.param]()


class TestProtocolConformance:
    """The shared contract every memory tier must satisfy."""

    def test_satisfies_protocol(self, backend):
        assert_memory_backend(backend, context="conformance suite")
        assert isinstance(backend, MemoryBackend)

    def test_capacity_positive(self, backend):
        assert backend.capacity > 0

    def test_basic_access_monotonic(self, backend):
        t = 0.0
        for address in (0, 64, 128, 4096):
            for op in (MemoryOp.WRITE, MemoryOp.READ):
                response = backend.access(
                    MemoryRequest(op, address=address, time=t))
                assert response.complete_time >= t
                assert response.occupied_until >= response.complete_time
                t = response.complete_time

    def test_cacheline_granularity_enforced(self, backend):
        with pytest.raises(ValueError):
            backend.access(MemoryRequest(MemoryOp.READ, address=0, size=128))

    def test_out_of_range_rejected(self, backend):
        with pytest.raises(AddressSpaceError):
            backend.access(MemoryRequest(
                MemoryOp.READ, address=backend.capacity + (1 << 20)))

    def test_flush_and_drain_advance_time(self, backend):
        t1 = backend.flush(10.0)
        assert t1 >= 10.0
        # idempotent: a second quiesce of a quiet backend still advances
        assert backend.flush(t1) >= t1
        assert backend.drain(t1) >= t1

    def test_reset_float_or_unsupported(self, backend):
        try:
            done = backend.reset(0.0)
        except PortNotSupportedError:
            # volatile/conventional tiers honestly lack the port, and the
            # error stays catchable as ValueError for old callers
            with pytest.raises(ValueError):
                backend.reset(0.0)
        else:
            assert done >= 0.0

    def test_capture_restore_roundtrip(self, backend):
        blob = backend.capture_registers()
        assert isinstance(blob, bytes)
        backend.restore_wear_registers(blob)  # must accept its own capture

    def test_power_cycle_then_usable(self, backend):
        backend.access(MemoryRequest(MemoryOp.WRITE, address=0))
        backend.power_cycle()
        response = backend.access(MemoryRequest(MemoryOp.READ, address=0))
        assert response.complete_time >= 0.0

    def test_counters_numeric(self, backend):
        backend.access(MemoryRequest(MemoryOp.WRITE, address=0))
        counters = backend.counters()
        assert counters
        assert all(isinstance(v, (int, float)) for v in counters.values())

    def test_buffer_hit_ratio_bounded(self, backend):
        for i in range(8):
            backend.access(MemoryRequest(MemoryOp.READ, address=i * 64))
        assert 0.0 <= backend.buffer_hit_ratio <= 1.0

    def test_register_stats_snapshot(self, backend):
        stats = StatsRegistry()
        backend.register_stats(stats.scoped("memory"))
        backend.access(MemoryRequest(MemoryOp.WRITE, address=64))
        tree = stats.snapshot()
        assert "memory" in tree and tree["memory"]

    def test_power_parts_shape(self, backend):
        parts = backend.power_parts(backend.counters())
        assert parts
        for name, count, counters in parts:
            assert isinstance(name, str) and count > 0
            assert counters is None or isinstance(counters, dict)


class TestInterposers:
    def test_chain_satisfies_protocol_and_unwraps(self):
        psm = _psm()
        chain = LatencyTap(BandwidthThrottle(psm, bytes_per_ns=64.0))
        assert_memory_backend(chain, context="interposer chain")
        assert chain.unwrap() is psm
        assert not chain.is_volatile
        assert chain.capacity == psm.capacity

    def test_latency_tap_records(self):
        tap = LatencyTap(_dram(), name="probe")
        for i in range(4):
            tap.access(MemoryRequest(MemoryOp.READ, address=i * 64))
        tap.access(MemoryRequest(MemoryOp.WRITE, address=0))
        assert tap.read_latency.count == 4
        assert tap.write_latency.count == 1
        stats = StatsRegistry()
        tap.register_stats(stats)
        assert "taps.probe.read.count" in stats.flat()

    def test_bandwidth_throttle_delays_bursts(self):
        throttle = BandwidthThrottle(_dram(), bytes_per_ns=0.064)
        first = throttle.access(MemoryRequest(MemoryOp.READ, address=0,
                                              time=0.0))
        second = throttle.access(MemoryRequest(MemoryOp.READ, address=64,
                                               time=first.complete_time))
        # 64 B at 0.064 B/ns = 1000 ns of line time per access
        assert second.blocked_ns > 0
        assert throttle.throttled_ns > 0

    def test_fault_injector_trips_once_then_forwards(self):
        port = FaultInjector(_psm(), crash_at_op=2)
        port.access(MemoryRequest(MemoryOp.WRITE, address=0,
                                  data=b"\x07" * 64))
        port.flush(0.0)
        with pytest.raises(InjectedPowerFailure):
            port.access(MemoryRequest(MemoryOp.WRITE, address=64))
        assert port.tripped
        port.power_fail()
        # recovery traffic flows through the tripped port untouched
        response = port.access(MemoryRequest(MemoryOp.READ, address=0))
        assert response.data == b"\x07" * 64


class TestAddressRangePartition:
    """A hybrid DRAM+PSM tier as pure composition."""

    def _hybrid(self):
        return AddressRangePartition([
            AddressRange(0, CAPACITY, _dram()),
            AddressRange(CAPACITY, CAPACITY + (1 << 18), _psm()),
        ])

    def test_satisfies_protocol(self):
        hybrid = self._hybrid()
        assert_memory_backend(hybrid, context="hybrid tier")
        assert hybrid.is_volatile          # the DRAM region is lossy
        assert hybrid.capacity == CAPACITY + (1 << 18)

    def test_routes_and_rebases(self):
        hybrid = self._hybrid()
        low = hybrid.access(MemoryRequest(MemoryOp.READ, address=64))
        high = hybrid.access(MemoryRequest(
            MemoryOp.READ, address=CAPACITY + 64))
        # responses carry the caller's request, not the rebased one
        assert low.request.address == 64
        assert high.request.address == CAPACITY + 64

    def test_unmapped_and_straddling_rejected(self):
        hybrid = self._hybrid()
        with pytest.raises(AddressSpaceError):
            hybrid.access(MemoryRequest(
                MemoryOp.READ, address=CAPACITY + (1 << 18)))
        with pytest.raises(AddressSpaceError):
            hybrid.access(MemoryRequest(MemoryOp.READ, address=CAPACITY - 32))

    def test_overlapping_regions_rejected(self):
        with pytest.raises(ValueError):
            AddressRangePartition([
                AddressRange(0, 128, _dram()),
                AddressRange(64, 256, _dram()),
            ])

    def test_lifecycle_fans_out(self):
        hybrid = self._hybrid()
        assert hybrid.flush(5.0) >= 5.0
        hybrid.restore_wear_registers(hybrid.capture_registers())
        hybrid.power_cycle()
        with pytest.raises(PortNotSupportedError):
            hybrid.reset(0.0)          # the DRAM region lacks the port

    def test_counters_and_stats_prefixed_per_region(self):
        hybrid = self._hybrid()
        hybrid.access(MemoryRequest(MemoryOp.WRITE, address=0))
        counters = hybrid.counters()
        assert any(key.startswith("region0_") for key in counters)
        assert any(key.startswith("region1_") for key in counters)
        stats = StatsRegistry()
        hybrid.register_stats(stats)
        paths = stats.paths()
        assert any(p.startswith("region0.") for p in paths)
        assert any(p.startswith("region1.") for p in paths)


class TestStatsRegistry:
    def test_snapshot_and_flat(self):
        stats = StatsRegistry()
        stats.register("machine.uptime", 4.0)
        stats.register("machine.busy", True)
        latency = LatencyStats("read")
        latency.record(10.0)
        stats.register("memory.read", latency)
        tree = stats.snapshot()
        assert tree["machine"]["uptime"] == 4.0
        assert tree["machine"]["busy"] == 1.0
        assert tree["memory"]["read"]["count"] == 1
        flat = stats.flat()
        assert flat["memory.read.count"] == 1.0

    def test_callables_resolve_lazily(self):
        stats = StatsRegistry()
        box = {"value": 1}
        stats.register("box.value", lambda: box["value"])
        assert stats.snapshot()["box"]["value"] == 1
        box["value"] = 7
        assert stats.snapshot()["box"]["value"] == 7

    def test_ratio_stat_resolution(self):
        stats = StatsRegistry()
        ratio = RatioStat()
        ratio.record(True)
        ratio.record(False)
        stats.register("hits", ratio)
        assert stats.snapshot()["hits"] == {
            "hits": 1, "total": 2, "ratio": 0.5}

    def test_scoped_views_share_one_tree(self):
        stats = StatsRegistry()
        scope = stats.scoped("psm").scoped("dimm3")
        scope.register("group0.write", 12.0)
        assert stats.flat() == {"psm.dimm3.group0.write": 12.0}
        assert scope.paths() == ["group0.write"]

    def test_collisions_rejected(self):
        stats = StatsRegistry()
        stats.register("a.b", 1.0)
        with pytest.raises(ValueError):
            stats.register("a.b", 2.0)        # exact duplicate
        with pytest.raises(ValueError):
            stats.register("a.b.c", 3.0)      # under an existing leaf
        with pytest.raises(ValueError):
            stats.register("a", 4.0)          # above an existing subtree

    def test_bad_path_segment_rejected(self):
        stats = StatsRegistry()
        with pytest.raises(ValueError):
            stats.register("bad path!", 1.0)

    def test_drop_subtree(self):
        stats = StatsRegistry()
        stats.register("memory.read", 1.0)
        stats.register("memory.write", 2.0)
        stats.register("cpu.ipc", 3.0)
        assert stats.drop("memory") == 2
        assert stats.flat() == {"cpu.ipc": 3.0}

    def test_unresolvable_source_raises(self):
        stats = StatsRegistry()
        stats.register("weird", object())
        with pytest.raises(TypeError):
            stats.snapshot()


class TestMachineIntegration:
    def test_incomplete_backend_rejected_by_name(self):
        class HalfBackend:
            is_volatile = True

            def access(self, request):
                raise NotImplementedError

        register_backend_factory(
            "broken", lambda config, functional: HalfBackend())
        try:
            with pytest.raises(TypeError) as excinfo:
                Machine("broken")
            message = str(excinfo.value)
            assert "HalfBackend" in message
            assert "flush" in message and "power_cycle" in message
        finally:
            del _BACKEND_FACTORIES["broken"]

    def test_unknown_platform_rejected(self):
        with pytest.raises(ValueError):
            Machine("not-a-platform")

    def test_attach_backend_rewires_sng_and_stats(self):
        workload = load_workload("aes", refs=800)
        machine = Machine.for_workload("lightpc", workload)
        old_sng = machine.sng
        replacement = PSM(machine.config.psm_config())
        machine.attach_backend(replacement)
        assert machine.backend is replacement
        assert machine.complex.backend is replacement
        assert machine.sng is not None and machine.sng is not old_sng
        assert machine.sng.port is replacement
        machine.run(workload)
        assert machine.stats.flat()        # stats re-registered and live

    def test_attach_volatile_backend_drops_sng(self):
        workload = load_workload("aes", refs=800)
        machine = Machine.for_workload("lightpc", workload)
        machine.attach_backend(DRAMSubsystem(DRAMConfig(capacity=1 << 26)))
        assert machine.sng is None

    def test_stats_tree_schema_uniform_across_platforms(self):
        workload = load_workload("aes", refs=800)
        trees = {}
        for platform in ("legacy", "lightpc_b", "lightpc"):
            machine = Machine.for_workload(platform, workload)
            machine.run(workload)
            trees[platform] = machine.stats_tree()
        for platform, tree in trees.items():
            assert sorted(tree) == ["cpu", "memory", "platform"]
            assert tree["platform"] == platform
            assert sorted(tree["cpu"]) == [f"core{i}" for i in range(8)]
        # both PSM generations expose identical memory schemas
        def schema(node, prefix=""):
            if not isinstance(node, dict):
                return {prefix}
            out = set()
            for key, value in node.items():
                out |= schema(value, f"{prefix}.{key}" if prefix else key)
            return out

        assert schema(trees["lightpc"]["memory"]) == \
            schema(trees["lightpc_b"]["memory"])

    def test_run_result_carries_stats_snapshot(self):
        workload = load_workload("aes", refs=800)
        machine = Machine.for_workload("lightpc", workload)
        result = machine.run(workload)
        assert result.stats["memory"]["read"]["count"] > 0

    def test_cli_stats_subcommand(self, capsys):
        from repro.cli import main

        assert main(["stats", "--workload", "aes", "--refs", "500",
                     "--json"]) == 0
        import json

        tree = json.loads(capsys.readouterr().out)
        assert tree["platform"] == "lightpc"
        assert "memory" in tree and "cpu" in tree


class TestFaultInjectorBoundaries:
    """Satellite regression: ``completed`` prefix accounting at the
    off-by-one edges — a cut scheduled at op 0 and exactly at the ends
    of an operation stream."""

    def _injector(self, crash_at, **kwargs):
        return FaultInjector(_psm(), crash_at_op=crash_at, **kwargs)

    def test_crash_at_op_zero_serves_nothing(self):
        port = self._injector(0)
        with pytest.raises(InjectedPowerFailure) as excinfo:
            port.access(MemoryRequest(MemoryOp.WRITE, 0,
                                      data=b"\x07" * 64, time=0.0))
        assert excinfo.value.completed == []
        assert port.tripped and port.op_index == 0
        # nothing reached the backend: the line still reads as initial
        response = port.access(MemoryRequest(MemoryOp.READ, 0, time=0.0))
        assert not response.data or not any(response.data)

    def test_crash_at_op_zero_in_batch_serves_nothing(self):
        port = self._injector(0)
        requests = [MemoryRequest(MemoryOp.WRITE, i * 64,
                                  data=bytes([i + 1]) * 64, time=0.0)
                    for i in range(6)]
        with pytest.raises(InjectedPowerFailure) as excinfo:
            port.access_batch(requests)
        assert excinfo.value.completed == []
        assert port.op_index == 0 and port.tripped

    def test_schedule_rearm_resets_the_count(self):
        port = self._injector(None)
        for i in range(5):
            port.access(MemoryRequest(MemoryOp.WRITE, i * 64,
                                      data=b"\x01" * 64, time=0.0))
        assert port.op_index == 5
        port.schedule(1)
        assert port.op_index == 0 and not port.tripped
        port.access(MemoryRequest(MemoryOp.READ, 0, time=0.0))
        with pytest.raises(InjectedPowerFailure):
            port.access(MemoryRequest(MemoryOp.READ, 0, time=0.0))
        port.schedule(None)
        assert not port.tripped
        port.access(MemoryRequest(MemoryOp.READ, 0, time=0.0))

    def test_drains_are_free_by_default_but_schedulable(self):
        free = self._injector(1)
        free.access(MemoryRequest(MemoryOp.WRITE, 0, data=b"\x01" * 64,
                                  time=0.0))
        free.drain(0.0)                 # not an op: no trip
        assert free.op_index == 1 and not free.tripped

        counted = self._injector(1, count_drains=True)
        counted.access(MemoryRequest(MemoryOp.WRITE, 0, data=b"\x01" * 64,
                                     time=0.0))
        with pytest.raises(InjectedPowerFailure):
            counted.drain(0.0)          # the fence is the crashed op
        assert counted.tripped and counted.op_index == 1


class TestWearRegisterRoundTripUnderChain:
    """Satellite: ``power_cycle`` + ``restore_wear_registers`` through a
    full LatencyTap -> Throttle -> Partition -> FaultInjector chain must
    round-trip the wear state and keep the stats tree shape intact."""

    LINES_PER_REGION = 1 << 9

    def _chain(self):
        def region_psm():
            # a low wear threshold so the Start-Gap mapping actually
            # moves during the test and the capture carries real state
            return FaultInjector(PSM(PSMConfig(
                dimms=2, lines_per_dimm=self.LINES_PER_REGION,
                wear_threshold=8), functional=True))

        span = 2 * self.LINES_PER_REGION * 64
        partition = AddressRangePartition([
            AddressRange(0, span, region_psm()),
            AddressRange(span, 2 * span, region_psm()),
        ])
        return LatencyTap(BandwidthThrottle(partition, bytes_per_ns=2.0),
                          name="port")

    def _write_both_regions(self, chain, count=64):
        span = 2 * self.LINES_PER_REGION * 64
        t = 0.0
        for i in range(count):
            for base in (0, span):
                response = chain.access(MemoryRequest(
                    MemoryOp.WRITE, base + (i % 128) * 64,
                    data=bytes([1 + i % 200]) * 64, time=t))
                t = response.complete_time
        return chain.flush(t)

    def test_wear_state_round_trips(self):
        chain = self._chain()
        self._write_both_regions(chain)
        committed = chain.capture_registers()

        chain.power_cycle()
        # the cycle reset the volatile wear registers: a fresh capture
        # differs until the EP-cut state is restored
        assert chain.capture_registers() != committed
        chain.restore_wear_registers(committed)
        assert chain.capture_registers() == committed

    def test_flushed_data_survives_cycle_after_restore(self):
        chain = self._chain()
        end = self._write_both_regions(chain)
        expected = {}
        span = 2 * self.LINES_PER_REGION * 64
        for base in (0, span):
            for i in range(8):
                address = base + i * 64
                data = chain.access(MemoryRequest(
                    MemoryOp.READ, address, time=end)).data
                expected[address] = bytes(data) if data else None
        committed = chain.capture_registers()
        chain.power_cycle()
        chain.restore_wear_registers(committed)
        for address, data in expected.items():
            observed = chain.access(MemoryRequest(
                MemoryOp.READ, address, time=end)).data
            assert (bytes(observed) if observed else None) == data, \
                f"address {address:#x} diverged across the cycle"

    def test_stats_tree_shape_is_identical_across_cycle(self):
        chain = self._chain()
        self._write_both_regions(chain)
        before = StatsRegistry()
        chain.register_stats(before.scoped("memory"))
        keys_before = set(before.flat())
        assert keys_before  # the chain registered something

        committed = chain.capture_registers()
        chain.power_cycle()
        chain.restore_wear_registers(committed)

        after = StatsRegistry()
        chain.register_stats(after.scoped("memory"))
        assert set(after.flat()) == keys_before
        # the already-registered registry stays live across the cycle
        # (interposers reset their distributions in place)
        assert set(before.flat()) == keys_before
