"""Cross-validation: event-driven Stop vs the closed-form decomposition."""

import pytest

from repro.pecos import Kernel, KernelConfig, SnG
from repro.pecos.sng_events import run_event_driven_stop


def _pair(kernel_config=None, dirty=256):
    """Run both implementations on identical worlds; returns their reports."""
    closed_kernel = Kernel(kernel_config or KernelConfig())
    closed_kernel.populate()
    event_kernel = Kernel(kernel_config or KernelConfig())
    event_kernel.populate()
    cores = closed_kernel.config.cores
    dirty_lines = [dirty] * cores

    sng = SnG(closed_kernel, flush_port=lambda t: t + 2_000.0,
              dirty_lines_fn=lambda: dirty_lines)
    closed = sng.stop()
    event = run_event_driven_stop(event_kernel, dirty_lines)
    return closed, event


class TestAgreement:
    def test_default_world_totals_agree(self):
        closed, event = _pair()
        assert event.total_ns == pytest.approx(closed.total_ns, rel=0.05)

    def test_phases_agree(self):
        closed, event = _pair()
        assert event.process_stop_ns == pytest.approx(
            closed.process_stop_ns, rel=0.08)
        assert event.device_stop_ns == pytest.approx(
            closed.device_stop_ns, rel=0.08)
        assert event.offline_ns == pytest.approx(
            closed.offline_ns, rel=0.10)

    def test_idle_world_agrees(self):
        closed, event = _pair(KernelConfig(
            user_processes=18, kernel_threads=22, sleeping_fraction=0.85))
        assert event.total_ns == pytest.approx(closed.total_ns, rel=0.06)

    def test_many_cores_agree(self):
        closed, event = _pair(KernelConfig(cores=32, extra_drivers=200))
        assert event.total_ns == pytest.approx(closed.total_ns, rel=0.06)

    def test_heavy_dirty_caches_agree(self):
        closed, event = _pair(dirty=8_192)
        assert event.total_ns == pytest.approx(closed.total_ns, rel=0.06)


class TestEventDrivenProperties:
    def test_dumps_overlap_the_ipi_chain(self):
        """Concurrent worker dumps must cost ~max, not the sum — the event
        run with huge caches should grow far less than serialized dumps
        would."""
        kernel_a = Kernel()
        kernel_a.populate()
        small = run_event_driven_stop(kernel_a, [64] * 8)
        kernel_b = Kernel()
        kernel_b.populate()
        big = run_event_driven_stop(kernel_b, [40_000] * 8)
        from repro.pecos.sng import SnGTiming
        per_dump = 40_000 * SnGTiming().cacheline_flush_ns
        growth = big.offline_ns - small.offline_ns
        assert growth < 2.2 * per_dump  # ~max + master's, never 7x

    def test_dirty_lines_validated(self):
        kernel = Kernel()
        kernel.populate()
        with pytest.raises(ValueError):
            run_event_driven_stop(kernel, [0, 0])

    def test_ipis_counted(self):
        kernel = Kernel()
        kernel.populate()
        report = run_event_driven_stop(kernel, [64] * 8)
        assert report.ipis >= kernel.config.cores - 1


class TestGoAgreement:
    def test_go_totals_agree(self):
        from repro.pecos.sng_events import run_event_driven_go

        closed_kernel = Kernel()
        closed_kernel.populate()
        sng = SnG(closed_kernel, flush_port=lambda t: t + 2_000.0,
                  dirty_lines_fn=lambda: [64] * 8)
        sng.stop()
        closed = sng.go()

        event_kernel = Kernel()
        event_kernel.populate()
        event = run_event_driven_go(event_kernel)
        assert event.total_ns == pytest.approx(closed.total_ns, rel=0.05)
        assert event.device_resume_ns == pytest.approx(
            closed.device_resume_ns, rel=0.08)

    def test_go_reschedule_scales_with_tasks(self):
        from repro.pecos.sng_events import run_event_driven_go

        small = Kernel(KernelConfig(user_processes=10, kernel_threads=10))
        small.populate()
        big = Kernel(KernelConfig(user_processes=100, kernel_threads=50))
        big.populate()
        assert run_event_driven_go(big).reschedule_ns > \
            run_event_driven_go(small).reschedule_ns
