"""Tests for the power model and PSU hold-up behaviour."""

import pytest

from repro.power import (
    ATX_PSU,
    SERVER_PSU,
    PSUModel,
    PowerEventInjector,
    PowerModel,
)
from repro.sim import Simulator


class TestPowerModel:
    def test_unknown_component_rejected(self):
        with pytest.raises(KeyError):
            PowerModel().component_power("flux_capacitor", 1e6)

    def test_static_power_scales_with_instances(self):
        model = PowerModel()
        one = model.component_power("dram_dimm", 1e6)
        four = model.component_power("dram_dimm", 1e6, scale=4.0)
        assert four == pytest.approx(4 * one)

    def test_dynamic_energy_added(self):
        model = PowerModel()
        idle = model.component_power("dram_dimm", 1e6)
        busy = model.component_power("dram_dimm", 1e6, {"reads": 1000})
        assert busy > idle

    def test_unknown_counters_ignored(self):
        model = PowerModel()
        a = model.component_power("psm", 1e6)
        b = model.component_power("psm", 1e6, {"nonsense": 1e9})
        assert a == b

    def test_duration_validation(self):
        with pytest.raises(ValueError):
            PowerModel().component_power("psm", 0.0)

    def test_report_totals(self):
        model = PowerModel()
        report = model.report(1e9, [("psm", 1.0, None), ("board_light", 1.0, None)])
        assert report.total_w == pytest.approx(
            model.spec("psm").static_w + model.spec("board_light").static_w)
        assert report.energy_j == pytest.approx(report.total_w)  # 1 second

    def test_cpu_parts_split_busy_idle(self):
        model = PowerModel()
        parts = model.cpu_parts(8, busy_fraction=0.5)
        assert parts[0][1] == 4.0 and parts[1][1] == 4.0

    def test_lightpc_static_well_below_legacy(self):
        model = PowerModel()
        legacy = model.report(1e6, model.cpu_parts(8) + [
            ("dram_dimm", 4.0, None), ("dram_complex", 1.0, None),
            ("board_legacy", 1.0, None)])
        light = model.report(1e6, model.cpu_parts(8) + [
            ("psm", 1.0, None), ("bare_nvdimm", 6.0, None),
            ("board_light", 1.0, None)])
        assert light.total_w / legacy.total_w < 0.35


class TestPSU:
    def test_holdup_shrinks_with_load(self):
        assert ATX_PSU.holdup_ms(20.0) < ATX_PSU.holdup_ms(10.0)

    def test_holdup_capped_at_light_load(self):
        assert ATX_PSU.holdup_ms(0.1) == ATX_PSU.max_holdup_ms
        assert ATX_PSU.holdup_ms(0.0) == ATX_PSU.max_holdup_ms

    def test_paper_measured_windows(self):
        """ATX ~22 ms and server ~55 ms at the busy (legacy) draw."""
        assert ATX_PSU.holdup_ms(18.9) == pytest.approx(22.0, rel=0.05)
        assert SERVER_PSU.holdup_ms(18.9) == pytest.approx(55.0, rel=0.05)

    def test_measured_exceeds_spec(self):
        assert ATX_PSU.holdup_ms(18.9) > ATX_PSU.spec_holdup_ms


class TestPowerEventInjector:
    def test_fire_and_deadline(self):
        sim = Simulator()
        fired = []
        injector = PowerEventInjector(sim, ATX_PSU, load_w=18.9,
                                      on_power_event=fired.append)
        injector.schedule(1_000.0)
        sim.run()
        assert fired == [1_000.0]
        assert injector.deadline_ns == pytest.approx(
            1_000.0 + ATX_PSU.holdup_ns(18.9))

    def test_survival_check(self):
        sim = Simulator()
        injector = PowerEventInjector(sim, ATX_PSU, load_w=18.9)
        injector.schedule(0.0)
        sim.run()
        assert injector.check_survived(10e6)     # 10 ms: inside
        assert not injector.check_survived(30e6)  # 30 ms: rails dead

    def test_check_before_event_raises(self):
        injector = PowerEventInjector(Simulator(), ATX_PSU, load_w=10.0)
        with pytest.raises(RuntimeError):
            injector.check_survived(0.0)

    def test_double_arm_rejected(self):
        sim = Simulator()
        injector = PowerEventInjector(sim, ATX_PSU, load_w=10.0)
        injector.schedule(5.0)
        with pytest.raises(RuntimeError):
            injector.schedule(10.0)
