"""Determinism: identical inputs must reproduce identical outputs.

A reproduction repository lives or dies on this — every figure must come
out the same on every run, or paper-vs-measured comparisons are noise.
"""

import pytest

from repro.analysis import figure2b, figure8
from repro.core import Machine
from repro.pecos import Kernel, KernelConfig, SnG
from repro.workloads import TraceGenerator, load_workload
from repro.workloads.trace import LocalityProfile


class TestTraceDeterminism:
    def test_generator_is_pure(self):
        profile = LocalityProfile(working_set_lines=2048, hot_lines=128)
        a = list(TraceGenerator(profile, seed=11).records(800))
        b = list(TraceGenerator(profile, seed=11).records(800))
        assert a == b

    def test_workload_traces_replayable(self):
        w = load_workload("redis", refs=1_600)
        first = [list(t) for t in w.traces()]
        second = [list(t) for t in w.traces()]
        assert first == second


class TestMachineDeterminism:
    def test_identical_runs_identical_results(self):
        results = []
        for _ in range(2):
            workload = load_workload("snap", refs=3_000)
            machine = Machine.for_workload("lightpc", workload)
            result = machine.run(workload)
            results.append((
                result.wall_ns, result.instructions,
                result.mean_read_latency_ns, result.total_w,
                machine.backend.media_line_writes,
                machine.backend.reconstructions,
            ))
        assert results[0] == results[1]

    def test_legacy_runs_identical_too(self):
        walls = []
        for _ in range(2):
            workload = load_workload("mcf", refs=3_000)
            machine = Machine.for_workload("legacy", workload)
            walls.append(machine.run(workload).wall_ns)
        assert walls[0] == walls[1]

    def test_different_seeds_different_results(self):
        workload_a = load_workload("snap", refs=3_000, seed=1)
        workload_b = load_workload("snap", refs=3_000, seed=2)
        wall_a = Machine.for_workload("lightpc", workload_a).run(workload_a).wall_ns
        wall_b = Machine.for_workload("lightpc", workload_b).run(workload_b).wall_ns
        assert wall_a != wall_b


class TestSnGDeterminism:
    def test_stop_reports_identical(self):
        reports = []
        for _ in range(2):
            kernel = Kernel(KernelConfig(seed=3))
            kernel.populate()
            sng = SnG(kernel, flush_port=lambda t: t + 2_000.0,
                      dirty_lines_fn=lambda: [128] * 8)
            reports.append(sng.stop())
        assert reports[0].total_ns == reports[1].total_ns
        assert reports[0].fractions() == reports[1].fractions()


class TestExperimentDeterminism:
    def test_figure2b_reproduces_exactly(self):
        a = figure2b(samples=600, seed=4)
        b = figure2b(samples=600, seed=4)
        assert a.rows == b.rows
        assert a.notes == b.notes

    def test_figure8_reproduces_exactly(self):
        assert figure8().rows == figure8().rows
