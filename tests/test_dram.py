"""Tests for the DRAM subsystem."""

import pytest

from repro.memory import (
    DRAMConfig,
    DRAMSubsystem,
    MemoryOp,
    MemoryRequest,
    ROW_BYTES,
)


def _read(dram, address, time=0.0):
    return dram.access(MemoryRequest(MemoryOp.READ, address=address, time=time))


class TestDRAMSubsystem:
    def test_row_hit_vs_miss_latency(self):
        dram = DRAMSubsystem(DRAMConfig(capacity=1 << 22))
        miss = _read(dram, 0)
        hit = _read(dram, 64, time=miss.complete_time)
        assert hit.latency < miss.latency

    def test_rows_interleave_across_ranks(self):
        dram = DRAMSubsystem(DRAMConfig(capacity=1 << 22, ranks=4))
        assert dram.rank_of(0) == 0
        assert dram.rank_of(ROW_BYTES) == 1
        assert dram.rank_of(4 * ROW_BYTES) == 0

    def test_parallel_ranks_do_not_serialize(self):
        dram = DRAMSubsystem(DRAMConfig(capacity=1 << 22, ranks=4))
        a = _read(dram, 0)
        b = _read(dram, ROW_BYTES)  # different rank
        assert b.latency == pytest.approx(a.latency)

    def test_same_rank_back_to_back_serializes(self):
        dram = DRAMSubsystem(DRAMConfig(capacity=1 << 22, ranks=4))
        a = _read(dram, 0)
        b = _read(dram, 64)  # same rank, same instant
        assert b.complete_time > a.complete_time

    def test_refresh_applied_lazily(self):
        dram = DRAMSubsystem(DRAMConfig(capacity=1 << 22))
        interval = dram.config.timing.refresh_interval_ns
        _read(dram, 0, time=interval * 3 + 1.0)
        assert dram.refresh_count == 3

    def test_flush_drains(self):
        dram = DRAMSubsystem(DRAMConfig(capacity=1 << 22))
        _read(dram, 0)
        response = dram.access(MemoryRequest(MemoryOp.FLUSH, time=0.0))
        assert response.complete_time >= dram.config.timing.row_miss_ns

    def test_reset_rejected(self):
        dram = DRAMSubsystem(DRAMConfig(capacity=1 << 22))
        with pytest.raises(ValueError):
            dram.access(MemoryRequest(MemoryOp.RESET))

    def test_oversized_request_rejected(self):
        dram = DRAMSubsystem(DRAMConfig(capacity=1 << 22))
        with pytest.raises(ValueError):
            dram.access(MemoryRequest(MemoryOp.READ, size=128))

    def test_functional_roundtrip_and_volatility(self):
        dram = DRAMSubsystem(DRAMConfig(capacity=1 << 22))
        dram.access(MemoryRequest(
            MemoryOp.WRITE, address=256, size=64, data=b"\x5A" * 64))
        read = _read(dram, 256, time=1000.0)
        assert read.data == b"\x5A" * 64
        dram.power_cycle()
        read = _read(dram, 256)
        assert read.data is None

    def test_is_volatile_flag(self):
        assert DRAMSubsystem(DRAMConfig(capacity=1 << 22)).is_volatile

    def test_counters(self):
        dram = DRAMSubsystem(DRAMConfig(capacity=1 << 22))
        _read(dram, 0)
        dram.access(MemoryRequest(MemoryOp.WRITE, address=0, time=100.0))
        counters = dram.counters()
        assert counters["reads"] == 1 and counters["writes"] == 1

    def test_capacity_must_divide_into_ranks(self):
        with pytest.raises(ValueError):
            DRAMConfig(capacity=ROW_BYTES * 3, ranks=2)

    def test_hit_ratio_tracked(self):
        dram = DRAMSubsystem(DRAMConfig(capacity=1 << 22))
        _read(dram, 0)
        _read(dram, 64, time=200.0)
        assert dram.row_hit_ratio == pytest.approx(0.5)
