"""Tests for the extension studies (sensitivity, endurance, consolidation)."""

import pytest

from repro.analysis.consolidation import consolidation_study
from repro.analysis.endurance import endurance_projection
from repro.analysis.sensitivity import read_latency_sweep, write_pulse_sweep


class TestSensitivity:
    def test_read_sweep_structure(self):
        result = read_latency_sweep(multipliers=(1.0, 2.0),
                                    workload="aes", refs=2_000)
        assert len(result.rows) == 2
        assert result.rows[0][0] == 1.0
        assert "ratio_at_1x" in result.notes

    def test_read_sweep_monotone(self):
        result = read_latency_sweep(multipliers=(1.0, 3.0),
                                    workload="aes", refs=3_000)
        assert result.rows[1][2] > result.rows[0][2]

    def test_write_sweep_structure(self):
        result = write_pulse_sweep(multipliers=(1.0, 2.0),
                                   workload="aes", refs=2_000)
        assert [row[0] for row in result.rows] == [1.0, 2.0]
        assert "gap_grows_with_pulse" in result.notes

    def test_write_sweep_gap_widens(self):
        result = write_pulse_sweep(multipliers=(0.5, 3.0),
                                   workload="snap", refs=3_000)
        gaps = result.column("b_over_lightpc")
        assert gaps[-1] > gaps[0]


class TestEndurance:
    @pytest.fixture(scope="class")
    def result(self):
        return endurance_projection(workloads=("aes", "snap"), refs=3_000)

    def test_structure(self, result):
        assert len(result.rows) == 2
        assert result.notes["min_filter_ratio"] > 1.0

    def test_leveled_lifetimes_ordered_by_corner(self, result):
        for row in result.rows:
            assert row[5] > 0  # 1e8 corner years (index 5)
            # the 1e8 corner gives 100x the 1e6 corner (both capped)
            assert row[5] >= row[4]

    def test_unleveled_is_catastrophic(self, result):
        assert result.notes["worst_unleveled_days_at_1e6"] < \
            result.notes["worst_leveled_years_at_1e6"] * 365.25

    def test_capacity_scales_lifetime(self):
        # compare uncapped headline notes (the table caps display values)
        small = endurance_projection(workloads=("snap",), refs=8_000,
                                     capacity_tb=0.001)
        big = endurance_projection(workloads=("snap",), refs=8_000,
                                   capacity_tb=1.0)
        assert big.notes["worst_leveled_years_at_1e6"] > \
            small.notes["worst_leveled_years_at_1e6"]


class TestConsolidation:
    def test_structure_and_interference(self):
        result = consolidation_study(pairs=(("aes", "mcf"),), refs=2_000)
        assert len(result.rows) == 3  # one pair x three platforms
        platforms = {row[1] for row in result.rows}
        assert platforms == {"legacy", "lightpc_b", "lightpc"}
        for row in result.rows:
            assert row[4] > 0.5  # slowdown is a sane ratio

    def test_mean_notes_present(self):
        result = consolidation_study(pairs=(("aes", "mcf"),), refs=2_000)
        for platform in ("legacy", "lightpc_b", "lightpc"):
            assert f"{platform}_mean_slowdown" in result.notes
