"""Tests for the live world: time-sliced execution across power cycles."""

import pytest

from repro.pecos import Kernel, KernelConfig, SnG, TaskState
from repro.pecos.schedsim import LiveWorld


def _world(cores=4):
    kernel = Kernel(KernelConfig(cores=cores, user_processes=0,
                                 kernel_threads=0, sleeping_fraction=0.0))
    kernel.populate()
    return LiveWorld(kernel)


def _sng_for(world):
    return SnG(world.kernel, flush_port=lambda t: t + 2_000.0,
               dirty_lines_fn=lambda: [64] * world.kernel.config.cores)


class TestLiveExecution:
    def test_single_task_completes(self):
        world = _world()
        task = world.spawn("worker", work=500)
        world.run_to_completion()
        assert task.finished
        assert task.done_work == 500

    def test_progress_lives_in_pcb(self):
        world = _world()
        task = world.spawn("worker", work=10_000)
        world.run_for(1_000.0)
        assert task.task.registers.pc == task.done_work > 0

    def test_parallel_tasks_share_cores(self):
        world = _world(cores=2)
        tasks = [world.spawn(f"t{i}", work=300) for i in range(4)]
        world.run_to_completion()
        assert all(t.finished for t in tasks)
        assert world.total_done() == 1200

    def test_sleeping_task_wakes_and_finishes(self):
        world = _world()
        task = world.spawn("napper", work=200, sleep_every=50,
                           sleep_ns=20_000.0)
        world.run_to_completion(max_ns=1e9)
        assert task.finished

    def test_work_is_monotonic(self):
        world = _world()
        world.spawn("w", work=100_000)
        a = world.total_done()
        world.run_for(10_000.0)
        b = world.total_done()
        world.run_for(10_000.0)
        c = world.total_done()
        assert a <= b <= c

    def test_clock_never_rewinds(self):
        world = _world()
        world.spawn("w", work=100)
        t0 = world.clock.now_ns
        world.run_for(5_000.0)
        assert world.clock.now_ns >= t0
        with pytest.raises(ValueError):
            world.clock.advance(-1.0)


class TestPowerCycleInvariant:
    def _run_with_outage(self, outage_after_ns):
        world = _world()
        for i in range(5):
            world.spawn(f"t{i}", work=2_000,
                        sleep_every=500 if i % 2 else 0, sleep_ns=8_000.0)
        world.run_for(outage_after_ns)
        progress_at_cut = world.snapshot_progress()

        sng = _sng_for(world)
        sng.stop()
        # the EP-cut must capture exactly the progress at the cut
        assert world.snapshot_progress() == progress_at_cut
        assert all(lt.task.state is TaskState.UNINTERRUPTIBLE
                   for lt in world.live.values())
        go = sng.go()
        assert go.warm
        world.resume_after_go()
        world.run_to_completion(max_ns=1e10)
        return world

    def test_no_work_lost_or_duplicated(self):
        """Total work across a power cycle == uninterrupted total."""
        for outage_at in (1_000.0, 37_000.0, 200_000.0):
            world = self._run_with_outage(outage_at)
            assert world.total_done() == world.total_work()

    def test_mid_sleep_outage(self):
        world = _world()
        napper = world.spawn("napper", work=100, sleep_every=30,
                             sleep_ns=1e6)
        world.run_for(40_000.0)  # napper is asleep now
        assert napper.task.state is TaskState.INTERRUPTIBLE
        sng = _sng_for(world)
        sng.stop()  # Drive-to-Idle wakes and parks it
        sng.go()
        world.resume_after_go()
        world.run_to_completion(max_ns=1e10)
        assert napper.finished

    def test_outage_before_any_work(self):
        world = _world()
        task = world.spawn("fresh", work=100)
        sng = _sng_for(world)
        sng.stop()
        sng.go()
        world.resume_after_go()
        world.run_to_completion()
        assert task.done_work == 100
