"""Tests for the measured execution time series."""

import pytest

from repro.analysis.timeseries import execution_timeseries


class TestExecutionTimeseries:
    @pytest.fixture(scope="class")
    def result(self):
        return execution_timeseries("aes", "lightpc", windows=6, refs=6_000)

    def test_window_count(self, result):
        assert result.notes["windows"] == 6
        assert len(result.rows) == 6

    def test_clock_monotone(self, result):
        ends = result.column("t_end_ms")
        assert ends == sorted(ends)

    def test_ipc_warms_up(self, result):
        """Cold caches make the first window the slowest."""
        assert result.notes["steady_ipc"] > result.notes["warmup_ipc"]

    def test_watts_positive_and_sane(self, result):
        for watts in result.column("watts"):
            assert 3.0 < watts < 25.0

    def test_platforms_differ_in_power(self):
        light = execution_timeseries("aes", "lightpc", windows=3, refs=3_000)
        legacy = execution_timeseries("aes", "legacy", windows=3, refs=3_000)
        assert legacy.rows[0][4] > light.rows[0][4] * 2

    def test_window_validation(self):
        with pytest.raises(ValueError):
            execution_timeseries(windows=0, refs=1_000)
