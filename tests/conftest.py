"""Shared fixtures: the columnar-kernel mode matrix.

The exact-path columnar kernels (DRAM/PSM/PMEM ``access_batch``, the
window array backing) promise observational identity with the pure
Python loops.  ``kernel_mode`` parametrizes a suite over both modes via
:func:`repro._np.set_kernel_mode`, so every equivalence assertion runs
once against the fallback loops and once against the numpy kernels on
the same interpreter.  The numpy leg skips cleanly when numpy is absent
(the ``REPRO_NO_NUMPY`` CI leg), leaving the fallback leg as proof of
no-numpy parity.
"""

from __future__ import annotations

import pytest

from repro import _np


@pytest.fixture(params=["fallback", "numpy"], scope="module")
def kernel_mode(request):
    """Force one columnar-kernel mode for the requesting module."""
    mode = request.param
    if mode == "numpy" and not _np.HAVE_NUMPY:
        pytest.skip("numpy unavailable: only the fallback leg runs")
    _np.set_kernel_mode(mode)
    try:
        yield mode
    finally:
        _np.set_kernel_mode(None)
