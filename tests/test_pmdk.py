"""Tests for the DAX layer and the libpmemobj-like object library."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pmem import (
    DaxTranslationError,
    DevDaxFile,
    OID_NULL,
    PersistentObjectPool,
    PoolCorruptionError,
    TransactionAbort,
    TransactionError,
)

POOL_CAPACITY = 1 << 20


class TestDax:
    def test_mmap_and_translate(self):
        dev = DevDaxFile("/dev/pmem0", capacity=1 << 20)
        mapping = dev.mmap(va_base=0x7000_0000, file_offset=4096, length=8192)
        assert mapping.translate(0x7000_0000) == 4096
        assert mapping.translate(0x7000_0000 + 8191) == 4096 + 8191

    def test_translate_outside_mapping_rejected(self):
        dev = DevDaxFile("/dev/pmem0", capacity=1 << 20)
        mapping = dev.mmap(0x1000, 0, 64)
        with pytest.raises(DaxTranslationError):
            mapping.translate(0x1000 + 64)

    def test_file_range_bounds(self):
        dev = DevDaxFile("/dev/pmem0", capacity=4096)
        with pytest.raises(DaxTranslationError):
            dev.mmap(0, 0, 8192)

    def test_overlapping_va_rejected(self):
        dev = DevDaxFile("/dev/pmem0", capacity=1 << 20)
        dev.mmap(0x1000, 0, 4096)
        with pytest.raises(DaxTranslationError):
            dev.mmap(0x1800, 8192, 4096)

    def test_resolve_across_mappings(self):
        dev = DevDaxFile("/dev/pmem0", capacity=1 << 20)
        dev.mmap(0x1000, 0, 4096)
        dev.mmap(0x9000, 65536, 4096)
        assert dev.resolve(0x9000) == 65536
        with pytest.raises(DaxTranslationError):
            dev.resolve(0x5000)

    def test_munmap(self):
        dev = DevDaxFile("/dev/pmem0", capacity=1 << 20)
        mapping = dev.mmap(0x1000, 0, 4096)
        dev.munmap(mapping)
        assert dev.find_mapping(0x1000) is None


class TestPoolBasics:
    def test_root_created_once(self):
        pool = PersistentObjectPool(POOL_CAPACITY)
        root = pool.root(128)
        assert root != OID_NULL
        assert pool.root(128) == root

    def test_root_regrow_rejected(self):
        pool = PersistentObjectPool(POOL_CAPACITY)
        pool.root(64)
        with pytest.raises(ValueError):
            pool.root(128)

    def test_alloc_distinct_oids(self):
        pool = PersistentObjectPool(POOL_CAPACITY)
        a = pool.alloc(100)
        b = pool.alloc(100)
        assert a != b
        assert pool.size_of(a) == 100

    def test_write_read_roundtrip(self):
        pool = PersistentObjectPool(POOL_CAPACITY)
        oid = pool.alloc(64)
        pool.write(oid, 0, b"hello")
        assert pool.read(oid, 0, 5) == b"hello"

    def test_bounds_enforced(self):
        pool = PersistentObjectPool(POOL_CAPACITY)
        oid = pool.alloc(8)
        with pytest.raises(ValueError):
            pool.write(oid, 4, b"too-long")
        with pytest.raises(ValueError):
            pool.read(oid, 0, 9)

    def test_null_and_unknown_oid_rejected(self):
        pool = PersistentObjectPool(POOL_CAPACITY)
        with pytest.raises(ValueError):
            pool.direct(OID_NULL)
        with pytest.raises(ValueError):
            pool.direct(12345)

    def test_heap_exhaustion(self):
        pool = PersistentObjectPool(1 << 17)
        with pytest.raises(MemoryError):
            pool.alloc(1 << 18)

    def test_cost_model_accumulates(self):
        pool = PersistentObjectPool(POOL_CAPACITY)
        oid = pool.alloc(64)
        before = pool.cost.accumulated_ns
        pool.read(oid, 0, 8)
        assert pool.cost.accumulated_ns > before


class TestCrashSemantics:
    def test_unpersisted_write_lost_on_crash(self):
        pool = PersistentObjectPool(POOL_CAPACITY)
        oid = pool.alloc(64)
        pool.write(oid, 0, b"volatile")
        pool.crash()
        pool.recover()
        assert pool.read(oid, 0, 8) == bytes(8)

    def test_persisted_write_survives_crash(self):
        pool = PersistentObjectPool(POOL_CAPACITY)
        oid = pool.alloc(64)
        pool.write(oid, 0, b"durable!")
        pool.persist(oid, 64)
        pool.crash()
        pool.recover()
        assert pool.read(oid, 0, 8) == b"durable!"

    def test_allocations_survive_crash(self):
        pool = PersistentObjectPool(POOL_CAPACITY)
        oid = pool.alloc(64)
        pool.crash()
        pool.recover()
        # header is persisted at alloc time, so the heap pointer is intact
        new = pool.alloc(64)
        assert new > oid


class TestTransactions:
    def test_commit_is_durable(self):
        pool = PersistentObjectPool(POOL_CAPACITY)
        oid = pool.alloc(64)
        with pool.tx_begin():
            pool.write(oid, 0, b"committed")
        pool.crash()
        pool.recover()
        assert pool.read(oid, 0, 9) == b"committed"

    def test_crash_mid_tx_rolls_back(self):
        pool = PersistentObjectPool(POOL_CAPACITY)
        oid = pool.alloc(64)
        pool.write(oid, 0, b"origin")
        pool.persist(oid, 64)
        pool.tx_begin()
        pool.write(oid, 0, b"newval")
        pool.persist(oid, 64)  # even persisted tx data must roll back
        pool.crash()
        pool.recover()
        assert pool.read(oid, 0, 6) == b"origin"

    def test_explicit_abort_rolls_back(self):
        pool = PersistentObjectPool(POOL_CAPACITY)
        oid = pool.alloc(64)
        pool.write(oid, 0, b"origin")
        pool.persist(oid, 64)
        with pool.tx_begin():
            pool.write(oid, 0, b"newval")
            raise TransactionAbort()
        assert pool.read(oid, 0, 6) == b"origin"

    def test_exception_propagates_but_rolls_back(self):
        pool = PersistentObjectPool(POOL_CAPACITY)
        oid = pool.alloc(64)
        pool.write(oid, 0, b"origin")
        pool.persist(oid, 64)
        with pytest.raises(RuntimeError):
            with pool.tx_begin():
                pool.write(oid, 0, b"newval")
                raise RuntimeError("boom")
        assert pool.read(oid, 0, 6) == b"origin"

    def test_nested_tx_rejected(self):
        pool = PersistentObjectPool(POOL_CAPACITY)
        pool.tx_begin()
        with pytest.raises(TransactionError):
            pool.tx_begin()

    def test_log_overflow_detected(self):
        pool = PersistentObjectPool(POOL_CAPACITY, log_bytes=256)
        oid = pool.alloc(1024)
        with pytest.raises(TransactionError):
            with pool.tx_begin():
                for i in range(16):
                    pool.write(oid, i * 64, bytes(64))
                    # force distinct undo records
                    pool._tx_ranges.clear()

    def test_multiple_commits_in_sequence(self):
        pool = PersistentObjectPool(POOL_CAPACITY)
        oid = pool.alloc(64)
        for value in (b"one", b"two"):
            with pool.tx_begin():
                pool.write(oid, 0, value.ljust(8, b"\x00"))
        pool.crash()
        pool.recover()
        assert pool.read(oid, 0, 3) == b"two"

    @settings(deadline=None, max_examples=25)
    @given(st.lists(st.tuples(st.integers(0, 7), st.binary(min_size=8, max_size=8)),
                    min_size=1, max_size=8),
           st.booleans())
    def test_tx_atomicity_property(self, writes, crash_before_commit):
        """After a crash, the object reflects either all of the transaction
        or none of it — never a mix."""
        pool = PersistentObjectPool(POOL_CAPACITY)
        oid = pool.alloc(64)
        baseline = bytes(range(64))
        pool.write(oid, 0, baseline)
        pool.persist(oid, 64)

        tx = pool.tx_begin()
        image = bytearray(baseline)
        for slot, payload in writes:
            pool.write(oid, slot * 8, payload)
            image[slot * 8: slot * 8 + 8] = payload
        if crash_before_commit:
            pool.crash()
            pool.recover()
            assert pool.read(oid, 0, 64) == baseline
        else:
            tx.__exit__(None, None, None)
            pool.crash()
            pool.recover()
            assert pool.read(oid, 0, 64) == bytes(image)


class TestPoolValidation:
    def test_bad_magic_detected(self):
        pool = PersistentObjectPool(POOL_CAPACITY)
        pool._media[0:8] = b"GARBAGE!"
        with pytest.raises(PoolCorruptionError):
            pool.recover()

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PersistentObjectPool(1024)

    def test_objects_enumeration(self):
        pool = PersistentObjectPool(POOL_CAPACITY)
        a = pool.alloc(10)
        b = pool.alloc(20)
        assert dict(pool.objects()) == {a: 10, b: 20}
