"""The execution-engine layer: registry, protocol, and equivalence.

The tentpole contract: every exact engine (scalar, window, extent) is
observationally identical at machine scope — same RunResult, same stats,
same wear registers — and the registry is the only dispatch point left
(``Machine.run``, litmus and drill all resolve engines by name).  The
columnar kernels must agree between their numpy and pure-python legs,
and the CLI rejects unknown engine names with the one-line exit-2
convention.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.cli import main
from repro.core import Machine
from repro.engine import columnar
from repro.engine.base import (
    DEFAULT_ENGINE,
    ExecutionEngine,
    assert_execution_engine,
    available_engines,
    canonical_engine_name,
    default_engine_name,
    register_engine,
    resolve_engine,
    set_default_engine,
)
from repro.engine.columnar import (
    ResponseSummary,
    WindowSignature,
    signature_of_columns,
    signature_of_records,
    signature_of_window,
    summarize_responses,
)
from repro.engine.epoch import EpochEngine
from repro.engine.extent import ExtentEngine
from repro.engine.scalar import ScalarEngine
from repro.engine.window import WindowEngine
from repro.memory.batch import RequestWindow, backend_access_batch
from repro.memory.extent import Extent, window_from_extents
from repro.ocpmem.psm import PSM
from repro.workloads import load_workload

BUILTINS = ("epoch", "extent", "scalar", "window")


def _result_fields(result) -> dict:
    """RunResult comparison dict minus the engine-identity fields."""
    fields = dataclasses.asdict(result)
    fields.pop("engine")
    fields.pop("epoch")
    return fields


class TestRegistry:
    def test_builtins_registered(self):
        assert available_engines() == BUILTINS

    def test_default_is_the_pre_layer_exact_path(self):
        assert DEFAULT_ENGINE == "extent"
        assert default_engine_name() == "extent"
        assert resolve_engine(None).name == "extent"

    def test_alias_batch_resolves_to_window(self):
        assert canonical_engine_name("batch") == "window"
        assert resolve_engine("batch").name == "window"

    def test_unknown_name_raises_with_inventory(self):
        with pytest.raises(ValueError, match="unknown engine 'warp'"):
            canonical_engine_name("warp")
        with pytest.raises(ValueError, match=", ".join(BUILTINS)):
            resolve_engine("warp")

    def test_factories_build_private_instances(self):
        assert resolve_engine("epoch") is not resolve_engine("epoch")

    def test_instance_passes_through(self):
        engine = WindowEngine(window=128)
        assert resolve_engine(engine) is engine

    def test_set_default_round_trip(self):
        previous = set_default_engine("window")
        try:
            assert previous == "extent"
            assert resolve_engine(None).name == "window"
        finally:
            set_default_engine(previous)
        assert default_engine_name() == "extent"

    def test_external_engine_plugs_in_by_name(self):
        class Narrow(ExtentEngine):
            name = "narrow-test"

        register_engine("narrow-test", lambda: Narrow(window=64))
        try:
            engine = resolve_engine("narrow-test")
            assert engine.window == 64
            assert isinstance(engine, ExecutionEngine)
        finally:
            from repro.engine import base

            base._ENGINE_FACTORIES.pop("narrow-test")


class TestProtocol:
    @pytest.mark.parametrize(
        "engine", (ScalarEngine(), WindowEngine(), ExtentEngine(),
                   EpochEngine()), ids=lambda e: e.name)
    def test_builtin_conformance(self, engine):
        assert isinstance(engine, ExecutionEngine)
        assert_execution_engine(engine)
        assert engine.name in BUILTINS

    def test_nonconformant_object_is_named_and_rejected(self):
        class Hollow:
            name = "hollow"

            def drain(self, core, records):
                pass

        with pytest.raises(TypeError, match="flush_cache, drive_program"):
            assert_execution_engine(Hollow(), context="test engine")
        with pytest.raises(TypeError, match="name"):
            assert_execution_engine(object())


class TestMachineEquivalence:
    """Scalar, window and extent engines are *exact*: one workload, three
    engines, identical RunResults (the observational contract the epoch
    engine's forced-boundary mode then inherits)."""

    REFS = 6_000

    def _run(self, engine):
        workload = load_workload("aes", refs=self.REFS, seed=5)
        machine = Machine.for_workload("lightpc", workload, engine=engine)
        return machine.run(workload), machine

    @pytest.mark.parametrize("name", ("scalar", "window"))
    def test_exact_engines_match_the_default(self, name):
        baseline, base_machine = self._run(None)
        result, machine = self._run(name)
        assert baseline.engine == "extent"
        assert result.engine == name
        assert _result_fields(result) == _result_fields(baseline)
        assert machine.stats_tree() == base_machine.stats_tree()
        assert machine.backend.capture_registers() == \
            base_machine.backend.capture_registers()

    def test_run_can_switch_engine_per_call(self):
        workload = load_workload("aes", refs=self.REFS, seed=5)
        machine = Machine.for_workload("lightpc", workload)
        first = machine.run(workload)
        second = machine.run(workload, engine="scalar")
        assert first.engine == "extent"
        assert second.engine == "scalar"
        assert machine.engine.name == "scalar"

    def test_exact_engines_report_no_epoch_payload(self):
        result, _ = self._run("window")
        assert result.epoch is None


def _reference_columns(count: int, seed: int):
    rng = random.Random(seed)
    addresses = [rng.randrange(0, 1 << 20, 8) for _ in range(count)]
    is_write = [rng.random() < 0.3 for _ in range(count)]
    instructions = [rng.randrange(0, 12) for _ in range(count)]
    return addresses, is_write, instructions


class TestColumnarKernels:
    @pytest.mark.parametrize("count", (0, 1, 2, 257, 4096))
    def test_numpy_and_fallback_signatures_agree(self, count, monkeypatch):
        columns = _reference_columns(count, seed=count)
        fast = signature_of_columns(*columns)
        monkeypatch.setattr(columnar, "HAVE_NUMPY", False)
        slow = signature_of_columns(*columns)
        assert fast.records == slow.records == count
        assert fast.writes == slow.writes
        assert fast.instructions == slow.instructions
        assert fast.unique_lines == slow.unique_lines
        assert fast.row_locality == pytest.approx(slow.row_locality)

    def test_record_and_window_signatures_share_the_kernel(self):
        addresses, is_write, instructions = _reference_columns(512, seed=9)
        records = [
            type("R", (), dict(address=a, is_write=w, instructions=i))()
            for a, w, i in zip(addresses, is_write, instructions)
        ]
        from_records = signature_of_records(records)
        from_window = signature_of_window(
            RequestWindow(is_write, addresses, [0.0] * len(addresses)))
        assert from_records.records == from_window.records
        assert from_records.writes == from_window.writes
        assert from_records.unique_lines == from_window.unique_lines
        assert from_records.row_locality == from_window.row_locality
        # instructions ride the trace records only; windows carry none
        assert from_window.instructions == 0

    def test_signature_phase_comparison(self):
        base = signature_of_columns(*_reference_columns(1024, seed=3))
        assert base.close_to(base, tolerance=0.0)
        drifted = WindowSignature(
            records=base.records,
            writes=int(base.writes * 2.5) + base.records // 4,
            instructions=base.instructions,
            unique_lines=base.unique_lines,
            row_locality=base.row_locality,
        )
        assert not drifted.close_to(base, tolerance=0.05)
        empty = WindowSignature(0, 0, 0, 0, 0.0)
        assert empty.close_to(empty, tolerance=0.0)
        assert not empty.close_to(base, tolerance=0.5)

    def test_response_summary_window_matches_fallback(self, monkeypatch):
        psm = PSM()
        window = window_from_extents([Extent(0, 64), Extent(1 << 14, 32)],
                                     0.0)
        responses = backend_access_batch(psm, window)
        fast = summarize_responses(responses)
        monkeypatch.setattr(columnar, "HAVE_NUMPY", False)
        slow = summarize_responses(responses)
        assert fast.responses == slow.responses == 96
        assert fast.latency_total == pytest.approx(slow.latency_total)
        assert fast.latency_min == slow.latency_min
        assert fast.latency_max == slow.latency_max
        assert fast.blocked_total == pytest.approx(slow.blocked_total)
        assert fast.latency_mean == pytest.approx(
            fast.latency_total / fast.responses)

    def test_response_summary_empty(self):
        assert summarize_responses([]) == ResponseSummary(
            0, 0.0, 0.0, 0.0, 0.0)
        assert summarize_responses([]).latency_mean == 0.0


class TestCLIEngineFlag:
    def test_run_reports_selected_engine(self, capsys):
        assert main(["run", "--workload", "aes", "--refs", "2000",
                     "--engine", "epoch"]) == 0
        assert "(epoch engine)" in capsys.readouterr().out

    def test_run_alias_accepted(self, capsys):
        assert main(["run", "--workload", "aes", "--refs", "2000",
                     "--engine", "batch"]) == 0
        assert "(window engine)" in capsys.readouterr().out

    @pytest.mark.parametrize("argv", (
        ["run", "--engine", "warp"],
        ["stats", "--engine", "warp"],
        ["litmus", "--trials", "1", "--engine", "warp"],
        ["drill", "--engine", "warp"],
        ["fuzz", "machine", "--engine", "warp"],
        ["profile", "fig2b", "--engine", "warp"],
    ))
    def test_unknown_engine_exits_2_everywhere(self, argv, capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "error: unknown engine 'warp'" in err
        assert "epoch, extent, scalar, window" in err

    def test_fuzz_target_without_engine_support_is_rejected(self, capsys):
        assert main(["fuzz", "psm", "--engine", "epoch"]) == 2
        assert "--engine applies to 'machine'" in capsys.readouterr().err
