"""Paper-shape assertions: the headline relations of every figure.

These check *shapes* — who wins, by roughly what factor, where the
crossovers fall — with deliberately wide tolerances.  Absolute numbers
differ from the paper (our substrate is a Python simulation of a
hardware prototype); EXPERIMENTS.md records paper-vs-measured values.
"""

import pytest

from repro.analysis import (
    figure2b,
    figure4,
    figure8,
    figure15,
    figure16,
    figure17,
    figure18,
    figure19,
    figure20,
    figure22,
)
from repro.analysis.experiments import FAST_SUBSET

REFS = 12_000


@pytest.fixture(scope="module")
def fig15():
    return figure15(FAST_SUBSET, refs=REFS)


@pytest.fixture(scope="module")
def fig16():
    return figure16(FAST_SUBSET, refs=REFS)


@pytest.fixture(scope="module")
def fig18():
    return figure18(FAST_SUBSET, refs=REFS)


@pytest.fixture(scope="module")
def fig19():
    return figure19(FAST_SUBSET, refs=REFS)


class TestFig2bShapes:
    """Paper: DIMM reads 2.9x bare PRAM; DIMM writes 2.3-6.1x *better*;
    bare PRAM read ~= DRAM read; DIMM latency varies, bare is flat."""

    @pytest.fixture(scope="class")
    def result(self):
        return figure2b(samples=2000)

    def test_dimm_reads_slower_than_bare(self, result):
        assert 1.8 < result.notes["dimm_read_vs_bare"] < 4.5

    def test_dimm_writes_beat_bare_program(self, result):
        assert 2.0 < result.notes["bare_write_vs_dimm_write"] < 9.0

    def test_bare_read_near_dram(self, result):
        assert 0.55 < result.notes["bare_read_vs_dram"] < 1.4

    def test_dimm_latency_varies_bare_does_not(self, result):
        assert result.notes["dimm_read_spread"] > 1.5
        assert result.notes["bare_read_spread"] == pytest.approx(1.0)


class TestFig4Shapes:
    """Paper: mem-mode ~= DRAM-only; app +28% over mem; object 1.8x;
    trans 8.7x DRAM-only."""

    @pytest.fixture(scope="class")
    def result(self):
        return figure4(refs=REFS)

    def test_mem_mode_close_to_dram(self, result):
        assert result.notes["mem_vs_dram_latency"] < 1.4

    def test_app_mode_slower_than_mem(self, result):
        assert 1.05 < result.notes["app_vs_mem_latency"] < 2.2

    def test_object_mode_band(self, result):
        assert 1.4 < result.notes["object_vs_dram_latency"] < 3.5

    def test_trans_mode_dominates(self, result):
        assert 4.0 < result.notes["trans_vs_dram_latency"] < 14.0

    def test_mode_ordering_strict(self, result):
        latency = result.column("latency_vs_dram")
        assert latency == sorted(latency)


class TestFig8Shapes:
    """Paper: hold-ups 22/55 ms busy; SnG 8.6-10.5 ms, under the 16 ms
    spec with margin; process stop the smallest phase (~12%)."""

    @pytest.fixture(scope="class")
    def result(self):
        return figure8()

    def test_measured_holdups(self, result):
        by = result.row_by("holdup/atx/busy")
        assert by["holdup/atx/busy"][1] == pytest.approx(22.0, rel=0.1)
        assert result.row_by("holdup/server/busy")["holdup/server/busy"][1] == \
            pytest.approx(55.0, rel=0.1)

    def test_stop_fits_spec_with_margin(self, result):
        assert result.notes["busy_stop_ms"] < 16.0
        assert result.notes["busy_margin_vs_spec"] > 0.2

    def test_stop_in_band(self, result):
        assert 4.0 < result.notes["busy_stop_ms"] < 13.0
        assert result.notes["idle_stop_ms"] <= result.notes["busy_stop_ms"]

    def test_process_stop_smallest_phase(self, result):
        row = result.row_by("sng/busy")["sng/busy"]
        process, device, offline = row[2], row[3], row[4]
        assert process < device and process < offline
        assert 0.05 < process < 0.25


class TestFig15Shapes:
    """Paper: LightPC within ~12% of LegacyPC; 2.8x faster than
    LightPC-B on average (4.1x for SNAP/astar)."""

    def test_lightpc_near_legacy(self, fig15):
        assert 0.85 < fig15.notes["lightpc_vs_legacy_mean"] < 1.35

    def test_baseline_much_slower(self, fig15):
        assert 2.0 < fig15.notes["baseline_vs_lightpc_mean"] < 6.5

    def test_snap_astar_worst_for_baseline(self, fig15):
        by = fig15.row_by("snap")
        ratios = {row[0]: row[5] for row in fig15.rows}
        heavy = (ratios["snap"] + ratios["astar"]) / 2
        assert heavy > fig15.notes["baseline_vs_lightpc_mean"] * 0.9

    def test_write_sparse_workloads_least_affected(self, fig15):
        # The workloads with the fewest memory-level writes — crypto
        # (tiny cached footprint; the paper's SHA512 case) and mcf
        # (read/write ratio 345) — gain least from the PSM.
        ratios = {row[0]: row[5] for row in fig15.rows}
        least = min(ratios, key=ratios.get)
        assert least in ("aes", "mcf")
        mean = fig15.notes["baseline_vs_lightpc_mean"]
        assert ratios["aes"] < mean and ratios["mcf"] < mean


class TestFig16Shapes:
    """Paper: LightPC-B read latency 7-14.8x LightPC's; wrf worst
    (read-after-write heavy), mcf least (few writes)."""

    def test_ratios_all_at_least_one(self, fig16):
        assert fig16.notes["min_ratio"] >= 0.95

    def test_mean_ratio_substantial(self, fig16):
        # paper: 7-14.8x; our simulation compresses the band (banked
        # media + OoO overlap) but the blocking is still multiples
        assert fig16.notes["mean_ratio"] > 2.2

    def test_max_ratio_band(self, fig16):
        assert 3.0 < fig16.notes["max_ratio"] < 25.0

    def test_mcf_least_blocked(self, fig16):
        ratios = {row[0]: row[3] for row in fig16.rows}
        assert ratios["mcf"] == min(ratios.values())

    def test_wrf_among_most_blocked_single_threaded(self, fig16):
        ratios = {row[0]: row[3] for row in fig16.rows}
        single = {n: r for n, r in ratios.items()
                  if n in ("mcf", "astar", "wrf")}
        assert ratios["wrf"] >= sorted(single.values())[-2]


class TestFig17Shapes:
    """Paper: STREAM bandwidth ratio ~78%; Add/Triad closer to DRAM
    than Copy/Scale."""

    @pytest.fixture(scope="class")
    def result(self):
        return figure17(elements=16_000)

    def test_mean_band(self, result):
        assert 0.5 < result.notes["mean_ratio"] < 1.1

    def test_read_heavy_kernels_closer(self, result):
        assert result.notes["add_triad_vs_copy_scale"] > 0.98


class TestFig18Shapes:
    """Paper: LightPC at ~28% of LegacyPC power; 69% energy saving;
    LightPC-B loses most of the energy win."""

    def test_power_fraction(self, fig18):
        assert 0.2 < fig18.notes["lightpc_power_fraction"] < 0.4

    def test_energy_saving(self, fig18):
        assert 0.55 < fig18.notes["lightpc_energy_saving"] < 0.85

    def test_baseline_saving_collapses(self, fig18):
        # paper: LightPC-B keeps only 8.2% of the energy win; ours keeps
        # more (its slowdown is 2.6x, not 3.1x) but the collapse vs
        # LightPC's ~70% saving is unambiguous
        assert fig18.notes["baseline_energy_saving"] < 0.45
        assert (fig18.notes["lightpc_energy_saving"]
                > fig18.notes["baseline_energy_saving"] + 0.25)


class TestFig19Shapes:
    """Paper: LightPC beats SysPC/A-CheckPC/S-CheckPC by 1.6/8.8/2.4x."""

    def test_syspc_band(self, fig19):
        assert 1.15 < fig19.notes["syspc_vs_lightpc_mean"] < 3.0

    def test_acheckpc_band(self, fig19):
        assert 3.5 < fig19.notes["acheckpc_vs_lightpc_mean"] < 14.0

    def test_scheckpc_band(self, fig19):
        assert 1.2 < fig19.notes["scheckpc_vs_lightpc_mean"] < 4.0

    def test_acheckpc_is_worst(self, fig19):
        notes = fig19.notes
        assert notes["acheckpc_vs_lightpc_mean"] > \
            notes["syspc_vs_lightpc_mean"]
        assert notes["acheckpc_vs_lightpc_mean"] > \
            notes["scheckpc_vs_lightpc_mean"]


class TestFig20Shapes:
    """Paper: SysPC flush 172x/112x the ATX/server hold-up; S-CheckPC
    3.5x/1.4x; LightPC's Stop fits under both."""

    @pytest.fixture(scope="class")
    def result(self):
        return figure20(workload="redis", refs=REFS)

    def test_syspc_dwarfs_holdup(self, result):
        assert result.notes["syspc_vs_atx"] > 25.0
        assert result.notes["syspc_vs_server"] > 10.0

    def test_scheckpc_exceeds_holdup(self, result):
        assert result.notes["scheckpc_vs_atx"] > 1.0

    def test_lightpc_fits(self, result):
        assert result.notes["lightpc_vs_atx"] < 0.8


class TestFig22Shapes:
    """Paper: 64 cores/40MB inside the server window; 32 cores/16KB
    inside the ATX window; beyond that, the ATX window breaks."""

    @pytest.fixture(scope="class")
    def result(self):
        return figure22()

    def test_crossovers(self, result):
        assert result.notes["cores32_16kb_fits_atx"] == 1.0
        assert result.notes["cores64_16kb_fits_atx"] == 0.0
        assert result.notes["cores64_40mb_fits_server"] == 1.0

    def test_stop_grows_with_cores(self, result):
        at_16kb = {row[0]: row[2] for row in result.rows if row[1] == 16}
        cores = sorted(at_16kb)
        values = [at_16kb[c] for c in cores]
        assert values == sorted(values)

    def test_stop_grows_with_cache(self, result):
        at_64 = {row[1]: row[2] for row in result.rows if row[0] == 64}
        sizes = sorted(at_64)
        assert at_64[sizes[0]] <= at_64[sizes[-1]]
