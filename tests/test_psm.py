"""Tests for the Persistent Support Module."""

import pytest

from repro.memory import MemoryOp, MemoryRequest
from repro.ocpmem import MachineCheckError, PSM, PSMConfig


def _psm(functional=False, **overrides):
    overrides.setdefault("lines_per_dimm", 1024)
    return PSM(PSMConfig(**overrides), functional=functional)


def _psm_b(functional=False, **overrides):
    overrides.setdefault("lines_per_dimm", 1024)
    return PSM(PSMConfig.lightpc_b(**overrides), functional=functional)


def read(psm, address, time=0.0):
    return psm.access(MemoryRequest(MemoryOp.READ, address=address, time=time))


def write(psm, address, time=0.0, data=None):
    return psm.access(
        MemoryRequest(MemoryOp.WRITE, address=address, time=time, data=data))


class TestBasicService:
    def test_read_latency_near_media(self):
        psm = _psm()
        response = read(psm, 0)
        assert 60.0 < response.latency < 90.0

    def test_write_absorbed_by_row_buffer(self):
        psm = _psm()
        response = write(psm, 0)
        assert response.latency < 20.0

    def test_capacity_reported(self):
        psm = _psm()
        assert psm.capacity == (6 * 1024 - 1) * 64

    def test_out_of_range_rejected(self):
        psm = _psm()
        with pytest.raises(ValueError):
            read(psm, psm.capacity)

    def test_oversized_request_rejected(self):
        psm = _psm()
        with pytest.raises(ValueError):
            psm.access(MemoryRequest(MemoryOp.READ, size=128))

    def test_row_buffer_serves_youngest_write(self):
        psm = _psm()
        w = write(psm, 0)
        r = read(psm, 0, time=w.complete_time)
        assert r.latency < 20.0  # buffer hit, not media

    def test_repeated_writes_same_page_absorbed(self):
        psm = _psm()
        t = 0.0
        for _ in range(10):
            response = write(psm, 256, time=t)
            t = response.complete_time
        assert psm.buffer_hits.ratio > 0.8
        assert psm.media_line_writes == 0  # nothing drained yet


class TestFunctionalPath:
    def test_write_read_roundtrip(self):
        psm = _psm(functional=True)
        data = bytes(range(64))
        w = write(psm, 128, data=data)
        r = read(psm, 128, time=w.complete_time)
        assert r.data == data

    def test_data_survives_flush(self):
        psm = _psm(functional=True)
        data = bytes(range(64))
        write(psm, 128, data=data)
        done = psm.flush(100.0)
        r = read(psm, 128, time=done)
        assert r.data == data

    def test_data_survives_power_cycle_after_flush(self):
        psm = _psm(functional=True)
        data = b"\xAB" * 64
        write(psm, 0, data=data)
        psm.flush(100.0)
        psm.power_cycle()
        r = read(psm, 0, time=0.0)
        assert r.data == data

    def test_unflushed_row_buffer_lost_on_power_cycle(self):
        """Pending row-buffer data dies with power — which is exactly why
        SnG must hit the flush port before the rails drop."""
        psm = _psm(functional=True)
        write(psm, 0, data=b"\xCD" * 64)
        psm.power_cycle()
        r = read(psm, 0)
        assert r.data != b"\xCD" * 64

    def test_wear_relocation_preserves_data(self):
        psm = _psm(functional=True, wear_threshold=5)
        payloads = {i: bytes([i]) * 64 for i in range(12)}
        t = 0.0
        for i, payload in payloads.items():
            response = write(psm, i * 64, time=t, data=payload)
            t = response.complete_time
        psm.flush(t)
        # force many gap movements
        for j in range(120):
            response = write(psm, (j % 12) * 64, time=t,
                             data=payloads[j % 12])
            t = response.complete_time
        done = psm.flush(t)
        for i, payload in payloads.items():
            r = read(psm, i * 64, time=done)
            assert r.data == payload, f"line {i} corrupted by wear leveling"


class TestReconstruction:
    def test_read_after_write_reconstructs(self):
        psm = _psm(functional=True)
        data0 = bytes(range(64))
        # Write two lines of the same page, then close the page so the
        # drain is programming while we read.
        w = write(psm, 0, data=data0)
        write(psm, 1 << 14, time=w.complete_time)  # different page: drain
        r = read(psm, 0, time=w.complete_time + 40.0)
        assert r.data == data0
        if r.reconstructed:
            assert psm.reconstructions >= 1

    def test_corrupt_half_recovered_transparently(self):
        psm = _psm(functional=True)
        data = bytes(range(64))
        write(psm, 0, data=data)
        done = psm.flush(10.0)
        _, dimm, local = psm._translate(0)
        dimm.corrupt_slot(local, 0)
        r = read(psm, 0, time=done)
        assert r.reconstructed
        assert r.data == data

    def test_double_corruption_raises_mce(self):
        psm = _psm(functional=True)
        write(psm, 0, data=bytes(64))
        done = psm.flush(10.0)
        _, dimm, local = psm._translate(0)
        dimm.corrupt_slot(local, 0)
        dimm.corrupt_slot(local, 1)
        with pytest.raises(MachineCheckError):
            read(psm, 0, time=done)
        assert psm.mce_count == 1

    def test_symbol_ecc_rescues_double_corruption(self):
        psm = _psm(functional=True, symbol_ecc=True)
        write(psm, 0, data=bytes(64))
        done = psm.flush(10.0)
        _, dimm, local = psm._translate(0)
        dimm.corrupt_slot(local, 0)
        dimm.corrupt_slot(local, 1)
        r = read(psm, 0, time=done)
        assert r.reconstructed
        assert psm.symbol_ecc.corrections == 1

    def test_reset_port_wipes_everything(self):
        psm = _psm(functional=True)
        write(psm, 0, data=b"\x11" * 64)
        psm.flush(10.0)
        response = psm.access(MemoryRequest(MemoryOp.RESET, time=100.0))
        assert response.complete_time > 100.0
        r = read(psm, 0, time=response.complete_time)
        assert r.data == bytes(64)


class TestBaselineBehaviour:
    def test_lightpc_b_disables_advanced_features(self):
        cfg = PSMConfig.lightpc_b()
        assert not cfg.write_aggregation
        assert not cfg.early_return_writes
        assert not cfg.ecc_reconstruction

    def test_baseline_reads_block_behind_writes(self):
        b = _psm_b()
        w = write(b, 0)
        r = read(b, 64 * 24, time=w.complete_time + 10.0)  # same DIMM
        assert r.latency > 300.0  # channel held by the programming pulse

    def test_lightpc_reads_do_not_block(self):
        l = _psm()
        w = write(l, 0)
        write(l, 1 << 14, time=w.complete_time)  # drain page 0
        r = read(l, 64 * 24, time=w.complete_time + 10.0)
        assert r.latency < 150.0

    def test_write_burst_backpressure_in_baseline(self):
        b = _psm_b(write_backlog_limit_ns=1_000.0)
        t = 0.0
        stalled = 0.0
        for i in range(40):
            response = write(b, (i * 24 * 64) % b.capacity, time=t)
            stalled += response.blocked_ns
            t += 30.0
        assert stalled > 0.0

    def test_dram_like_layout_serializes_rank(self):
        wide = PSM(PSMConfig(layout="dram_like", lines_per_dimm=1024,
                             write_aggregation=False,
                             ecc_reconstruction=False))
        w = write(wide, 0)
        # any other line on the same DIMM shares all eight dies
        r = read(wide, 6 * 64, time=w.complete_time + 10.0)
        assert r.latency > 300.0


class TestCounters:
    def test_counters_shape(self):
        psm = _psm()
        write(psm, 0)
        counters = psm.counters()
        for key in ("media_line_writes", "reconstructions", "read_blocked_ns",
                    "buffer_hit_ratio", "wear_gap_moves", "mce_count"):
            assert key in counters

    def test_wear_registers_accessible(self):
        psm = _psm()
        for i in range(150):
            write(psm, (i % 7) * 64, time=i * 20.0)
        regs = psm.wear.registers()
        assert regs.write_count == 150
        assert psm.wear.gap_moves >= 1
