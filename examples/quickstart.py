#!/usr/bin/env python3
"""Quickstart: run a workload on all three platforms, then pull the plug.

This walks the library's main loop end to end:

1. build the three machines the paper evaluates — LegacyPC (DRAM),
   LightPC-B (open-channel PMEM without the PSM's tricks), and LightPC;
2. run the same in-memory-DB workload on each and compare latency,
   power, and energy (Figs. 15/18 in miniature);
3. drop AC on the LightPC machine: Stop-and-Go races the PSU hold-up
   window, the machine powers off, and Go resumes every process from the
   execution persistence cut.

Run:  python examples/quickstart.py
"""

from repro.core import Machine
from repro.power.psu import ATX_PSU
from repro.workloads import load_workload


def main() -> None:
    workload = load_workload("redis", refs=20_000)
    print(f"workload: {workload.name} "
          f"({workload.threads} threads, {workload.refs:,} references)\n")

    print(f"{'platform':<12}{'time (ms)':>10}{'IPC':>7}"
          f"{'power (W)':>11}{'energy (mJ)':>13}")
    results = {}
    for platform in ("legacy", "lightpc_b", "lightpc"):
        machine = Machine.for_workload(platform, workload)
        result = machine.run(workload)
        results[platform] = (machine, result)
        print(f"{platform:<12}{result.wall_ns / 1e6:>10.2f}"
              f"{result.ipc:>7.2f}{result.total_w:>11.1f}"
              f"{result.energy_j * 1e3:>13.2f}")

    legacy = results["legacy"][1]
    light = results["lightpc"][1]
    print(f"\nLightPC runs at {light.wall_ns / legacy.wall_ns:.2f}x LegacyPC "
          f"latency while drawing {light.total_w / legacy.total_w:.0%} of its "
          f"power.")

    # -- now the headline feature: full system persistence ----------------
    machine, _ = results["lightpc"]
    print(f"\nPulling AC (PSU: {ATX_PSU.name}, spec hold-up "
          f"{ATX_PSU.spec_holdup_ms:.0f} ms)...")
    outcome = machine.power_fail(ATX_PSU)
    stop = outcome.stop
    print(f"  Stop-and-Go Stop: {stop.total_ms:.2f} ms "
          f"(process stop {stop.process_stop_ns / 1e6:.2f} ms, "
          f"device stop {stop.device_stop_ns / 1e6:.2f} ms, "
          f"offline {stop.offline_ns / 1e6:.2f} ms)")
    print(f"  {stop.tasks_stopped} tasks parked, "
          f"{stop.drivers_suspended} drivers suspended, "
          f"{stop.cachelines_flushed} dirty cachelines flushed")
    print(f"  survived: {outcome.survived} "
          f"(margin {outcome.margin_ns / 1e6:.1f} ms)")

    print("\nPower returns...")
    go = machine.recover()
    print(f"  Go: warm recovery in {go.total_ms:.2f} ms, "
          f"{go.tasks_resumed} tasks back on their run queues")
    print(f"  resumed state byte-matches the EP-cut: "
          f"{machine.sng.verify_resumed_state()}")

    # the machine keeps working after recovery
    again = machine.run(workload)
    print(f"\nPost-recovery run completes in {again.wall_ns / 1e6:.2f} ms — "
          f"business as usual.")


if __name__ == "__main__":
    main()
