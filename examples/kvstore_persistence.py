#!/usr/bin/env python3
"""In-memory key-value store surviving crashes — two ways.

The paper's motivation: in-memory databases (Redis, Memcached, ...) want
their data to survive power loss.  The conventional route is PMDK-style
software persistence — objects, persistent pointers, transactions, and
explicit flushes, the very overheads §II-B quantifies.  LightPC's route
is to run *unchanged* on OC-PMEM and let SnG make everything persistent.

This example builds a tiny hash-map KV store both ways:

* :class:`PMDKStore` — on the libpmemobj-like pool, with every update
  wrapped in a durable transaction (the "trans-mode" discipline).  We
  crash it mid-transaction and show recovery rolls back cleanly, and
  tally the software-intervention time the pool's cost model accumulated.
* :class:`LightPCStore` — ordinary bytes in OC-PMEM via the functional
  PSM, zero persistence code.  We pull AC mid-run; SnG's flush + EP-cut
  make the same guarantees with ~no runtime cost.

Run:  python examples/kvstore_persistence.py
"""

import struct

from repro.core import Machine
from repro.memory import MemoryOp, MemoryRequest
from repro.pmem import PersistentObjectPool, TransactionAbort
from repro.power.psu import ATX_PSU
from repro.workloads import load_workload

_SLOT = struct.Struct("<16s40s")  # key, value
_BUCKETS = 64


class PMDKStore:
    """Hash map over a persistent object pool with durable transactions."""

    def __init__(self, pool: PersistentObjectPool) -> None:
        self.pool = pool
        self.root = pool.root(_BUCKETS * _SLOT.size)

    def _slot(self, key: str) -> int:
        return (hash(key) % _BUCKETS) * _SLOT.size

    def put(self, key: str, value: str) -> None:
        record = _SLOT.pack(key.encode()[:16].ljust(16, b"\x00"),
                            value.encode()[:40].ljust(40, b"\x00"))
        with self.pool.tx_begin():
            self.pool.write(self.root, self._slot(key), record)

    def get(self, key: str) -> str | None:
        raw = self.pool.read(self.root, self._slot(key), _SLOT.size)
        stored_key, value = _SLOT.unpack(raw)
        if stored_key.rstrip(b"\x00").decode() != key:
            return None
        return value.rstrip(b"\x00").decode()


class LightPCStore:
    """The same map as plain bytes in OC-PMEM — no persistence code."""

    BASE = 0x4000  # heap address of the table

    def __init__(self, machine: Machine) -> None:
        self.machine = machine

    def _address(self, key: str) -> int:
        slot = hash(key) % _BUCKETS
        return self.BASE + slot * 64  # one cacheline per slot

    def put(self, key: str, value: str) -> None:
        record = _SLOT.pack(key.encode()[:16].ljust(16, b"\x00"),
                            value.encode()[:40].ljust(40, b"\x00"))
        self.machine.backend.access(MemoryRequest(
            MemoryOp.WRITE, address=self._address(key),
            data=record.ljust(64, b"\x00"), time=0.0))

    def get(self, key: str) -> str | None:
        response = self.machine.backend.access(MemoryRequest(
            MemoryOp.READ, address=self._address(key), time=0.0))
        stored_key, value = _SLOT.unpack(response.data[:_SLOT.size])
        if stored_key.rstrip(b"\x00").decode() != key:
            return None
        return value.rstrip(b"\x00").decode()


def pmdk_route() -> None:
    print("=== route 1: PMDK-style software persistence ===")
    pool = PersistentObjectPool(1 << 20)
    store = PMDKStore(pool)
    store.put("user:1", "alice")
    store.put("user:2", "bob")
    print(f"  stored user:1={store.get('user:1')} user:2={store.get('user:2')}")

    # crash in the middle of an update transaction
    try:
        with pool.tx_begin():
            pool.write(store.root, store._slot("user:1"),
                       _SLOT.pack(b"user:1".ljust(16, b"\x00"),
                                  b"MALLORY".ljust(40, b"\x00")))
            raise KeyboardInterrupt("power yanked mid-transaction")
    except KeyboardInterrupt:
        pass
    pool.crash()
    pool.recover()
    print(f"  after crash mid-tx, user:1={store.get('user:1')!r} "
          f"(rolled back, not MALLORY)")
    print(f"  software-intervention time so far: "
          f"{pool.cost.accumulated_ns / 1e3:.1f} us of pure persistence "
          f"bookkeeping\n")


def lightpc_route() -> None:
    print("=== route 2: LightPC — no persistence code at all ===")
    workload = load_workload("redis", refs=4_000)
    machine = Machine.for_workload("lightpc", workload, functional=True)
    store = LightPCStore(machine)
    store.put("user:1", "alice")
    store.put("user:2", "bob")
    print(f"  stored user:1={store.get('user:1')} user:2={store.get('user:2')}")

    outcome = machine.power_fail(ATX_PSU)
    print(f"  AC pulled: SnG Stop {outcome.stop.total_ms:.2f} ms, "
          f"survived={outcome.survived}")
    machine.recover()
    print(f"  after recovery, user:1={store.get('user:1')!r} "
          f"user:2={store.get('user:2')!r}")
    print("  the store never called a persistence API — the platform did "
          "the work.")


def main() -> None:
    pmdk_route()
    lightpc_route()


if __name__ == "__main__":
    main()
