#!/usr/bin/env python3
"""Choosing a persistence strategy: SnG vs the checkpointing baselines.

For a long-running workload that must survive power loss, §VI compares
four orthogonal mechanisms.  This example prices them for one workload
at full-run scale — total time (execution + persistence control +
recovery), what must finish inside the hold-up window, and the energy
the power-down path burns — the Figs. 19/20/21 story as a decision table.

Run:  python examples/checkpoint_strategies.py [workload]
"""

import sys

from repro.analysis.experiments import execution_profiles, full_run_scale
from repro.pecos import Kernel, SnG
from repro.persistence import ACheckPC, LightPCSnG, SCheckPC, SysPC
from repro.power.psu import ATX_PSU
from repro.workloads import load_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "minife"
    refs = 12_000
    workload = load_workload(name, refs=refs)
    scale = full_run_scale(workload, refs)
    print(f"workload: {name}, trace sample {refs:,} refs "
          f"extrapolated x{scale:,.0f} to full-run scale\n")

    profiles = execution_profiles((name,), refs)[name]

    kernel = Kernel()
    kernel.populate()
    sng = SnG(kernel, flush_port=lambda t: t + 2_000.0,
              dirty_lines_fn=lambda: [256] * 8)
    mechanisms = {
        "LightPC (SnG)": (LightPCSnG.from_reports(sng.stop(), sng.go()),
                          profiles["lightpc"]),
        "SysPC": (SysPC(), profiles["legacy"]),
        "A-CheckPC": (ACheckPC(), profiles["legacy"]),
        "S-CheckPC": (SCheckPC(), profiles["legacy"]),
    }

    atx_ms = ATX_PSU.holdup_ns(18.9) / 1e6
    print(f"{'mechanism':<15}{'total (s)':>11}{'control %':>11}"
          f"{'flush (ms)':>12}{'fits ATX?':>11}{'recover (s)':>13}"
          f"{'flush energy':>14}")
    base = None
    for label, (mechanism, profile) in mechanisms.items():
        outcome = mechanism.outcome(profile)
        total_s = (outcome.total_ns + outcome.recover_ns) / 1e9
        if base is None:
            base = total_s
        control = outcome.control_ns / max(outcome.total_ns, 1)
        flush_ms = outcome.flush_at_fail_ns / 1e6
        fits = "yes" if flush_ms <= atx_ms else f"{flush_ms / atx_ms:.0f}x over"
        print(f"{label:<15}{total_s:>11.2f}{control:>10.1%}"
              f"{flush_ms:>12.2f}{fits:>11}{outcome.recover_ns / 1e9:>13.3f}"
              f"{outcome.flush_energy_j:>12.3f} J")
    print(f"\n(ATX hold-up at busy draw: {atx_ms:.0f} ms.  LightPC is the "
          f"only mechanism whose at-failure work fits the window while "
          f"covering kernel and device state; the checkpointing baselines "
          f"pay during execution instead and still cold-boot on recovery.)")


if __name__ == "__main__":
    main()
