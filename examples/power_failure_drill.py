#!/usr/bin/env python3
"""Power-failure drill: SnG vs hold-up windows, plus media fault recovery.

The paper validates SnG by physically yanking AC from the prototype
(§VI).  This drill does the simulated equivalent, several times over:

1. run an HPC workload on LightPC and drop AC under both PSUs the paper
   measures (a standard ATX unit and a Dell server unit), recording the
   Stop latency against each hold-up window;
2. repeat under the worst-case kernel world (the Fig. 22 configuration)
   to see the margin shrink;
3. inject PRAM media faults and watch the PSM's XOR codec (XCC)
   reconstruct reads transparently — and escalate to a machine check
   only when both copies of a line are gone.

Run:  python examples/power_failure_drill.py
"""

from repro.core import Machine, PlatformConfig
from repro.memory import MemoryOp, MemoryRequest
from repro.ocpmem import MachineCheckError
from repro.pecos import Kernel, KernelConfig, SnG
from repro.power.psu import ATX_PSU, SERVER_PSU
from repro.workloads import load_workload


def drill_once(machine: Machine, workload, psu) -> None:
    machine.run(workload)
    outcome = machine.power_fail(psu)
    stop = outcome.stop
    verdict = "SURVIVED" if outcome.survived else "LOST STATE"
    print(f"  {psu.name:<7} hold-up {outcome.holdup_ns / 1e6:6.1f} ms | "
          f"Stop {stop.total_ms:5.2f} ms | margin "
          f"{outcome.margin_ns / 1e6:6.1f} ms | {verdict}")
    go = machine.recover()
    assert go.warm and machine.sng.verify_resumed_state()


def worst_case_drill() -> None:
    print("\nworst case (Fig. 22): 730 drivers, every cacheline dirty")
    for cores, cache_kb in ((8, 16), (32, 16), (64, 16), (64, 40 * 1024)):
        kernel = Kernel(KernelConfig(cores=cores, extra_drivers=720))
        kernel.populate()
        lines = cache_kb * 1024 // 64 // cores if cache_kb > 16 else 256
        sng = SnG(kernel, flush_port=lambda t: t + 2_000.0,
                  dirty_lines_fn=lambda n=lines, c=cores: [n] * c)
        stop = sng.stop()
        atx = "fits" if stop.total_ms <= ATX_PSU.spec_holdup_ms else "MISSES"
        server = ("fits" if stop.total_ms <= SERVER_PSU.spec_holdup_ms
                  else "MISSES")
        print(f"  {cores:>3} cores / {cache_kb:>6} KB cache: "
              f"Stop {stop.total_ms:6.1f} ms — ATX {atx}, server {server}")


def fault_injection() -> None:
    print("\nmedia fault injection (XCC recovery, §V-A)")
    workload = load_workload("aes", refs=2_000)
    machine = Machine.for_workload("lightpc", workload, functional=True)
    psm = machine.backend
    payload = bytes(range(64))
    psm.access(MemoryRequest(MemoryOp.WRITE, address=0, data=payload,
                             time=0.0))
    done = psm.flush(10.0)

    _, dimm, local = psm._translate(0)
    dimm.corrupt_slot(local, 0)
    response = psm.access(MemoryRequest(MemoryOp.READ, address=0, time=done))
    print(f"  one die corrupted: read reconstructed={response.reconstructed}, "
          f"data intact={response.data == payload}")

    dimm.corrupt_slot(local, 1)
    try:
        psm.access(MemoryRequest(MemoryOp.READ, address=0, time=done + 500))
        print("  both dies corrupted: unexpectedly served?!")
    except MachineCheckError as mce:
        print(f"  both dies corrupted: machine check raised ({mce})")
        print("  host policy: reset OC-PMEM via the reset port, cold boot")
        psm.access(MemoryRequest(MemoryOp.RESET, time=done + 1_000))
        wiped = psm.access(MemoryRequest(MemoryOp.READ, address=0,
                                         time=done + 5_000))
        print(f"  after reset: line reads as zeros={wiped.data == bytes(64)}")


def main() -> None:
    workload = load_workload("amg", refs=12_000)
    print(f"drill workload: {workload.name} ({workload.threads} threads)")
    print("\ndefault world (busy configuration):")
    for psu in (ATX_PSU, SERVER_PSU):
        machine = Machine.for_workload("lightpc", workload)
        drill_once(machine, workload, psu)

    worst_case_drill()
    fault_injection()


if __name__ == "__main__":
    main()
