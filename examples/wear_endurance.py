#!/usr/bin/env python3
"""Wear-leveling endurance under hostile write patterns (§V-A, §VIII).

PRAM cells endure 10^6–10^9 writes — orders of magnitude below DRAM —
so OC-PMEM ships Start-Gap wear leveling with a static randomizer.  The
paper's §VIII admits a weakness: an adversary hammering one address
advances the hot cell only one physical slot per gap cycle, and proposes
rotating the randomizer seed as future work.

This example stresses both designs with three patterns and reports the
wear imbalance (max / mean physical writes — 1.0 is perfect leveling)
plus the projected lifetime fraction relative to ideal.

Run:  python examples/wear_endurance.py
"""

import random

from repro.ocpmem import StartGap

LINES = 512
WRITES = LINES * 20
GAP_THRESHOLD = 10  # aggressive leveling so several gap cycles complete


def pattern_uniform(rng):
    while True:
        yield rng.randrange(LINES)


def pattern_zipf_hot(rng):
    """80% of writes to 5% of lines."""
    hot = LINES // 20
    while True:
        yield rng.randrange(hot) if rng.random() < 0.8 else rng.randrange(LINES)


def pattern_single_address(_rng):
    while True:
        yield 7


PATTERNS = {
    "uniform": pattern_uniform,
    "zipf-hot": pattern_zipf_hot,
    "single-address (adversarial)": pattern_single_address,
}


def stress(leveler: StartGap, pattern) -> float:
    overhead = 0.0
    for _, line in zip(range(WRITES), pattern):
        overhead += leveler.record_write(line)
    return overhead


def main() -> None:
    print(f"{LINES} lines, {WRITES:,} writes per pattern; "
          f"gap moves every {GAP_THRESHOLD} writes\n")
    print(f"{'pattern':<30}{'design':<22}{'imbalance':>10}"
          f"{'lifetime %':>12}{'overhead us':>13}")
    for pattern_name, factory in PATTERNS.items():
        for design, kwargs in (
            ("start-gap", {}),
            ("start-gap + rotation", {"rotate_seed_every": 1}),
        ):
            leveler = StartGap(lines=LINES, threshold=GAP_THRESHOLD,
                               track_wear=True, randomize_unit=1, **kwargs)
            overhead = stress(leveler, factory(random.Random(9)))
            imbalance = leveler.wear_imbalance()
            lifetime = 100.0 / imbalance if imbalance else 100.0
            print(f"{pattern_name:<30}{design:<22}{imbalance:>10.1f}"
                  f"{lifetime:>11.1f}%{overhead / 1e3:>12.1f}")
    print("\n(imbalance = hottest physical line's writes / mean; the device "
          "dies when the hottest cell does, so projected lifetime is its "
          "inverse.  Rotation pays a bulk-migration overhead per gap cycle "
          "but defuses the single-address attack — the §VIII future work.)")


if __name__ == "__main__":
    main()
