#!/usr/bin/env python3
"""A live system: computation interrupted by power loss, resumed exactly.

The other examples measure; this one *watches the OS work*.  A batch of
jobs — some that nap between bursts, some that grind straight through —
runs under a time-sliced scheduler.  Mid-run the power dies: Stop-and-Go
fake-signals the sleepers awake, parks everything as uninterruptible,
suspends the devices, and draws the EP-cut.  When power returns, Go
releases the tasks and the scheduler simply keeps going.  The final
audit shows no unit of work was lost or repeated.

Run:  python examples/live_system.py
"""

from repro.pecos import Kernel, KernelConfig, SnG, TaskState
from repro.pecos.schedsim import LiveWorld


def progress_bar(done: int, total: int, width: int = 26) -> str:
    filled = int(width * done / total) if total else 0
    return "[" + "#" * filled + "." * (width - filled) + f"] {done}/{total}"


def show(world: LiveWorld, label: str) -> None:
    print(f"\n{label} (t = {world.clock.now_ns / 1e3:.0f} us)")
    for live in world.live.values():
        state = live.task.state.name.lower()
        print(f"  {live.task.name:<10} {progress_bar(live.done_work, live.total_work)}"
              f"  {state}")


def main() -> None:
    kernel = Kernel(KernelConfig(cores=4, user_processes=0,
                                 kernel_threads=0, sleeping_fraction=0.0))
    kernel.populate()
    world = LiveWorld(kernel)
    world.spawn("grinder-a", work=4_000)
    world.spawn("grinder-b", work=3_000)
    world.spawn("napper-a", work=2_500, sleep_every=600, sleep_ns=30_000.0)
    world.spawn("napper-b", work=2_000, sleep_every=400, sleep_ns=50_000.0)

    world.run_for(600_000.0)
    show(world, "mid-run, just before the power event")
    progress_at_cut = world.snapshot_progress()

    print("\n*** AC lost — Stop-and-Go ***")
    sng = SnG(kernel, flush_port=lambda t: t + 2_000.0,
              dirty_lines_fn=lambda: [128] * kernel.config.cores)
    stop = sng.stop()
    print(f"Stop finished in {stop.total_ms:.2f} ms: "
          f"{stop.tasks_stopped} tasks parked "
          f"({len(sng.signals.delivered)} fake signals delivered), "
          f"{stop.drivers_suspended} drivers suspended")
    assert world.snapshot_progress() == progress_at_cut
    assert all(lt.task.state is TaskState.UNINTERRUPTIBLE
               for lt in world.live.values())
    show(world, "the EP-cut (everything uninterruptible, progress frozen)")

    print("\n*** power returns — Go ***")
    go = sng.go()
    print(f"Go finished in {go.total_ms:.2f} ms (warm = {go.warm})")
    world.resume_after_go()
    world.run_to_completion(max_ns=1e10)
    show(world, "after resumption")

    total = world.total_done()
    expected = world.total_work()
    print(f"\naudit: {total} work units done, {expected} expected -> "
          f"{'EXACT' if total == expected else 'MISMATCH'}")
    print("nothing lost to the outage, nothing executed twice.")


if __name__ == "__main__":
    main()
