"""Persistence mechanisms: SnG plus the LegacyPC baselines of §VI."""

from repro.persistence.acheckpc import ACheckPC
from repro.persistence.base import (
    OCPMEM_BULK_WRITE_BW,
    ExecutionProfile,
    PersistenceMechanism,
    PersistenceOutcome,
)
from repro.persistence.lightpc import LightPCSnG
from repro.persistence.scheckpc import SCheckPC
from repro.persistence.syspc import SysPC

__all__ = [
    "ACheckPC",
    "ExecutionProfile",
    "LightPCSnG",
    "OCPMEM_BULK_WRITE_BW",
    "PersistenceMechanism",
    "PersistenceOutcome",
    "SCheckPC",
    "SysPC",
]
