"""A-CheckPC: application-level checkpoint-restart (paper §VI, [59]).

Built on distributed multi-threaded HPC checkpointing: at the end of
*every function*, the stack and heap variables the function used are
selectively dumped from DRAM to OC-PMEM and committed.  The benchmark
stalls until each checkpoint commits, so the mechanism's cost scales
with the dynamic function-call count — which is why the paper measures
it as the slowest option by far (8.8x LightPC on average) even though
each individual dump is small.

Because every committed checkpoint is durable, a power failure costs
nothing extra at the signal (only un-committed work since the last call
boundary is lost), but a cold reboot is unavoidable before restarting
from the last checkpoint (kernel/machine state is not covered).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.extent import DirtyExtentMap
from repro.persistence.base import (
    OCPMEM_BULK_WRITE_BW,
    ExecutionProfile,
    PersistenceMechanism,
    PersistenceOutcome,
    extent_dump_ns,
)

__all__ = ["ACheckPC"]


@dataclass(frozen=True)
class ACheckPC(PersistenceMechanism):
    """Per-function selective stack/heap checkpointing."""

    #: mean dynamic instructions between function returns
    instructions_per_call: float = 1_150.0
    #: stack + heap variables a typical function touches (selective dump)
    checkpoint_bytes: float = 4096.0
    #: commit bookkeeping per checkpoint (transaction close, metadata)
    commit_ns: float = 5_200.0
    dump_bw: float = OCPMEM_BULK_WRITE_BW
    #: cold reboot before restart (kernel is not checkpointed)
    cold_reboot_ns: float = 1.8e9
    checkpoint_power_w: float = 19.2
    reboot_power_w: float = 17.5

    name = "acheckpc"

    def checkpoints(self, profile: ExecutionProfile) -> float:
        return profile.instructions / self.instructions_per_call

    def checkpoint_port_ns(
        self, backend, dirty: DirtyExtentMap, at_ns: float = 0.0
    ) -> float:
        """Cost one checkpoint through a real memory port.

        ``dirty`` holds the lines the function touched since the last
        call boundary; ``take()`` clears it, so consecutive checkpoints
        are deltas — a checkpoint with nothing new dirtied pays only the
        commit bookkeeping.  The analytic :meth:`outcome` (used by the
        figure goldens) is untouched; this is the port-accurate variant
        for runs that model the memory system explicitly.
        """
        extents = dirty.take()
        if not extents:
            return self.commit_ns
        return extent_dump_ns(backend, extents, at_ns) + self.commit_ns

    def outcome(self, profile: ExecutionProfile) -> PersistenceOutcome:
        n = self.checkpoints(profile)
        per_ckpt_ns = (
            self.checkpoint_bytes / self.dump_bw * 1e9 + self.commit_ns
        )
        control_ns = n * per_ckpt_ns
        return PersistenceOutcome(
            mechanism=self.name,
            execution_ns=profile.wall_ns,
            control_ns=control_ns,
            # Committed checkpoints are already durable; nothing to flush.
            flush_at_fail_ns=0.0,
            recover_ns=self.cold_reboot_ns,
            flush_power_w=self.checkpoint_power_w,
            recover_power_w=self.reboot_power_w,
            survives_holdup_overrun=True,
        )
