"""Common vocabulary for the persistence mechanisms of the evaluation.

The paper compares four orthogonal persistence mechanisms (§VI): SnG on
LightPC/LightPC-B, and three LegacyPC-hosted baselines — SysPC (system
images), A-CheckPC (application-level checkpoint-restart) and S-CheckPC
(system-level periodic checkpointing, BLCR-style).  Each mechanism is
described by what it costs *during* execution (persistence control), *at*
a power failure (flush), and *after* power recovery (restore), over an
:class:`ExecutionProfile` of the host run.

Simulated traces are scaled-down samples of the paper's 10^8–10^9
reference runs; ``ExecutionProfile.scaled`` extrapolates a measured
sample to full-run magnitude so second-scale mechanisms (image dumps,
periodic checkpoints) sit in realistic proportion to execution time.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace

from repro.memory.extent import Extent, backend_flush_extents

__all__ = [
    "ExecutionProfile",
    "PersistenceMechanism",
    "PersistenceOutcome",
    "OCPMEM_BULK_WRITE_BW",
    "extent_dump_ns",
]

#: Sustained sequential write bandwidth into OC-PMEM for bulk dumps
#: (staggered row-buffer drains across all DIMM groups), bytes/second.
OCPMEM_BULK_WRITE_BW = 0.5e9

#: Sustained read bandwidth out of OC-PMEM for image reloads.
OCPMEM_BULK_READ_BW = 2.2e9


def extent_dump_ns(backend, extents: list[Extent], at_ns: float = 0.0) -> float:
    """Cost of dumping dirty extents through a real memory port.

    Drains the extents (write-back) and then waits out the backend's
    flush port so the dump is durable on media — the same
    drain-then-synchronize sequence SnG's Auto-Stop performs.  Returns
    the elapsed nanoseconds from ``at_ns``.
    """
    report = backend_flush_extents(backend, extents, at_ns)
    done = backend.flush(at_ns)
    if report.done_ns > done:
        done = report.done_ns
    return done - at_ns


@dataclass(frozen=True)
class ExecutionProfile:
    """One workload execution as the persistence layer sees it."""

    workload: str
    wall_ns: float
    instructions: float
    #: resident working set (stack + heap + code) across all threads
    footprint_bytes: float
    #: rate at which the application dirties memory (bytes/second)
    dirty_bytes_per_s: float
    frequency_ghz: float = 1.6

    @property
    def cycles(self) -> float:
        return self.wall_ns * self.frequency_ghz

    def scaled(self, factor: float) -> "ExecutionProfile":
        """Extrapolate a trace sample to full-run magnitude."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return replace(
            self,
            wall_ns=self.wall_ns * factor,
            instructions=self.instructions * factor,
        )


@dataclass(frozen=True)
class PersistenceOutcome:
    """What one mechanism costs around one power-down event."""

    mechanism: str
    #: benchmark execution time including any slowdown the mechanism's
    #: runtime interference causes
    execution_ns: float
    #: explicit persistence-control time spent during execution
    #: (checkpoint stalls, commit waits)
    control_ns: float
    #: flush work at the power signal (must fit the hold-up to survive)
    flush_at_fail_ns: float
    #: restore work at power recovery before the benchmark resumes
    recover_ns: float
    #: average power during the flush phase (watts)
    flush_power_w: float
    #: average power during recovery (watts)
    recover_power_w: float
    #: can the mechanism lose committed work if the flush exceeds hold-up?
    survives_holdup_overrun: bool

    @property
    def total_ns(self) -> float:
        return self.execution_ns + self.control_ns

    def total_cycles(self, frequency_ghz: float = 1.6) -> float:
        return self.total_ns * frequency_ghz

    @property
    def flush_energy_j(self) -> float:
        return self.flush_power_w * self.flush_at_fail_ns * 1e-9

    @property
    def recover_energy_j(self) -> float:
        return self.recover_power_w * self.recover_ns * 1e-9


class PersistenceMechanism(abc.ABC):
    """One orthogonal persistence mechanism."""

    name: str = "abstract"

    @abc.abstractmethod
    def outcome(self, profile: ExecutionProfile) -> PersistenceOutcome:
        """Cost the mechanism over one execution + one power-down."""

    def flush_latency_ns(self, profile: ExecutionProfile) -> float:
        """The Fig. 20 quantity: work required when the power signal hits."""
        return self.outcome(profile).flush_at_fail_ns
