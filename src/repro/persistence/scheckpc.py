"""S-CheckPC: system-level periodic checkpointing (BLCR-style, paper §VI).

Implemented after Berkeley Lab Checkpoint/Restart: once per period
(1 second in the paper) the kernel dumps the target threads' virtual
memory structures (``vm_area_struct`` walks) from DRAM to OC-PMEM,
without understanding application semantics.  Each dump moves the bytes
dirtied since the previous period, stealing memory bandwidth from the
benchmark while it runs; the paper measures the periodic flush at
3.5x / 1.4x the ATX/server hold-up windows (Fig. 20) and the end-to-end
latency at 73% below A-CheckPC but still 52% above SysPC.

Like A-CheckPC it cannot checkpoint the kernel itself or machine-mode
registers, so recovery requires a cold reboot before the restart.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.extent import DirtyExtentMap
from repro.persistence.base import (
    OCPMEM_BULK_WRITE_BW,
    ExecutionProfile,
    PersistenceMechanism,
    PersistenceOutcome,
    extent_dump_ns,
)

__all__ = ["SCheckPC"]


@dataclass(frozen=True)
class SCheckPC(PersistenceMechanism):
    """Periodic kernel-level VMA dumps."""

    period_ns: float = 1e9
    dump_bw: float = OCPMEM_BULK_WRITE_BW
    #: fraction by which a concurrent dump slows the benchmark (memory
    #: bandwidth and synchronization interference)
    interference: float = 0.55
    cold_reboot_ns: float = 1.8e9
    dump_power_w: float = 19.6
    reboot_power_w: float = 17.5

    name = "scheckpc"

    def dump_bytes_per_period(self, profile: ExecutionProfile) -> float:
        """Dirty bytes accumulated over one period, capped at the VMAs."""
        dirtied = profile.dirty_bytes_per_s * self.period_ns * 1e-9
        return min(profile.footprint_bytes, dirtied)

    def periods(self, profile: ExecutionProfile) -> float:
        return max(1.0, profile.wall_ns / self.period_ns)

    def period_dump_port_ns(
        self, backend, dirty: DirtyExtentMap, at_ns: float = 0.0
    ) -> float:
        """Cost one periodic VMA dump through a real memory port.

        ``dirty`` holds the lines dirtied since the previous period;
        ``take()`` clears it, so each period's dump is a delta over the
        last — a quiet period costs nothing.  The analytic
        :meth:`outcome` (used by the figure goldens) is untouched.
        """
        extents = dirty.take()
        if not extents:
            return 0.0
        return extent_dump_ns(backend, extents, at_ns)

    def outcome(self, profile: ExecutionProfile) -> PersistenceOutcome:
        per_dump_ns = (
            self.dump_bytes_per_period(profile) / self.dump_bw * 1e9
        )
        n = self.periods(profile)
        # The benchmark runs concurrently with the dumps but pays
        # bandwidth interference while each dump is in flight.
        execution_ns = profile.wall_ns + n * per_dump_ns * self.interference
        control_ns = n * per_dump_ns
        return PersistenceOutcome(
            mechanism=self.name,
            execution_ns=execution_ns,
            control_ns=control_ns,
            # At the power signal, the current period's dirty state is
            # mid-flight: one period's dump must complete to preserve the
            # newest committed checkpoint.
            flush_at_fail_ns=per_dump_ns,
            recover_ns=self.cold_reboot_ns,
            flush_power_w=self.dump_power_w,
            recover_power_w=self.reboot_power_w,
            survives_holdup_overrun=True,
        )
