"""Functional checkpoint substrates: real bytes into OC-PMEM.

The cost models in :mod:`repro.persistence` price the baselines; this
module *implements* them, so crash tests can verify what each mechanism
actually saves and loses:

* :class:`CheckpointArea` — a reserved OC-PMEM region holding checkpoint
  records (a tiny append-only object format with a commit marker).
* :class:`ApplicationCheckpointer` (A-CheckPC) — saves selected
  stack/heap buffers at call boundaries; restart recovers the last
  *committed* record, everything after it is lost.
* :class:`SystemCheckpointer` (S-CheckPC, BLCR-style) — dumps a task's
  dirty VMA pages each period; restart rebuilds the VMA images but the
  kernel itself cold-boots (the paper's reason these mechanisms cannot
  match SnG).
* :class:`SystemImager` (SysPC) — whole-image dump/load of a byte
  region, all-or-nothing behind a commit marker.

All three write through any functional memory backend (normally the PSM)
and honour its volatility rules: records are durable only after the
backend's flush port has run.
"""

from __future__ import annotations

import struct
import zlib
from typing import Optional, Protocol

from repro.memory.request import MemoryOp, MemoryRequest

__all__ = [
    "ApplicationCheckpointer",
    "CheckpointArea",
    "CheckpointError",
    "SystemCheckpointer",
    "SystemImager",
]

_LINE = 64
_RECORD_HEADER = struct.Struct("<IIQ")  # crc32, length, tag


class CheckpointError(RuntimeError):
    """Malformed checkpoint area or record."""


class _Backend(Protocol):
    def access(self, request: MemoryRequest): ...

    def flush(self, time: float) -> float: ...


class CheckpointArea:
    """Append-only record log in a reserved backend region.

    Each record is ``[crc32 | length | tag | payload]`` padded to
    cachelines.  A record only counts after the backend flush that makes
    it durable; torn tails are detected by the CRC at scan time.
    """

    def __init__(self, backend: _Backend, base: int, length: int) -> None:
        if base % _LINE or length % _LINE:
            raise CheckpointError("area must be cacheline-aligned")
        self.backend = backend
        self.base = base
        self.length = length
        self._cursor = base
        self.records_written = 0

    # -- raw line I/O -----------------------------------------------------

    def _write_bytes(self, address: int, blob: bytes, time: float) -> float:
        t = time
        for offset in range(0, len(blob), _LINE):
            chunk = blob[offset:offset + _LINE].ljust(_LINE, b"\x00")
            response = self.backend.access(MemoryRequest(
                MemoryOp.WRITE, address=address + offset, size=_LINE,
                data=chunk, time=t))
            t = response.complete_time
        return t

    def _read_bytes(self, address: int, length: int, time: float) -> bytes:
        """Read an arbitrary byte range via aligned cacheline reads."""
        first_line = address - address % _LINE
        last_line = (address + length - 1) - (address + length - 1) % _LINE
        out = bytearray()
        t = time
        for line in range(first_line, last_line + _LINE, _LINE):
            response = self.backend.access(MemoryRequest(
                MemoryOp.READ, address=line, size=_LINE, time=t))
            out.extend(response.data or bytes(_LINE))
            t = response.complete_time
        start = address - first_line
        return bytes(out[start:start + length])

    # -- records ------------------------------------------------------------

    def append(self, payload: bytes, tag: int = 0, time: float = 0.0,
               durable: bool = True) -> float:
        """Append one record; with ``durable`` the flush port runs too."""
        record = _RECORD_HEADER.pack(
            zlib.crc32(payload), len(payload), tag) + payload
        padded = ((len(record) + _LINE - 1) // _LINE) * _LINE
        if self._cursor + padded > self.base + self.length:
            raise CheckpointError("checkpoint area full")
        t = self._write_bytes(self._cursor, record, time)
        self._cursor += padded
        self.records_written += 1
        if durable:
            t = self.backend.flush(t)
        return t

    def scan(self, time: float = 0.0) -> list[tuple[int, bytes]]:
        """Replay the log from media: (tag, payload) of every intact record."""
        records = []
        cursor = self.base
        while cursor + _RECORD_HEADER.size <= self.base + self.length:
            header = self._read_bytes(cursor, _RECORD_HEADER.size, time)
            crc, length, tag = _RECORD_HEADER.unpack(header)
            if length == 0 or cursor + _RECORD_HEADER.size + length > \
                    self.base + self.length:
                break
            payload = self._read_bytes(
                cursor + _RECORD_HEADER.size, length, time)
            if zlib.crc32(payload) != crc:
                break  # torn tail: stop at the last intact record
            records.append((tag, payload))
            cursor += ((_RECORD_HEADER.size + length + _LINE - 1)
                       // _LINE) * _LINE
        return records


class ApplicationCheckpointer:
    """A-CheckPC, functionally: per-call-site buffer snapshots."""

    def __init__(self, area: CheckpointArea) -> None:
        self.area = area
        self.sequence = 0

    def checkpoint(self, buffers: dict[str, bytes], time: float = 0.0,
                   durable: bool = True) -> float:
        """Save named stack/heap buffers at a function boundary."""
        payload = bytearray()
        for name, blob in sorted(buffers.items()):
            encoded = name.encode()
            payload += struct.pack("<HI", len(encoded), len(blob))
            payload += encoded + blob
        t = self.area.append(bytes(payload), tag=self.sequence, time=time,
                             durable=durable)
        self.sequence += 1
        return t

    def restore_latest(self, time: float = 0.0) -> Optional[dict[str, bytes]]:
        """Rebuild the newest committed checkpoint's buffers."""
        records = self.area.scan(time)
        if not records:
            return None
        _, payload = records[-1]
        out: dict[str, bytes] = {}
        cursor = 0
        while cursor + 6 <= len(payload):
            name_len, blob_len = struct.unpack_from("<HI", payload, cursor)
            cursor += 6
            name = payload[cursor:cursor + name_len].decode()
            cursor += name_len
            out[name] = payload[cursor:cursor + blob_len]
            cursor += blob_len
        return out


class SystemCheckpointer:
    """S-CheckPC, functionally: periodic dumps of a task's VMA images."""

    def __init__(self, area: CheckpointArea) -> None:
        self.area = area
        self.periods = 0

    def dump_task(self, pid: int, vma_images: dict[int, bytes],
                  time: float = 0.0) -> float:
        """One period's dump: (start address -> bytes) per dirty VMA."""
        payload = bytearray(struct.pack("<QI", pid, len(vma_images)))
        for start, image in sorted(vma_images.items()):
            payload += struct.pack("<QI", start, len(image)) + image
        t = self.area.append(bytes(payload), tag=pid, time=time)
        self.periods += 1
        return t

    def restore_task(self, pid: int,
                     time: float = 0.0) -> Optional[dict[int, bytes]]:
        """Newest committed dump for ``pid`` (cold reboot restores from it)."""
        newest: Optional[dict[int, bytes]] = None
        for tag, payload in self.area.scan(time):
            if tag != pid:
                continue
            got_pid, count = struct.unpack_from("<QI", payload, 0)
            cursor = 12
            images: dict[int, bytes] = {}
            for _ in range(count):
                start, length = struct.unpack_from("<QI", payload, cursor)
                cursor += 12
                images[start] = payload[cursor:cursor + length]
                cursor += length
            newest = images
        return newest


class SystemImager:
    """SysPC, functionally: all-or-nothing image of a memory region."""

    _MAGIC = 0x5359_5350  # "SYSP"

    def __init__(self, area: CheckpointArea) -> None:
        self.area = area

    def dump(self, image: bytes, time: float = 0.0,
             interrupted: bool = False) -> float:
        """Write the image; ``interrupted`` models the rails dying mid-dump
        (the record is written but never made durable/committed)."""
        return self.area.append(image, tag=self._MAGIC, time=time,
                                durable=not interrupted)

    def load(self, time: float = 0.0) -> Optional[bytes]:
        images = [p for tag, p in self.area.scan(time) if tag == self._MAGIC]
        return images[-1] if images else None
