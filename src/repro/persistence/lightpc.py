"""LightPC's SnG expressed as a persistence mechanism.

Unlike the LegacyPC baselines, SnG does no work during execution at all
(no journaling, no checkpoints, no flushes); everything happens inside
the hold-up window at the power signal (Stop) and at recovery (Go).
The numbers come from a measured :class:`repro.pecos.sng.SnG` run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pecos.sng import GoReport, StopReport
from repro.persistence.base import (
    ExecutionProfile,
    PersistenceMechanism,
    PersistenceOutcome,
)

__all__ = ["LightPCSnG"]


@dataclass(frozen=True)
class LightPCSnG(PersistenceMechanism):
    """Stop-and-Go costs around one power-down, from measured reports."""

    stop_ns: float
    go_ns: float
    #: dynamic power while offlining (cores winding down, PSM flushing)
    stop_power_w: float = 4.5
    go_power_w: float = 4.4

    name = "lightpc"

    @classmethod
    def from_reports(cls, stop: StopReport, go: GoReport) -> "LightPCSnG":
        return cls(stop_ns=stop.total_ns, go_ns=go.total_ns)

    def outcome(self, profile: ExecutionProfile) -> PersistenceOutcome:
        return PersistenceOutcome(
            mechanism=self.name,
            execution_ns=profile.wall_ns,
            control_ns=self.stop_ns + self.go_ns,
            flush_at_fail_ns=self.stop_ns,
            recover_ns=self.go_ns,
            flush_power_w=self.stop_power_w,
            recover_power_w=self.go_power_w,
            survives_holdup_overrun=False,  # must fit -- and does
        )
