"""SysPC: system-image persistence (hibernation-style, paper §VI).

SysPC runs the benchmark natively on LegacyPC (DRAM working memory) and
only acts when a sleep/power signal arrives: it dumps the entire system
image — kernel, page tables, every process's memory — from DRAM into
OC-PMEM, and reloads it at power recovery.  Execution is therefore
undisturbed, but the flush is enormous (the paper measures it at 172x /
112x the ATX/server hold-up windows, Fig. 20), so SysPC fundamentally
cannot survive a real power failure without an external energy source;
it models the best case for "dump only at the end" persistence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.persistence.base import (
    OCPMEM_BULK_READ_BW,
    OCPMEM_BULK_WRITE_BW,
    ExecutionProfile,
    PersistenceMechanism,
    PersistenceOutcome,
)

__all__ = ["SysPC"]


@dataclass(frozen=True)
class SysPC(PersistenceMechanism):
    """System-image dump at the power signal; reload at recovery."""

    #: resident system image beyond the benchmark itself: kernel text/data,
    #: page tables, the tens of kernel threads, daemons, buffers.
    base_image_bytes: float = 0.55e9
    dump_bw: float = OCPMEM_BULK_WRITE_BW
    load_bw: float = OCPMEM_BULK_READ_BW
    #: hibernation keeps cores + DRAM + OC-PMEM all active (paper: ~20 W)
    dump_power_w: float = 20.0
    load_power_w: float = 19.4

    name = "syspc"

    def image_bytes(self, profile: ExecutionProfile) -> float:
        return self.base_image_bytes + profile.footprint_bytes

    def outcome(self, profile: ExecutionProfile) -> PersistenceOutcome:
        image = self.image_bytes(profile)
        dump_ns = image / self.dump_bw * 1e9
        load_ns = image / self.load_bw * 1e9
        return PersistenceOutcome(
            mechanism=self.name,
            execution_ns=profile.wall_ns,
            control_ns=dump_ns + load_ns,
            flush_at_fail_ns=dump_ns,
            recover_ns=load_ns,
            flush_power_w=self.dump_power_w,
            recover_power_w=self.load_power_w,
            # The dump vastly exceeds any hold-up window: committed work
            # *is* lost if the rails drop mid-dump.
            survives_holdup_overrun=False,
        )
