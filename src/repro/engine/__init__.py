"""Pluggable execution engines for the simulation pipeline.

One registry, four builtin engines:

* ``scalar`` — exact per-record replay (the reference semantics);
* ``window`` (alias ``batch``) — exact replay in 4096-record windows,
  the PR 4 hot path;
* ``extent`` — windowed replay + closed-form extent flushes, the PR 5
  persistence-cut path and the process default;
* ``epoch`` — phase-detecting analytical acceleration that skips
  steady-state windows entirely and falls back to exact replay at
  phase boundaries, persistence cuts, and fault points.

``Machine.run``, the litmus enumerator, the compound-fault drills and
the CLI all select execution through :func:`resolve_engine`; new
engines plug in via :func:`register_engine` exactly the way new memory
tiers plug in via ``register_backend_factory``.
"""

from repro.engine.base import (
    DEFAULT_ENGINE,
    EngineSpec,
    ExecutionEngine,
    assert_execution_engine,
    available_engines,
    canonical_engine_name,
    default_engine_name,
    register_engine,
    resolve_engine,
    set_default_engine,
)
from repro.engine.columnar import (
    HAVE_NUMPY,
    ResponseSummary,
    WindowSignature,
    signature_of_columns,
    signature_of_records,
    signature_of_window,
    summarize_responses,
)
from repro.engine.epoch import EpochEngine, EpochReport
from repro.engine.extent import ExtentEngine
from repro.engine.lowering import DriveResult
from repro.engine.scalar import ScalarEngine
from repro.engine.window import WindowEngine

__all__ = [
    "DEFAULT_ENGINE",
    "DriveResult",
    "EngineSpec",
    "EpochEngine",
    "EpochReport",
    "ExecutionEngine",
    "ExtentEngine",
    "HAVE_NUMPY",
    "ResponseSummary",
    "ScalarEngine",
    "WindowEngine",
    "WindowSignature",
    "assert_execution_engine",
    "available_engines",
    "canonical_engine_name",
    "default_engine_name",
    "register_engine",
    "resolve_engine",
    "set_default_engine",
    "signature_of_columns",
    "signature_of_records",
    "signature_of_window",
    "summarize_responses",
]
