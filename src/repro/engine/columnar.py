"""Columnar epoch-summarization kernels (numpy-accelerated).

The epoch engine decides whether a trace window belongs to the current
steady-state phase from a compact :class:`WindowSignature` — R/W mix,
compute density, unique-line pressure and row locality.  The request
and response window structs are already columnar (parallel lists), so
the kernels here vectorize straight over the columns when numpy is
importable and fall back to pure-python reductions when it is not; the
two paths are required (and tested) to agree exactly on counts and to
float precision on the derived fractions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

# One central guard decides numpy availability (tests monkeypatch the
# module-level HAVE_NUMPY re-export to force the pure-python branch).
from repro._np import HAVE_NUMPY, np as _np
from repro.memory.request import CACHELINE_BYTES

__all__ = [
    "HAVE_NUMPY",
    "ResponseSummary",
    "WindowSignature",
    "signature_of_columns",
    "signature_of_records",
    "signature_of_window",
    "summarize_responses",
]

#: DRAM/PSM row granularity assumed by the locality column (2 KiB).
_ROW_BYTES = 2048


@dataclass(frozen=True)
class WindowSignature:
    """Phase fingerprint of one trace/request window."""

    records: int
    writes: int
    instructions: int
    unique_lines: int
    #: fraction of accesses that stay in the previous access's row —
    #: the row-buffer-hit proxy the phase detector keys on
    row_locality: float

    @property
    def write_fraction(self) -> float:
        return self.writes / self.records if self.records else 0.0

    @property
    def instructions_per_record(self) -> float:
        return self.instructions / self.records if self.records else 0.0

    @property
    def line_pressure(self) -> float:
        """Unique lines touched per record (D$/bank pressure proxy)."""
        return self.unique_lines / self.records if self.records else 0.0

    def close_to(self, other: "WindowSignature", tolerance: float) -> bool:
        """Same phase?  All derived fractions within ``tolerance``."""
        if self.records == 0 or other.records == 0:
            return self.records == other.records
        return (
            abs(self.write_fraction - other.write_fraction) <= tolerance
            and abs(self.line_pressure - other.line_pressure) <= tolerance
            and abs(self.row_locality - other.row_locality) <= tolerance
            and _rel_close(self.instructions_per_record,
                           other.instructions_per_record, tolerance)
        )


@dataclass(frozen=True)
class ResponseSummary:
    """Bulk latency digest of one response window."""

    responses: int
    latency_total: float
    latency_min: float
    latency_max: float
    blocked_total: float

    @property
    def latency_mean(self) -> float:
        return self.latency_total / self.responses if self.responses else 0.0


def _rel_close(a: float, b: float, tolerance: float) -> bool:
    scale = max(abs(a), abs(b), 1e-12)
    return abs(a - b) / scale <= tolerance


def signature_of_columns(
    addresses: Sequence[int],
    is_write: Sequence[bool],
    instructions: Sequence[int],
) -> WindowSignature:
    """Summarize parallel columns (the shape ``RequestWindow`` keeps)."""
    count = len(addresses)
    if count == 0:
        return WindowSignature(0, 0, 0, 0, 0.0)
    if HAVE_NUMPY:
        lines = _np.fromiter(
            addresses, dtype=_np.int64, count=count
        ) // CACHELINE_BYTES
        rows = lines * CACHELINE_BYTES // _ROW_BYTES
        same_row = int((rows[1:] == rows[:-1]).sum())
        writes = int(_np.count_nonzero(
            _np.fromiter(is_write, dtype=bool, count=count)))
        instr = int(_np.fromiter(
            instructions, dtype=_np.int64, count=count).sum())
        unique = int(_np.unique(lines).size)
    else:
        lines_list = [address // CACHELINE_BYTES for address in addresses]
        rows_list = [
            line * CACHELINE_BYTES // _ROW_BYTES for line in lines_list
        ]
        same_row = sum(
            1 for prev, cur in zip(rows_list, rows_list[1:]) if prev == cur
        )
        writes = sum(1 for flag in is_write if flag)
        instr = sum(instructions)
        unique = len(set(lines_list))
    locality = same_row / (count - 1) if count > 1 else 1.0
    return WindowSignature(
        records=count,
        writes=writes,
        instructions=instr,
        unique_lines=unique,
        row_locality=locality,
    )


def signature_of_records(records: Sequence) -> WindowSignature:
    """Summarize a window of trace records (``TraceRecord``-shaped)."""
    return signature_of_columns(
        [record.address for record in records],
        [record.is_write for record in records],
        [record.instructions for record in records],
    )


def signature_of_window(window) -> WindowSignature:
    """Summarize a :class:`~repro.memory.batch.RequestWindow` in place —
    the struct is already columnar, so no per-record extraction runs."""
    return signature_of_columns(
        window.addresses, window.is_write, [0] * len(window.addresses)
    )


def summarize_responses(responses) -> ResponseSummary:
    """Digest a :class:`~repro.memory.batch.ResponseWindow` (or any
    sequence of responses with ``latency``/``blocked_ns``).

    A ``ResponseWindow`` is consumed columnwise (its ``latencies()``
    helper plus the ``blocked`` column); plain response sequences fall
    back to attribute extraction.
    """
    latencies: Iterable[float]
    if hasattr(responses, "latencies"):
        # The cached column is consumed as-is (ndarray or list); the
        # reductions below never mutate it, so no defensive copy.
        latencies = responses.latencies()
        blocked = responses.blocked
    else:
        latencies = [response.latency for response in responses]
        blocked = [response.blocked_ns for response in responses]
    if not len(latencies):
        return ResponseSummary(0, 0.0, 0.0, 0.0, 0.0)
    if HAVE_NUMPY:
        column = _np.asarray(latencies, dtype=float)
        blocked_column = _np.asarray(blocked, dtype=float)
        return ResponseSummary(
            responses=int(column.size),
            latency_total=float(column.sum()),
            latency_min=float(column.min()),
            latency_max=float(column.max()),
            blocked_total=float(blocked_column.sum()),
        )
    return ResponseSummary(
        responses=len(latencies),
        latency_total=sum(latencies),
        latency_min=min(latencies),
        latency_max=max(latencies),
        blocked_total=sum(blocked),
    )
