"""Execution-engine protocol and registry.

Before this layer existed the repo had three hand-rolled execution
paths — scalar replay, the PR 4 windowed loop, and the PR 5 extent
flush — selected by inline branches spread across ``cpu/core.py``,
``cpu/complex.py`` (the single-survivor drain), ``litmus/engine.py``
(``drive_program``'s per-path lowering) and ``faults/drill.py``.  This
module turns the choice into a first-class object: an
:class:`ExecutionEngine` owns

* **drain** — how a core consumes the tail of a trace once no
  cross-core ordering is left to respect;
* **flush_cache** — how a persistence cut dumps a core's dirty D$
  through the memory port;
* **drive_program** — how a litmus program is lowered into port
  traffic (the crash-point enumerators and compound-fault drills both
  go through this).

Engines are selected by name through a registry that mirrors
``register_backend_factory`` in :mod:`repro.core.machine`: builtin
engines self-register on import, externally-defined engines plug in
via :func:`register_engine`, and every consumer (``Machine.run``, the
CLI, litmus, drill, the figure drivers) resolves through
:func:`resolve_engine`.  ``resolve_engine(None)`` returns the process
default (``extent`` — the exact path, byte-identical to the pre-layer
behaviour), which :func:`set_default_engine` can repoint for a whole
run (the ``repro profile --engine`` hook).
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, Union, runtime_checkable

__all__ = [
    "DEFAULT_ENGINE",
    "EngineSpec",
    "ExecutionEngine",
    "assert_execution_engine",
    "available_engines",
    "canonical_engine_name",
    "default_engine_name",
    "register_engine",
    "resolve_engine",
    "set_default_engine",
]

#: The exact extent path — byte-identical to the pre-registry pipeline.
DEFAULT_ENGINE = "extent"


@runtime_checkable
class ExecutionEngine(Protocol):
    """What the pipeline needs from an execution engine.

    Structural and runtime-checkable, like
    :class:`repro.memory.port.MemoryBackend`: anything with these
    members is an engine.  Optional extensions follow the same
    ``getattr`` convention the port layer uses for ``access_batch`` —
    engines that keep per-run state may expose ``begin_run()`` /
    ``take_run_report()`` (the epoch engine does) and callers probe for
    them with ``getattr``.
    """

    #: canonical registry name (``scalar`` / ``window`` / ``extent`` / ``epoch``)
    name: str

    def drain(self, core, records, thread_id: int = 0, *,
              source=None, consumed: int = 0):
        """Consume the remaining ``records`` of one thread on ``core``.

        Called by the complex once a single trace survives the
        global-time interleave.  ``source`` is the originating trace
        object (engines may read ``count`` / ``refs`` length hints and
        the ``stationary`` marker from it); ``consumed`` is how many
        records the interleave already executed.
        """
        ...

    def flush_cache(self, core) -> tuple[int, list[int]]:
        """Dump ``core``'s D$ through the port; returns (count, addrs)."""
        ...

    def drive_program(self, port, program):
        """Lower a litmus program into port traffic; returns DriveResult."""
        ...


#: Engine factories are zero-argument so every consumer gets a private
#: instance (epoch engines carry per-run state).
EngineFactory = Callable[[], ExecutionEngine]

EngineSpec = Union[None, str, ExecutionEngine]

_ENGINE_FACTORIES: dict[str, EngineFactory] = {}
_ENGINE_ALIASES: dict[str, str] = {}
_default_engine = DEFAULT_ENGINE
_builtins_loaded = False


def register_engine(
    name: str, factory: EngineFactory, aliases: tuple[str, ...] = ()
) -> None:
    """Teach the pipeline a new engine name.

    The factory's product must satisfy :class:`ExecutionEngine`;
    :func:`resolve_engine` asserts conformance on every build.
    ``aliases`` register alternate lookup names (the litmus paths call
    the window engine ``batch``).
    """
    _ENGINE_FACTORIES[name] = factory
    for alias in aliases:
        _ENGINE_ALIASES[alias] = name


def _ensure_builtins() -> None:
    # Builtin engines self-register on import; importing them lazily
    # here means ``from repro.engine.base import resolve_engine`` works
    # no matter which corner of the package a consumer entered through.
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    from repro.engine import epoch, extent, scalar, window  # noqa: F401


def available_engines() -> tuple[str, ...]:
    """Canonical engine names, sorted (aliases excluded)."""
    _ensure_builtins()
    return tuple(sorted(_ENGINE_FACTORIES))


def canonical_engine_name(name: str) -> str:
    """Resolve aliases; raises ``ValueError`` for unknown names."""
    _ensure_builtins()
    resolved = _ENGINE_ALIASES.get(name, name)
    if resolved not in _ENGINE_FACTORIES:
        raise ValueError(
            f"unknown engine {name!r}; have {', '.join(available_engines())}"
        )
    return resolved


def default_engine_name() -> str:
    return _default_engine


def set_default_engine(name: str) -> str:
    """Repoint ``resolve_engine(None)``; returns the previous default."""
    global _default_engine
    previous = _default_engine
    _default_engine = canonical_engine_name(name)
    return previous


def resolve_engine(engine: EngineSpec = None) -> ExecutionEngine:
    """Turn an engine spec into a conformant engine instance.

    ``None`` builds the process default, a string looks up the registry
    (aliases allowed), and an existing engine object passes through —
    all three shapes are conformance-checked.
    """
    _ensure_builtins()
    if engine is None:
        engine = _default_engine
    if isinstance(engine, str):
        built = _ENGINE_FACTORIES[canonical_engine_name(engine)]()
        assert_execution_engine(built, context=f"engine {engine!r}")
        return built
    assert_execution_engine(engine, context="engine instance")
    return engine


def assert_execution_engine(engine: object, context: str = "engine") -> None:
    """Cheap structural conformance check (mirrors the port layer's)."""
    missing = []
    if not isinstance(getattr(engine, "name", None), str):
        missing.append("name")
    for method in ("drain", "flush_cache", "drive_program"):
        if not callable(getattr(engine, method, None)):
            missing.append(method)
    if missing:
        raise TypeError(
            f"{context}: {type(engine).__name__} does not satisfy "
            f"ExecutionEngine (missing/invalid: {', '.join(missing)})"
        )
