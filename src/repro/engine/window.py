"""Window engine: the PR 4 batched hot path as a pluggable engine.

Observationally identical to scalar replay (the ``execute_window``
contract) with per-record dispatch overhead amortized over 4096-record
windows; the persistence cut drains as one request window through
``access_batch``.  Registered under its litmus path alias ``batch`` so
existing verdict labels and CI reports keep their names.
"""

from __future__ import annotations

import itertools

from repro.engine.base import register_engine
from repro.engine.lowering import DriveResult, batch_cut, drive_lowered
from repro.memory.batch import backend_access_batch
from repro.memory.extent import (
    coalesce_lines,
    default_flush_extents,
    report_from_responses,
    window_from_extents,
)

__all__ = ["WINDOW_RECORDS", "WindowEngine"]

#: Drain window size — the PR 4 hot-path batch grain.
WINDOW_RECORDS = 4096


class WindowEngine:
    """Exact replay in batched windows."""

    name = "window"

    def __init__(self, window: int = WINDOW_RECORDS) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window

    def drain(self, core, records, thread_id: int = 0, *,
              source=None, consumed: int = 0) -> None:
        records = iter(records)
        while True:
            window = list(itertools.islice(records, self.window))
            if not window:
                break
            core.execute_window(window, thread_id)

    def flush_cache(self, core) -> tuple[int, list[int]]:
        dirty = core.cache.flush_dirty()
        if dirty:
            extents = coalesce_lines(dirty)
            window = window_from_extents(extents, core.now)
            if window is None:
                core.last_flush_report = default_flush_extents(
                    core.backend, extents, core.now
                )
            else:
                responses = backend_access_batch(core.backend, window)
                core.last_flush_report = report_from_responses(
                    len(extents), core.now, responses
                )
        return len(dirty), dirty

    def drive_program(self, port, program) -> DriveResult:
        return drive_lowered(port, program, batch_runs=True, cut=batch_cut)


register_engine("window", WindowEngine, aliases=("batch",))
