"""Scalar engine: one ``access`` per record, per dirty line, per store.

The reference semantics every faster engine is measured against — no
windowing, no extent coalescing on the flush path's request shape (the
lines still coalesce for the report, but each drains as its own scalar
write).  Useful for bisecting equivalence failures and as the baseline
leg of the hot-path benchmarks.
"""

from __future__ import annotations

from repro.engine.base import register_engine
from repro.engine.lowering import DriveResult, drive_lowered, scalar_cut
from repro.memory.extent import coalesce_lines, default_flush_extents

__all__ = ["ScalarEngine"]


class ScalarEngine:
    """Exact per-record replay through the scalar port surface."""

    name = "scalar"

    def drain(self, core, records, thread_id: int = 0, *,
              source=None, consumed: int = 0) -> None:
        for record in records:
            core.execute(
                record.instructions, record.address, record.is_write,
                thread_id,
            )

    def flush_cache(self, core) -> tuple[int, list[int]]:
        dirty = core.cache.flush_dirty()
        if dirty:
            # One posted write per line at the same clock — the scalar
            # fallback loop the extent port would otherwise amortize.
            core.last_flush_report = default_flush_extents(
                core.backend, coalesce_lines(dirty), core.now
            )
        return len(dirty), dirty

    def drive_program(self, port, program) -> DriveResult:
        return drive_lowered(port, program, batch_runs=False, cut=scalar_cut)


register_engine("scalar", ScalarEngine)
