"""Litmus-program lowering: shared machinery behind ``drive_program``.

Every engine lowers a :class:`~repro.litmus.ir.LitmusProgram` into port
traffic through :func:`drive_lowered`; what differs per engine is (a)
whether store/load runs batch through ``access_batch`` and (b) how the
SNG_CUT writeback drains the dirty extents.  All lowerings produce the
*same* injector tick sequence (a batch of n requests ticks n times, an
extent of n lines ticks n times), so the crash-point space is shared
across engines and the litmus enumerator's cross-path identity check
stays meaningful — that contract used to live in
``litmus/engine.py``'s hand-rolled path branches and now lives here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.memory.batch import backend_access_batch
from repro.memory.extent import (
    DirtyExtentMap,
    Extent,
    backend_flush_extents,
    window_from_extents,
)
from repro.memory.port import InjectedPowerFailure
from repro.memory.request import CACHELINE_BYTES, MemoryOp, MemoryRequest

if TYPE_CHECKING:  # pragma: no cover
    from repro.litmus.ir import LitmusProgram

__all__ = [
    "DriveResult",
    "batch_cut",
    "drive_lowered",
    "extent_cut",
    "scalar_cut",
]

#: How one engine drains the SNG_CUT's dirty extents: (port, extents, t).
CutFn = Callable[[object, Sequence[Extent], float], None]


@dataclass
class DriveResult:
    """What one drive of a program through a port established.

    ``committed`` is the wear blob captured at the last SNG_CUT that
    completed before any crash; ``crashed`` records whether an injector
    tripped mid-drive (the exception is absorbed so the caller can run
    its own recovery protocol — one-shot for litmus, the looping Go of
    the compound-fault drills).
    """

    committed: Optional[bytes] = None
    crashed: bool = False


def scalar_cut(port, extents: Sequence[Extent], t: float) -> None:
    """One ``access`` per dirty line — the scalar engine's writeback."""
    for extent in extents:
        for address in extent.addresses():
            port.access(MemoryRequest(
                MemoryOp.WRITE, address=address, time=t))


def batch_cut(port, extents: Sequence[Extent], t: float) -> None:
    """The dirty extents as one request window through ``access_batch``."""
    window = window_from_extents(extents, t)
    if window is not None:
        backend_access_batch(port, window)


def extent_cut(port, extents: Sequence[Extent], t: float) -> None:
    """Coalesced extents through the closed-form ``flush_extents`` port."""
    backend_flush_extents(port, extents, t)


def drive_lowered(
    port,
    program: "LitmusProgram",
    *,
    batch_runs: bool,
    cut: CutFn,
) -> DriveResult:
    """Issue ``program``'s port traffic through ``port``.

    ``batch_runs`` batches store/load runs through ``access_batch``
    (the window engine's lowering); ``cut`` drains the SNG_CUT
    writeback.  Any injector armed on ``port`` trips at the same global
    tick index regardless of either choice (see the module docstring).
    """
    # Imported at call time: the litmus package itself resolves engines
    # through this module, so a top-level import would be circular.
    from repro.litmus.ir import OpKind, line_value

    dirty = DirtyExtentMap(size=CACHELINE_BYTES)
    result = DriveResult()
    run: list[MemoryRequest] = []
    t = 0.0

    def submit_run() -> None:
        nonlocal t
        if not run:
            return
        batched, run[:] = list(run), []
        if len(batched) == 1:
            port.access(batched[0])
        else:
            backend_access_batch(port, batched)
        t += 10.0

    try:
        for op in program.ops:
            if op.kind is OpKind.STORE:
                request = MemoryRequest(
                    MemoryOp.WRITE, address=op.line * CACHELINE_BYTES,
                    data=line_value(op.version), time=t)
                dirty.note_write(request.address)
                if batch_runs:
                    run.append(request)
                else:
                    port.access(request)
                    t += 10.0
            elif op.kind is OpKind.LOAD:
                request = MemoryRequest(
                    MemoryOp.READ, address=op.line * CACHELINE_BYTES, time=t)
                if batch_runs:
                    run.append(request)
                else:
                    port.access(request)
                    t += 10.0
            elif op.kind is OpKind.FLUSH:
                submit_run()
                t = port.flush(t)
            elif op.kind is OpKind.FENCE:
                submit_run()
                t = port.drain(t)
            elif op.kind is OpKind.SNG_CUT:
                submit_run()
                cut(port, dirty.take(), t)
                t = port.flush(t)
                result.committed = port.capture_registers()
            # CHECKPOINT: marker only, no port traffic
        submit_run()
    except InjectedPowerFailure:
        result.crashed = True
    return result
