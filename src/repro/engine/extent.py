"""Extent engine: windowed drain + closed-form extent flush (PR 5).

The process default: byte-identical to the pipeline as it stood before
the engine layer existed — traces drain through the batched window
loop and persistence cuts coalesce dirty lines into sorted extents for
the backend's analytical ``flush_extents`` port.
"""

from __future__ import annotations

from repro.engine.base import register_engine
from repro.engine.lowering import DriveResult, drive_lowered, extent_cut
from repro.engine.window import WindowEngine
from repro.memory.extent import backend_flush_extents, coalesce_lines

__all__ = ["ExtentEngine"]


class ExtentEngine(WindowEngine):
    """Exact replay; extent-coalesced persistence cuts."""

    name = "extent"

    def flush_cache(self, core) -> tuple[int, list[int]]:
        dirty = core.cache.flush_dirty()
        if dirty:
            # All write-backs issue at the same clock and coalesce into
            # sorted extents — the homogeneous shape the backend's
            # closed-form flush path drains analytically.
            core.last_flush_report = backend_flush_extents(
                core.backend, coalesce_lines(dirty), core.now
            )
        return len(dirty), dirty

    def drive_program(self, port, program) -> DriveResult:
        return drive_lowered(port, program, batch_runs=False, cut=extent_cut)


register_engine("extent", ExtentEngine)
