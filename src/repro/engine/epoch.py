"""Epoch-analytical engine: skip steady-state phases in closed form.

The batch (PR 4) and extent (PR 5) paths still replay every access; at
the paper's scale (10^8–10^9 references behind Table II and Fig.
20–22) the next order of magnitude comes from not replaying stable
phases at all.  This engine applies the interval/analytical-model
technique (arXiv:2502.10167, and METICULOUS's coarse timing tiers,
arXiv:2309.06565) to the single-survivor trace drain:

1. **Calibrate** — replay ``stable_windows`` consecutive windows
   exactly, recording each window's columnar
   :class:`~repro.engine.columnar.WindowSignature` (R/W mix, line
   pressure, row locality) and its measured deltas (clock advance,
   core stats, cache hit counters, backend counters).
2. **Skip** — once the signatures and the per-window clock advance
   agree within ``tolerance``, stop generating records: subsequent
   windows are marked *pending* and the trace generator is left
   untouched (skipping the generation is where most of the wall-clock
   win lives).
3. **Probe** — every ``probe_interval`` windows the pending block is
   settled analytically — one bulk ``record_many``/``add_many``-style
   update per stat from the calibrated means — and the next window is
   generated and replayed exactly.  A probe whose signature or timing
   drifts is a **phase boundary**: the engine falls back to
   calibration and replays exactly until the new phase stabilizes.

Exactness escape hatches, so crashfuzz/litmus/drill semantics are
untouched:

* an armed fault injector anywhere in the port chain (a scheduled
  ``crash_at_op`` or pending compound cuts) disables skipping for the
  whole drain — fault points always land on exactly-replayed traffic;
* a persistence cut (``flush_cache``) landing while windows are
  pending forces **exact replay from the last phase boundary**: the
  pending windows are generated and executed for real before the dump,
  so no analytically-skipped dirty line is missing from the recovered
  state, and the cache dump drains the true dirty set;
* litmus lowering is inherited from the extent engine unchanged —
  programs are short, fault-laden, and never benefit from skipping;
* non-stationary or unsized sources (no ``count``/``refs`` hint, no
  ``stationary`` marker) drain through the exact window loop.

Because skipped windows are *estimated* from calibrated means, an
epoch run's aggregate timing/stats are an approximation of the exact
run (the forced-boundary configuration — ``probe_interval=1`` or an
infinite ``stable_windows`` — degenerates to the window engine
byte-for-byte; the equivalence suite pins that).  Backend counters for
the skipped traffic are accumulated into the per-run
:class:`EpochReport`, which ``Machine.run`` folds into the run's
counters and power report.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.engine.base import register_engine
from repro.engine.columnar import WindowSignature, signature_of_records
from repro.engine.extent import ExtentEngine

__all__ = ["EpochEngine", "EpochReport"]


@dataclass
class EpochReport:
    """What one run's epoch acceleration did (and estimated)."""

    #: windows advanced analytically / records never generated
    windows_skipped: int = 0
    records_skipped: int = 0
    #: windows replayed exactly (calibration + probes + tails)
    windows_exact: int = 0
    records_exact: int = 0
    #: steady phases entered (skip-mode activations)
    phases: int = 0
    #: probes that drifted and forced recalibration
    boundaries: int = 0
    #: pending windows force-replayed by a mid-epoch persistence cut
    windows_forced_exact: int = 0
    #: estimated backend-counter deltas for the skipped traffic
    counter_deltas: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "windows_skipped": self.windows_skipped,
            "records_skipped": self.records_skipped,
            "windows_exact": self.windows_exact,
            "records_exact": self.records_exact,
            "phases": self.phases,
            "boundaries": self.boundaries,
            "windows_forced_exact": self.windows_forced_exact,
            "counter_deltas": dict(self.counter_deltas),
        }


@dataclass
class _WindowDelta:
    """Measured side effects of one exactly-replayed window."""

    now: float
    instructions: float
    reads: float
    writes: float
    evictions: float
    compute_ns: float
    read_stall_ns: float
    write_stall_ns: float
    software_ns: float
    read_hit_hits: float
    read_hit_total: float
    write_hit_hits: float
    write_hit_total: float
    cache_evictions: float
    cache_dirty_evictions: float
    counters: dict[str, float]


def _rel_close(a: float, b: float, tolerance: float) -> bool:
    scale = max(abs(a), abs(b), 1e-9)
    return abs(a - b) / scale <= tolerance


def _armed_fault(backend) -> bool:
    """Is any injector in the port chain armed?

    Structural walk down ``inner`` links: a scheduled
    :class:`~repro.memory.port.FaultInjector` exposes ``crash_at_op``,
    a :class:`~repro.faults.compound.CompoundFaultInjector` carries
    pending ``cuts``.  Armed means every record must replay exactly so
    the trip lands on real traffic.
    """
    seen = 0
    node = backend
    while node is not None and seen < 64:
        if getattr(node, "crash_at_op", None) is not None:
            return True
        if getattr(node, "cuts", None):
            return True
        node = getattr(node, "inner", None)
        seen += 1
    return False


class _EpochSession:
    """One drain of one core's trace through the epoch state machine."""

    def __init__(
        self,
        engine: "EpochEngine",
        core,
        records,
        thread_id: int,
        remaining: Optional[int],
        analytic: bool,
    ) -> None:
        self.engine = engine
        self.core = core
        self.records = iter(records)
        self.thread_id = thread_id
        self.remaining = remaining
        self.analytic = analytic
        #: sliding calibration history: (signature, delta) per window
        self.history: list[tuple[WindowSignature, _WindowDelta]] = []
        self.skipping = False
        self.pending = 0
        self.finished = False

    # -- stepping ---------------------------------------------------------

    def step(self) -> bool:
        """Advance one window-equivalent; False when the drain is done."""
        engine = self.engine
        window = engine.window
        if not self.analytic:
            chunk = list(itertools.islice(self.records, window))
            if not chunk:
                return False
            self._execute_exact(chunk)
            return True
        if self.remaining <= 0:
            self.settle_pending_analytic()
            return False
        if self.skipping and self.remaining >= window:
            if (self.pending + 1 < engine.probe_interval
                    and self.remaining > window):
                # Mark the window pending without generating it — the
                # iterator stays parked at the last phase boundary.
                self.pending += 1
                self.remaining -= window
                return True
            # Probe due: settle the pending block analytically, then
            # replay the next real window and check for drift.
            self.settle_pending_analytic()
            return self._exact_step(probe=True)
        return self._exact_step()

    def _exact_step(self, probe: bool = False) -> bool:
        engine = self.engine
        window = engine.window
        if self.pending:
            # Pending windows are logically earlier than this one —
            # settle them before executing anything later.
            self.settle_pending_analytic()
        take = min(window, self.remaining)
        chunk = list(itertools.islice(self.records, take))
        if not chunk:
            # Length hint overshot the generator: settle and stop.
            self.remaining = 0
            self.settle_pending_analytic()
            return False
        self.remaining -= len(chunk)
        if len(chunk) < window:
            # Undersized tail: exact, never measured.
            self._execute_exact(chunk)
            return True
        signature = signature_of_records(chunk)
        delta = self._measure_exact(chunk)
        if probe:
            mean_sig, mean_now = self._calibration_mean()
            if (signature.close_to(mean_sig, engine.tolerance)
                    and _rel_close(delta.now, mean_now, engine.tolerance)):
                self._push_history(signature, delta)
            else:
                # Phase boundary: drift detected — recalibrate from here.
                engine._report.boundaries += 1
                self.history = [(signature, delta)]
                self.skipping = False
            return True
        self._push_history(signature, delta)
        if (not self.skipping
                and len(self.history) >= engine.stable_windows
                and self._stable()):
            self.skipping = True
            engine._report.phases += 1
        return True

    def _push_history(self, signature: WindowSignature,
                      delta: _WindowDelta) -> None:
        self.history.append((signature, delta))
        if len(self.history) > self.engine.stable_windows:
            self.history.pop(0)

    def _stable(self) -> bool:
        tolerance = self.engine.tolerance
        mean_sig, mean_now = self._calibration_mean()
        for signature, delta in self.history:
            if not signature.close_to(mean_sig, tolerance):
                return False
            if not _rel_close(delta.now, mean_now, tolerance):
                return False
        return True

    def _calibration_mean(self) -> tuple[WindowSignature, float]:
        n = len(self.history)
        mean_sig = WindowSignature(
            records=sum(s.records for s, _ in self.history) // n,
            writes=sum(s.writes for s, _ in self.history) // n,
            instructions=sum(s.instructions for s, _ in self.history) // n,
            unique_lines=sum(s.unique_lines for s, _ in self.history) // n,
            row_locality=sum(s.row_locality for s, _ in self.history) / n,
        )
        mean_now = sum(d.now for _, d in self.history) / n
        return mean_sig, mean_now

    # -- exact execution + measurement ------------------------------------

    def _execute_exact(self, chunk) -> None:
        self.core.execute_window(chunk, self.thread_id)
        report = self.engine._report
        report.windows_exact += 1
        report.records_exact += len(chunk)

    def _measure_exact(self, chunk) -> _WindowDelta:
        core = self.core
        stats = core.stats
        cache = core.cache
        before = (
            core.now, stats.instructions, stats.reads, stats.writes,
            stats.evictions, stats.compute_ns, stats.read_stall_ns,
            stats.write_stall_ns, stats.software_ns,
        )
        cache_before = (
            cache.read_hits.hits, cache.read_hits.total,
            cache.write_hits.hits, cache.write_hits.total,
            cache.evictions, cache.dirty_evictions,
        )
        counters_before = self._numeric_counters()
        self._execute_exact(chunk)
        counters_after = self._numeric_counters()
        counter_delta = {
            key: counters_after[key] - counters_before.get(key, 0.0)
            for key in counters_after
        }
        return _WindowDelta(
            now=core.now - before[0],
            instructions=stats.instructions - before[1],
            reads=stats.reads - before[2],
            writes=stats.writes - before[3],
            evictions=stats.evictions - before[4],
            compute_ns=stats.compute_ns - before[5],
            read_stall_ns=stats.read_stall_ns - before[6],
            write_stall_ns=stats.write_stall_ns - before[7],
            software_ns=stats.software_ns - before[8],
            read_hit_hits=cache.read_hits.hits - cache_before[0],
            read_hit_total=cache.read_hits.total - cache_before[1],
            write_hit_hits=cache.write_hits.hits - cache_before[2],
            write_hit_total=cache.write_hits.total - cache_before[3],
            cache_evictions=cache.evictions - cache_before[4],
            cache_dirty_evictions=cache.dirty_evictions - cache_before[5],
            counters=counter_delta,
        )

    def _numeric_counters(self) -> dict[str, float]:
        # Ratio-shaped counters are stateless summaries, not additive
        # traffic counts — they cannot be advanced by deltas.
        out = {}
        for key, value in self.core.backend.counters().items():
            if isinstance(value, (int, float)) and "ratio" not in key:
                out[key] = float(value)
        return out

    # -- settlement -------------------------------------------------------

    def settle_pending_analytic(self) -> None:
        """Advance the pending block in closed form from the calibrated
        means: one bulk update per stat, no records generated."""
        k = self.pending
        if k <= 0:
            return
        self.pending = 0
        n = len(self.history)
        deltas = [d for _, d in self.history]
        core = self.core
        stats = core.stats
        cache = core.cache

        def mean(attr: str) -> float:
            return sum(getattr(d, attr) for d in deltas) / n

        core.now += k * mean("now")
        stats.compute_ns += k * mean("compute_ns")
        stats.read_stall_ns += k * mean("read_stall_ns")
        stats.write_stall_ns += k * mean("write_stall_ns")
        stats.software_ns += k * mean("software_ns")
        stats.instructions += int(round(k * mean("instructions")))
        stats.reads += int(round(k * mean("reads")))
        stats.writes += int(round(k * mean("writes")))
        stats.evictions += int(round(k * mean("evictions")))
        cache.read_hits.record_many(
            int(round(k * mean("read_hit_hits"))),
            int(round(k * mean("read_hit_total"))),
        )
        cache.write_hits.record_many(
            int(round(k * mean("write_hit_hits"))),
            int(round(k * mean("write_hit_total"))),
        )
        cache.evictions += int(round(k * mean("cache_evictions")))
        cache.dirty_evictions += int(round(k * mean("cache_dirty_evictions")))

        report = self.engine._report
        keys = set()
        for delta in deltas:
            keys.update(delta.counters)
        for key in keys:
            per_window = sum(d.counters.get(key, 0.0) for d in deltas) / n
            if per_window:
                report.counter_deltas[key] = (
                    report.counter_deltas.get(key, 0.0) + k * per_window
                )
        report.windows_skipped += k
        report.records_skipped += k * self.engine.window

    def settle_pending_exact(self) -> None:
        """Generate and replay every pending window for real.

        The iterator is still parked at the last phase boundary, so the
        records produced here are the *true* skipped windows — after
        this, core clock, stats, cache contents and backend state are
        byte-identical to an exact drain of the same prefix.  Called by
        ``flush_cache`` when a persistence cut lands mid-epoch; the
        flush perturbs the cache, so the session recalibrates.
        """
        k = self.pending
        self.pending = 0
        window = self.engine.window
        for _ in range(k):
            chunk = list(itertools.islice(self.records, window))
            if not chunk:
                break
            self._execute_exact(chunk)
            self.engine._report.windows_forced_exact += 1
        self.skipping = False
        self.history = []


class EpochEngine(ExtentEngine):
    """Phase-detecting analytical engine over the extent engine's
    exact flush and litmus lowerings."""

    name = "epoch"

    def __init__(
        self,
        window: int = 4096,
        stable_windows: int = 4,
        probe_interval: int = 64,
        tolerance: float = 0.08,
        min_windows: int = 12,
    ) -> None:
        super().__init__(window=window)
        if stable_windows < 1:
            raise ValueError("stable_windows must be >= 1")
        if probe_interval < 1:
            raise ValueError("probe_interval must be >= 1")
        self.stable_windows = stable_windows
        self.probe_interval = probe_interval
        self.tolerance = tolerance
        self.min_windows = min_windows
        self._report = EpochReport()
        self._sessions: dict[int, _EpochSession] = {}

    # -- per-run report (optional engine extension) -----------------------

    def begin_run(self) -> None:
        """Reset the per-run report (``Machine.run`` calls this)."""
        self._report = EpochReport()

    def take_run_report(self) -> EpochReport:
        """Return and reset the accumulated per-run report."""
        report, self._report = self._report, EpochReport()
        return report

    # -- drain ------------------------------------------------------------

    def drain(self, core, records, thread_id: int = 0, *,
              source=None, consumed: int = 0) -> None:
        session = self.open_session(
            core, records, thread_id, source=source, consumed=consumed
        )
        try:
            while session.step():
                pass
        finally:
            self.close_session(core)

    def open_session(self, core, records, thread_id: int = 0, *,
                     source=None, consumed: int = 0) -> _EpochSession:
        """Build (and register) the drain session for ``core``.

        Exposed for white-box tests that need to interleave stepping
        with persistence cuts; normal callers just use :meth:`drain`.
        """
        count = getattr(source, "count", None)
        if count is None:
            count = getattr(source, "refs", None)
        remaining = None
        if count is not None:
            remaining = max(0, int(count) - consumed)
        analytic = (
            bool(getattr(source, "stationary", False))
            and remaining is not None
            and remaining >= self.min_windows * self.window
            and not _armed_fault(core.backend)
        )
        session = _EpochSession(
            self, core, records, thread_id, remaining, analytic
        )
        self._sessions[core.core_id] = session
        return session

    def close_session(self, core) -> None:
        session = self._sessions.pop(core.core_id, None)
        if session is not None and session.analytic:
            session.settle_pending_analytic()

    # -- persistence cut --------------------------------------------------

    def flush_cache(self, core) -> tuple[int, list[int]]:
        session = self._sessions.get(core.core_id)
        if session is not None and session.pending:
            # A cut mid-epoch: replay the skipped block exactly before
            # dumping, so the dirty set being flushed is the real one.
            session.settle_pending_exact()
        return super().flush_cache(core)


register_engine("epoch", EpochEngine)
