"""Command-line interface: ``python -m repro`` / ``lightpc-repro``.

Subcommands mirror how the paper is used day to day:

* ``run``          — execute one workload on one platform and report
  latency / IPC / power / energy.
* ``drill``        — power-failure drill: run, pull AC, recover, verify.
* ``bench``        — regenerate one paper table/figure (or ``all``).
* ``characterize`` — print the measured Table II row for a workload.
* ``fuzz``         — run the crash-consistency fuzzing campaigns.
* ``litmus``       — generated ordering litmus tests with exhaustive
  crash-point enumeration against the persistency-model oracle.
* ``stats``        — dump a platform's hierarchical stats tree after a run.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro import analysis
from repro.analysis.crashfuzz import (
    fuzz_machine,
    fuzz_pool,
    fuzz_psm,
    fuzz_sector,
    fuzz_trace,
)
from repro.analysis.report import render_result, render_stats
from repro.core import Machine
from repro.power.psu import ATX_PSU, SERVER_PSU
from repro.workloads import (
    WORKLOAD_SPECS,
    characterize,
    load_workload,
    save_trace,
    trace_stats,
)

__all__ = ["build_parser", "main"]

_EXPERIMENTS = {
    "fig2b": lambda: analysis.figure2b(),
    "fig4": lambda: analysis.figure4(),
    "fig8": lambda: analysis.figure8(),
    "fig14": lambda: analysis.figure14(),
    "tab1": lambda: analysis.table1(),
    "tab2": lambda: analysis.table2(refs=16_000),
    "fig15": lambda: analysis.figure15(refs=16_000),
    "fig16": lambda: analysis.figure16(refs=16_000),
    "fig17": lambda: analysis.figure17(),
    "fig18": lambda: analysis.figure18(refs=16_000),
    "fig19": lambda: analysis.figure19(refs=16_000),
    "fig20": lambda: analysis.figure20(refs=16_000),
    "fig21": lambda: analysis.figure21(refs=16_000),
    "fig22": lambda: analysis.figure22(),
}

_FUZZERS = {
    "psm": fuzz_psm,
    "pool": fuzz_pool,
    "sector": fuzz_sector,
    "machine": fuzz_machine,
    "trace": fuzz_trace,
}

_PSUS = {"atx": ATX_PSU, "server": SERVER_PSU}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _canonical_engine(name: str) -> Optional[str]:
    """Canonical engine name, or None after the one-line exit-2 message."""
    from repro.engine.base import canonical_engine_name

    try:
        return canonical_engine_name(name)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return None


def _add_engine_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--engine", default=None, metavar="NAME",
                        help="execution engine (scalar, window, extent, "
                             "epoch; default: extent)")


def _cache_dir_error(path: str) -> Optional[str]:
    """One-line reason a --cache-dir is unusable, or None if it is fine.

    Probes by creating the directory (the runner would anyway): a path
    blocked by a file, a missing parent we cannot create, or a
    permission wall all surface here as exit-code-2 messages instead of
    tracebacks deep inside the shard cache.
    """
    import os

    if os.path.exists(path):
        if not os.path.isdir(path):
            return f"--cache-dir {path!r} exists and is not a directory"
        if not os.access(path, os.W_OK):
            return f"--cache-dir {path!r} is not writable"
        return None
    try:
        os.makedirs(path, exist_ok=True)
    except OSError as exc:
        reason = exc.strerror or exc.__class__.__name__
        return f"--cache-dir {path!r} cannot be created ({reason})"
    return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lightpc-repro",
        description="LightPC (ISCA'22) reproduction: simulated OC-PMEM "
                    "hardware and persistence-centric OS",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute one workload on one platform")
    run.add_argument("--workload", default="redis",
                     choices=sorted(WORKLOAD_SPECS))
    run.add_argument("--platform", default="lightpc",
                     choices=("legacy", "lightpc_b", "lightpc"))
    run.add_argument("--refs", type=int, default=20_000,
                     help="trace references (default 20000)")
    _add_engine_argument(run)

    drill = sub.add_parser(
        "drill",
        help="power-failure drill with recovery; --trials switches to "
             "compound-fault campaign mode (nested cuts, torn extent "
             "flushes, media errors)")
    drill.add_argument("--workload", default="redis",
                       choices=sorted(WORKLOAD_SPECS))
    drill.add_argument("--psu", default="atx", choices=sorted(_PSUS))
    drill.add_argument("--refs", type=int, default=12_000)
    drill.add_argument("--trials", type=_positive_int, default=None,
                       help="run a compound-fault drill campaign of this "
                            "many generated program x fault-plan scenarios "
                            "instead of the single-machine drill")
    drill.add_argument("--shape", default="all",
                       help="litmus shape the campaign drills (default: "
                            "all; see repro.litmus.SHAPES)")
    drill.add_argument("--seed", type=int, default=None,
                       help="campaign seed (default: the drill "
                            "campaign's own)")
    drill.add_argument("--jobs", type=_positive_int, default=1,
                       help="worker processes; results are identical at "
                            "any parallelism (default 1)")
    drill.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="cache completed shards under DIR so re-runs "
                            "are incremental")
    drill.add_argument("--progress", action="store_true",
                       help="print trials/sec, ETA and violation counts "
                            "to stderr as the campaign runs")
    drill.add_argument("--artifacts", metavar="DIR", default=None,
                       help="on violation, write counterexample traces "
                            "as JSON under DIR (CI uploads these)")
    drill.add_argument("--trial-timeout", type=_positive_float,
                       default=None, metavar="SECONDS",
                       help="per-trial watchdog: a hung trial is killed "
                            "and retried once with the same derived seed "
                            "before the campaign fails")
    _add_engine_argument(drill)
    drill.add_argument("--break-remap", action="store_true",
                       help="disable retired-unit remap (the deliberately "
                            "broken degradation rule) to prove the oracle "
                            "detects and minimizes the violation")

    bench = sub.add_parser("bench", help="regenerate a paper table/figure")
    bench.add_argument("experiment",
                       choices=sorted(_EXPERIMENTS) + ["all"])
    bench.add_argument("--export", metavar="DIR", default=None,
                       help="also write <id>.csv/.json under DIR")

    char = sub.add_parser("characterize",
                          help="measured Table II row for a workload")
    char.add_argument("--workload", default="redis",
                      choices=sorted(WORKLOAD_SPECS))
    char.add_argument("--refs", type=int, default=16_000)

    fuzz = sub.add_parser("fuzz", help="crash-consistency fuzzing")
    fuzz.add_argument("target", choices=sorted(_FUZZERS) + ["all"])
    fuzz.add_argument("--trials", type=int, default=None)
    fuzz.add_argument("--seed", type=int, default=None,
                      help="campaign seed (default: each fuzzer's own)")
    fuzz.add_argument("--jobs", type=_positive_int, default=1,
                      help="worker processes; results are identical at "
                           "any parallelism (default 1)")
    fuzz.add_argument("--cache-dir", metavar="DIR", default=None,
                      help="cache completed shards under DIR so re-runs "
                           "are incremental")
    fuzz.add_argument("--progress", action="store_true",
                      help="print trials/sec, ETA and violation counts "
                           "to stderr as the campaign runs")
    fuzz.add_argument("--cold", action="store_true",
                      help="opt out of the campaign fast path (fresh "
                           "machine per trial instead of the worker pool) "
                           "for targets that execute machines; results "
                           "are byte-identical either way")
    _add_engine_argument(fuzz)

    litmus = sub.add_parser(
        "litmus",
        help="generated ordering litmus tests, every crash point "
             "enumerated and checked against the persistency oracle")
    litmus.add_argument("--shape", default="all",
                        help="litmus shape to generate (default: all; "
                             "see repro.litmus.SHAPES)")
    litmus.add_argument("--trials", type=_positive_int, default=None,
                        help="generated programs; each is enumerated "
                             "exhaustively on every execution path")
    litmus.add_argument("--seed", type=int, default=None,
                        help="campaign seed (default: the litmus "
                             "campaign's own)")
    litmus.add_argument("--jobs", type=_positive_int, default=1,
                        help="worker processes; results are identical at "
                             "any parallelism (default 1)")
    litmus.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="cache completed shards under DIR so re-runs "
                             "are incremental")
    litmus.add_argument("--progress", action="store_true",
                        help="print trials/sec, ETA and violation counts "
                             "to stderr as the campaign runs")
    litmus.add_argument("--artifacts", metavar="DIR", default=None,
                        help="on violation, write counterexample traces "
                             "as JSON under DIR (CI uploads these)")
    _add_engine_argument(litmus)

    tree = sub.add_parser("stats",
                          help="run a workload, dump the machine's "
                               "hierarchical stats tree")
    tree.add_argument("--workload", default="aes",
                      choices=sorted(WORKLOAD_SPECS))
    tree.add_argument("--platform", default="lightpc",
                      choices=("legacy", "lightpc_b", "lightpc"))
    tree.add_argument("--refs", type=int, default=8_000)
    tree.add_argument("--json", action="store_true",
                      help="emit the tree as JSON instead of an outline")
    _add_engine_argument(tree)

    profile = sub.add_parser(
        "profile",
        help="cProfile one paper experiment and print the hotspots",
    )
    profile.add_argument("experiment", choices=sorted(_EXPERIMENTS))
    profile.add_argument("--top", type=_positive_int, default=25,
                         help="number of functions to print (default 25)")
    profile.add_argument("--sort", default="cumulative",
                         choices=("cumulative", "tottime", "calls"),
                         help="pstats sort key (default cumulative)")
    profile.add_argument("--out", metavar="FILE", default=None,
                         help="also dump raw pstats data to FILE "
                              "(inspect with snakeviz/pstats)")
    _add_engine_argument(profile)

    trace = sub.add_parser("trace", help="export or summarize trace files")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    export = trace_sub.add_parser("export",
                                  help="write a workload's thread-0 trace")
    export.add_argument("--workload", default="redis",
                        choices=sorted(WORKLOAD_SPECS))
    export.add_argument("--refs", type=int, default=16_000)
    export.add_argument("--out", required=True)
    export.add_argument("--columnar", action="store_true",
                        help="write the columnar (v2) format campaign "
                             "workers map zero-copy instead of the row "
                             "stream format")
    stats = trace_sub.add_parser("stats", help="summarize a trace file")
    stats.add_argument("path")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    engine = None
    if args.engine is not None:
        engine = _canonical_engine(args.engine)
        if engine is None:
            return 2
    workload = load_workload(args.workload, refs=args.refs)
    machine = Machine.for_workload(args.platform, workload, engine=engine)
    result = machine.run(workload)
    print(f"{args.workload} on {args.platform} ({result.engine} engine): "
          f"{result.wall_ns / 1e6:.3f} ms, IPC {result.ipc:.2f}, "
          f"{result.total_w:.1f} W, {result.energy_j * 1e3:.2f} mJ")
    print(f"  D$ read hit {result.cache_read_hit:.1%}, "
          f"mean memory read {result.mean_read_latency_ns:.0f} ns")
    return 0


def _cmd_drill(args: argparse.Namespace) -> int:
    engine = None
    if args.engine is not None:
        engine = _canonical_engine(args.engine)
        if engine is None:
            return 2
    if args.trials is not None:
        return _cmd_drill_campaign(args, engine)
    workload = load_workload(args.workload, refs=args.refs)
    machine = Machine.for_workload("lightpc", workload, engine=engine)
    machine.run(workload)
    outcome = machine.power_fail(_PSUS[args.psu])
    stop = outcome.stop
    print(f"AC pulled under {args.psu}: hold-up "
          f"{outcome.holdup_ns / 1e6:.1f} ms, Stop {stop.total_ms:.2f} ms "
          f"-> {'SURVIVED' if outcome.survived else 'LOST STATE'}")
    go = machine.recover()
    if go.warm:
        intact = machine.sng.verify_resumed_state()
        print(f"warm Go in {go.total_ms:.2f} ms; EP-cut state intact: "
              f"{intact}")
        return 0 if (outcome.survived and intact) else 1
    print("cold boot (no committed EP-cut)")
    return 1


def _cmd_drill_campaign(args: argparse.Namespace,
                        engine: Optional[str] = None) -> int:
    import inspect

    from repro.faults import run_drill
    from repro.litmus import SHAPES
    from repro.orchestrate import CampaignProgress

    if args.shape != "all" and args.shape not in SHAPES:
        print(f"error: unknown litmus shape {args.shape!r}; have "
              f"{', '.join(sorted(SHAPES))} or 'all'", file=sys.stderr)
        return 2
    if args.cache_dir:
        problem = _cache_dir_error(args.cache_dir)
        if problem is not None:
            print(f"error: {problem}", file=sys.stderr)
            return 2
    kwargs = {"shape": args.shape, "jobs": args.jobs,
              "cache_dir": args.cache_dir,
              "remap_enabled": not args.break_remap,
              "trial_timeout": args.trial_timeout}
    if engine is not None:
        kwargs["engine"] = engine
    if args.trials:
        kwargs["trials"] = args.trials
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.progress:
        trials = args.trials or \
            inspect.signature(run_drill).parameters["trials"].default
        kwargs["progress"] = CampaignProgress(
            "drill", total_trials=trials, stream=sys.stderr)
    report = run_drill(**kwargs)
    print(report.summary())
    if report.ok:
        return 0
    for violation in report.violations[:5]:
        print(f"  ! {violation}")
    if args.artifacts:
        import json
        import os

        os.makedirs(args.artifacts, exist_ok=True)
        path = os.path.join(args.artifacts, "drill-counterexamples.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({
                "summary": report.summary(),
                "remap_enabled": not args.break_remap,
                "violations": report.violations,
            }, handle, indent=2, sort_keys=True)
        print(f"  counterexamples written to {path}")
    return 1


def _cmd_bench(args: argparse.Namespace) -> int:
    names = sorted(_EXPERIMENTS) if args.experiment == "all" else \
        [args.experiment]
    results = []
    for name in names:
        result = _EXPERIMENTS[name]()
        results.append(result)
        print(render_result(result))
        print()
    if args.export:
        from repro.analysis.export import write_results

        paths = write_results(results, args.export)
        print(f"exported {len(paths)} files under {args.export}")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    workload = load_workload(args.workload, refs=args.refs)
    spec = WORKLOAD_SPECS[args.workload]
    measured = characterize(workload)
    print(f"{args.workload} ({spec.category}, {measured.threads} threads)")
    rows = [
        ("reads", f"{measured.reads:,}", f"{spec.paper_reads:,.0f} (paper)"),
        ("writes", f"{measured.writes:,}", f"{spec.paper_writes:,.0f}"),
        ("read/write ratio", f"{measured.rw_ratio:.1f}",
         f"{spec.paper_rw_ratio:.1f}"),
        ("D$ read hit", f"{measured.read_hit:.1%}",
         f"{spec.paper_read_hit:.1f}%"),
        ("D$ write hit", f"{measured.write_hit:.1%}",
         f"{spec.paper_write_hit:.1f}%"),
        ("row-buffer hit", f"{measured.rb_hit:.1%}", "-"),
    ]
    for label, got, want in rows:
        print(f"  {label:<18} {got:>12}  vs {want}")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import inspect

    from repro.orchestrate import CampaignProgress

    names = sorted(_FUZZERS) if args.target == "all" else [args.target]
    engine = None
    if args.engine is not None:
        engine = _canonical_engine(args.engine)
        if engine is None:
            return 2
        if args.target != "all" and "engine" not in \
                inspect.signature(_FUZZERS[args.target]).parameters:
            print(f"error: fuzz target {args.target!r} does not execute "
                  f"workloads through an engine; --engine applies to "
                  f"'machine'", file=sys.stderr)
            return 2
    if args.cache_dir:
        problem = _cache_dir_error(args.cache_dir)
        if problem is not None:
            print(f"error: {problem}", file=sys.stderr)
            return 2
    status = 0
    for name in names:
        fuzzer = _FUZZERS[name]
        kwargs = {"jobs": args.jobs, "cache_dir": args.cache_dir}
        # Only the machine fuzzer executes workloads through an engine;
        # the structural fuzzers silently ignore the flag on `all`.
        if engine is not None and \
                "engine" in inspect.signature(fuzzer).parameters:
            kwargs["engine"] = engine
        if args.cold and "warm" in inspect.signature(fuzzer).parameters:
            kwargs["warm"] = False
        if args.trials:
            kwargs["trials"] = args.trials
        if args.seed is not None:
            kwargs["seed"] = args.seed
        if args.progress:
            trials = args.trials or \
                inspect.signature(fuzzer).parameters["trials"].default
            kwargs["progress"] = CampaignProgress(
                name, total_trials=trials, stream=sys.stderr)
        report = fuzzer(**kwargs)
        print(report.summary())
        if not report.ok:
            status = 1
            for violation in report.violations[:5]:
                print(f"  ! {violation}")
    return status


def _cmd_litmus(args: argparse.Namespace) -> int:
    import inspect

    from repro.litmus import SHAPES, run_litmus
    from repro.orchestrate import CampaignProgress

    if args.shape != "all" and args.shape not in SHAPES:
        print(f"error: unknown litmus shape {args.shape!r}; have "
              f"{', '.join(sorted(SHAPES))} or 'all'", file=sys.stderr)
        return 2
    if args.cache_dir:
        problem = _cache_dir_error(args.cache_dir)
        if problem is not None:
            print(f"error: {problem}", file=sys.stderr)
            return 2
    kwargs = {"shape": args.shape, "jobs": args.jobs,
              "cache_dir": args.cache_dir}
    if args.engine is not None:
        engine = _canonical_engine(args.engine)
        if engine is None:
            return 2
        kwargs["engine"] = engine
    if args.trials:
        kwargs["trials"] = args.trials
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.progress:
        trials = args.trials or \
            inspect.signature(run_litmus).parameters["trials"].default
        kwargs["progress"] = CampaignProgress(
            "litmus", total_trials=trials, stream=sys.stderr)
    report = run_litmus(**kwargs)
    print(report.summary())
    if report.ok:
        return 0
    for violation in report.violations[:5]:
        print(f"  ! {violation}")
    if args.artifacts:
        import json
        import os

        os.makedirs(args.artifacts, exist_ok=True)
        path = os.path.join(args.artifacts, "litmus-counterexamples.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({
                "summary": report.summary(),
                "violations": report.violations,
            }, handle, indent=2, sort_keys=True)
        print(f"  counterexamples written to {path}")
    return 1


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import stats_tree

    engine = None
    if args.engine is not None:
        engine = _canonical_engine(args.engine)
        if engine is None:
            return 2
    tree = stats_tree(
        platform=args.platform, workload=args.workload, refs=args.refs,
        engine=engine,
    )
    if args.json:
        import json

        print(json.dumps(tree, indent=2, sort_keys=True))
        return 0
    print(f"{args.workload} on {args.platform} ({args.refs:,} refs):")
    for line in render_stats(tree, indent=1):
        print(line)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Profile one experiment end to end and print the top hotspots.

    This is the measurement loop behind the batched-access work: run it
    before and after touching a hot path, and the per-access dispatch
    cost shows up (or disappears) in the cumulative column.
    """
    import cProfile
    import pstats

    from repro.engine.base import default_engine_name, set_default_engine

    engine = None
    if args.engine is not None:
        engine = _canonical_engine(args.engine)
        if engine is None:
            return 2
    experiment = _EXPERIMENTS[args.experiment]
    profiler = cProfile.Profile()
    # The experiment table is closed over defaults, so the engine choice
    # rides the process-wide default for the duration of the profile.
    previous = set_default_engine(engine) if engine is not None else None
    print(f"profiling {args.experiment} with the "
          f"{engine or default_engine_name()} engine")
    profiler.enable()
    try:
        experiment()
    finally:
        profiler.disable()
        if previous is not None:
            set_default_engine(previous)
    stats = pstats.Stats(profiler, stream=sys.stdout)
    if args.out:
        stats.dump_stats(args.out)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    if args.out:
        print(f"raw profile written to {args.out}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "export":
        workload = load_workload(args.workload, refs=args.refs)
        stream = workload.traces()[0]
        if args.columnar:
            from repro.workloads import save_trace_columnar

            count = save_trace_columnar(stream, args.out)
            kind = "columnar "
        else:
            count = save_trace(iter(stream), args.out)
            kind = ""
        print(f"wrote {count:,} {kind}records ({args.workload}, thread 0) "
              f"to {args.out}")
        return 0
    try:
        summary = trace_stats(args.path)
    except OSError as error:
        print(f"error: cannot read trace {args.path!r} "
              f"({error.strerror or error})", file=sys.stderr)
        return 2
    for key, value in summary.items():
        if isinstance(value, float) and not value.is_integer():
            print(f"  {key:<18} {value:.3f}")
        else:
            print(f"  {key:<18} {int(value):,}")
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "drill": _cmd_drill,
    "bench": _cmd_bench,
    "characterize": _cmd_characterize,
    "fuzz": _cmd_fuzz,
    "litmus": _cmd_litmus,
    "stats": _cmd_stats,
    "profile": _cmd_profile,
    "trace": _cmd_trace,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
