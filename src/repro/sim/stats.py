"""Statistics accumulators used across the simulator.

The evaluation figures mostly need latency distributions (means,
percentiles, min/max spreads for the "latency variation" plots) and
windowed time series (dynamic IPC / power plots).  The accumulators here
are streaming and allocation-light so they can sit on hot paths.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence, Union

from repro import _np as _nphelper

__all__ = [
    "Counter",
    "Histogram",
    "LatencyStats",
    "RatioStat",
    "StatsRegistry",
    "TimeSeries",
    "geometric_mean",
    "weighted_mean",
]


class LatencyStats:
    """Streaming summary of a latency (or any scalar) population.

    Keeps count/sum/sum-of-squares/min/max exactly and a reservoir sample
    for percentile estimation.  Reservoir sampling keeps memory bounded on
    multi-hundred-thousand-access traces while remaining deterministic
    (the caller provides the RNG-free ``stride`` discipline: every value is
    kept until the reservoir fills, then every k-th value replaces round-
    robin, which is adequate for the smooth distributions we sample).
    """

    __slots__ = ("name", "count", "total", "total_sq", "min", "max",
                 "_reservoir", "_capacity", "_cursor", "_stride", "_skip")

    def __init__(self, name: str = "", capacity: int = 4096) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._reservoir: list[float] = []
        self._capacity = capacity
        self._cursor = 0
        self._stride = 1
        self._skip = 0

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.total_sq += value * value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._reservoir) < self._capacity:
            self._reservoir.append(value)
            return
        self._skip += 1
        if self._skip >= self._stride:
            self._skip = 0
            self._reservoir[self._cursor] = value
            self._cursor += 1
            if self._cursor >= self._capacity:
                self._cursor = 0
                # Decay the sampling rate so early and late values stay
                # comparably represented in long runs.
                self._stride = min(self._stride * 2, 1 << 20)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    def reset(self) -> None:
        """Zero the population in place.

        Interposers reset their distributions on ``power_cycle`` through
        this, so :class:`StatsRegistry` nodes that captured a reference
        keep reporting the (now empty) same object instead of a stale
        snapshot.
        """
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._reservoir.clear()
        self._cursor = 0
        self._stride = 1
        self._skip = 0

    def record_many(self, values: Sequence[float]) -> None:
        """Bulk :meth:`record`: one call per batch instead of per value.

        Observationally identical to calling :meth:`record` in order on
        every element — same totals (same float addition order), same
        min/max, same reservoir contents and stride state — but with the
        attribute loads/stores hoisted out of the loop, which is what the
        batched access path pays for a whole window at once.

        A float64 ndarray takes the fully vectorized branch: sequential
        ``add.accumulate`` folds for the totals (bit-identical to the
        scalar addition order) and an arithmetic replay of the reservoir
        stride discipline — no Python-level loop over the values.
        """
        if _nphelper.HAVE_NUMPY and isinstance(values, _nphelper.np.ndarray):
            self._record_array(values)
            return
        count = 0
        total = self.total
        total_sq = self.total_sq
        lo = self.min
        hi = self.max
        reservoir = self._reservoir
        capacity = self._capacity
        cursor = self._cursor
        stride = self._stride
        skip = self._skip
        room = capacity - len(reservoir)
        for value in values:
            count += 1
            total += value
            total_sq += value * value
            if value < lo:
                lo = value
            if value > hi:
                hi = value
            if room > 0:
                reservoir.append(value)
                room -= 1
                continue
            skip += 1
            if skip >= stride:
                skip = 0
                reservoir[cursor] = value
                cursor += 1
                if cursor >= capacity:
                    cursor = 0
                    stride = min(stride * 2, 1 << 20)
        self.count += count
        self.total = total
        self.total_sq = total_sq
        self.min = lo
        self.max = hi
        self._cursor = cursor
        self._stride = stride
        self._skip = skip

    def _record_array(self, values) -> None:
        """Vectorized :meth:`record_many` body for a float64 ndarray.

        The reservoir's stride discipline is deterministic, so instead of
        stepping it per value the replaced elements are computed
        arithmetically: within one stride regime the kept values are a
        strided slice of the batch; the regime only changes when the
        cursor wraps the capacity (stride doubles, skip resets), so the
        outer loop runs once per wrap — ~``capacity * stride`` values
        apart — not per value.
        """
        np = _nphelper.np
        values = np.asarray(values, dtype=np.float64)
        n = int(values.size)
        if n == 0:
            return
        self.count += n
        self.total = _nphelper.fold_left_sum(self.total, values)
        self.total_sq = _nphelper.fold_left_sum(
            self.total_sq, values * values
        )
        lo = float(values.min())
        hi = float(values.max())
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi
        reservoir = self._reservoir
        capacity = self._capacity
        start = 0
        room = capacity - len(reservoir)
        if room > 0:
            head = min(room, n)
            reservoir.extend(values[:head].tolist())
            start = head
        remaining = n - start
        if remaining <= 0:
            return
        cursor = self._cursor
        stride = self._stride
        skip = self._skip
        while remaining > 0:
            replacements = (skip + remaining) // stride
            if replacements == 0:
                skip += remaining
                break
            wrap_room = capacity - cursor
            if replacements < wrap_room:
                # Every replaced value sits on one strided slice: the
                # first replacement lands after (stride - skip) values,
                # then every stride-th value thereafter.
                picks = values[
                    start + (stride - skip) - 1: start + remaining: stride
                ]
                reservoir[cursor:cursor + replacements] = picks.tolist()
                cursor += replacements
                skip = (skip + remaining) % stride
                break
            # Consume exactly enough values to wrap the cursor, then
            # double the stride (decay) and continue on the tail.
            consumed = wrap_room * stride - skip
            picks = values[
                start + (stride - skip) - 1: start + consumed: stride
            ]
            reservoir[cursor:cursor + wrap_room] = picks.tolist()
            start += consumed
            remaining -= consumed
            cursor = 0
            stride = min(stride * 2, 1 << 20)
            skip = 0
        self._cursor = cursor
        self._stride = stride
        self._skip = skip

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        mean = self.mean
        return max(self.total_sq / self.count - mean * mean, 0.0)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (q in [0, 100]) from the reservoir."""
        if not self._reservoir:
            return 0.0
        return self._quantile(sorted(self._reservoir), q)

    @staticmethod
    def _quantile(ordered: Sequence[float], q: float) -> float:
        if q <= 0:
            return ordered[0]
        if q >= 100:
            return ordered[-1]
        pos = (len(ordered) - 1) * q / 100.0
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def spread(self) -> float:
        """Max/min ratio — the paper's "latency variation" metric."""
        if self.count == 0 or self.min <= 0:
            return 0.0
        return self.max / self.min

    def summary(self) -> dict[str, float]:
        if not self.count:
            # A freshly-built or freshly-reset node: every field is an
            # exact 0.0, never an inf/NaN sentinel leaking out of the
            # internal min/max bookkeeping (``repro stats`` renders and
            # JSON-serializes these nodes directly).
            return {"count": 0, "mean": 0.0, "stdev": 0.0, "min": 0.0,
                    "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        ordered = sorted(self._reservoir)
        return {
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.min,
            "max": self.max,
            "p50": self._quantile(ordered, 50) if ordered else 0.0,
            "p95": self._quantile(ordered, 95) if ordered else 0.0,
            "p99": self._quantile(ordered, 99) if ordered else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LatencyStats {self.name} n={self.count} mean={self.mean:.2f} "
            f"min={self.min:.2f} max={self.max:.2f}>"
        )


class Histogram:
    """Fixed-bin histogram for latency-variation figures."""

    def __init__(self, lo: float, hi: float, bins: int = 64) -> None:
        if hi <= lo:
            raise ValueError(f"invalid histogram range [{lo}, {hi})")
        if bins <= 0:
            raise ValueError("bins must be positive")
        self.lo = lo
        self.hi = hi
        self.bins = bins
        self.counts = [0] * bins
        self.underflow = 0
        self.overflow = 0
        self._width = (hi - lo) / bins

    def record(self, value: float) -> None:
        if value < self.lo:
            self.underflow += 1
            return
        if value >= self.hi:
            self.overflow += 1
            return
        self.counts[int((value - self.lo) / self._width)] += 1

    @property
    def total(self) -> int:
        return sum(self.counts) + self.underflow + self.overflow

    def edges(self) -> list[float]:
        return [self.lo + i * self._width for i in range(self.bins + 1)]

    def normalized(self) -> list[float]:
        total = self.total
        if total == 0:
            return [0.0] * self.bins
        return [c / total for c in self.counts]


class Counter:
    """A named bag of integer counters."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount

    def add_many(self, amounts: dict[str, int]) -> None:
        """Bulk :meth:`add`: fold a whole batch's deltas in one call.

        Deltas are coerced to builtin ints, so bulk producers may hand
        over numpy integers (``bincount`` outputs) without them lodging
        in the counts dict and breaking JSON export.
        """
        counts = self._counts
        for name, amount in amounts.items():
            counts[name] = counts.get(name, 0) + int(amount)

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        return dict(self._counts)

    def __getitem__(self, name: str) -> int:
        return self.get(name)


@dataclass
class RatioStat:
    """Hit/total ratio tracker (cache hits, row-buffer hits, ...)."""

    hits: int = 0
    total: int = 0

    def record(self, hit: bool) -> None:
        self.total += 1
        if hit:
            self.hits += 1

    def record_many(self, hits: int, total: int) -> None:
        """Bulk :meth:`record`: ``hits`` hits out of ``total`` trials."""
        self.total += total
        self.hits += hits

    @property
    def ratio(self) -> float:
        return self.hits / self.total if self.total else 0.0


@dataclass
class TimeSeries:
    """Windowed time series: accumulate samples and read back per-window means.

    Used for the dynamic-IPC and dynamic-power plots (Fig. 21).  Values are
    accumulated into fixed-width windows keyed by the sample timestamp.
    """

    window: float
    _sums: dict[int, float] = field(default_factory=dict)
    _counts: dict[int, int] = field(default_factory=dict)

    def record(self, time: float, value: float) -> None:
        idx = int(time // self.window)
        self._sums[idx] = self._sums.get(idx, 0.0) + value
        self._counts[idx] = self._counts.get(idx, 0) + 1

    def points(self) -> Iterator[tuple[float, float]]:
        """Yield (window-center time, mean value) in time order."""
        for idx in sorted(self._sums):
            center = (idx + 0.5) * self.window
            yield center, self._sums[idx] / self._counts[idx]

    def values(self) -> list[float]:
        return [v for _, v in self.points()]


#: What can sit behind a registry path: an accumulator, a number, or a
#: zero-argument callable producing any of these (including nested dicts).
StatSource = Union["LatencyStats", "RatioStat", "Counter", int, float, object]

_PATH_SEGMENT = re.compile(r"^[A-Za-z0-9_]+$")


class StatsRegistry:
    """Hierarchical registry of named statistics sources.

    Every device registers its stats under a dotted path — the PSM's
    third DIMM's first CE group publishes ``memory.devices.dimm3.group0``
    — and the machine exports one uniform tree via :meth:`snapshot`.
    Sources are resolved lazily at snapshot time, so registering is free
    on hot paths and the tree always reflects current values:

    * :class:`LatencyStats` resolve to their :meth:`LatencyStats.summary`,
    * :class:`RatioStat` to ``{"hits", "total", "ratio"}``,
    * :class:`Counter` to its dict,
    * numbers pass through, and
    * zero-argument callables are invoked and resolved recursively —
      the idiom for live attributes (``lambda: psm.mce_count``) and for
      objects the owner replaces wholesale (``lambda: cache.read_hits``).

    ``scoped(prefix)`` returns a view that shares the same entries but
    prepends ``prefix`` to every path, which is how a parent hands each
    child device its own subtree without the child knowing where it sits.
    """

    def __init__(self) -> None:
        self._entries: dict[str, StatSource] = {}
        self._prefix = ""

    # -- registration -------------------------------------------------------

    def _join(self, path: str) -> str:
        if not path:
            raise ValueError("stat path must be non-empty")
        for segment in path.split("."):
            if not _PATH_SEGMENT.match(segment):
                raise ValueError(
                    f"invalid stat path segment {segment!r} in {path!r}; "
                    f"use [A-Za-z0-9_]+ joined by dots"
                )
        return f"{self._prefix}.{path}" if self._prefix else path

    def scoped(self, prefix: str) -> "StatsRegistry":
        """A view over the same registry with ``prefix`` prepended."""
        view = StatsRegistry.__new__(StatsRegistry)
        view._entries = self._entries
        view._prefix = self._join(prefix)
        return view

    def register(self, path: str, source: StatSource) -> StatSource:
        """Bind ``source`` at ``path`` (relative to this scope)."""
        full = self._join(path)
        for existing in self._entries:
            if (existing == full or existing.startswith(full + ".")
                    or full.startswith(existing + ".")):
                raise ValueError(
                    f"stat path {full!r} collides with registered "
                    f"{existing!r}"
                )
        self._entries[full] = source
        return source

    def drop(self, prefix: str = "") -> int:
        """Remove every entry under ``prefix``; returns how many."""
        full = self._join(prefix) if prefix else self._prefix
        doomed = [key for key in self._entries
                  if not full or key == full or key.startswith(full + ".")]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    # -- export -------------------------------------------------------------

    def paths(self) -> list[str]:
        """Sorted registered paths visible from this scope (relative)."""
        if not self._prefix:
            return sorted(self._entries)
        cut = len(self._prefix) + 1
        return sorted(
            key[cut:] for key in self._entries
            if key.startswith(self._prefix + ".")
        )

    @staticmethod
    def _resolve(source: StatSource):
        if isinstance(source, LatencyStats):
            return source.summary()
        if isinstance(source, RatioStat):
            return {"hits": source.hits, "total": source.total,
                    "ratio": source.ratio}
        if isinstance(source, Counter):
            return {k: float(v) for k, v in source.as_dict().items()}
        if isinstance(source, bool):
            return float(source)
        if isinstance(source, (int, float)):
            return source
        if isinstance(source, dict):
            return {key: StatsRegistry._resolve(value)
                    for key, value in source.items()}
        if callable(source):
            return StatsRegistry._resolve(source())
        raise TypeError(f"cannot resolve stat source {type(source).__name__}")

    def snapshot(self) -> dict:
        """The stats tree under this scope as plain nested dicts."""
        tree: dict = {}
        for path in self.paths():
            node = tree
            parts = path.split(".")
            for part in parts[:-1]:
                node = node.setdefault(part, {})
            node[parts[-1]] = self._resolve(
                self._entries[self._join(path)]
            )
        return tree

    def flat(self) -> dict[str, float]:
        """The snapshot flattened to dotted-path -> float leaves."""
        out: dict[str, float] = {}

        def walk(prefix: str, value) -> None:
            if isinstance(value, dict):
                for key, child in value.items():
                    walk(f"{prefix}.{key}" if prefix else key, child)
            else:
                out[prefix] = float(value)

        walk("", self.snapshot())
        return out


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; the paper's cross-workload averages use it."""
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    if len(values) != len(weights):
        raise ValueError("values and weights must have equal length")
    total_weight = sum(weights)
    if total_weight == 0:
        return 0.0
    return sum(v * w for v, w in zip(values, weights)) / total_weight
