"""Discrete-event simulation engine and statistics accumulators."""

from repro.sim.engine import Event, Process, SimulationError, Simulator, Timeout
from repro.sim.stats import (
    Counter,
    Histogram,
    LatencyStats,
    RatioStat,
    StatsRegistry,
    TimeSeries,
    geometric_mean,
    weighted_mean,
)

__all__ = [
    "Counter",
    "Event",
    "Histogram",
    "LatencyStats",
    "Process",
    "RatioStat",
    "SimulationError",
    "Simulator",
    "StatsRegistry",
    "TimeSeries",
    "Timeout",
    "geometric_mean",
    "weighted_mean",
]
