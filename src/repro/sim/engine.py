"""Discrete-event simulation engine.

The engine is deliberately small: a monotonically advancing clock, a
priority queue of timestamped events, and generator-based processes in the
style of SimPy.  Two kinds of users exist in this repository:

* nanosecond-scale models (PSU hold-up windows, Stop-and-Go phases) that
  schedule callbacks and processes directly, and
* cycle-scale trace-driven models (the memory hierarchy) that mostly use the
  clock as a shared notion of "now" and advance it in bulk.

Time is a ``float`` whose unit is chosen by the caller (the rest of the
repository uses nanoseconds for event-driven models and cycles for
trace-driven models; :class:`repro.core.config.ClockDomain` converts).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
]


class SimulationError(RuntimeError):
    """Raised for scheduling errors (e.g. scheduling into the past)."""


@dataclass(order=True)
class _QueueEntry:
    time: float
    priority: int
    seq: int
    event: "Event" = field(compare=False)


class Event:
    """A one-shot occurrence at a point in simulated time.

    An event may carry a ``value`` and a list of callbacks.  Processes that
    ``yield`` an event are resumed with its value when it fires.
    """

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.fired = False
        self.cancelled = False
        self.value: Any = None
        self._callbacks: list[Callable[["Event"], None]] = []

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.fired:
            raise SimulationError("cannot add a callback to a fired event")
        if self.cancelled:
            raise SimulationError(
                "cannot add a callback to a cancelled event"
            )
        self._callbacks.append(callback)

    def cancel(self) -> None:
        """Prevent the event from firing when popped from the queue.

        Callbacks are dropped immediately: a callback registered before
        the cancel can never run afterwards, and registering one after
        raises — without this, a cancel racing a late ``add_callback``
        left the callback parked on a dead event forever (the silent
        lost-wakeup that hung SnG phase chains), and the cancelled event
        pinned every callback closure until the queue entry drained.
        """
        self.cancelled = True
        self._callbacks.clear()

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.fired = True
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else "pending"
        return f"<Event {self.name or hex(id(self))} {state}>"


class Timeout(Event):
    """An event that fires after a fixed delay from its creation time."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        super().__init__(sim, name=f"timeout({delay})")
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        self.value = value
        sim._schedule(self, sim.now + delay)


class Process(Event):
    """A generator-driven simulated process.

    The generator yields :class:`Event` objects (most commonly timeouts) and
    is resumed with each event's value.  The process itself is an event that
    fires with the generator's return value when it finishes, so processes
    can wait on one another.
    """

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        bootstrap = Event(sim, name=f"start:{self.name}")
        bootstrap.add_callback(self._resume)
        sim._schedule(bootstrap, sim.now)

    def _resume(self, event: Event) -> None:
        try:
            target = self._generator.send(event.value)
        except StopIteration as stop:
            self.value = stop.value
            self.sim._schedule(self, self.sim.now)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        if target.fired:
            # Waiting on something already done resumes immediately (e.g.
            # a master joining a worker that finished first).
            relay = Event(self.sim, name=f"join:{target.name}")
            relay.value = target.value
            relay.add_callback(self._resume)
            self.sim._schedule(relay, self.sim.now)
        else:
            target.add_callback(self._resume)

    def interrupt(self) -> None:
        """Stop the process without firing it (close the generator)."""
        self._generator.close()
        self.cancel()


class Simulator:
    """Event queue plus clock.

    Events at equal times fire in (priority, insertion) order so runs are
    fully deterministic.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = float(start_time)
        self._queue: list[_QueueEntry] = []
        self._seq = itertools.count()
        self.events_processed = 0

    # -- scheduling -------------------------------------------------------

    def _schedule(self, event: Event, when: float, priority: int = 0) -> Event:
        if when < self.now:
            raise SimulationError(
                f"cannot schedule event at {when} (now is {self.now})"
            )
        heapq.heappush(
            self._queue, _QueueEntry(when, priority, next(self._seq), event)
        )
        return event

    def event(self, name: str = "") -> Event:
        """Create an unscheduled event; fire it with :meth:`succeed`."""
        return Event(self, name)

    def succeed(self, event: Event, value: Any = None, delay: float = 0.0) -> Event:
        event.value = value
        return self._schedule(event, self.now + delay)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: str = ""
    ) -> Process:
        return Process(self, generator, name)

    def call_at(self, when: float, fn: Callable[[], None], name: str = "") -> Event:
        """Run ``fn`` at absolute time ``when``."""
        event = Event(self, name or f"call_at({when})")
        event.add_callback(lambda _e: fn())
        return self._schedule(event, when)

    def call_after(self, delay: float, fn: Callable[[], None], name: str = "") -> Event:
        return self.call_at(self.now + delay, fn, name=name)

    # -- execution --------------------------------------------------------

    def step(self) -> float:
        """Fire the next event; returns its timestamp."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        entry = heapq.heappop(self._queue)
        self.now = entry.time
        if not entry.event.cancelled:
            self.events_processed += 1
            entry.event._fire()
        return entry.time

    def run(
        self,
        until: Optional[float] = None,
        until_event: Optional[Event] = None,
        max_events: int = 50_000_000,
    ) -> None:
        """Run until the queue drains, ``until`` is reached, or an event fires.

        ``until`` is an absolute time; the clock is advanced to it even if the
        queue drains earlier, which keeps power-integration windows exact.
        """
        remaining = max_events
        while self._queue:
            if until is not None and self._queue[0].time > until:
                break
            if until_event is not None and until_event.fired:
                return
            self.step()
            remaining -= 1
            if remaining <= 0:
                raise SimulationError("max_events exceeded; runaway simulation?")
        if until is not None and until > self.now:
            self.now = until

    def peek(self) -> Optional[float]:
        """Timestamp of the next pending event, or None."""
        return self._queue[0].time if self._queue else None

    def advance(self, delta: float) -> None:
        """Advance the clock in bulk (trace-driven users).

        Raises if events are pending before the target time: bulk advancing
        must never skip over scheduled work.
        """
        if delta < 0:
            raise SimulationError(f"cannot advance by negative delta {delta}")
        target = self.now + delta
        nxt = self.peek()
        if nxt is not None and nxt < target:
            raise SimulationError(
                f"advance({delta}) would skip event at {nxt}; run() first"
            )
        self.now = target

    def drain(self, events: Iterable[Event]) -> None:
        """Run until every event in ``events`` has fired."""
        pending = [e for e in events if not e.fired]
        for event in pending:
            self.run(until_event=event)
