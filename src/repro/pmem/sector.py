"""Sector mode: PMEM as block storage (paper §II-A).

Alongside memory mode and app-direct mode, Optane-style PMEM can be
provisioned as *sector mode*: the DIMMs appear as a block device at /dev
with power-fail-atomic 4 KB sectors.  Atomicity is implemented the way
the real Block Translation Table (BTT) does it — out-of-place writes
through a translation table with a free-block pool, so a torn write
never exposes a half-old/half-new sector.

The model is functional over the simulated DIMMs (real bytes through the
PMEM controller) with the BTT metadata itself persisted, and temporal
(each sector op is a burst of cacheline transfers through the DIMM
path).  A :meth:`crash` between the data write and the map commit leaves
the *old* sector visible — the atomicity contract the tests assert.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from repro.memory.request import MemoryOp, MemoryRequest
from repro.pmem.controller import PMEMController

__all__ = ["SECTOR_BYTES", "SectorDevice", "SectorError"]

SECTOR_BYTES = 4096
_LINE = 64
_MAP_ENTRY = struct.Struct("<I")


class SectorError(ValueError):
    """Out-of-range sector or geometry problem."""


@dataclass
class _Geometry:
    sectors: int            # externally visible sectors
    blocks: int             # physical blocks (sectors + free pool)
    map_base: int           # BTT map location (byte offset)
    data_base: int          # first physical block (byte offset)


class SectorDevice:
    """A BTT-style atomic-sector block device over a PMEM controller."""

    #: spare physical blocks backing out-of-place writes
    FREE_POOL = 8

    def __init__(self, pmem: PMEMController, sectors: int = 64) -> None:
        if sectors <= 0:
            raise SectorError("need at least one sector")
        map_bytes = (sectors + self.FREE_POOL) * _MAP_ENTRY.size
        map_bytes = (map_bytes + SECTOR_BYTES - 1) // SECTOR_BYTES * SECTOR_BYTES
        needed = map_bytes + (sectors + self.FREE_POOL) * SECTOR_BYTES
        if needed > pmem.capacity:
            raise SectorError(
                f"{sectors} sectors need {needed} B, controller has "
                f"{pmem.capacity} B"
            )
        self.pmem = pmem
        self.geometry = _Geometry(
            sectors=sectors,
            blocks=sectors + self.FREE_POOL,
            map_base=0,
            data_base=map_bytes,
        )
        #: volatile cache of the persistent BTT map; rebuilt on attach
        self._map: list[int] = list(range(sectors))
        self._free: list[int] = list(range(sectors, sectors + self.FREE_POOL))
        self.reads = 0
        self.writes = 0
        self.last_op_ns = 0.0
        self._persist_map_entrys_init()

    # -- persistent BTT map ----------------------------------------------------

    def _map_line(self, index: int) -> tuple[int, int]:
        byte = self.geometry.map_base + index * _MAP_ENTRY.size
        return byte - byte % _LINE, byte % _LINE

    def _persist_map_entry(self, index: int, value: int, time: float) -> float:
        line, offset = self._map_line(index)
        response = self.pmem.access(MemoryRequest(
            MemoryOp.READ, address=line, size=_LINE, time=time))
        image = bytearray(response.data or bytes(_LINE))
        _MAP_ENTRY.pack_into(image, offset, value)
        response = self.pmem.access(MemoryRequest(
            MemoryOp.WRITE, address=line, size=_LINE, data=bytes(image),
            time=response.complete_time))
        # the map commit must be durable before the write is acknowledged
        return self.pmem.drain(response.complete_time)

    def _persist_map_entrys_init(self) -> None:
        t = 0.0
        for index, block in enumerate(self._map + self._free):
            t = self._persist_map_entry(index, block, t)

    def _load_map(self) -> None:
        entries = []
        t = 0.0
        for index in range(self.geometry.blocks):
            line, offset = self._map_line(index)
            response = self.pmem.access(MemoryRequest(
                MemoryOp.READ, address=line, size=_LINE, time=t))
            entries.append(
                _MAP_ENTRY.unpack_from(response.data, offset)[0])
            t = response.complete_time
        self._map = entries[:self.geometry.sectors]
        self._free = entries[self.geometry.sectors:]

    def _block_address(self, block: int) -> int:
        return self.geometry.data_base + block * SECTOR_BYTES

    def _check(self, sector: int) -> None:
        if not 0 <= sector < self.geometry.sectors:
            raise SectorError(
                f"sector {sector} outside [0, {self.geometry.sectors})")

    # -- block API ---------------------------------------------------------------

    def read_sector(self, sector: int, time: float = 0.0) -> bytes:
        """Read one 4 KB sector (sequence of cacheline transfers)."""
        self._check(sector)
        base = self._block_address(self._map[sector])
        out = bytearray()
        t = time
        for offset in range(0, SECTOR_BYTES, _LINE):
            response = self.pmem.access(MemoryRequest(
                MemoryOp.READ, address=base + offset, size=_LINE, time=t))
            out.extend(response.data or bytes(_LINE))
            t = response.complete_time
        self.reads += 1
        self.last_op_ns = t - time
        return bytes(out)

    def write_sector(self, sector: int, data: bytes, time: float = 0.0,
                     *, crash_before_commit: bool = False) -> None:
        """Atomically replace one sector (out-of-place + map commit).

        ``crash_before_commit`` is the fault-injection hook: the data hits
        a free block but the map entry is never committed, modelling power
        loss mid-write; the old contents stay visible.
        """
        self._check(sector)
        if len(data) != SECTOR_BYTES:
            raise SectorError(f"sector writes are {SECTOR_BYTES} B, got "
                              f"{len(data)}")
        fresh = self._free[0]
        base = self._block_address(fresh)
        t = time
        for offset in range(0, SECTOR_BYTES, _LINE):
            response = self.pmem.access(MemoryRequest(
                MemoryOp.WRITE, address=base + offset, size=_LINE,
                data=data[offset:offset + _LINE], time=t))
            t = response.complete_time
        t = self.pmem.drain(t)  # the new block must be durable first
        if crash_before_commit:
            return  # power died here: map still points at the old block
        old = self._map[sector]
        self._map[sector] = fresh
        self._free = self._free[1:] + [old]
        t = self._persist_map_entry(sector, fresh, t)
        t = self._persist_map_entry(self.geometry.sectors +
                                    self.FREE_POOL - 1, old, t)
        self.writes += 1
        self.last_op_ns = t - time

    # -- crash / reattach -----------------------------------------------------------

    def crash_and_reattach(self) -> None:
        """Power loss: drop the volatile map cache, rebuild from media."""
        self.pmem.power_cycle()
        self._load_map()
