"""Numpy-columnar kernels for the conventional-PMEM exact batch path.

Same contract as :mod:`repro.memory.columnar`: observational identity
with the Python batched loops — the same float expressions evaluated in
the same order, the same stats/state commits, the same error ordering.

Two kernels, one per layer:

* :func:`pmem_controller_window` vectorizes the controller's
  scatter/gather — line decode, DIMM routing and both capacity checks
  are whole-column integer ops (the first failing element located with
  one ``argmax``, its error type picked by the scalar loop's check
  priority), each DIMM's sub-window is built zero-copy over fancy-index
  gathers, and the shifted completions scatter back through the index
  arrays instead of per-element appends.
* :func:`pmem_dimm_window` keeps the DIMM's irreducibly stateful
  lookup-hierarchy walk (LSQ combining and the two LRU levels are
  order-dependent caches) but leans it: frame/bank/slot columns are
  decoded vectorized up front, the per-bank die maxima seed from one
  grouped ``maximum.reduce`` over the die matrix, the LSQ/SRAM/DRAM
  dict operations are inlined (same state writes as the methods, hit
  counters in locals), and the latency column materializes at the end
  as one ``complete - time`` pass partitioned by the write mask into
  the bulk ``record_many`` sinks.
"""

from __future__ import annotations

from operator import attrgetter
from typing import Optional

from repro._np import np
from repro.memory.batch import (
    RequestWindow,
    ResponseWindow,
    backend_access_batch,
)
from repro.memory.request import (
    AddressSpaceError,
    CACHELINE_BYTES,
    MemoryResponse,
    PMEM_INTERNAL_BYTES,
    PRAM_DEVICE_BYTES,
)
from repro.pmem.lsq import LSQEntry

__all__ = ["pmem_controller_window", "pmem_dimm_window"]

_FIRST_TIME = attrgetter("first_time")


def pmem_controller_window(
    controller, window: RequestWindow
) -> ResponseWindow:
    """Scatter a window across the DIMMs with vectorized routing.

    Mirrors ``PMEMController.access_batch`` exactly: errors — the
    controller's capacity check, the cacheline-granularity check, and
    the DIMM-local capacity check, in that per-element priority — stop
    the scatter at the first failing element, so precisely the scalar
    prefix of side effects lands before the raise.
    """
    dimms = controller.dimms
    n_dimms = len(dimms)
    request_ns = controller.ddrt.request_ns
    completion_ns = controller.ddrt.completion_ns
    capacity = controller.capacity
    size = window.size
    oversize = size > CACHELINE_BYTES

    w_all, addr_all, t_all = window.arrays()
    n = len(addr_all)
    line = addr_all // CACHELINE_BYTES
    dimm_col = line % n_dimms
    local_col = (line // n_dimms) * CACHELINE_BYTES \
        + addr_all % CACHELINE_BYTES

    err_cap = addr_all + size > capacity
    dimm_caps = np.fromiter(
        (d.capacity for d in dimms), dtype=np.int64, count=n_dimms
    )
    err_local = local_col + size > dimm_caps[dimm_col]
    served = n
    error: Optional[ValueError] = None
    if n and oversize:
        served = 0
        if bool(err_cap[0]):
            bad = int(addr_all[0])
            error = AddressSpaceError(
                f"address {bad:#x} outside PMEM capacity {capacity:#x}"
            )
        else:
            error = ValueError("PMEM DIMM boundary is cacheline-granular")
    else:
        err_any = err_cap | err_local
        if bool(err_any.any()):
            served = int(err_any.argmax())
            if bool(err_cap[served]):
                bad = int(addr_all[served])
                error = AddressSpaceError(
                    f"address {bad:#x} outside PMEM capacity {capacity:#x}"
                )
            else:
                bad = int(local_col[served])
                error = ValueError(
                    f"address {bad:#x} outside DIMM capacity"
                )

    complete_col = np.zeros(n, dtype=np.float64)
    occupied_col = np.zeros(n, dtype=np.float64)
    blocked_col = np.zeros(n, dtype=np.float64)
    overrides: dict[int, MemoryResponse] = {}
    dimm_served = dimm_col[:served]
    for dimm_index in range(n_dimms):
        indices = np.nonzero(dimm_served == dimm_index)[0]
        if not len(indices):
            continue
        sub_w = w_all[indices]
        sub_a = local_col[indices]
        sub_t = t_all[indices] + request_ns
        sub = RequestWindow._bare(
            sub_w, sub_a, sub_t, None, size,
            arrays=(sub_w, sub_a, sub_t),
        )
        responses = backend_access_batch(dimms[dimm_index], sub)
        if isinstance(responses, ResponseWindow):
            complete_col[indices] = \
                np.asarray(responses.complete) + completion_ns
            occupied_col[indices] = responses.occupied
            blocked_col[indices] = responses.blocked
        else:
            index_list = indices.tolist()
            for position, index in enumerate(index_list):
                response = responses[position]
                complete = response.complete_time + completion_ns
                complete_col[index] = complete
                occupied_col[index] = response.occupied_until
                blocked_col[index] = response.blocked_ns
                if response.data is not None:
                    overrides[index] = MemoryResponse(
                        window.request_at(index),
                        complete_time=complete,
                        occupied_until=response.occupied_until,
                        data=response.data,
                        blocked_ns=response.blocked_ns,
                    )
    if error is not None:
        raise error
    return ResponseWindow(
        window, complete_col, occupied_col, blocked_col,
        overrides=overrides if overrides else None,
    )


def pmem_dimm_window(dimm, window: RequestWindow) -> ResponseWindow:
    """Serve one window through the DIMM hierarchy, decode vectorized.

    Preconditions (checked by :meth:`PMEMDIMM.access_batch` before
    routing here): cacheline-granular window, no functional byte images,
    no per-die wear tracing.  The walk itself stays an exact Python loop
    over pre-decoded columns with the LSQ/SRAM/DRAM cache operations
    *and* the media frame pipeline inlined — the same float expressions,
    in the same order, as ``_media_read_frame``/``_media_write_frame``/
    ``PRAMDevice.read``/``write`` — so die state, cooling windows and
    media counters evolve identically to the scalar path.
    """
    timing = dimm.timing
    lsq_ns = timing.lsq_ns
    sram_lookup_ns = timing.sram_lookup_ns
    sram_access_ns = timing.sram_access_ns
    dram_lookup_ns = timing.dram_lookup_ns
    dram_access_ns = timing.dram_access_ns
    firmware_ns = timing.firmware_ns
    frame_transfer_ns = timing.frame_transfer_ns
    limit_ns = timing.write_backlog_limit_ns
    # Both scalar paths parenthesize these sums (``t += ait + firmware``
    # and the whole write pipeline), so pre-folding is exact.
    read_miss_extra_ns = timing.ait_ns + timing.firmware_ns
    write_pipeline_ns = (
        timing.sram_access_ns
        + timing.dram_lookup_ns
        + timing.dram_access_ns
        + timing.ait_ns
        + timing.firmware_ns
        + timing.frame_transfer_ns
    )
    ref_timing = dimm.dies[0].timing
    read_ns = ref_timing.read_ns
    service_ns = ref_timing.write_service_ns
    cooling_ns = ref_timing.cooling_ns
    capacity = dimm.capacity
    size = window.size
    banks = dimm.banks
    n_banks = dimm.media_banks
    media_reads = dimm.media_reads
    media_writes = dimm.media_writes
    rmw_count = dimm.rmw_count

    lsq = dimm.lsq
    lsq_entries = lsq._entries
    lsq_depth = lsq.depth
    lsq_combines = lsq.combines
    lsq_allocations = lsq.allocations
    lsq_evictions = lsq.evictions
    sram = dimm.sram
    sram_lru = sram._lru
    sram_frames = sram.frames
    sram_hits = sram.hits
    sram_misses = sram.misses
    dram = dimm.dram_buffer
    dram_lru = dram._lru
    dram_frames = dram.frames
    dram_hits = dram.hits
    dram_misses = dram.misses

    w_all, addr_all, t_all = window.arrays()
    n = len(addr_all)
    served = n
    error: Optional[ValueError] = None
    oob = addr_all + size > capacity
    if bool(oob.any()):
        served = int(oob.argmax())
        bad = int(addr_all[served])
        error = ValueError(f"address {bad:#x} outside DIMM capacity")

    addr = addr_all[:served]
    # Frame/bank/slot decode, one integer pass per column (the same
    # expressions as ``_frame_of``/``_bank_of``/``LSQ._slot_of``).
    frame_arr = addr - (addr % PMEM_INTERNAL_BYTES)
    frame_col = frame_arr.tolist()
    bank_col = ((frame_arr // PMEM_INTERNAL_BYTES) % n_banks).tolist()
    bit_col = np.left_shift(
        1, (addr % PMEM_INTERNAL_BYTES) // CACHELINE_BYTES
    ).tolist()
    dframe_col = (addr - (addr % 4096)).tolist()
    # Staged completion columns: each is the scalar path's chained adds
    # evaluated element-wise (one correctly-rounded binary64 add per
    # stage, so vectorizing preserves bit-identity with ``t += ...``).
    t0_arr = t_all[:served] + lsq_ns
    t0_col = t0_arr.tolist()
    w_col = w_all[:served].tolist()

    # Per-bank die maxima seed from one grouped reduce over the die
    # matrix (banks x dies-per-bank); both maxima are refreshed only
    # after a media frame operation actually moves a die, exactly like
    # the batched loop (die ``busy_until`` is monotonic).
    busy_matrix = np.fromiter(
        (die.busy_until for die in dimm.dies),
        dtype=np.float64, count=len(dimm.dies),
    ).reshape(n_banks, -1)
    bank_max = np.maximum.reduce(busy_matrix, axis=1).tolist()
    dies_max = max(bank_max)

    def read_frame(issue, frame, bank):
        # _media_read_frame inlined: one bank's dies in parallel, each
        # die.read's start/busy updates replayed verbatim.
        nonlocal media_reads
        local = (frame // PMEM_INTERNAL_BYTES // n_banks) \
            * PRAM_DEVICE_BYTES
        row = local // 1024
        done = issue
        for die in bank:
            b = die.busy_until
            cool = die._cooling.get(row, 0.0)
            start = issue if issue >= b else b
            if cool > start:
                start = cool
            complete = start + read_ns
            die.busy_until = complete
            die.read_count += 1
            if complete > done:
                done = complete
        media_reads += 1
        return done + frame_transfer_ns

    # The two hot completions — unstalled write (whole pipeline) and
    # SRAM read hit — are prefilled vectorized, so the loop's fast paths
    # store nothing at all; every other outcome (stalled write, LSQ
    # forward, SRAM miss) is a rare deviation scattered back afterwards.
    complete_arr = np.zeros(n, dtype=np.float64)
    if served:
        complete_arr[:served] = \
            (t0_arr + sram_lookup_ns) + sram_access_ns
    blocked_arr = np.zeros(n, dtype=np.float64)
    dev_idx: list = []
    dev_val: list = []
    dev_append = dev_idx.append
    dev_store = dev_val.append
    # Writes visit every element of ``nonzero(w)`` in order, so their
    # complete/blocked outcomes append to dense lists and scatter back
    # in one fancy-index pass instead of per-element stores.
    w_complete: list = []
    w_blocked: list = []
    wc_append = w_complete.append
    wb_append = w_blocked.append
    # Write occupancy is the running ``dies_max``, which only moves at
    # media frame operations — record those change points and fill the
    # write rows by segment after the loop instead of storing per write.
    occ_idx = [-1]
    occ_val = [dies_max]

    missing = object()
    # MRU shortcut: a pop/reinsert of a dict's most-recent key is a
    # structural no-op, so tracking each LRU dict's MRU key lets runs of
    # same-frame traffic (sequential streams) skip both dict operations.
    sram_mru = next(reversed(sram_lru)) if sram_lru else missing
    dram_mru = next(reversed(dram_lru)) if dram_lru else missing
    for index, (is_w, frame, slot_bit) in enumerate(
        zip(w_col, frame_col, bit_col)
    ):
        if is_w:
            t = t0_col[index]
            backlog = bank_max[bank_col[index]] - t
            if backlog < 0.0:
                backlog = 0.0
            stall = backlog - limit_ns
            if stall > 0.0:
                t += stall
                wb_append(stall)
            else:
                wb_append(0.0)
            complete = t + write_pipeline_ns
            wc_append(complete)
            # LSQ push_write inlined: merge into a pending frame or
            # allocate, evicting the oldest entry when full.
            entry = lsq_entries.get(frame)
            evicted = None
            if entry is not None:
                entry.merged_writes += 1
                entry.last_time = t
                entry.coverage |= slot_bit
                lsq_combines += 1
            else:
                if len(lsq_entries) >= lsq_depth:
                    evicted = min(lsq_entries.values(), key=_FIRST_TIME)
                    del lsq_entries[evicted.frame]
                    lsq_evictions += 1
                lsq_entries[frame] = LSQEntry(
                    frame=frame, first_time=t, last_time=t,
                    coverage=slot_bit,
                )
                lsq_allocations += 1
            # SRAM + internal-DRAM fills inlined (LRU insert at MRU
            # end, evicting the LRU head when full; pop-with-sentinel
            # does the residency probe and the unlink in one operation).
            if frame != sram_mru:
                held = sram_lru.pop(frame, missing)
                if held is missing:
                    held = None
                    if len(sram_lru) >= sram_frames:
                        del sram_lru[next(iter(sram_lru))]
                sram_lru[frame] = held
                sram_mru = frame
            dframe = dframe_col[index]
            if dframe != dram_mru:
                held = dram_lru.pop(dframe, missing)
                if held is missing:
                    held = None
                    if len(dram_lru) >= dram_frames:
                        del dram_lru[next(iter(dram_lru))]
                dram_lru[dframe] = held
                dram_mru = dframe
            if evicted is not None:
                # _media_write_frame inlined: read-modify when the frame
                # is partially covered, then one staggered-free program
                # across the bank's dies (non-early-return die.write:
                # cooling prune keyed on the issue time, completion at
                # row-stable time).
                eframe = evicted.frame
                hot = (eframe // PMEM_INTERNAL_BYTES) % n_banks
                bank = banks[hot]
                issue = complete + firmware_ns
                if evicted.coverage != 0b1111:
                    issue = read_frame(issue, eframe, bank)
                    rmw_count += 1
                local = (eframe // PMEM_INTERNAL_BYTES // n_banks) \
                    * PRAM_DEVICE_BYTES
                row = local // 1024
                refreshed = 0.0
                for die in bank:
                    b = die.busy_until
                    cooling = die._cooling
                    cool = cooling.get(row, 0.0)
                    start = issue if issue >= b else b
                    if cool > start:
                        start = cool
                    pulse = start + service_ns
                    die.busy_until = pulse
                    if len(cooling) > 64:
                        cooling = {
                            rr: tt for rr, tt in cooling.items()
                            if tt > issue
                        }
                        die._cooling = cooling
                    cooling[row] = pulse + cooling_ns
                    die.write_count += 1
                    if pulse > refreshed:
                        refreshed = pulse
                media_writes += 1
                bank_max[hot] = refreshed
                if refreshed > dies_max:
                    dies_max = refreshed
                    occ_idx.append(index)
                    occ_val.append(refreshed)
            continue
        # -- read: LSQ forwarding, then the inclusive lookup hierarchy --
        entry = lsq_entries.get(frame)
        if entry is not None and entry.coverage & slot_bit:
            dev_append(index)
            dev_store(t0_col[index] + sram_access_ns)
            continue
        if frame == sram_mru:
            sram_hits += 1
            continue
        held = sram_lru.pop(frame, missing)
        if held is not missing:
            sram_lru[frame] = held
            sram_mru = frame
            sram_hits += 1
            continue
        sram_misses += 1
        t = (t0_col[index] + sram_lookup_ns) + dram_lookup_ns
        dframe = dframe_col[index]
        held = dram_lru.pop(dframe, missing)
        if held is not missing:
            dram_lru[dframe] = held
            dram_mru = dframe
            dram_hits += 1
            complete = t + dram_access_ns
            if len(sram_lru) >= sram_frames:
                del sram_lru[next(iter(sram_lru))]
            sram_lru[frame] = None
            sram_mru = frame
        else:
            dram_misses += 1
            bank_index = bank_col[index]
            complete = read_frame(
                t + read_miss_extra_ns, frame, banks[bank_index]
            )
            refreshed = max(
                die.busy_until for die in banks[bank_index]
            )
            bank_max[bank_index] = refreshed
            if refreshed > dies_max:
                dies_max = refreshed
                occ_idx.append(index)
                occ_val.append(refreshed)
            if len(sram_lru) >= sram_frames:
                del sram_lru[next(iter(sram_lru))]
            sram_lru[frame] = None
            sram_mru = frame
            if len(dram_lru) >= dram_frames:
                del dram_lru[next(iter(dram_lru))]
            dram_lru[dframe] = None
            dram_mru = dframe
        dev_append(index)
        dev_store(complete)

    # -- commit (same final state as the batched loop's live updates) -------
    lsq.combines = lsq_combines
    lsq.allocations = lsq_allocations
    lsq.evictions = lsq_evictions
    sram.hits = sram_hits
    sram.misses = sram_misses
    dram.hits = dram_hits
    dram.misses = dram_misses
    dimm.media_reads = media_reads
    dimm.media_writes = media_writes
    dimm.rmw_count = rmw_count
    if dev_idx:
        complete_arr[dev_idx] = dev_val
    # Reads carry no occupancy column of their own (the scalar response
    # clamps the default 0.0 up to the completion time), so occupancy is
    # the complete column with write rows overwritten by the recorded
    # ``dies_max`` segments (last change point at or before each write).
    occupied_arr = complete_arr.copy()
    if served:
        w_pos = np.nonzero(w_all[:served])[0]
        if len(w_pos):
            complete_arr[w_pos] = w_complete
            blocked_arr[w_pos] = w_blocked
            seg = np.searchsorted(
                np.asarray(occ_idx, dtype=np.int64), w_pos, side="right"
            ) - 1
            occupied_arr[w_pos] = np.asarray(
                occ_val, dtype=np.float64
            )[seg]
    if served:
        latency = complete_arr[:served] - t_all[:served]
        w_served = w_all[:served]
        read_lat = latency[~w_served]
        write_lat = latency[w_served]
        if len(read_lat):
            dimm.read_latency.record_many(read_lat)
        if len(write_lat):
            dimm.write_latency.record_many(write_lat)
    if error is not None:
        raise error
    return ResponseWindow(window, complete_arr, occupied_arr, blocked_arr)
