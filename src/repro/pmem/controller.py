"""Host-side controllers of the conventional PMEM complex (paper Fig. 1).

Three controllers manage the two memory technologies:

* :class:`PMEMController` — fronts the PMEM DIMMs over the asynchronous
  DDR-T interface (per-transfer handshake overhead on top of the DIMM's
  own variable latency);
* the DRAM controller is :class:`repro.memory.dram.DRAMSubsystem` itself;
* :class:`NMEMController` — the near-memory-cache controller of memory
  mode: caches PMEM data in local-node DRAM and overlaps the
  DRAM-fill/PMEM-read transfers through the shared *snarf* interface, so a
  miss costs ~max(pmem, fill) rather than the sum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.memory.dram import DRAMSubsystem
from repro.memory.request import (
    CACHELINE_BYTES,
    MemoryOp,
    MemoryRequest,
    MemoryResponse,
    cacheline_of,
)
from repro.pmem.dimm import PMEMDIMM
from repro.sim.stats import LatencyStats, RatioStat

__all__ = ["NMEMController", "PMEMController"]


@dataclass(frozen=True)
class _DDRTTiming:
    """Asynchronous DDR-T handshake overhead (request + completion)."""

    request_ns: float = 9.0
    completion_ns: float = 9.0


class PMEMController:
    """Channel controller in front of one or more PMEM DIMMs.

    Cachelines interleave across DIMMs.  The DDR-T handshake is charged on
    both edges of every transfer; flush fans out to every DIMM.
    """

    def __init__(self, dimms: list[PMEMDIMM], ddrt: Optional[_DDRTTiming] = None) -> None:
        if not dimms:
            raise ValueError("PMEMController needs at least one DIMM")
        self.dimms = dimms
        self.ddrt = ddrt or _DDRTTiming()
        self.capacity = sum(d.capacity for d in dimms)
        self.is_volatile = False

    def _route(self, address: int) -> tuple[PMEMDIMM, int]:
        line = address // CACHELINE_BYTES
        dimm = self.dimms[line % len(self.dimms)]
        local_line = line // len(self.dimms)
        return dimm, local_line * CACHELINE_BYTES + address % CACHELINE_BYTES

    def access(self, request: MemoryRequest) -> MemoryResponse:
        if request.op is MemoryOp.FLUSH:
            return MemoryResponse(request, complete_time=self.drain(request.time))
        dimm, local = self._route(request.address)
        inner = MemoryRequest(
            op=request.op,
            address=local,
            size=request.size,
            time=request.time + self.ddrt.request_ns,
            data=request.data,
            thread_id=request.thread_id,
        )
        response = dimm.access(inner)
        return MemoryResponse(
            request,
            complete_time=response.complete_time + self.ddrt.completion_ns,
            occupied_until=response.occupied_until,
            data=response.data,
            blocked_ns=response.blocked_ns,
        )

    def drain(self, time: float) -> float:
        done = time
        for dimm in self.dimms:
            done = max(done, dimm.flush(time))
        return done + self.ddrt.completion_ns

    def power_cycle(self) -> None:
        for dimm in self.dimms:
            dimm.power_cycle()


class NMEMController:
    """Memory-mode near-memory cache: local DRAM caches the PMEM DIMMs.

    Tag state is modelled as a direct-mapped line cache over the DRAM
    capacity.  On a miss, the PMEM read and the DRAM fill overlap through
    snarf, so the charged latency is the slower of the two plus a small
    coupling cost, not their sum.  Memory mode drops non-volatility: the
    cached (youngest) copies live in DRAM and die with power.
    """

    def __init__(
        self,
        dram: DRAMSubsystem,
        pmem: PMEMController,
        snarf_ns: float = 6.0,
    ) -> None:
        self.dram = dram
        self.pmem = pmem
        self.snarf_ns = snarf_ns
        self._lines = dram.config.capacity // CACHELINE_BYTES
        self._tags: dict[int, int] = {}
        self.hit_stats = RatioStat()
        self.latency = LatencyStats("nmem")
        self.capacity = pmem.capacity
        #: Memory mode presents volatile working memory (paper §II-A).
        self.is_volatile = True

    def _slot(self, address: int) -> int:
        return (address // CACHELINE_BYTES) % self._lines

    def access(self, request: MemoryRequest) -> MemoryResponse:
        if request.op is MemoryOp.FLUSH:
            done = max(
                self.dram.drain(request.time), self.pmem.drain(request.time)
            )
            return MemoryResponse(request, complete_time=done)
        line = cacheline_of(request.address)
        slot = self._slot(request.address)
        hit = self._tags.get(slot) == line
        self.hit_stats.record(hit)
        dram_request = MemoryRequest(
            op=request.op,
            address=request.address % self.dram.config.capacity,
            size=request.size,
            time=request.time,
            data=request.data,
            thread_id=request.thread_id,
        )
        if hit:
            response = self.dram.access(dram_request)
            out = MemoryResponse(
                request,
                complete_time=response.complete_time,
                data=response.data,
                blocked_ns=response.blocked_ns,
            )
        else:
            # Snarf overlap: PMEM read and DRAM fill in flight together.
            pmem_request = MemoryRequest(
                op=MemoryOp.READ,
                address=request.address,
                size=request.size,
                time=request.time,
                thread_id=request.thread_id,
            )
            pmem_response = self.pmem.access(pmem_request)
            dram_response = self.dram.access(dram_request)
            complete = (
                max(pmem_response.complete_time, dram_response.complete_time)
                + self.snarf_ns
            )
            self._tags[slot] = line
            out = MemoryResponse(
                request,
                complete_time=complete,
                data=pmem_response.data,
                blocked_ns=pmem_response.blocked_ns + dram_response.blocked_ns,
            )
        self.latency.record(out.latency)
        return out

    def drain(self, time: float) -> float:
        return max(self.dram.drain(time), self.pmem.drain(time))

    def power_cycle(self) -> None:
        self._tags.clear()
        self.dram.power_cycle()
        self.pmem.power_cycle()

    @property
    def hit_ratio(self) -> float:
        return self.hit_stats.ratio
