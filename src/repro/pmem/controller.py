"""Host-side controllers of the conventional PMEM complex (paper Fig. 1).

Three controllers manage the two memory technologies:

* :class:`PMEMController` — fronts the PMEM DIMMs over the asynchronous
  DDR-T interface (per-transfer handshake overhead on top of the DIMM's
  own variable latency);
* the DRAM controller is :class:`repro.memory.dram.DRAMSubsystem` itself;
* :class:`NMEMController` — the near-memory-cache controller of memory
  mode: caches PMEM data in local-node DRAM and overlaps the
  DRAM-fill/PMEM-read transfers through the shared *snarf* interface, so a
  miss costs ~max(pmem, fill) rather than the sum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.memory.batch import (
    BatchRequests,
    BatchResponses,
    RequestWindow,
    ResponseWindow,
    backend_access_batch,
    default_access_batch,
)
from repro.memory.dram import DRAMSubsystem
from repro.memory.extent import (
    Extent,
    FlushReport,
    batched_flush_extents,
    default_flush_extents,
)
from repro.memory.port import PortNotSupportedError, PowerPart
from repro.memory.request import (
    AddressSpaceError,
    CACHELINE_BYTES,
    MemoryOp,
    MemoryRequest,
    MemoryResponse,
    cacheline_of,
)
from repro import _np as _nphelper
from repro.pmem.columnar import pmem_controller_window
from repro.pmem.dimm import PMEMDIMM
from repro.sim.stats import LatencyStats, RatioStat, StatsRegistry

__all__ = ["NMEMController", "PMEMController"]


@dataclass(frozen=True)
class _DDRTTiming:
    """Asynchronous DDR-T handshake overhead (request + completion)."""

    request_ns: float = 9.0
    completion_ns: float = 9.0


class PMEMController:
    """Channel controller in front of one or more PMEM DIMMs.

    Cachelines interleave across DIMMs.  The DDR-T handshake is charged on
    both edges of every transfer; flush fans out to every DIMM.
    """

    def __init__(self, dimms: list[PMEMDIMM], ddrt: Optional[_DDRTTiming] = None) -> None:
        if not dimms:
            raise ValueError("PMEMController needs at least one DIMM")
        self.dimms = dimms
        self.ddrt = ddrt or _DDRTTiming()
        self.capacity = sum(d.capacity for d in dimms)
        self.is_volatile = False

    def _route(self, address: int) -> tuple[PMEMDIMM, int]:
        line = address // CACHELINE_BYTES
        dimm = self.dimms[line % len(self.dimms)]
        local_line = line // len(self.dimms)
        return dimm, local_line * CACHELINE_BYTES + address % CACHELINE_BYTES

    def access(self, request: MemoryRequest) -> MemoryResponse:
        if request.op is MemoryOp.FLUSH:
            return MemoryResponse(request, complete_time=self.drain(request.time))
        if request.op is MemoryOp.RESET:
            return MemoryResponse(request, complete_time=self.reset(request.time))
        if request.end_address > self.capacity:
            raise AddressSpaceError(
                f"address {request.address:#x} outside PMEM capacity "
                f"{self.capacity:#x}"
            )
        dimm, local = self._route(request.address)
        inner = MemoryRequest(
            op=request.op,
            address=local,
            size=request.size,
            time=request.time + self.ddrt.request_ns,
            data=request.data,
            thread_id=request.thread_id,
        )
        response = dimm.access(inner)
        return MemoryResponse(
            request,
            complete_time=response.complete_time + self.ddrt.completion_ns,
            occupied_until=response.occupied_until,
            data=response.data,
            blocked_ns=response.blocked_ns,
        )

    def access_batch(self, requests: BatchRequests) -> BatchResponses:
        """Scatter a window across the DIMMs and gather shifted responses.

        Cachelines interleave across DIMMs and the DIMMs share no state,
        so serving each DIMM's sub-window as one contiguous batch (order
        preserved within a DIMM) is observationally identical to the
        scalar per-request routing.  Capacity errors — the controller's
        own and the DIMM-local one — are pre-checked in arrival order so
        exactly the scalar prefix of side effects lands before the raise.
        """
        window = requests if isinstance(requests, RequestWindow) \
            else RequestWindow.from_requests(requests)
        if window is None:
            return default_access_batch(self, requests)
        if _nphelper.kernels_enabled():
            return pmem_controller_window(self, window)
        dimms = self.dimms
        n_dimms = len(dimms)
        request_ns = self.ddrt.request_ns
        completion_ns = self.ddrt.completion_ns
        capacity = self.capacity
        size = window.size
        oversize = size > CACHELINE_BYTES
        addresses = window.addresses
        times = window.times
        is_write = window.is_write
        thread_ids = window.thread_ids
        n = len(addresses)
        sub_write: list[list[bool]] = [[] for _ in range(n_dimms)]
        sub_addr: list[list[int]] = [[] for _ in range(n_dimms)]
        sub_time: list[list[float]] = [[] for _ in range(n_dimms)]
        sub_tid: list[list[int]] = [[] for _ in range(n_dimms)]
        sub_index: list[list[int]] = [[] for _ in range(n_dimms)]
        error: Optional[ValueError] = None
        for index in range(n):
            address = addresses[index]
            if address + size > capacity:
                error = AddressSpaceError(
                    f"address {address:#x} outside PMEM capacity "
                    f"{capacity:#x}"
                )
                break
            if oversize:
                error = ValueError(
                    "PMEM DIMM boundary is cacheline-granular"
                )
                break
            line = address // CACHELINE_BYTES
            dimm_index = line % n_dimms
            local = (line // n_dimms) * CACHELINE_BYTES \
                + address % CACHELINE_BYTES
            if local + size > dimms[dimm_index].capacity:
                error = ValueError(
                    f"address {local:#x} outside DIMM capacity"
                )
                break
            sub_write[dimm_index].append(is_write[index])
            sub_addr[dimm_index].append(local)
            sub_time[dimm_index].append(times[index] + request_ns)
            if thread_ids is not None:
                sub_tid[dimm_index].append(thread_ids[index])
            sub_index[dimm_index].append(index)
        complete_col = [0.0] * n
        occupied_col = [0.0] * n
        blocked_col = [0.0] * n
        overrides: dict[int, MemoryResponse] = {}
        for dimm_index in range(n_dimms):
            indices = sub_index[dimm_index]
            if not indices:
                continue
            sub = RequestWindow._bare(
                sub_write[dimm_index],
                sub_addr[dimm_index],
                sub_time[dimm_index],
                sub_tid[dimm_index] if thread_ids is not None else None,
                size,
            )
            responses = backend_access_batch(dimms[dimm_index], sub)
            if isinstance(responses, ResponseWindow):
                sub_complete = responses.complete
                sub_occupied = responses.occupied
                sub_blocked = responses.blocked
                for position, index in enumerate(indices):
                    complete_col[index] = \
                        sub_complete[position] + completion_ns
                    occupied_col[index] = sub_occupied[position]
                    blocked_col[index] = sub_blocked[position]
            else:
                for position, index in enumerate(indices):
                    response = responses[position]
                    complete = response.complete_time + completion_ns
                    complete_col[index] = complete
                    occupied_col[index] = response.occupied_until
                    blocked_col[index] = response.blocked_ns
                    if response.data is not None:
                        overrides[index] = MemoryResponse(
                            window.request_at(index),
                            complete_time=complete,
                            occupied_until=response.occupied_until,
                            data=response.data,
                            blocked_ns=response.blocked_ns,
                        )
        if error is not None:
            raise error
        return ResponseWindow(
            window, complete_col, occupied_col, blocked_col,
            overrides=overrides if overrides else None,
        )

    def flush_extents(self, extents: list[Extent], time: float) -> FlushReport:
        """Drain dirty extents through the batched scatter/gather path.

        One uniform write window scattered across the DIMMs, one bulk
        stats record per DIMM — :meth:`access_batch` already handles the
        homogeneous shape, including exact error ordering.
        """
        return batched_flush_extents(self, extents, time)

    def drain(self, time: float) -> float:
        done = time
        for dimm in self.dimms:
            done = max(done, dimm.flush(time))
        return done + self.ddrt.completion_ns

    def flush(self, time: float) -> float:
        """DDR-T flush: every DIMM's internal buffers drain to media."""
        return self.drain(time)

    def reset(self, time: float) -> float:
        raise PortNotSupportedError(
            "conventional PMEM DIMMs expose no host-visible reset port"
        )

    def power_cycle(self) -> None:
        for dimm in self.dimms:
            dimm.power_cycle()

    def capture_registers(self) -> bytes:
        """DIMM-internal firmware owns its state; nothing for an EP-cut."""
        return b""

    def restore_wear_registers(self, blob: bytes) -> None:
        if blob:
            raise PortNotSupportedError(
                "conventional PMEM exposes no wear registers"
            )

    @property
    def buffer_hit_ratio(self) -> float:
        counters = self.counters()
        buffered = counters.get("sram_hits", 0.0) \
            + counters.get("dram_buffer_hits", 0.0)
        accesses = buffered + counters.get("media_reads", 0.0)
        return buffered / accesses if accesses else 0.0

    def counters(self) -> dict[str, float]:
        merged: dict[str, float] = {}
        for dimm in self.dimms:
            for key, value in dimm.counters().items():
                merged[key] = merged.get(key, 0.0) + value
        return merged

    def register_stats(self, stats: StatsRegistry) -> None:
        stats.register("buffer_hit_ratio", lambda: self.buffer_hit_ratio)
        stats.register("counters", self.counters)
        devices = stats.scoped("devices")
        for index, dimm in enumerate(self.dimms):
            devices.register(f"dimm{index}", dimm.counters)

    def power_parts(self, counters: Mapping[str, float]) -> list[PowerPart]:
        dimms = float(len(self.dimms))
        return [
            ("pmem_dimm", dimms, {k: v / dimms for k, v in counters.items()}),
        ]


class NMEMController:
    """Memory-mode near-memory cache: local DRAM caches the PMEM DIMMs.

    Tag state is modelled as a direct-mapped line cache over the DRAM
    capacity.  On a miss, the PMEM read and the DRAM fill overlap through
    snarf, so the charged latency is the slower of the two plus a small
    coupling cost, not their sum.  Memory mode drops non-volatility: the
    cached (youngest) copies live in DRAM and die with power.
    """

    def __init__(
        self,
        dram: DRAMSubsystem,
        pmem: PMEMController,
        snarf_ns: float = 6.0,
    ) -> None:
        self.dram = dram
        self.pmem = pmem
        self.snarf_ns = snarf_ns
        self._lines = dram.config.capacity // CACHELINE_BYTES
        self._tags: dict[int, int] = {}
        self.hit_stats = RatioStat()
        self.latency = LatencyStats("nmem")
        self.capacity = pmem.capacity
        #: Memory mode presents volatile working memory (paper §II-A).
        self.is_volatile = True

    def _slot(self, address: int) -> int:
        return (address // CACHELINE_BYTES) % self._lines

    def access(self, request: MemoryRequest) -> MemoryResponse:
        if request.op is MemoryOp.FLUSH:
            done = max(
                self.dram.drain(request.time), self.pmem.drain(request.time)
            )
            return MemoryResponse(request, complete_time=done)
        line = cacheline_of(request.address)
        slot = self._slot(request.address)
        hit = self._tags.get(slot) == line
        self.hit_stats.record(hit)
        dram_request = MemoryRequest(
            op=request.op,
            address=request.address % self.dram.config.capacity,
            size=request.size,
            time=request.time,
            data=request.data,
            thread_id=request.thread_id,
        )
        if hit:
            response = self.dram.access(dram_request)
            out = MemoryResponse(
                request,
                complete_time=response.complete_time,
                data=response.data,
                blocked_ns=response.blocked_ns,
            )
        else:
            # Snarf overlap: PMEM read and DRAM fill in flight together.
            pmem_request = MemoryRequest(
                op=MemoryOp.READ,
                address=request.address,
                size=request.size,
                time=request.time,
                thread_id=request.thread_id,
            )
            pmem_response = self.pmem.access(pmem_request)
            dram_response = self.dram.access(dram_request)
            complete = (
                max(pmem_response.complete_time, dram_response.complete_time)
                + self.snarf_ns
            )
            self._tags[slot] = line
            out = MemoryResponse(
                request,
                complete_time=complete,
                data=pmem_response.data,
                blocked_ns=pmem_response.blocked_ns + dram_response.blocked_ns,
            )
        self.latency.record(out.latency)
        return out

    def access_batch(self, requests: BatchRequests) -> BatchResponses:
        """Memory mode keeps the scalar path: every access re-routes
        through the tag store, so there is no columnar shortcut — the
        default loop is the whole implementation."""
        return default_access_batch(self, requests)

    def flush_extents(self, extents: list[Extent], time: float) -> FlushReport:
        """Memory mode keeps the scalar path here too: each line's cost
        depends on its tag-store hit/miss, so the correct-by-construction
        loop is the whole implementation."""
        return default_flush_extents(self, extents, time)

    def drain(self, time: float) -> float:
        return max(self.dram.drain(time), self.pmem.drain(time))

    def flush(self, time: float) -> float:
        return max(self.dram.flush(time), self.pmem.flush(time))

    def reset(self, time: float) -> float:
        raise PortNotSupportedError(
            "memory mode exposes no reset port (volatile working memory)"
        )

    def power_cycle(self) -> None:
        self._tags.clear()
        self.dram.power_cycle()
        self.pmem.power_cycle()

    def capture_registers(self) -> bytes:
        """The NMEM tag store is volatile by design; nothing to capture."""
        return b""

    def restore_wear_registers(self, blob: bytes) -> None:
        if blob:
            raise PortNotSupportedError(
                "memory mode has no wear registers to restore"
            )

    @property
    def hit_ratio(self) -> float:
        return self.hit_stats.ratio

    @property
    def buffer_hit_ratio(self) -> float:
        """The near-memory cache hit ratio is the buffering this tier has."""
        return self.hit_stats.ratio

    def counters(self) -> dict[str, float]:
        merged = {f"pmem_{k}": v for k, v in self.pmem.counters().items()}
        merged.update(
            {f"dram_{k}": v for k, v in self.dram.counters().items()}
        )
        merged["nmem_hits"] = float(self.hit_stats.hits)
        merged["nmem_misses"] = float(
            self.hit_stats.total - self.hit_stats.hits
        )
        return merged

    def register_stats(self, stats: StatsRegistry) -> None:
        stats.register("latency", self.latency)
        stats.register("hit_ratio", self.hit_stats)
        self.dram.register_stats(stats.scoped("dram"))
        self.pmem.register_stats(stats.scoped("pmem"))

    def power_parts(self, counters: Mapping[str, float]) -> list[PowerPart]:
        fills = {"fills": counters.get("nmem_misses", 0.0)}
        return (
            self.dram.power_parts(self.dram.counters())
            + self.pmem.power_parts(self.pmem.counters())
            + [("nmem_ctrl", 1.0, fills)]
        )
