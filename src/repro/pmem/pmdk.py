"""A libpmemobj-like persistent object library (paper §II-B, Fig. 3).

Functionally faithful to the PMDK model the paper measures against:

* a *pool* with a root object and a bump allocator,
* offset-based persistent pointers (object IDs) instead of process VAs —
  every dereference therefore computes a VA, the per-access software
  overhead the paper calls out,
* writes land in a volatile cache image and only become durable after
  ``persist`` (flush + fence), mirroring CPU caches in front of PMEM,
* transactions (``TX_BEGIN``/``TX_END``) with a persistent undo log:
  a crash inside a transaction rolls back on recovery.

The pool carries a :class:`PMDKCostModel` that accumulates the *time* cost
of the software interventions (object translation, flush visits, log
writes); the Fig. 4 experiment reads it back.  Crash behaviour is real:
:meth:`PersistentObjectPool.crash` drops volatile state and
:meth:`recover` replays the undo log.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = [
    "OID_NULL",
    "PMDKCostModel",
    "PersistentObjectPool",
    "PoolCorruptionError",
    "TransactionAbort",
    "TransactionError",
]

#: Null persistent pointer, like PMDK's OID_NULL.
OID_NULL = 0

_HEADER = struct.Struct("<8sQQQ")  # magic, heap_next, root_oid, root_size
_MAGIC = b"PMDKPOOL"
_HEADER_BYTES = 4096
_LOG_ENTRY = struct.Struct("<QQ")  # offset, length
_CACHELINE = 64


class PoolCorruptionError(RuntimeError):
    """The pool header failed validation on open."""


class TransactionError(RuntimeError):
    """Transaction API misuse (nesting, ops outside a transaction, ...)."""


class TransactionAbort(Exception):
    """Raised by user code inside a transaction to request rollback."""


@dataclass
class PMDKCostModel:
    """Software-intervention costs in nanoseconds, accumulated per pool.

    The constants encode the paper's observations: object-mode pays a VA
    computation on every dereference plus object-management initialization;
    trans-mode additionally pays undo-log appends and ``pmem_persist``'s
    iterative cacheline flush visits.
    """

    translate_ns: float = 22.0
    object_init_ns: float = 180.0
    tx_begin_ns: float = 150.0
    tx_commit_ns: float = 260.0
    log_append_ns_per_line: float = 130.0
    persist_ns_per_line: float = 320.0
    fence_ns: float = 120.0

    accumulated_ns: float = field(default=0.0, init=False)

    def charge(self, ns: float) -> None:
        self.accumulated_ns += ns

    def reset(self) -> None:
        self.accumulated_ns = 0.0


@dataclass(frozen=True)
class _Allocation:
    oid: int
    size: int


class PersistentObjectPool:
    """Object pool over a persistent byte capacity.

    ``_media`` holds durable bytes; ``_volatile`` overlays not-yet-persisted
    stores (the CPU-cache image).  Reads observe volatile-over-media, like
    a coherent cache hierarchy.
    """

    def __init__(self, capacity: int, cost_model: Optional[PMDKCostModel] = None,
                 log_bytes: int = 1 << 16) -> None:
        if capacity <= _HEADER_BYTES + log_bytes:
            raise ValueError("pool capacity too small for header + undo log")
        self.capacity = capacity
        self.cost = cost_model or PMDKCostModel()
        self._log_base = _HEADER_BYTES
        self._log_bytes = log_bytes
        self._heap_base = _HEADER_BYTES + log_bytes
        self._media = bytearray(capacity)
        self._volatile: dict[int, int] = {}
        self._heap_next = self._heap_base
        self._root_oid = OID_NULL
        self._root_size = 0
        self._in_tx = False
        self._tx_ranges: list[tuple[int, int]] = []
        self._log_used = 0
        self._allocations: dict[int, int] = {}
        self._write_header()
        self.persist(0, _HEADER_BYTES)

    # -- raw byte plumbing ---------------------------------------------------

    def _check(self, offset: int, size: int) -> None:
        if offset < 0 or offset + size > self.capacity:
            raise ValueError(
                f"range [{offset:#x}, {offset + size:#x}) outside pool"
            )

    def _store(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data))
        for i, b in enumerate(data):
            self._volatile[offset + i] = b

    def _load(self, offset: int, size: int) -> bytes:
        self._check(offset, size)
        return bytes(
            self._volatile.get(offset + i, self._media[offset + i])
            for i in range(size)
        )

    def persist(self, offset: int, size: int) -> None:
        """pmem_persist: flush the cachelines covering the range + fence."""
        self._check(offset, size)
        first_line = offset // _CACHELINE
        last_line = (offset + size - 1) // _CACHELINE
        lines = last_line - first_line + 1
        self.cost.charge(lines * self.cost.persist_ns_per_line + self.cost.fence_ns)
        for addr in range(first_line * _CACHELINE,
                          (last_line + 1) * _CACHELINE):
            if addr in self._volatile:
                self._media[addr] = self._volatile.pop(addr)

    def _persist_all(self) -> None:
        for addr, value in self._volatile.items():
            self._media[addr] = value
        self._volatile.clear()

    # -- header ---------------------------------------------------------------

    def _write_header(self) -> None:
        header = _HEADER.pack(
            _MAGIC, self._heap_next, self._root_oid, self._root_size
        )
        self._store(0, header)

    def _read_header_from_media(self) -> tuple[int, int, int]:
        magic, heap_next, root_oid, root_size = _HEADER.unpack_from(self._media, 0)
        if magic != _MAGIC:
            raise PoolCorruptionError("bad pool magic; not a PMDK pool")
        return heap_next, root_oid, root_size

    # -- objects ---------------------------------------------------------------

    def root(self, size: int) -> int:
        """Create-or-open the root object; returns its OID."""
        if self._root_oid == OID_NULL:
            self._root_oid = self._alloc(size)
            self._root_size = size
            self._write_header()
            self.persist(0, _HEADER_BYTES)
            self.cost.charge(self.cost.object_init_ns)
        elif size > self._root_size:
            raise ValueError(
                f"root exists with size {self._root_size}, requested {size}"
            )
        return self._root_oid

    def _alloc(self, size: int) -> int:
        if size <= 0:
            raise ValueError("allocation size must be positive")
        aligned = (size + _CACHELINE - 1) // _CACHELINE * _CACHELINE
        if self._heap_next + aligned > self.capacity:
            raise MemoryError("pool heap exhausted")
        oid = self._heap_next
        self._heap_next += aligned
        self._allocations[oid] = size
        return oid

    def alloc(self, size: int) -> int:
        """Allocate an object; returns its OID (a pool offset)."""
        oid = self._alloc(size)
        self._write_header()
        self.persist(0, _HEADER.size)
        self.cost.charge(self.cost.object_init_ns)
        return oid

    def direct(self, oid: int) -> int:
        """OID -> pool offset, charging the per-dereference VA computation."""
        if oid == OID_NULL:
            raise ValueError("dereference of OID_NULL")
        if oid not in self._allocations:
            raise ValueError(f"OID {oid:#x} was never allocated")
        self.cost.charge(self.cost.translate_ns)
        return oid

    def size_of(self, oid: int) -> int:
        return self._allocations[oid]

    def write(self, oid: int, offset: int, data: bytes) -> None:
        """Store into an object (volatile until persisted/committed)."""
        base = self.direct(oid)
        if offset < 0 or offset + len(data) > self._allocations[oid]:
            raise ValueError("write outside object bounds")
        if self._in_tx:
            self._tx_snapshot(base + offset, len(data))
        self._store(base + offset, data)

    def read(self, oid: int, offset: int, size: int) -> bytes:
        base = self.direct(oid)
        if offset < 0 or offset + size > self._allocations[oid]:
            raise ValueError("read outside object bounds")
        return self._load(base + offset, size)

    # -- transactions -----------------------------------------------------------

    def tx_begin(self) -> "_Transaction":
        """Open a transaction (use as a context manager)."""
        if self._in_tx:
            raise TransactionError("nested transactions are not supported")
        self._in_tx = True
        self._tx_ranges = []
        self._log_used = 0
        self.cost.charge(self.cost.tx_begin_ns)
        return _Transaction(self)

    def _tx_snapshot(self, offset: int, size: int) -> None:
        """Append an undo-log record of the *durable* bytes for the range."""
        for lo, ln in self._tx_ranges:
            if lo <= offset and offset + size <= lo + ln:
                return  # already logged
        record_bytes = _LOG_ENTRY.size + size
        # +1 terminator slot: the log must end with a zeroed header, or a
        # crashed transaction with fewer records than its predecessor
        # would replay the predecessor's stale tail (a real bug the crash
        # fuzzer caught).
        if self._log_used + record_bytes + _LOG_ENTRY.size > self._log_bytes:
            raise TransactionError("undo log overflow")
        log_off = self._log_base + self._log_used
        self._store(log_off, _LOG_ENTRY.pack(offset, size))
        self._store(
            log_off + _LOG_ENTRY.size,
            bytes(self._media[offset:offset + size]),
        )
        self._store(log_off + record_bytes, bytes(_LOG_ENTRY.size))
        # The record and its terminator must be durable before the data
        # is modified.
        self.persist(log_off, record_bytes + _LOG_ENTRY.size)
        lines = (size + _CACHELINE - 1) // _CACHELINE
        self.cost.charge(lines * self.cost.log_append_ns_per_line)
        self._log_used += record_bytes
        self._tx_ranges.append((offset, size))

    def _tx_commit(self) -> None:
        # Make all transactional stores durable, then invalidate the log.
        for offset, size in self._tx_ranges:
            self.persist(offset, size)
        self._clear_log()
        self._in_tx = False
        self._tx_ranges = []
        self.cost.charge(self.cost.tx_commit_ns)

    def _tx_abort(self) -> None:
        self._apply_undo_log()
        self._clear_log()
        self._in_tx = False
        self._tx_ranges = []

    def _clear_log(self) -> None:
        self._store(self._log_base, bytes(_LOG_ENTRY.size))  # zero first record
        self.persist(self._log_base, _LOG_ENTRY.size)
        self._log_used = 0

    def _apply_undo_log(self) -> None:
        """Roll back durable state from the log; drops volatile overlays."""
        self._volatile = {
            a: v for a, v in self._volatile.items()
            if not (self._log_base <= a < self._log_base + self._log_bytes)
        }
        cursor = self._log_base
        while cursor + _LOG_ENTRY.size <= self._log_base + self._log_bytes:
            offset, size = _LOG_ENTRY.unpack_from(self._media, cursor)
            if size == 0:
                break
            payload = cursor + _LOG_ENTRY.size
            self._media[offset:offset + size] = self._media[payload:payload + size]
            # Discard any volatile overlay for the rolled-back range.
            for addr in range(offset, offset + size):
                self._volatile.pop(addr, None)
            cursor = payload + size

    # -- crash / recovery ----------------------------------------------------------

    def crash(self) -> None:
        """Power failure: volatile (cached) stores vanish."""
        self._volatile.clear()
        self._in_tx = False
        self._tx_ranges = []

    def recover(self) -> None:
        """Pool open after a crash: validate header, replay the undo log."""
        heap_next, root_oid, root_size = self._read_header_from_media()
        self._apply_undo_log()
        self._clear_log()
        self._heap_next = heap_next
        self._root_oid = root_oid
        self._root_size = root_size

    # -- iteration helpers (used by the examples) -----------------------------------

    def objects(self) -> Iterator[tuple[int, int]]:
        """(oid, size) pairs of all live allocations."""
        yield from sorted(self._allocations.items())


class _Transaction:
    """Context manager returned by :meth:`PersistentObjectPool.tx_begin`."""

    def __init__(self, pool: PersistentObjectPool) -> None:
        self._pool = pool

    def __enter__(self) -> "_Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self._pool._tx_commit()
            return False
        self._pool._tx_abort()
        # Swallow explicit aborts; propagate real errors.
        return exc_type is TransactionAbort
