"""Optane-like PMEM DIMM internal architecture (paper Fig. 2a).

The DIMM is "a complicated system similar to high-performance SSDs, not
like a DRAM DIMM": an LSQ that write-combines to 256 B, a two-level
inclusive SRAM+DRAM internal cache (SRAM for 256 B read-modify, DRAM for
address translation and 4 KB buffering), and firmware that manages it all
— which is exactly what makes its latency vary and its reads ~2.9x slower
than bare-metal PRAM while its buffered writes beat bare-metal PRAM by
2.3–6.1x (paper Fig. 2b).

The model walks each request through the same stages the paper's reverse
engineering identifies and charges each stage's latency, so latency
variation is an *output* of the multi-buffer lookup path, not a sampled
distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.memory.batch import (
    BatchRequests,
    BatchResponses,
    RequestWindow,
    ResponseWindow,
    default_access_batch,
)
from repro.memory.device import PRAMDevice, PRAMTiming, SRAMBuffer
from repro.memory.request import (
    CACHELINE_BYTES,
    MemoryOp,
    MemoryRequest,
    MemoryResponse,
    PMEM_INTERNAL_BYTES,
    PRAM_DEVICE_BYTES,
)
from repro import _np as _nphelper
from repro.pmem.columnar import pmem_dimm_window
from repro.pmem.lsq import LoadStoreQueue, LSQEntry
from repro.sim.stats import LatencyStats

__all__ = ["PMEMDIMM", "PMEMDIMMTiming"]

_DIES_PER_FRAME = PMEM_INTERNAL_BYTES // PRAM_DEVICE_BYTES  # 8


@dataclass(frozen=True)
class PMEMDIMMTiming:
    """Per-stage latencies of the DIMM-internal datapath (nanoseconds)."""

    lsq_ns: float = 6.0
    sram_lookup_ns: float = 5.0
    sram_access_ns: float = 95.0
    dram_lookup_ns: float = 10.0
    dram_access_ns: float = 120.0
    #: Address Indirection Table walk (wear-level mapping) in internal DRAM.
    ait_ns: float = 40.0
    #: Firmware scheduling overhead charged on any media-path trip.
    firmware_ns: float = 18.0
    #: Burst transfer of a 256 B frame over the internal bus.
    frame_transfer_ns: float = 25.0
    #: Media write backpressure: if the dies are occupied further than this
    #: ahead of "now", new writes stall until the backlog shrinks.
    write_backlog_limit_ns: float = 1_600.0


class PMEMDIMM:
    """One PMEM DIMM: LSQ -> SRAM -> internal DRAM -> PRAM media.

    The boundary is 64 B cachelines.  Reads walk the inclusive lookup
    hierarchy; misses pay AIT translation plus a 256 B media read.  Writes
    combine in the LSQ and land in the internal buffers quickly; evicted
    frames go to media as 256 B programs, read-modifying when the frame is
    only partially covered.
    """

    def __init__(
        self,
        capacity: int = 1 << 30,
        timing: Optional[PMEMDIMMTiming] = None,
        pram_timing: Optional[PRAMTiming] = None,
        sram_frames: int = 64,
        dram_frames: int = 512,
        media_banks: int = 16,
    ) -> None:
        self.capacity = capacity
        self.timing = timing or PMEMDIMMTiming()
        self.lsq = LoadStoreQueue()
        self.sram = SRAMBuffer(
            frames=sram_frames,
            frame_bytes=PMEM_INTERNAL_BYTES,
            access_ns=self.timing.sram_access_ns,
        )
        self.dram_buffer = SRAMBuffer(
            frames=dram_frames,
            frame_bytes=4096,
            access_ns=self.timing.dram_access_ns,
        )
        # The media is banked: frames interleave across ``media_banks``
        # independent 8-die groups, which is where the real DIMM's
        # sustained write bandwidth comes from.
        self.media_banks = media_banks
        bank_capacity = max(
            PRAM_DEVICE_BYTES,
            capacity // _DIES_PER_FRAME // media_banks + PRAM_DEVICE_BYTES,
        )
        self.banks = [
            [
                PRAMDevice(bank_capacity, pram_timing,
                           device_id=b * _DIES_PER_FRAME + i)
                for i in range(_DIES_PER_FRAME)
            ]
            for b in range(media_banks)
        ]
        self.dies = [die for bank in self.banks for die in bank]
        self.read_latency = LatencyStats("pmem_dimm.read")
        self.write_latency = LatencyStats("pmem_dimm.write")
        #: functional byte images per 64 B line: volatile (still in the
        #: LSQ/internal buffers) vs durable (programmed to media)
        self._volatile_data: dict[int, bytes] = {}
        self._durable_data: dict[int, bytes] = {}
        self.media_reads = 0
        self.media_writes = 0
        self.rmw_count = 0
        self.is_volatile = False

    # -- media -------------------------------------------------------------

    def _frame_of(self, address: int) -> int:
        return address - (address % PMEM_INTERNAL_BYTES)

    def _bank_of(self, frame: int) -> list[PRAMDevice]:
        return self.banks[(frame // PMEM_INTERNAL_BYTES) % self.media_banks]

    def _die_address(self, frame: int) -> int:
        """Bank-local address of a frame (striped across a bank's dies)."""
        frame_index = frame // PMEM_INTERNAL_BYTES // self.media_banks
        return frame_index * PRAM_DEVICE_BYTES

    def _media_read_frame(self, time: float, frame: int) -> float:
        """Read a 256 B frame: one bank's dies in parallel."""
        local = self._die_address(frame)
        done = time
        for die in self._bank_of(frame):
            complete, _ = die.read(time, local, PRAM_DEVICE_BYTES)
            done = max(done, complete)
        self.media_reads += 1
        return done + self.timing.frame_transfer_ns

    def _media_write_frame(
        self, time: float, entry: LSQEntry
    ) -> float:
        """Program a 256 B frame; read-modify first if partially covered."""
        start = time
        full_coverage = entry.coverage == 0b1111
        if not full_coverage:
            start = self._media_read_frame(time, entry.frame)
            self.rmw_count += 1
        local = self._die_address(entry.frame)
        done = start
        for die in self._bank_of(entry.frame):
            complete, _ = die.write(start, local, size=PRAM_DEVICE_BYTES)
            done = max(done, complete)
        self.media_writes += 1
        # the frame's lines are now programmed: promote volatile -> durable
        for line in range(entry.frame, entry.frame + PMEM_INTERNAL_BYTES,
                          CACHELINE_BYTES):
            if line in self._volatile_data:
                self._durable_data[line] = self._volatile_data.pop(line)
        return done

    def _media_backlog(self, time: float, frame: int) -> float:
        bank = self._bank_of(frame)
        return max(0.0, max(die.busy_until for die in bank) - time)

    # -- boundary ----------------------------------------------------------

    def access(self, request: MemoryRequest) -> MemoryResponse:
        if request.op is MemoryOp.FLUSH:
            return MemoryResponse(request, complete_time=self.flush(request.time))
        if request.op is MemoryOp.RESET:
            raise ValueError("PMEM DIMM has no host-visible reset port")
        if request.size > CACHELINE_BYTES:
            raise ValueError("PMEM DIMM boundary is cacheline-granular")
        if request.end_address > self.capacity:
            raise ValueError(
                f"address {request.address:#x} outside DIMM capacity"
            )
        if request.is_write:
            return self._serve_write(request)
        return self._serve_read(request)

    def access_batch(self, requests: BatchRequests) -> BatchResponses:
        """Serve a whole window through the inlined lookup hierarchy.

        Value-identical to looping :meth:`access`: each element walks the
        same LSQ/SRAM/DRAM/media stages with the same float expressions in
        the same order.  The batch form amortizes the expensive per-write
        occupancy scans — the scalar path computes ``max`` over all 128
        media dies per write and over one 8-die bank per backlog probe;
        here both maxima are cached and refreshed only after a media frame
        operation actually moves a die (die ``busy_until`` is monotonic,
        so the running maxima stay exact).
        """
        window = requests if isinstance(requests, RequestWindow) \
            else RequestWindow.from_requests(requests)
        if window is None or self._volatile_data or self._durable_data:
            return default_access_batch(self, requests)
        size = window.size
        if size > CACHELINE_BYTES:
            raise ValueError("PMEM DIMM boundary is cacheline-granular")
        if _nphelper.kernels_enabled() and not any(
            die.track_wear for die in self.dies
        ):
            return pmem_dimm_window(self, window)
        timing = self.timing
        lsq_ns = timing.lsq_ns
        sram_lookup_ns = timing.sram_lookup_ns
        sram_access_ns = timing.sram_access_ns
        dram_lookup_ns = timing.dram_lookup_ns
        dram_access_ns = timing.dram_access_ns
        firmware_ns = timing.firmware_ns
        limit_ns = timing.write_backlog_limit_ns
        # The scalar paths parenthesize both sums (``t += ait + firmware``
        # and ``t + (sram + ... + transfer)``), so pre-folding is exact.
        read_miss_extra_ns = timing.ait_ns + timing.firmware_ns
        write_pipeline_ns = (
            timing.sram_access_ns
            + timing.dram_lookup_ns
            + timing.dram_access_ns
            + timing.ait_ns
            + timing.firmware_ns
            + timing.frame_transfer_ns
        )
        capacity = self.capacity
        banks = self.banks
        n_banks = self.media_banks
        forward_read = self.lsq.forward_read
        push_write = self.lsq.push_write
        sram_lookup = self.sram.lookup
        sram_fill = self.sram.fill
        dram_buffer_lookup = self.dram_buffer.lookup
        dram_buffer_fill = self.dram_buffer.fill
        media_read = self._media_read_frame
        media_write = self._media_write_frame
        bank_max = [
            max(die.busy_until for die in bank) for bank in banks
        ]
        dies_max = max(bank_max)
        addresses = window.addresses
        times = window.times
        is_write = window.is_write
        n = len(addresses)
        complete_col = [0.0] * n
        occupied_col = [0.0] * n
        blocked_col = [0.0] * n
        read_latencies: list[float] = []
        write_latencies: list[float] = []
        error: Optional[ValueError] = None
        for index in range(n):
            address = addresses[index]
            if address + size > capacity:
                error = ValueError(
                    f"address {address:#x} outside DIMM capacity"
                )
                break
            time = times[index]
            t = time + lsq_ns
            if is_write[index]:
                frame = address - (address % PMEM_INTERNAL_BYTES)
                bank_index = (frame // PMEM_INTERNAL_BYTES) % n_banks
                backlog = bank_max[bank_index] - t
                if backlog < 0.0:
                    backlog = 0.0
                stall = backlog - limit_ns
                if stall < 0.0:
                    stall = 0.0
                t += stall
                evicted = push_write(t, address)
                sram_fill(address)
                dram_buffer_fill(address)
                complete = t + write_pipeline_ns
                if evicted is not None:
                    media_write(complete + firmware_ns, evicted)
                    hot = (evicted.frame // PMEM_INTERNAL_BYTES) % n_banks
                    refreshed = max(
                        die.busy_until for die in banks[hot]
                    )
                    bank_max[hot] = refreshed
                    if refreshed > dies_max:
                        dies_max = refreshed
                write_latencies.append(complete - time)
                complete_col[index] = complete
                occupied_col[index] = dies_max
                blocked_col[index] = stall
            else:
                if forward_read(address):
                    complete = t + sram_access_ns
                else:
                    t += sram_lookup_ns
                    if sram_lookup(address):
                        complete = t + sram_access_ns
                    else:
                        t += dram_lookup_ns
                        if dram_buffer_lookup(address):
                            complete = t + dram_access_ns
                            sram_fill(address)
                        else:
                            t += read_miss_extra_ns
                            frame = address - (address % PMEM_INTERNAL_BYTES)
                            complete = media_read(t, frame)
                            bank_index = (
                                frame // PMEM_INTERNAL_BYTES
                            ) % n_banks
                            refreshed = max(
                                die.busy_until for die in banks[bank_index]
                            )
                            bank_max[bank_index] = refreshed
                            if refreshed > dies_max:
                                dies_max = refreshed
                            sram_fill(address)
                            dram_buffer_fill(address)
                read_latencies.append(complete - time)
                complete_col[index] = complete
                # scalar read responses carry no occupancy: the default
                # 0.0 clamps up to the completion time
                occupied_col[index] = complete
        if read_latencies:
            self.read_latency.record_many(read_latencies)
        if write_latencies:
            self.write_latency.record_many(write_latencies)
        if error is not None:
            raise error
        return ResponseWindow(window, complete_col, occupied_col, blocked_col)

    def _line_data(self, address: int) -> Optional[bytes]:
        line = address - address % CACHELINE_BYTES
        return self._volatile_data.get(line, self._durable_data.get(line))

    def _serve_read(self, request: MemoryRequest) -> MemoryResponse:
        t = request.time + self.timing.lsq_ns
        # 1. store-to-load forwarding from a pending combined write
        if self.lsq.forward_read(request.address):
            complete = t + self.timing.sram_access_ns
            self.read_latency.record(complete - request.time)
            return MemoryResponse(request, complete_time=complete,
                                  data=self._line_data(request.address))
        # 2. SRAM level of the inclusive cache
        t += self.timing.sram_lookup_ns
        if self.sram.lookup(request.address):
            complete = t + self.timing.sram_access_ns
            self.read_latency.record(complete - request.time)
            return MemoryResponse(request, complete_time=complete,
                                  data=self._line_data(request.address))
        # 3. internal DRAM level (4 KB buffering)
        t += self.timing.dram_lookup_ns
        if self.dram_buffer.lookup(request.address):
            complete = t + self.timing.dram_access_ns
            self.sram.fill(request.address)
            self.read_latency.record(complete - request.time)
            return MemoryResponse(request, complete_time=complete,
                                  data=self._line_data(request.address))
        # 4. miss: AIT translation (internal DRAM) + 256 B media read
        t += self.timing.ait_ns + self.timing.firmware_ns
        complete = self._media_read_frame(t, self._frame_of(request.address))
        self.sram.fill(request.address)
        self.dram_buffer.fill(request.address)
        self.read_latency.record(complete - request.time)
        return MemoryResponse(request, complete_time=complete,
                              data=self._line_data(request.address))

    def _serve_write(self, request: MemoryRequest) -> MemoryResponse:
        t = request.time + self.timing.lsq_ns
        # Backpressure: stall acceptance while the target bank is deep.
        backlog = self._media_backlog(t, self._frame_of(request.address))
        stall = max(0.0, backlog - self.timing.write_backlog_limit_ns)
        t += stall
        evicted = self.lsq.push_write(t, request.address)
        if request.data is not None:
            line = request.address - request.address % CACHELINE_BYTES
            self._volatile_data[line] = bytes(request.data)
        # The accepted write walks the whole internal pipeline: SRAM
        # staging, the 4 KB DRAM buffer, an AIT update, and the firmware's
        # bookkeeping — still far cheaper than a bare PRAM programming
        # pulse (the paper's 2.3-6.1x DIMM-write advantage), but well
        # above a DRAM store.
        self.sram.fill(request.address)
        self.dram_buffer.fill(request.address)
        complete = t + (
            self.timing.sram_access_ns
            + self.timing.dram_lookup_ns
            + self.timing.dram_access_ns
            + self.timing.ait_ns
            + self.timing.firmware_ns
            + self.timing.frame_transfer_ns
        )
        if evicted is not None:
            # Evicted frame heads to media in the background; the host only
            # pays firmware dispatch, not the programming time.
            self._media_write_frame(
                complete + self.timing.firmware_ns, evicted
            )
        self.write_latency.record(complete - request.time)
        return MemoryResponse(
            request,
            complete_time=complete,
            occupied_until=max(die.busy_until for die in self.dies),
            blocked_ns=stall,
        )

    def flush(self, time: float) -> float:
        """Drain the LSQ and wait for all media programming to finish."""
        t = time + self.timing.firmware_ns
        for entry in self.lsq.drain():
            t = self._media_write_frame(t, entry)
        return max([t] + [die.busy_until for die in self.dies])

    def power_cycle(self) -> None:
        """PRAM media persists; volatile internal state is lost."""
        self._volatile_data.clear()  # LSQ/buffer contents die with power
        self.lsq.drain()
        self.sram.invalidate_all()
        self.dram_buffer.invalidate_all()
        for die in self.dies:
            die.power_cycle()

    def counters(self) -> dict[str, int]:
        return {
            "media_reads": self.media_reads,
            "media_writes": self.media_writes,
            "rmw": self.rmw_count,
            "lsq_combines": self.lsq.combines,
            "sram_hits": self.sram.hits,
            "sram_misses": self.sram.misses,
            "dram_buffer_hits": self.dram_buffer.hits,
            "dram_buffer_misses": self.dram_buffer.misses,
        }
