"""PMEM DIMM load-store queue with 256 B write combining (§II-A).

The reverse-engineered Optane DIMM reorders incoming 64 B requests and
combines writes into 256 B frames — the physical access granularity of the
DIMM-level PRAM media — before they reach the internal buffers.  The LSQ
here models that: pending writes are keyed by 256 B frame, a write to an
already-pending frame merges for free, and reads snoop the queue for
store-to-load forwarding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.memory.request import PMEM_INTERNAL_BYTES

__all__ = ["LSQEntry", "LoadStoreQueue"]


@dataclass
class LSQEntry:
    """One pending 256 B combined write frame."""

    frame: int
    first_time: float
    last_time: float
    merged_writes: int = 1
    #: 64 B sub-line coverage within the frame (bitmask over 4 slots).
    coverage: int = 0


class LoadStoreQueue:
    """Bounded write-combining queue in front of the DIMM internals.

    * ``push_write`` merges into a pending frame when possible; otherwise a
      new entry is allocated, evicting the oldest entry when full (the
      evicted frame is returned so the caller can issue it to the media
      path).
    * ``forward_read`` reports whether a read can be served from a pending
      frame (store-to-load forwarding inside the DIMM).
    """

    def __init__(self, depth: int = 16, frame_bytes: int = PMEM_INTERNAL_BYTES,
                 queue_ns: float = 6.0) -> None:
        if depth <= 0:
            raise ValueError("LSQ depth must be positive")
        self.depth = depth
        self.frame_bytes = frame_bytes
        self.queue_ns = queue_ns
        self._entries: dict[int, LSQEntry] = {}
        self.combines = 0
        self.allocations = 0
        self.evictions = 0

    def frame_of(self, address: int) -> int:
        return address - (address % self.frame_bytes)

    def _slot_of(self, address: int) -> int:
        return (address % self.frame_bytes) // 64

    def push_write(self, time: float, address: int) -> Optional[LSQEntry]:
        """Accept a 64 B write; returns an evicted frame entry or None."""
        frame = self.frame_of(address)
        slot_bit = 1 << self._slot_of(address)
        entry = self._entries.get(frame)
        if entry is not None:
            entry.merged_writes += 1
            entry.last_time = time
            entry.coverage |= slot_bit
            self.combines += 1
            return None
        evicted: Optional[LSQEntry] = None
        if len(self._entries) >= self.depth:
            oldest_frame = min(self._entries, key=lambda f: self._entries[f].first_time)
            evicted = self._entries.pop(oldest_frame)
            self.evictions += 1
        self._entries[frame] = LSQEntry(
            frame=frame, first_time=time, last_time=time, coverage=slot_bit
        )
        self.allocations += 1
        return evicted

    def forward_read(self, address: int) -> bool:
        """True if a pending write frame covers this 64 B line."""
        entry = self._entries.get(self.frame_of(address))
        if entry is None:
            return False
        return bool(entry.coverage & (1 << self._slot_of(address)))

    def drain(self) -> list[LSQEntry]:
        """Flush: return all pending frames oldest-first and empty the queue."""
        entries = sorted(self._entries.values(), key=lambda e: e.first_time)
        self._entries.clear()
        return entries

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.depth
