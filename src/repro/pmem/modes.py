"""System configurations of the conventional-PMEM study (paper §II-B, Fig. 4).

Five setups share one computing complex and differ in how the memory
subsystem is provisioned and what software runs on top:

* ``dram_only``  — all data in local-node DRAM (the non-persistent yardstick),
* ``mem_mode``   — PMEM as DRAM-cached volatile working memory (NMEM + snarf),
* ``app_mode``   — PMEM app-direct over DAX: loads/stores hit the DIMM path,
* ``object_mode``— app-direct + PMDK object management (persistent pointers),
* ``trans_mode`` — object mode + durable transactions (undo log + persist).

Each mode yields a memory backend (``access``/``drain``) plus a
:class:`SoftwareOverhead` describing the per-access software interventions
the CPU pays, and the component inventory the power model charges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.memory.dram import DRAMConfig, DRAMSubsystem
from repro.memory.port import MemoryBackend
from repro.pmem.controller import NMEMController, PMEMController
from repro.pmem.dimm import PMEMDIMM
from repro.pmem.pmdk import PMDKCostModel

__all__ = [
    "MemoryBackend",
    "ModeSystem",
    "SoftwareOverhead",
    "MODE_NAMES",
    "build_mode",
]

MODE_NAMES = ("dram_only", "mem_mode", "app_mode", "object_mode", "trans_mode")


@dataclass(frozen=True)
class SoftwareOverhead:
    """Per-access software costs charged by the CPU timing model.

    ``coverage`` is the fraction of data accesses that touch managed
    persistent objects (global + heap in the paper's trans-mode wrapping);
    stack and code traffic is not object-managed.
    """

    per_read_ns: float = 0.0
    per_write_ns: float = 0.0
    coverage: float = 0.0
    #: extra memory writes per covered store (pmem_persist forcing the
    #: dirtied cachelines out of the CPU caches immediately)
    extra_flush_writes: float = 0.0

    def read_cost(self) -> float:
        return self.per_read_ns * self.coverage

    def write_cost(self) -> float:
        return self.per_write_ns * self.coverage


@dataclass
class ModeSystem:
    """A built mode: backend + software overhead + power inventory."""

    name: str
    backend: MemoryBackend
    overhead: SoftwareOverhead
    #: component names for the power model, e.g. ("dram", "pmem_dimm").
    components: tuple[str, ...] = ()
    dram: Optional[DRAMSubsystem] = None
    pmem: Optional[PMEMController] = None
    cost_model: Optional[PMDKCostModel] = None


def _pmem_controller(capacity: int, dimms: int) -> PMEMController:
    per_dimm = capacity // dimms
    return PMEMController([PMEMDIMM(capacity=per_dimm) for _ in range(dimms)])


def build_mode(
    name: str,
    dram_capacity: int = 1 << 26,
    pmem_capacity: int = 1 << 27,
    pmem_dimms: int = 2,
) -> ModeSystem:
    """Construct one of the five Fig. 4 configurations.

    Default capacities are scaled-down stand-ins for the paper's 190 GB
    DRAM / 1.5 TB Optane node; only the ratio matters to the experiments.
    """
    if name not in MODE_NAMES:
        raise ValueError(f"unknown mode {name!r}; expected one of {MODE_NAMES}")

    if name == "dram_only":
        dram = DRAMSubsystem(DRAMConfig(capacity=dram_capacity))
        return ModeSystem(
            name=name,
            backend=dram,
            overhead=SoftwareOverhead(),
            components=("dram",),
            dram=dram,
        )

    if name == "mem_mode":
        dram = DRAMSubsystem(DRAMConfig(capacity=dram_capacity))
        pmem = _pmem_controller(pmem_capacity, pmem_dimms)
        nmem = NMEMController(dram, pmem)
        return ModeSystem(
            name=name,
            backend=nmem,
            overhead=SoftwareOverhead(),
            components=("dram", "pmem", "nmem"),
            dram=dram,
            pmem=pmem,
        )

    # app-direct family: the benchmark's data lives on the PMEM DIMMs over
    # DAX; the local DRAM still exists (it hosts the kernel) and keeps
    # burning refresh power, which the power model charges.
    pmem = _pmem_controller(pmem_capacity, pmem_dimms)
    dram = DRAMSubsystem(DRAMConfig(capacity=dram_capacity))
    cost = PMDKCostModel()

    if name == "app_mode":
        # DAX translation is an offset add — negligible but nonzero.
        overhead = SoftwareOverhead(per_read_ns=2.0, per_write_ns=2.0, coverage=1.0)
        return ModeSystem(
            name=name,
            backend=pmem,
            overhead=overhead,
            components=("dram", "pmem"),
            dram=dram,
            pmem=pmem,
            cost_model=cost,
        )

    if name == "object_mode":
        # Every managed access computes a VA from a persistent pointer and
        # touches object metadata (paper: 1.8x latency vs DRAM-only).
        overhead = SoftwareOverhead(
            per_read_ns=2.0 + cost.translate_ns,
            per_write_ns=2.0 + cost.translate_ns + 18.0,
            # only the insert/delete object traffic is managed; stack and
            # scratch accesses bypass the object layer
            coverage=0.2,
        )
        return ModeSystem(
            name=name,
            backend=pmem,
            overhead=overhead,
            components=("dram", "pmem"),
            dram=dram,
            pmem=pmem,
            cost_model=cost,
        )

    # trans_mode: every store inside a wrapped operation block pays an undo
    # log append plus pmem_persist (cacheline flush visits + fence); the
    # flush visits are the dominant term (paper: 8.7x vs DRAM-only).
    per_write = (
        2.0
        + cost.translate_ns
        + cost.log_append_ns_per_line
        + cost.persist_ns_per_line
        + cost.fence_ns
    )
    # Reads inside transactions still pay translation, plus the cache
    # controller's iterative visits hurt co-running reads (paper §II-B).
    per_read = 2.0 + cost.translate_ns + 0.35 * cost.persist_ns_per_line
    overhead = SoftwareOverhead(
        per_read_ns=per_read, per_write_ns=per_write, coverage=0.2,
        extra_flush_writes=1.0,
    )
    return ModeSystem(
        name="trans_mode",
        backend=pmem,
        overhead=overhead,
        components=("dram", "pmem"),
        dram=dram,
        pmem=pmem,
        cost_model=cost,
    )
