"""Device-file + DAX mapping model (paper §II-B, Fig. 3a).

Linux exposes app-direct/sector-mode PMEM as a device file (``/dev/pmemX``)
and applications reach it through a memory-mapped file: direct access
(DAX) translates a virtual address to a physical one by adding the mapping
offset — which is why the paper calls its translation overhead negligible.
The model is functional (real bounds-checked translation) so the PMDK
layer and the examples can build on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["DaxMapping", "DaxTranslationError", "DevDaxFile"]


class DaxTranslationError(ValueError):
    """An address fell outside every established DAX mapping."""


@dataclass(frozen=True)
class DaxMapping:
    """One mmap of a device-file range into a process address space."""

    va_base: int
    file_offset: int
    length: int

    def contains(self, va: int, size: int = 1) -> bool:
        return self.va_base <= va and va + size <= self.va_base + self.length

    def translate(self, va: int) -> int:
        """VA -> file offset; the "add an offset" DAX fast path."""
        if not self.contains(va):
            raise DaxTranslationError(
                f"VA {va:#x} outside mapping [{self.va_base:#x}, "
                f"{self.va_base + self.length:#x})"
            )
        return va - self.va_base + self.file_offset


class DevDaxFile:
    """A /dev/pmem device file fronting a persistent capacity.

    Tracks active mappings and resolves virtual addresses.  Overlapping
    virtual ranges are rejected, like the kernel would.
    """

    def __init__(self, name: str, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("device capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._mappings: list[DaxMapping] = []

    def mmap(self, va_base: int, file_offset: int, length: int) -> DaxMapping:
        if file_offset < 0 or file_offset + length > self.capacity:
            raise DaxTranslationError(
                f"file range [{file_offset:#x}, {file_offset + length:#x}) "
                f"outside {self.name} capacity {self.capacity:#x}"
            )
        for existing in self._mappings:
            if not (
                va_base + length <= existing.va_base
                or existing.va_base + existing.length <= va_base
            ):
                raise DaxTranslationError(
                    f"VA range overlaps existing mapping at {existing.va_base:#x}"
                )
        mapping = DaxMapping(va_base=va_base, file_offset=file_offset, length=length)
        self._mappings.append(mapping)
        return mapping

    def munmap(self, mapping: DaxMapping) -> None:
        self._mappings.remove(mapping)

    def resolve(self, va: int, size: int = 1) -> int:
        """Translate a VA through whichever mapping covers it."""
        for mapping in self._mappings:
            if mapping.contains(va, size):
                return mapping.translate(va)
        raise DaxTranslationError(f"VA {va:#x} is not DAX-mapped")

    def find_mapping(self, va: int) -> Optional[DaxMapping]:
        for mapping in self._mappings:
            if mapping.contains(va):
                return mapping
        return None

    @property
    def mappings(self) -> tuple[DaxMapping, ...]:
        return tuple(self._mappings)
