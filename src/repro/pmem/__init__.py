"""Conventional Optane-like PMEM complex: DIMM internals, controllers,
operating modes, DAX, and a libpmemobj-like persistent object library."""

from repro.pmem.controller import NMEMController, PMEMController
from repro.pmem.dax import DaxMapping, DaxTranslationError, DevDaxFile
from repro.pmem.dimm import PMEMDIMM, PMEMDIMMTiming
from repro.pmem.lsq import LoadStoreQueue, LSQEntry
from repro.pmem.modes import (
    MODE_NAMES,
    MemoryBackend,
    ModeSystem,
    SoftwareOverhead,
    build_mode,
)
from repro.pmem.sector import SECTOR_BYTES, SectorDevice, SectorError
from repro.pmem.pmdk import (
    OID_NULL,
    PMDKCostModel,
    PersistentObjectPool,
    PoolCorruptionError,
    TransactionAbort,
    TransactionError,
)

__all__ = [
    "DaxMapping",
    "DaxTranslationError",
    "DevDaxFile",
    "LoadStoreQueue",
    "LSQEntry",
    "MODE_NAMES",
    "MemoryBackend",
    "ModeSystem",
    "NMEMController",
    "OID_NULL",
    "PMDKCostModel",
    "PMEMController",
    "PMEMDIMM",
    "PMEMDIMMTiming",
    "PersistentObjectPool",
    "PoolCorruptionError",
    "SECTOR_BYTES",
    "SectorDevice",
    "SectorError",
    "SoftwareOverhead",
    "TransactionAbort",
    "TransactionError",
    "build_mode",
]
