"""Run results: what one workload execution on one platform produced."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cpu.complex import ComplexResult
from repro.pecos.sng import GoReport, StopReport
from repro.power.model import PowerReport

__all__ = ["PowerFailOutcome", "RunResult"]


@dataclass
class RunResult:
    """One workload execution on one platform."""

    platform: str
    workload: str
    complex_result: ComplexResult
    power: PowerReport
    #: memory-subsystem facts gathered from the backend
    backend_counters: dict[str, float] = field(default_factory=dict)
    mean_read_latency_ns: float = 0.0
    cache_read_hit: float = 0.0
    cache_write_hit: float = 0.0
    row_buffer_hit: float = 0.0
    #: hierarchical stats-registry snapshot taken at the end of the run
    stats: dict = field(default_factory=dict)
    #: execution engine the run was driven through (registry name)
    engine: str = "extent"
    #: epoch-engine acceleration report (``EpochReport.as_dict()``), or
    #: ``None`` when the run replayed exactly
    epoch: Optional[dict] = None

    @property
    def wall_ns(self) -> float:
        return self.complex_result.wall_ns

    @property
    def ipc(self) -> float:
        return self.complex_result.ipc

    @property
    def instructions(self) -> int:
        return self.complex_result.instructions

    @property
    def energy_j(self) -> float:
        return self.power.energy_j

    @property
    def total_w(self) -> float:
        return self.power.total_w

    def cycles(self, frequency_ghz: float = 1.6) -> float:
        return self.wall_ns * frequency_ghz


@dataclass
class PowerFailOutcome:
    """What happened when the AC dropped under a platform."""

    platform: str
    psu: str
    holdup_ns: float
    stop: Optional[StopReport] = None
    go: Optional[GoReport] = None
    survived: bool = False
    #: state the platform lost (DRAM contents, pending lines, ...)
    lost: str = ""

    @property
    def stop_ns(self) -> float:
        return self.stop.total_ns if self.stop else 0.0

    @property
    def margin_ns(self) -> float:
        """Slack between finishing Stop and the rails leaving spec."""
        return self.holdup_ns - self.stop_ns
