"""Platform configuration (paper Table I) and clock-domain helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.cpu.core import CoreConfig
from repro.memory.dram import DRAMConfig
from repro.ocpmem.psm import PSMConfig
from repro.pecos.kernel import KernelConfig

__all__ = [
    "ClockDomain",
    "PLATFORM_NAMES",
    "PlatformConfig",
    "PlatformName",
    "TABLE1",
]

PlatformName = Literal["legacy", "lightpc_b", "lightpc"]
PLATFORM_NAMES: tuple[PlatformName, ...] = ("legacy", "lightpc_b", "lightpc")


@dataclass(frozen=True)
class ClockDomain:
    """Cycles <-> nanoseconds for a clock frequency.

    The prototype runs at 0.4 GHz on the FPGA; Synopsys timing closes the
    same RTL at 1.6 GHz for the ASIC target (Table I).  All simulated
    latencies in this repository are nanoseconds; experiments that report
    cycles convert through this.
    """

    frequency_ghz: float = 1.6

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.frequency_ghz

    def to_cycles(self, ns: float) -> float:
        return ns * self.frequency_ghz

    def to_ns(self, cycles: float) -> float:
        return cycles / self.frequency_ghz


#: Table I, verbatim targets of the prototype configuration.
TABLE1: dict[str, object] = {
    "cpu": {
        "cores": 8,
        "isa": "RV64",
        "microarchitecture": "7-stage out-of-order (SonicBOOM)",
        "l1_cache": "16KB I$ + 16KB D$",
        "frequency_ghz_fpga": 0.4,
        "frequency_ghz_asic": 1.6,
    },
    "memory": {
        "dimms": 6,
        "capacity_vs_dram": "2x",
        "read_latency_vs_dram": "1.1x",
        "write_latency_vs_dram": "4.1x",
    },
}


@dataclass(frozen=True)
class PlatformConfig:
    """Everything needed to build one of the three platforms.

    Memory capacities default to scaled-down stand-ins; ``sized_for``
    grows them to fit a workload's footprint (the paper configures all
    platforms to run without paging/swap).
    """

    cores: int = 8
    frequency_ghz: float = 1.6
    core: CoreConfig = field(default_factory=CoreConfig)
    dram: DRAMConfig = field(default_factory=lambda: DRAMConfig(capacity=1 << 26))
    psm_lines_per_dimm: int = 1 << 17
    kernel: KernelConfig = field(default_factory=KernelConfig)
    #: run a light background of kernel-thread memory traffic alongside
    #: each workload (the paper's workloads run over tens of kernel threads)
    kernel_noise: bool = True
    #: noise traffic as a fraction of the workload's references
    kernel_noise_fraction: float = 0.08

    @property
    def clock(self) -> ClockDomain:
        return ClockDomain(self.frequency_ghz)

    def psm_config(self, baseline: bool = False) -> PSMConfig:
        if baseline:
            return PSMConfig.lightpc_b(lines_per_dimm=self.psm_lines_per_dimm)
        return PSMConfig(lines_per_dimm=self.psm_lines_per_dimm)

    def sized_for(self, footprint_bytes: int) -> "PlatformConfig":
        """Grow memory capacities to hold a workload without paging."""
        needed_lines = footprint_bytes // 64 + 64
        lines_per_dimm = self.psm_lines_per_dimm
        while lines_per_dimm * 6 - 1 < needed_lines:
            lines_per_dimm *= 2
        dram_capacity = self.dram.capacity
        while dram_capacity < footprint_bytes * 2:
            dram_capacity *= 2
        if (
            lines_per_dimm == self.psm_lines_per_dimm
            and dram_capacity == self.dram.capacity
        ):
            return self
        return PlatformConfig(
            cores=self.cores,
            frequency_ghz=self.frequency_ghz,
            core=self.core,
            dram=DRAMConfig(
                capacity=dram_capacity,
                ranks=self.dram.ranks,
                timing=self.dram.timing,
                queue_ns=self.dram.queue_ns,
            ),
            psm_lines_per_dimm=lines_per_dimm,
            kernel=self.kernel,
            kernel_noise=self.kernel_noise,
            kernel_noise_fraction=self.kernel_noise_fraction,
        )
