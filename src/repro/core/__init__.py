"""Top-level platform API: configurations, machines, results."""

from repro.core.config import (
    PLATFORM_NAMES,
    ClockDomain,
    PlatformConfig,
    PlatformName,
    TABLE1,
)
from repro.core.machine import Machine, register_backend_factory
from repro.core.results import PowerFailOutcome, RunResult

__all__ = [
    "ClockDomain",
    "Machine",
    "PLATFORM_NAMES",
    "PlatformConfig",
    "PlatformName",
    "PowerFailOutcome",
    "RunResult",
    "TABLE1",
    "register_backend_factory",
]
