"""The Machine: one platform wired end to end.

A Machine owns the memory backend (DRAM for LegacyPC, a PSM for
LightPC-B/LightPC), the multi-core complex, the PecOS kernel, the SnG
orchestrator (LightPC family only), the power model, and a PSU.  It runs
workloads, injects power failures, and recovers — the same life cycle the
paper exercises by physically pulling AC from the prototype.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.config import PLATFORM_NAMES, PlatformConfig, PlatformName
from repro.core.results import PowerFailOutcome, RunResult
from repro.cpu.complex import MultiCoreComplex
from repro.memory.dram import DRAMSubsystem
from repro.ocpmem.psm import PSM
from repro.pecos.kernel import Kernel
from repro.pecos.sng import SnG
from repro.power.model import PowerModel
from repro.power.psu import ATX_PSU, PSUModel
from repro.workloads.suites import Workload
from repro.workloads.trace import LocalityProfile, TraceGenerator

__all__ = ["Machine"]

#: Background kernel-thread traffic profile (light, write-mixed).
_KERNEL_NOISE_PROFILE = LocalityProfile(
    working_set_lines=4096,
    hot_lines=128,
    hot_fraction=0.7,
    sequential_fraction=0.1,
    write_fraction=0.3,
    read_after_write=0.1,
    write_page_locality=0.6,
    instructions_per_access=6.0,
)


class Machine:
    """One platform instance."""

    def __init__(
        self,
        platform: PlatformName,
        config: Optional[PlatformConfig] = None,
        functional: bool = False,
    ) -> None:
        if platform not in PLATFORM_NAMES:
            raise ValueError(
                f"unknown platform {platform!r}; expected one of {PLATFORM_NAMES}"
            )
        self.platform = platform
        self.config = config or PlatformConfig()
        self.power_model = PowerModel()

        self.backend: Union[DRAMSubsystem, PSM]
        if platform == "legacy":
            self.backend = DRAMSubsystem(self.config.dram)
        else:
            self.backend = PSM(
                self.config.psm_config(baseline=(platform == "lightpc_b")),
                functional=functional,
            )
        self.complex = MultiCoreComplex(
            self.backend, cores=self.config.cores, core_config=self.config.core
        )
        self.kernel = Kernel(self.config.kernel)
        self.kernel.populate()
        self.sng: Optional[SnG] = None
        if platform != "legacy":
            self.sng = SnG(
                kernel=self.kernel,
                flush_port=self.backend.flush,
                dirty_lines_fn=self._dump_caches,
                capture_hw_state=self.backend.capture_registers,
                restore_hw_state=self.backend.restore_wear_registers,
            )
        self._powered = True
        self.runs: list[RunResult] = []

    # -- convenience constructors ------------------------------------------

    @classmethod
    def for_workload(
        cls,
        platform: PlatformName,
        workload: Workload,
        config: Optional[PlatformConfig] = None,
        functional: bool = False,
    ) -> "Machine":
        """Build a machine whose memory fits the workload (no paging)."""
        base = config or PlatformConfig()
        footprint = (
            workload.spec.profile.working_set_lines * 64 * workload.threads
        )
        return cls(platform, base.sized_for(footprint * 2), functional)

    # -- execution --------------------------------------------------------------

    def run(self, workload: Workload, refs: Optional[int] = None) -> RunResult:
        """Execute one workload to completion and meter it."""
        if not self._powered:
            raise RuntimeError("machine is powered off; recover() first")
        traces = workload.traces(refs)
        if self.config.kernel_noise:
            total = refs if refs is not None else workload.refs
            noise_refs = max(
                1, int(total * self.config.kernel_noise_fraction) // 2
            )
            base = workload.spec.profile.working_set_lines * 64 * workload.threads
            for i in range(2):
                generator = TraceGenerator(
                    _KERNEL_NOISE_PROFILE,
                    seed=991 + i,
                    base_address=base + i * (1 << 20),
                )
                traces = list(traces) + [_Replay(generator, noise_refs)]
        complex_result = self.complex.run_traces(traces)
        result = RunResult(
            platform=self.platform,
            workload=workload.name,
            complex_result=complex_result,
            power=self.power_report(complex_result.wall_ns),
            backend_counters=self._backend_counters(),
            mean_read_latency_ns=self.backend.read_latency.mean,
            cache_read_hit=self._mean_cache_ratio(read=True),
            cache_write_hit=self._mean_cache_ratio(read=False),
            row_buffer_hit=self._row_buffer_hit(),
        )
        self.runs.append(result)
        return result

    def _dump_caches(self) -> list[int]:
        """SnG's cache dump: count *and functionally write back* every
        core's dirty lines, so the EP-cut's memory image really contains
        them before the PSM flush port runs."""
        counts = [core.cache.dirty_count() for core in self.complex.cores]
        for core in self.complex.cores:
            core.flush_cache()
        return counts

    def _mean_cache_ratio(self, read: bool) -> float:
        ratios = [
            (core.cache.read_hit_ratio if read else core.cache.write_hit_ratio)
            for core in self.complex.cores
            if (core.cache.read_hits.total if read else core.cache.write_hits.total)
        ]
        return sum(ratios) / len(ratios) if ratios else 0.0

    def _row_buffer_hit(self) -> float:
        if isinstance(self.backend, PSM):
            return self.backend.buffer_hits.ratio
        return self.backend.row_hit_ratio

    def _backend_counters(self) -> dict[str, float]:
        if isinstance(self.backend, PSM):
            counters = dict(self.backend.counters())
            nvdimm = {"reads": 0, "writes": 0}
            for dimm in self.backend.nvdimms:
                for key, value in dimm.counters().items():
                    nvdimm[key] += value
            counters.update({f"nvdimm_{k}": v for k, v in nvdimm.items()})
            return counters
        return {k: float(v) for k, v in self.backend.counters().items()}

    # -- power ---------------------------------------------------------------------

    def power_report(self, duration_ns: float, busy_fraction: float = 1.0,
                     counters_override: Optional[dict] = None):
        """Full-system power over an interval (Fig. 18's quantity).

        ``counters_override`` substitutes the backend's cumulative
        counters — time-series callers pass per-window deltas.
        """
        model = self.power_model
        parts = model.cpu_parts(self.config.cores, busy_fraction)
        if self.platform == "legacy":
            counters = counters_override or self.backend.counters()
            dimms = 4.0
            parts += [
                ("dram_dimm", dimms, {
                    k: v / dimms for k, v in counters.items()
                }),
                ("dram_complex", 1.0, None),
                ("board_legacy", 1.0, None),
            ]
        else:
            if counters_override is not None:
                psm_counters = counters_override
                nvdimm_counters = {
                    "reads": counters_override.get("nvdimm_reads", 0.0),
                    "writes": counters_override.get("nvdimm_writes", 0.0),
                }
            else:
                psm_counters = self.backend.counters()
                nvdimm_counters = {"reads": 0.0, "writes": 0.0}
                for dimm in self.backend.nvdimms:
                    for key, value in dimm.counters().items():
                        nvdimm_counters[key] += value
            parts += [
                ("psm", 1.0, psm_counters),
                ("bare_nvdimm", 6.0, {
                    k: v / 6.0 for k, v in nvdimm_counters.items()
                }),
                ("board_light", 1.0, None),
            ]
        return model.report(duration_ns, parts)

    # -- power failure & recovery ----------------------------------------------------

    def power_fail(
        self, psu: PSUModel = ATX_PSU, at_ns: float = 0.0
    ) -> PowerFailOutcome:
        """Drop AC: SnG races the hold-up window, then the rails die."""
        if not self._powered:
            raise RuntimeError("machine is already off")
        # Steady-state draw: metered over the last run, or static if idle.
        window_ns = self.runs[-1].wall_ns if self.runs else 1e6
        load_w = self.power_report(max(window_ns, 1e3)).total_w
        holdup_ns = psu.holdup_ns(load_w)
        outcome = PowerFailOutcome(
            platform=self.platform, psu=psu.name, holdup_ns=holdup_ns
        )
        if self.sng is not None:
            stop = self.sng.stop(at_ns=at_ns)
            outcome.stop = stop
            outcome.survived = stop.total_ns <= holdup_ns
            if not outcome.survived:
                # The rails fell out of spec before Auto-Stop's final
                # commit landed: the EP-cut is not authoritative and the
                # next power-on must cold boot.
                self.kernel.bootloader.clear_commit()
                outcome.lost = "EP-cut incomplete: commit missing"
        else:
            outcome.survived = False
            outcome.lost = "DRAM contents (no persistence mechanism)"
        self.backend.power_cycle()
        self._powered = False
        return outcome

    def recover(self):
        """Power returns: Go (warm) or cold boot (legacy / failed Stop)."""
        if self._powered:
            raise RuntimeError("machine is still powered")
        self._powered = True
        if self.sng is not None:
            return self.sng.go()
        # LegacyPC: cold boot, everything rebuilt from scratch.
        self.kernel = Kernel(self.config.kernel)
        self.kernel.populate()
        return None


class _Replay:
    """Re-iterable wrapper over a deterministic trace generator."""

    def __init__(self, generator: TraceGenerator, count: int) -> None:
        self._generator = generator
        self._count = count

    def __iter__(self):
        return self._generator.records(self._count)
