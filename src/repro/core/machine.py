"""The Machine: one platform wired end to end.

A Machine owns the memory backend (DRAM for LegacyPC, a PSM for
LightPC-B/LightPC), the multi-core complex, the PecOS kernel, the SnG
orchestrator (non-volatile backends only), the power model, and a PSU.
It runs workloads, injects power failures, and recovers — the same life
cycle the paper exercises by physically pulling AC from the prototype.

The Machine talks to memory exclusively through the
:class:`repro.memory.port.MemoryBackend` protocol: row-buffer ratios,
counters, the power-part inventory, and the SnG flush/capture ports all
dispatch through the port, so a new tier (a hybrid
:class:`~repro.memory.port.AddressRangePartition`, an interposer chain)
plugs in by registering a factory — no Machine edits.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.config import PlatformConfig, PlatformName
from repro.core.results import PowerFailOutcome, RunResult
from repro.cpu.complex import MultiCoreComplex
from repro.engine.base import EngineSpec, ExecutionEngine, resolve_engine
from repro.memory.dram import DRAMSubsystem
from repro.memory.port import MemoryBackend, assert_memory_backend
from repro.ocpmem.psm import PSM
from repro.pecos.kernel import Kernel
from repro.pecos.sng import SnG
from repro.power.model import PowerModel
from repro.power.psu import ATX_PSU, PSUModel
from repro.sim.stats import StatsRegistry
from repro.workloads.suites import Workload
from repro.workloads.trace import LocalityProfile, TraceGenerator

__all__ = ["Machine", "register_backend_factory"]

#: Background kernel-thread traffic profile (light, write-mixed).
_KERNEL_NOISE_PROFILE = LocalityProfile(
    working_set_lines=4096,
    hot_lines=128,
    hot_fraction=0.7,
    sequential_fraction=0.1,
    write_fraction=0.3,
    read_after_write=0.1,
    write_page_locality=0.6,
    instructions_per_access=6.0,
)

#: Builds the memory tier for one platform: (config, functional) -> backend.
BackendFactory = Callable[[PlatformConfig, bool], MemoryBackend]

_BACKEND_FACTORIES: dict[str, BackendFactory] = {
    "legacy": lambda config, functional: DRAMSubsystem(config.dram),
    "lightpc_b": lambda config, functional: PSM(
        config.psm_config(baseline=True), functional=functional
    ),
    "lightpc": lambda config, functional: PSM(
        config.psm_config(), functional=functional
    ),
}


def register_backend_factory(platform: str, factory: BackendFactory) -> None:
    """Teach Machine a new platform name.

    The factory's product must satisfy the memory port protocol; the
    Machine asserts conformance at construction.  This is the extension
    point for hybrid tiers — a single backend class (or interposer
    composition) plus one registration makes a runnable platform.
    """
    _BACKEND_FACTORIES[platform] = factory


class Machine:
    """One platform instance."""

    def __init__(
        self,
        platform: PlatformName,
        config: Optional[PlatformConfig] = None,
        functional: bool = False,
        engine: EngineSpec = None,
    ) -> None:
        factory = _BACKEND_FACTORIES.get(platform)
        if factory is None:
            raise ValueError(
                f"unknown platform {platform!r}; expected one of "
                f"{tuple(_BACKEND_FACTORIES)}"
            )
        self.platform = platform
        self.config = config or PlatformConfig()
        self.functional = functional
        self.power_model = PowerModel()
        self.engine: ExecutionEngine = resolve_engine(engine)

        backend = factory(self.config, functional)
        assert_memory_backend(backend, context=f"platform {platform!r}")
        self.backend: MemoryBackend = backend
        self.stats = StatsRegistry()
        self.complex = MultiCoreComplex(
            self.backend, cores=self.config.cores,
            core_config=self.config.core, engine=self.engine,
        )
        self._register_stats()
        self.kernel = Kernel(self.config.kernel)
        self.kernel.populate()
        self.sng: Optional[SnG] = None
        if not self.backend.is_volatile:
            self.sng = SnG(
                kernel=self.kernel,
                dirty_lines_fn=self._dump_caches,
                port=self.backend,
            )
        self._powered = True
        self.runs: list[RunResult] = []

    # -- convenience constructors ------------------------------------------

    @classmethod
    def for_workload(
        cls,
        platform: PlatformName,
        workload: Workload,
        config: Optional[PlatformConfig] = None,
        functional: bool = False,
        engine: EngineSpec = None,
    ) -> "Machine":
        """Build a machine whose memory fits the workload (no paging)."""
        base = config or PlatformConfig()
        footprint = (
            workload.spec.profile.working_set_lines * 64 * workload.threads
        )
        return cls(platform, base.sized_for(footprint * 2), functional,
                   engine=engine)

    # -- lifecycle ---------------------------------------------------------

    def reset(self) -> "Machine":
        """Return this machine to its fresh-construction state, in place.

        The warm-pool fast path: a campaign worker builds one machine
        template per platform config and resets it between trials
        instead of reconstructing.  Everything a trial can dirty is
        rebuilt or rewound — a factory-fresh backend and complex, a
        dropped-and-re-registered stats tree, a fresh engine instance,
        the kernel world repopulated in place (the expensive dpm list
        is kept, its drivers rewound), a fresh SnG — so a reset machine
        is byte-identical to a newly constructed one.  That contract is
        enforced by ``tests/test_campaign_fastpath.py``, which compares
        run results and stats trees against a cold build.
        """
        factory = _BACKEND_FACTORIES[self.platform]
        backend = factory(self.config, self.functional)
        self.backend = backend
        self.engine = resolve_engine(self.engine.name)
        self.complex = MultiCoreComplex(
            self.backend, cores=self.config.cores,
            core_config=self.config.core, engine=self.engine,
        )
        self.stats.drop()
        self._register_stats()
        self.kernel.reset_world()
        self.sng = None
        if not self.backend.is_volatile:
            self.sng = SnG(
                kernel=self.kernel,
                dirty_lines_fn=self._dump_caches,
                port=self.backend,
            )
        self._powered = True
        self.runs = []
        return self

    # -- backend wiring ----------------------------------------------------

    def attach_backend(self, backend: MemoryBackend) -> None:
        """Swap the memory tier under a fresh complex (sensitivity sweeps).

        The replacement must satisfy the port protocol; the stats scopes
        and the SnG orchestrator are re-wired to the new backend.
        """
        assert_memory_backend(
            backend, context=f"platform {self.platform!r} backend swap"
        )
        self.backend = backend
        self.complex = MultiCoreComplex(
            backend, cores=self.config.cores, core_config=self.config.core,
            engine=self.engine,
        )
        self.stats.drop()
        self._register_stats()
        self.sng = None
        if not backend.is_volatile:
            self.sng = SnG(
                kernel=self.kernel,
                dirty_lines_fn=self._dump_caches,
                port=backend,
            )

    def _register_stats(self) -> None:
        self.backend.register_stats(self.stats.scoped("memory"))
        self.complex.register_stats(self.stats.scoped("cpu"))

    def stats_tree(self) -> dict:
        """One uniform hierarchical snapshot of every registered stat.

        The same schema for all platforms: ``memory.*`` from the backend
        (devices included), ``cpu.core<i>.*`` from the complex.
        """
        return {"platform": self.platform, **self.stats.snapshot()}

    # -- execution --------------------------------------------------------------

    def set_engine(self, engine: EngineSpec) -> ExecutionEngine:
        """Select the execution engine for subsequent runs (by registry
        name, alias, or instance); returns the resolved engine."""
        self.engine = self.complex.set_engine(engine)
        return self.engine

    def run(
        self,
        workload: Workload,
        refs: Optional[int] = None,
        engine: EngineSpec = None,
    ) -> RunResult:
        """Execute one workload to completion and meter it.

        ``engine`` switches the execution engine for this and later
        runs; ``None`` keeps the machine's current selection.
        """
        if not self._powered:
            raise RuntimeError("machine is powered off; recover() first")
        if engine is not None:
            self.set_engine(engine)
        traces = workload.traces(refs)
        if self.config.kernel_noise:
            total = refs if refs is not None else workload.refs
            noise_refs = max(
                1, int(total * self.config.kernel_noise_fraction) // 2
            )
            base = workload.spec.profile.working_set_lines * 64 * workload.threads
            for i in range(2):
                generator = TraceGenerator(
                    _KERNEL_NOISE_PROFILE,
                    seed=991 + i,
                    base_address=base + i * (1 << 20),
                )
                traces = list(traces) + [_Replay(generator, noise_refs)]
        begin_run = getattr(self.engine, "begin_run", None)
        if begin_run is not None:
            begin_run()
        complex_result = self.complex.run_traces(traces)
        # Engines that advance epochs analytically report the estimated
        # backend-counter deltas for the traffic they never issued; fold
        # them in so the power model meters the whole run, not just the
        # exactly-replayed windows.
        take_report = getattr(self.engine, "take_run_report", None)
        report = take_report() if take_report is not None else None
        counters = dict(self.backend.counters())
        epoch_dict: Optional[dict] = None
        if report is not None:
            if report.windows_skipped:
                for key, value in report.counter_deltas.items():
                    base = counters.get(key, 0)
                    counters[key] = base + (
                        int(round(value)) if isinstance(base, int) else value
                    )
            epoch_dict = report.as_dict()
        result = RunResult(
            platform=self.platform,
            workload=workload.name,
            complex_result=complex_result,
            power=self.power_report(
                complex_result.wall_ns, counters_override=counters
            ),
            backend_counters=counters,
            mean_read_latency_ns=self._mean_read_latency(),
            cache_read_hit=self._mean_cache_ratio(read=True),
            cache_write_hit=self._mean_cache_ratio(read=False),
            row_buffer_hit=self.backend.buffer_hit_ratio,
            stats=self.stats.snapshot(),
            engine=self.engine.name,
            epoch=epoch_dict,
        )
        self.runs.append(result)
        return result

    def _dump_caches(self) -> list[int]:
        """SnG's cache dump: count *and functionally write back* every
        core's dirty lines, so the EP-cut's memory image really contains
        them before the backend flush port runs.  Each core's dirty set
        coalesces into extents and drains through the backend's
        closed-form flush path (``Core.flush_cache``); the per-core
        :class:`~repro.memory.extent.FlushReport` stays available as
        ``core.last_flush_report`` for audits."""
        counts = [core.cache.dirty_count() for core in self.complex.cores]
        for core in self.complex.cores:
            core.flush_cache()
        return counts

    def _mean_cache_ratio(self, read: bool) -> float:
        ratios = [
            (core.cache.read_hit_ratio if read else core.cache.write_hit_ratio)
            for core in self.complex.cores
            if (core.cache.read_hits.total if read else core.cache.write_hits.total)
        ]
        return sum(ratios) / len(ratios) if ratios else 0.0

    def _mean_read_latency(self) -> float:
        # Not part of the port protocol: interposer chains and partitions
        # have no single read distribution.  Backends that keep one
        # (DRAM, PSM) expose it as ``read_latency``.
        latency = getattr(self.backend, "read_latency", None)
        return latency.mean if latency is not None else 0.0

    # -- power ---------------------------------------------------------------------

    def power_report(self, duration_ns: float, busy_fraction: float = 1.0,
                     counters_override: Optional[dict] = None):
        """Full-system power over an interval (Fig. 18's quantity).

        ``counters_override`` substitutes the backend's cumulative
        counters — time-series callers pass per-window deltas.
        """
        model = self.power_model
        counters = counters_override or self.backend.counters()
        parts = model.cpu_parts(self.config.cores, busy_fraction)
        parts += self.backend.power_parts(counters)
        return model.report(duration_ns, parts)

    # -- power failure & recovery ----------------------------------------------------

    def power_fail(
        self, psu: PSUModel = ATX_PSU, at_ns: float = 0.0
    ) -> PowerFailOutcome:
        """Drop AC: SnG races the hold-up window, then the rails die."""
        if not self._powered:
            raise RuntimeError("machine is already off")
        # Steady-state draw: metered over the last run, or static if idle.
        window_ns = self.runs[-1].wall_ns if self.runs else 1e6
        load_w = self.power_report(max(window_ns, 1e3)).total_w
        holdup_ns = psu.holdup_ns(load_w)
        outcome = PowerFailOutcome(
            platform=self.platform, psu=psu.name, holdup_ns=holdup_ns
        )
        if self.sng is not None:
            stop = self.sng.stop(at_ns=at_ns)
            outcome.stop = stop
            outcome.survived = stop.total_ns <= holdup_ns
            if not outcome.survived:
                # The rails fell out of spec before Auto-Stop's final
                # commit landed: the EP-cut is not authoritative and the
                # next power-on must cold boot.
                self.kernel.bootloader.clear_commit()
                outcome.lost = "EP-cut incomplete: commit missing"
        else:
            outcome.survived = False
            outcome.lost = "DRAM contents (no persistence mechanism)"
        self.backend.power_cycle()
        self._powered = False
        return outcome

    def recover(self):
        """Power returns: Go (warm) or cold boot (legacy / failed Stop)."""
        if self._powered:
            raise RuntimeError("machine is still powered")
        self._powered = True
        if self.sng is not None:
            return self.sng.go()
        # LegacyPC: cold boot, everything rebuilt from scratch.
        self.kernel = Kernel(self.config.kernel)
        self.kernel.populate()
        return None


class _Replay:
    """Re-iterable wrapper over a deterministic trace generator."""

    #: drawn from one fixed locality profile — statistically stationary,
    #: so the epoch engine may advance it analytically
    stationary = True

    def __init__(self, generator: TraceGenerator, count: int) -> None:
        self._generator = generator
        self._count = count

    @property
    def count(self) -> int:
        """Record count — the engine layer's trace length hint."""
        return self._count

    def __iter__(self):
        return self._generator.records(self._count)
