"""MMU: TLB plus a hardware page-table walker.

Go flushes every core's TLB before rescheduling (§IV-C) — the TLB is
volatile state the EP-cut deliberately does *not* save, because the page
tables it caches live in persistent memory and can simply be re-walked.
The walker here issues real reads through the owning address space, so
walk latency lands on whichever memory the tables live in (OC-PMEM for
PecOS, DRAM for LegacyPC).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.pecos.vm import AddressSpace, PAGE_BYTES, PageFault
from repro.sim.stats import RatioStat

__all__ = ["MMU", "TLB", "TLBConfig"]


@dataclass(frozen=True)
class TLBConfig:
    """Geometry and timing of one TLB."""

    entries: int = 32
    hit_ns: float = 0.6
    #: charged per page-table level on a walk, on top of the memory reads
    walk_step_ns: float = 2.0


class TLB:
    """Fully-associative, LRU, ASID-tagged translation cache."""

    def __init__(self, config: Optional[TLBConfig] = None) -> None:
        self.config = config or TLBConfig()
        #: (asid, vpn) -> frame base
        self._entries: OrderedDict[tuple[int, int], int] = OrderedDict()
        self.stats = RatioStat()
        self.flushes = 0

    def lookup(self, asid: int, va: int) -> Optional[int]:
        key = (asid, va // PAGE_BYTES)
        frame = self._entries.get(key)
        if frame is not None:
            self._entries.move_to_end(key)
            self.stats.record(True)
            return frame | (va % PAGE_BYTES)
        self.stats.record(False)
        return None

    def fill(self, asid: int, va: int, pa: int) -> None:
        key = (asid, va // PAGE_BYTES)
        if key not in self._entries and \
                len(self._entries) >= self.config.entries:
            self._entries.popitem(last=False)
        self._entries[key] = pa & ~(PAGE_BYTES - 1)
        self._entries.move_to_end(key)

    def flush(self, asid: Optional[int] = None) -> int:
        """Invalidate everything (or one ASID); returns entries dropped."""
        self.flushes += 1
        if asid is None:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped
        doomed = [k for k in self._entries if k[0] == asid]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    @property
    def hit_ratio(self) -> float:
        return self.stats.ratio

    @property
    def occupancy(self) -> int:
        return len(self._entries)


class MMU:
    """Per-core MMU: TLB front, hardware walker behind.

    ``translate`` returns ``(pa, cost_ns)`` where the cost covers the TLB
    probe and, on a miss, the walk — whose memory reads were actually
    issued against the address space's backend, so walk traffic shows up
    in the memory subsystem's counters like any other reads.
    """

    LEVELS = 3

    def __init__(self, config: Optional[TLBConfig] = None) -> None:
        self.tlb = TLB(config)
        self.walks = 0
        self.faults = 0

    def translate(self, space: AddressSpace, va: int,
                  want: int = 0x2) -> tuple[int, float]:
        cfg = self.tlb.config
        cached = self.tlb.lookup(space.asid, va)
        if cached is not None:
            return cached, cfg.hit_ns
        self.walks += 1
        try:
            pa = space.translate(va, want=want)
        except PageFault:
            self.faults += 1
            raise
        self.tlb.fill(space.asid, va, pa)
        cost = cfg.hit_ns + self.LEVELS * cfg.walk_step_ns
        return pa, cost

    def context_switch(self, flush: bool = True) -> None:
        """ASID-less designs flush on every switch; Go always flushes."""
        if flush:
            self.tlb.flush()
