"""Multi-core complex: cores sharing one memory backend + an IPI fabric.

Concurrent execution is simulated by always advancing the core with the
smallest local clock, so backend contention (die occupancy, backpressure)
is observed in a globally consistent time order — the property the
OC-PMEM conflict experiments depend on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Sequence

from repro.cpu.core import Core, CoreConfig, CoreStats
from repro.engine.base import EngineSpec, ExecutionEngine, resolve_engine
from repro.memory.port import MemoryBackend
from repro.pmem.modes import SoftwareOverhead
from repro.sim.stats import StatsRegistry

__all__ = ["ComplexResult", "MultiCoreComplex"]


@dataclass
class ComplexResult:
    """Aggregate outcome of running traces on the complex."""

    wall_ns: float
    per_core: list[CoreStats]
    frequency_ghz: float

    @property
    def wall_cycles(self) -> float:
        return self.wall_ns * self.frequency_ghz

    @property
    def instructions(self) -> int:
        return sum(stats.instructions for stats in self.per_core)

    @property
    def ipc(self) -> float:
        if self.wall_cycles <= 0:
            return 0.0
        return self.instructions / self.wall_cycles

    @property
    def read_stall_ns(self) -> float:
        return sum(stats.read_stall_ns for stats in self.per_core)

    @property
    def memory_stall_fraction(self) -> float:
        total = sum(stats.total_ns for stats in self.per_core)
        if total <= 0:
            return 0.0
        stalls = sum(
            stats.read_stall_ns + stats.write_stall_ns for stats in self.per_core
        )
        return stalls / total


class MultiCoreComplex:
    """N cores over a shared memory backend."""

    def __init__(
        self,
        backend: MemoryBackend,
        cores: int = 8,
        core_config: Optional[CoreConfig] = None,
        overhead: Optional[SoftwareOverhead] = None,
        engine: EngineSpec = None,
    ) -> None:
        if cores <= 0:
            raise ValueError("need at least one core")
        self.backend = backend
        self.core_config = core_config or CoreConfig()
        self.engine = resolve_engine(engine)
        self.cores = [
            Core(i, backend, self.core_config, overhead, engine=self.engine)
            for i in range(cores)
        ]
        self._ipi_handlers: dict[int, Callable[[int, object], None]] = {}

    def set_engine(self, engine: EngineSpec) -> ExecutionEngine:
        """Repoint every core at ``engine``; returns the resolved engine."""
        self.engine = resolve_engine(engine)
        for core in self.cores:
            core.engine = self.engine
        return self.engine

    # -- workload execution ------------------------------------------------------

    def run_traces(
        self,
        traces: Sequence[Iterable],
        start_ns: float = 0.0,
    ) -> ComplexResult:
        """Execute one trace per thread, threads round-robin over cores.

        Each trace yields records with ``instructions``, ``address``,
        ``is_write`` attributes.  Cores advance in global-time order so
        shared-backend contention is causally consistent.
        """
        iterators: list[tuple[Core, int, Iterator]] = []
        for thread_id, trace in enumerate(traces):
            core = self.cores[thread_id % len(self.cores)]
            iterators.append((core, thread_id, iter(trace)))
        for core in self.cores:
            core.now = start_ns
        consumed = [0] * len(iterators)

        # (core-local time, sequence) heap keyed on the owning core's clock.
        heap: list[tuple[float, int]] = [
            (entry[0].now, idx) for idx, entry in enumerate(iterators)
        ]
        heapq.heapify(heap)
        while heap:
            if len(heap) == 1:
                # Single survivor: no cross-core ordering left to respect,
                # so hand the tail to the execution engine — the exact
                # engines drain it in batched windows (identical
                # accounting, amortized dispatch); the epoch engine may
                # additionally skip steady-state windows analytically.
                _, idx = heap[0]
                core, thread_id, records = iterators[idx]
                core.engine.drain(
                    core, records, thread_id,
                    source=traces[idx], consumed=consumed[idx],
                )
                break
            _, idx = heapq.heappop(heap)
            core, thread_id, records = iterators[idx]
            record = next(records, None)
            if record is None:
                continue
            consumed[idx] += 1
            core.execute(
                record.instructions, record.address, record.is_write, thread_id
            )
            heapq.heappush(heap, (core.now, idx))

        wall = max((core.now for core in self.cores), default=start_ns)
        return ComplexResult(
            wall_ns=wall - start_ns,
            per_core=[core.stats for core in self.cores],
            frequency_ghz=self.core_config.frequency_ghz,
        )

    # -- observability -----------------------------------------------------------

    def register_stats(self, stats: StatsRegistry) -> None:
        """Publish every core's stats as ``core<i>`` under this scope."""
        for core in self.cores:
            core.register_stats(stats.scoped(f"core{core.core_id}"))

    # -- SnG hooks ------------------------------------------------------------------

    def dirty_line_counts(self) -> list[int]:
        """Per-core dirty D$ lines (what an EP-cut cache dump must flush)."""
        return [core.cache.dirty_count() for core in self.cores]

    def flush_all_caches(self) -> int:
        """Dump every core's cache; returns total lines written back."""
        return sum(core.flush_cache()[0] for core in self.cores)

    # -- IPI fabric --------------------------------------------------------------------

    def register_ipi_handler(
        self, core_id: int, handler: Callable[[int, object], None]
    ) -> None:
        if not 0 <= core_id < len(self.cores):
            raise ValueError(f"no core {core_id}")
        self._ipi_handlers[core_id] = handler

    def send_ipi(self, source: int, target: int, payload: object = None) -> None:
        handler = self._ipi_handlers.get(target)
        if handler is None:
            raise RuntimeError(f"core {target} has no IPI handler registered")
        handler(source, payload)
