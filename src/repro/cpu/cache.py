"""Set-associative write-back data cache.

Table I configures 16 KB I$/D$ per core on the prototype's RV64 cores.
The D$ is modelled in full (it decides which accesses reach the memory
subsystem and, crucially for the paper, which dirty lines must be flushed
at the EP-cut).  Instruction fetch is folded into the core's base CPI —
the evaluation's memory behaviour is data-side.

Write policy is write-back/write-allocate: stores dirty a line, evicted
dirty lines become memory writes, and :meth:`flush_dirty` (SnG's cache
dump) returns every dirty line so the caller can charge per-line flush
costs and write them to OC-PMEM.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.memory.request import CACHELINE_BYTES
from repro.sim.stats import RatioStat, StatsRegistry

__all__ = ["Cache", "CacheConfig"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache."""

    size_bytes: int = 16 * 1024
    ways: int = 4
    line_bytes: int = CACHELINE_BYTES
    #: Hit service time in nanoseconds (L1 speed at the ASIC target).
    hit_ns: float = 1.25

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes):
            raise ValueError("cache size must divide into ways * line size")

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)

    @property
    def lines(self) -> int:
        return self.size_bytes // self.line_bytes


class Cache:
    """One write-back cache with true-LRU replacement."""

    def __init__(self, config: Optional[CacheConfig] = None, name: str = "d$") -> None:
        self.config = config or CacheConfig()
        self.name = name
        # per-set OrderedDict: tag -> dirty flag, LRU at the front
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.config.sets)
        ]
        self.read_hits = RatioStat()
        self.write_hits = RatioStat()
        self.evictions = 0
        self.dirty_evictions = 0

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self.config.line_bytes
        return line % self.config.sets, line // self.config.sets

    def access(self, address: int, is_write: bool) -> tuple[bool, Optional[int]]:
        """Look up (and allocate) a line.

        Returns ``(hit, victim_address)`` where ``victim_address`` is the
        base address of a dirty line evicted to make room, or None.
        """
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        stats = self.write_hits if is_write else self.read_hits
        victim_address: Optional[int] = None
        if tag in ways:
            dirty = ways.pop(tag)
            ways[tag] = dirty or is_write
            stats.record(True)
            return True, None
        stats.record(False)
        if len(ways) >= self.config.ways:
            victim_tag, victim_dirty = ways.popitem(last=False)
            self.evictions += 1
            if victim_dirty:
                self.dirty_evictions += 1
                victim_line = victim_tag * self.config.sets + set_index
                victim_address = victim_line * self.config.line_bytes
        ways[tag] = is_write
        return False, victim_address

    def dirty_lines(self) -> list[int]:
        """Base addresses of all dirty lines (what a cache dump must write)."""
        out = []
        for set_index, ways in enumerate(self._sets):
            for tag, dirty in ways.items():
                if dirty:
                    line = tag * self.config.sets + set_index
                    out.append(line * self.config.line_bytes)
        return out

    def flush_dirty(self) -> list[int]:
        """Write back every dirty line; returns their base addresses."""
        flushed = self.dirty_lines()
        for ways in self._sets:
            for tag in list(ways):
                ways[tag] = False
        return flushed

    def invalidate_all(self) -> None:
        for ways in self._sets:
            ways.clear()

    def reset_stats(self) -> None:
        """Zero the hit/eviction counters (contents stay resident) —
        used to measure steady-state ratios after a warmup pass."""
        self.read_hits = RatioStat()
        self.write_hits = RatioStat()
        self.evictions = 0
        self.dirty_evictions = 0

    def dirty_count(self) -> int:
        return sum(1 for ways in self._sets for d in ways.values() if d)

    @property
    def occupancy(self) -> int:
        return sum(len(ways) for ways in self._sets)

    @property
    def read_hit_ratio(self) -> float:
        return self.read_hits.ratio

    @property
    def write_hit_ratio(self) -> float:
        return self.write_hits.ratio

    def register_stats(self, stats: StatsRegistry) -> None:
        """Publish hit/eviction stats under this scope.

        Sources are lambdas (not the objects) because
        :meth:`reset_stats` replaces the accumulators wholesale.
        """
        stats.register("read_hits", lambda: self.read_hits)
        stats.register("write_hits", lambda: self.write_hits)
        stats.register("evictions", lambda: self.evictions)
        stats.register("dirty_evictions", lambda: self.dirty_evictions)
        stats.register("occupancy", lambda: self.occupancy)
