"""Processor substrate: caches, core timing, multi-core complex."""

from repro.cpu.cache import Cache, CacheConfig
from repro.cpu.complex import ComplexResult, MultiCoreComplex
from repro.cpu.core import Core, CoreConfig, CoreStats
from repro.cpu.mmu import MMU, TLB, TLBConfig

__all__ = [
    "Cache",
    "CacheConfig",
    "ComplexResult",
    "Core",
    "CoreConfig",
    "CoreStats",
    "MMU",
    "MultiCoreComplex",
    "TLB",
    "TLBConfig",
]
