"""Core timing model: trace-driven execution with stall accounting.

The prototype CPU is an octa-core out-of-order RV64 (SonicBOOM) at
1.6 GHz (ASIC timing; 0.4 GHz on the FPGA).  The evaluation consumes
cycles, IPC, and memory-stall breakdowns — not pipeline detail — so the
core model is a calibrated accounting machine:

* non-memory work advances time at ``base_cpi`` cycles per instruction;
* D$ hits cost the cache hit time;
* read misses stall the core for the memory latency minus an
  out-of-order overlap window (MLP tolerance);
* write misses are mostly absorbed by the store buffer — only a fraction
  of the fill latency is exposed — and dirty evictions are posted writes
  that stall only on backpressure;
* the mode's software overhead (DAX/PMDK costs) is charged per access.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional

from repro.cpu.cache import Cache, CacheConfig
from repro.engine.base import EngineSpec, resolve_engine
from repro.memory.extent import FlushReport
from repro.memory.port import MemoryBackend
from repro.memory.request import MemoryOp, RequestPool
from repro.pmem.modes import SoftwareOverhead
from repro.sim.stats import StatsRegistry

__all__ = ["Core", "CoreConfig", "CoreStats"]


@dataclass(frozen=True)
class CoreConfig:
    """Timing parameters of one core (Table I)."""

    frequency_ghz: float = 1.6
    #: CPI of non-memory work, I$ effects folded in.
    base_cpi: float = 1.25
    #: Miss latency the OoO window hides per read miss.
    overlap_ns: float = 14.0
    #: Fraction of a write-miss line fill exposed past the store buffer.
    write_miss_expose: float = 0.3
    cache: CacheConfig = CacheConfig()

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.frequency_ghz

    def cycles(self, ns: float) -> float:
        return ns / self.cycle_ns


@dataclass
class CoreStats:
    """Cycle/stall accounting for one core."""

    instructions: int = 0
    reads: int = 0
    writes: int = 0
    compute_ns: float = 0.0
    read_stall_ns: float = 0.0
    write_stall_ns: float = 0.0
    software_ns: float = 0.0
    evictions: int = 0

    @property
    def total_ns(self) -> float:
        return (
            self.compute_ns + self.read_stall_ns + self.write_stall_ns
            + self.software_ns
        )

    def ipc(self, frequency_ghz: float) -> float:
        if self.total_ns <= 0:
            return 0.0
        cycles = self.total_ns * frequency_ghz
        return self.instructions / cycles

    def memory_stall_fraction(self) -> float:
        total = self.total_ns
        if total <= 0:
            return 0.0
        return (self.read_stall_ns + self.write_stall_ns) / total


class Core:
    """One core executing a memory-reference trace against a backend."""

    def __init__(
        self,
        core_id: int,
        backend: MemoryBackend,
        config: Optional[CoreConfig] = None,
        overhead: Optional[SoftwareOverhead] = None,
        engine: EngineSpec = None,
    ) -> None:
        self.core_id = core_id
        self.config = config or CoreConfig()
        self.backend = backend
        self.overhead = overhead or SoftwareOverhead()
        #: how this core drains traces and dumps its cache — see
        #: :mod:`repro.engine`; ``None`` selects the process default
        self.engine = resolve_engine(engine)
        self.cache = Cache(self.config.cache, name=f"core{core_id}.d$")
        self.stats = CoreStats()
        self.now = 0.0
        self._flush_debt = 0.0
        self._pool = RequestPool()
        #: the last cache dump's :class:`FlushReport` (None before any)
        self.last_flush_report: Optional[FlushReport] = None

    def execute(self, instructions: int, address: int, is_write: bool,
                thread_id: int = 0) -> float:
        """Run ``instructions`` of compute then one memory access.

        Returns the core-local time after the access completes.
        """
        cfg = self.config
        if instructions:
            compute = instructions * cfg.base_cpi * cfg.cycle_ns
            self.now += compute
            self.stats.compute_ns += compute
            self.stats.instructions += instructions
        self.stats.instructions += 1  # the memory instruction itself
        if is_write:
            self.stats.writes += 1
            self._charge_software(self.overhead.write_cost())
        else:
            self.stats.reads += 1
            self._charge_software(self.overhead.read_cost())

        if is_write and self.overhead.extra_flush_writes > 0:
            # pmem_persist-style flushes push the dirtied line straight to
            # the memory subsystem (trans-mode's durable stores).
            self._flush_debt += (
                self.overhead.extra_flush_writes * self.overhead.coverage
            )
            while self._flush_debt >= 1.0:
                self._flush_debt -= 1.0
                self._write_back(address - address % 64, thread_id)

        hit, victim = self.cache.access(address, is_write)
        if hit:
            self.now += cfg.cache.hit_ns
            return self.now

        # Miss: line fill from the backend.  The request comes from the
        # pool and is recycled once the latency is read; on a backend
        # exception it stays referenced by the failure's response prefix.
        request = self._pool.acquire(
            MemoryOp.READ, address, self.now, thread_id
        )
        response = self.backend.access(request)
        fill_latency = response.latency
        self._pool.release(request)
        if is_write:
            exposed = max(0.0, fill_latency - cfg.overlap_ns)
            stall = exposed * cfg.write_miss_expose
            self.stats.write_stall_ns += stall
        else:
            stall = max(cfg.cache.hit_ns, fill_latency - cfg.overlap_ns)
            self.stats.read_stall_ns += stall
        self.now += stall

        if victim is not None:
            self._write_back(victim, thread_id)
        return self.now

    def execute_window(self, records, thread_id: int = 0) -> float:
        """Execute a run of trace records with per-record overhead hoisted.

        Observationally identical to calling :meth:`execute` once per
        record — same clock arithmetic, same cache and backend side
        effects in the same order — but the config lookups, software-cost
        products, cache locate math and stats increments are amortized
        over the window.  Core timing is sequentially dependent (each
        stall moves ``now`` for the next access), so misses still reach
        the backend one at a time; the batch win here is pure dispatch
        overhead.  Clock and counters are written back even when the
        backend raises mid-window (power-failure injection), leaving
        exactly the scalar prefix state.
        """
        cfg = self.config
        base_cpi = cfg.base_cpi
        cycle_ns = cfg.cycle_ns
        overlap_ns = cfg.overlap_ns
        expose = cfg.write_miss_expose
        hit_ns = cfg.cache.hit_ns
        overhead = self.overhead
        read_cost = overhead.read_cost()
        write_cost = overhead.write_cost()
        extra_flush = overhead.extra_flush_writes
        flush_step = overhead.extra_flush_writes * overhead.coverage
        cache = self.cache
        cache_config = cache.config
        cache_sets = cache._sets
        n_sets = cache_config.sets
        line_bytes = cache_config.line_bytes
        assoc = cache_config.ways
        backend_access = self.backend.access
        acquire = self._pool.acquire
        release = self._pool.release
        read_op = MemoryOp.READ
        write_op = MemoryOp.WRITE
        stats = self.stats
        now = self.now
        flush_debt = self._flush_debt
        compute_ns = stats.compute_ns
        software_ns = stats.software_ns
        read_stall_ns = stats.read_stall_ns
        write_stall_ns = stats.write_stall_ns
        instr_count = 0
        reads = 0
        writes = 0
        evictions = 0
        read_hit_hits = 0
        read_hit_total = 0
        write_hit_hits = 0
        write_hit_total = 0
        cache_evictions = 0
        cache_dirty_evictions = 0
        try:
            for record in records:
                instructions = record.instructions
                address = record.address
                is_write = record.is_write
                if instructions:
                    compute = instructions * base_cpi * cycle_ns
                    now += compute
                    compute_ns += compute
                    instr_count += instructions
                instr_count += 1
                if is_write:
                    writes += 1
                    if write_cost > 0:
                        now += write_cost
                        software_ns += write_cost
                    if extra_flush > 0:
                        flush_debt += flush_step
                        while flush_debt >= 1.0:
                            flush_debt -= 1.0
                            evictions += 1
                            request = acquire(
                                write_op, address - address % 64, now,
                                thread_id,
                            )
                            response = backend_access(request)
                            release(request)
                            blocked = response.blocked_ns
                            if blocked > 0:
                                write_stall_ns += blocked
                                now += blocked
                else:
                    reads += 1
                    if read_cost > 0:
                        now += read_cost
                        software_ns += read_cost
                line = address // line_bytes
                set_index = line % n_sets
                ways = cache_sets[set_index]
                tag = line // n_sets
                if tag in ways:
                    dirty = ways.pop(tag)
                    ways[tag] = dirty or is_write
                    if is_write:
                        write_hit_hits += 1
                        write_hit_total += 1
                    else:
                        read_hit_hits += 1
                        read_hit_total += 1
                    now += hit_ns
                    continue
                if is_write:
                    write_hit_total += 1
                else:
                    read_hit_total += 1
                victim_address = None
                if len(ways) >= assoc:
                    victim_tag, victim_dirty = ways.popitem(last=False)
                    cache_evictions += 1
                    if victim_dirty:
                        cache_dirty_evictions += 1
                        victim_address = (
                            victim_tag * n_sets + set_index
                        ) * line_bytes
                ways[tag] = is_write
                request = acquire(read_op, address, now, thread_id)
                response = backend_access(request)
                fill_latency = response.complete_time - now
                release(request)
                if is_write:
                    exposed = fill_latency - overlap_ns
                    if exposed < 0.0:
                        exposed = 0.0
                    stall = exposed * expose
                    write_stall_ns += stall
                else:
                    fill_stall = fill_latency - overlap_ns
                    stall = hit_ns if hit_ns >= fill_stall else fill_stall
                    read_stall_ns += stall
                now += stall
                if victim_address is not None:
                    evictions += 1
                    request = acquire(
                        write_op, victim_address, now, thread_id
                    )
                    response = backend_access(request)
                    release(request)
                    blocked = response.blocked_ns
                    if blocked > 0:
                        write_stall_ns += blocked
                        now += blocked
        finally:
            self.now = now
            self._flush_debt = flush_debt
            stats.compute_ns = compute_ns
            stats.software_ns = software_ns
            stats.read_stall_ns = read_stall_ns
            stats.write_stall_ns = write_stall_ns
            stats.instructions += instr_count
            stats.reads += reads
            stats.writes += writes
            stats.evictions += evictions
            cache.read_hits.record_many(read_hit_hits, read_hit_total)
            cache.write_hits.record_many(write_hit_hits, write_hit_total)
            cache.evictions += cache_evictions
            cache.dirty_evictions += cache_dirty_evictions
        return now

    def _write_back(self, address: int, thread_id: int) -> None:
        """Posted dirty-line write-back; stalls only on backpressure."""
        self.stats.evictions += 1
        request = self._pool.acquire(
            MemoryOp.WRITE, address, self.now, thread_id
        )
        response = self.backend.access(request)
        self._pool.release(request)
        if response.blocked_ns > 0:
            self.stats.write_stall_ns += response.blocked_ns
            self.now += response.blocked_ns

    def _charge_software(self, ns: float) -> None:
        if ns > 0:
            self.now += ns
            self.stats.software_ns += ns

    def flush_cache(self) -> tuple[int, list[int]]:
        """Dump the D$: write back all dirty lines; returns (count, addrs).

        How the write-backs reach the port (scalar loop, one request
        window, closed-form extent flush) is the engine's choice — the
        cut semantics (all lines, one clock) are not.
        """
        return self.engine.flush_cache(self)

    def register_stats(self, stats: StatsRegistry) -> None:
        """Publish execution counters and the D$ under this scope."""
        stats.register("exec", lambda: asdict(self.stats))
        self.cache.register_stats(stats.scoped("dcache"))
