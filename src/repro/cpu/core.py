"""Core timing model: trace-driven execution with stall accounting.

The prototype CPU is an octa-core out-of-order RV64 (SonicBOOM) at
1.6 GHz (ASIC timing; 0.4 GHz on the FPGA).  The evaluation consumes
cycles, IPC, and memory-stall breakdowns — not pipeline detail — so the
core model is a calibrated accounting machine:

* non-memory work advances time at ``base_cpi`` cycles per instruction;
* D$ hits cost the cache hit time;
* read misses stall the core for the memory latency minus an
  out-of-order overlap window (MLP tolerance);
* write misses are mostly absorbed by the store buffer — only a fraction
  of the fill latency is exposed — and dirty evictions are posted writes
  that stall only on backpressure;
* the mode's software overhead (DAX/PMDK costs) is charged per access.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional

from repro.cpu.cache import Cache, CacheConfig
from repro.memory.port import MemoryBackend
from repro.memory.request import MemoryOp, MemoryRequest
from repro.pmem.modes import SoftwareOverhead
from repro.sim.stats import StatsRegistry

__all__ = ["Core", "CoreConfig", "CoreStats"]


@dataclass(frozen=True)
class CoreConfig:
    """Timing parameters of one core (Table I)."""

    frequency_ghz: float = 1.6
    #: CPI of non-memory work, I$ effects folded in.
    base_cpi: float = 1.25
    #: Miss latency the OoO window hides per read miss.
    overlap_ns: float = 14.0
    #: Fraction of a write-miss line fill exposed past the store buffer.
    write_miss_expose: float = 0.3
    cache: CacheConfig = CacheConfig()

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.frequency_ghz

    def cycles(self, ns: float) -> float:
        return ns / self.cycle_ns


@dataclass
class CoreStats:
    """Cycle/stall accounting for one core."""

    instructions: int = 0
    reads: int = 0
    writes: int = 0
    compute_ns: float = 0.0
    read_stall_ns: float = 0.0
    write_stall_ns: float = 0.0
    software_ns: float = 0.0
    evictions: int = 0

    @property
    def total_ns(self) -> float:
        return (
            self.compute_ns + self.read_stall_ns + self.write_stall_ns
            + self.software_ns
        )

    def ipc(self, frequency_ghz: float) -> float:
        if self.total_ns <= 0:
            return 0.0
        cycles = self.total_ns * frequency_ghz
        return self.instructions / cycles

    def memory_stall_fraction(self) -> float:
        total = self.total_ns
        if total <= 0:
            return 0.0
        return (self.read_stall_ns + self.write_stall_ns) / total


class Core:
    """One core executing a memory-reference trace against a backend."""

    def __init__(
        self,
        core_id: int,
        backend: MemoryBackend,
        config: Optional[CoreConfig] = None,
        overhead: Optional[SoftwareOverhead] = None,
    ) -> None:
        self.core_id = core_id
        self.config = config or CoreConfig()
        self.backend = backend
        self.overhead = overhead or SoftwareOverhead()
        self.cache = Cache(self.config.cache, name=f"core{core_id}.d$")
        self.stats = CoreStats()
        self.now = 0.0
        self._flush_debt = 0.0

    def execute(self, instructions: int, address: int, is_write: bool,
                thread_id: int = 0) -> float:
        """Run ``instructions`` of compute then one memory access.

        Returns the core-local time after the access completes.
        """
        cfg = self.config
        if instructions:
            compute = instructions * cfg.base_cpi * cfg.cycle_ns
            self.now += compute
            self.stats.compute_ns += compute
            self.stats.instructions += instructions
        self.stats.instructions += 1  # the memory instruction itself
        if is_write:
            self.stats.writes += 1
            self._charge_software(self.overhead.write_cost())
        else:
            self.stats.reads += 1
            self._charge_software(self.overhead.read_cost())

        if is_write and self.overhead.extra_flush_writes > 0:
            # pmem_persist-style flushes push the dirtied line straight to
            # the memory subsystem (trans-mode's durable stores).
            self._flush_debt += (
                self.overhead.extra_flush_writes * self.overhead.coverage
            )
            while self._flush_debt >= 1.0:
                self._flush_debt -= 1.0
                self._write_back(address - address % 64, thread_id)

        hit, victim = self.cache.access(address, is_write)
        if hit:
            self.now += cfg.cache.hit_ns
            return self.now

        # Miss: line fill from the backend.
        response = self.backend.access(
            MemoryRequest(
                op=MemoryOp.READ, address=address, time=self.now,
                thread_id=thread_id,
            )
        )
        fill_latency = response.latency
        if is_write:
            exposed = max(0.0, fill_latency - cfg.overlap_ns)
            stall = exposed * cfg.write_miss_expose
            self.stats.write_stall_ns += stall
        else:
            stall = max(cfg.cache.hit_ns, fill_latency - cfg.overlap_ns)
            self.stats.read_stall_ns += stall
        self.now += stall

        if victim is not None:
            self._write_back(victim, thread_id)
        return self.now

    def _write_back(self, address: int, thread_id: int) -> None:
        """Posted dirty-line write-back; stalls only on backpressure."""
        self.stats.evictions += 1
        response = self.backend.access(
            MemoryRequest(
                op=MemoryOp.WRITE, address=address, time=self.now,
                thread_id=thread_id,
            )
        )
        if response.blocked_ns > 0:
            self.stats.write_stall_ns += response.blocked_ns
            self.now += response.blocked_ns

    def _charge_software(self, ns: float) -> None:
        if ns > 0:
            self.now += ns
            self.stats.software_ns += ns

    def flush_cache(self) -> tuple[int, list[int]]:
        """Dump the D$: write back all dirty lines; returns (count, addrs)."""
        dirty = self.cache.flush_dirty()
        for address in dirty:
            self.backend.access(
                MemoryRequest(op=MemoryOp.WRITE, address=address, time=self.now)
            )
        return len(dirty), dirty

    def register_stats(self, stats: StatsRegistry) -> None:
        """Publish execution counters and the D$ under this scope."""
        stats.register("exec", lambda: asdict(self.stats))
        self.cache.register_stats(stats.scoped("dcache"))
