"""Persistent Support Module (paper §V-A, Fig. 12).

The PSM sits between the processor's memory bus (AXI in the prototype) and
the Bare-NVDIMM channels, exposing four ports — read, write, flush, reset —
and implementing everything the removed DIMM firmware used to do, but with
as little volatile state as the OS can flush inside a power hold-up window:

* **wear leveling** — Start-Gap with a static randomizer; its <64 B
  register file is part of the EP-cut.
* **row buffers** — one write-aggregation buffer per (DIMM, CE group);
  consecutive writes to the open page are absorbed at BRAM speed, and a
  closing page drains its dirty lines to the dies in the background.
* **early-return writes** — the processor observes only the port
  handshake; programming (and the PRAM core's cooling) proceeds in the
  background.  Only a flush (cache dump / memory fence) waits it out.
* **non-blocking reads** — a read whose target die is busy programming is
  served by reading the *sibling* die, which co-locates the line's other
  half and the XOR parity, and regenerating the missing half in one
  combinational XOR (XCC).  This removes the read-after-write
  head-of-line blocking that cripples the baseline.
* **error containment** — a die whose media ECC flags a slot makes the PSM
  regenerate the data from the sibling; if both slots are flagged the
  response carries the containment bit and the host raises an MCE
  (optionally, the future-work symbol ECC gets a chance first).

Two modelling choices worth flagging (also in DESIGN.md):

1. A line's two halves live on the two dies of a dual-channel group, each
   die co-locating the 32 B XOR parity with its half — this is how we read
   the paper's "2x capacity" Bare-NVDIMM provisioning, and it makes a
   single surviving die sufficient to regenerate the whole line.
2. When LightPC drains a row buffer, the per-die programming operations
   are *staggered* (pipelined) so that at most one die of a group is
   programming at any instant; the sibling die therefore stays readable
   and reconstruction is always possible.  The baseline (LightPC-B)
   programs both halves in parallel like a conventional controller, which
   is exactly what creates its head-of-line blocking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.memory.batch import (
    BatchRequests,
    BatchResponses,
    RequestWindow,
    ResponseWindow,
    default_access_batch,
)
from repro.memory.device import PRAMTiming
from repro.memory.extent import (
    Extent,
    FlushReport,
    default_flush_extents,
    report_from_responses,
    window_from_extents,
)
from repro.memory.port import PowerPart
from repro.memory.request import (
    AddressSpaceError,
    CACHELINE_BYTES,
    MemoryOp,
    MemoryRequest,
    MemoryResponse,
)
from repro.memory.rowbuffer import WriteAggregationBuffer
from repro import _np as _nphelper
from repro.ocpmem.columnar import psm_access_window
from repro.ocpmem.ecc import SymbolECC, XORCodec
from repro.ocpmem.nvdimm import BareNVDIMM, Layout
from repro.ocpmem.wear import StartGap
from repro.sim.stats import LatencyStats, RatioStat, StatsRegistry

__all__ = ["PSM", "PSMConfig", "MachineCheckError"]

_HALF = 32


class MachineCheckError(RuntimeError):
    """Host-side MCE raised on an uncorrectable, contained error."""


@dataclass(frozen=True)
class PSMConfig:
    """PSM feature knobs and timing constants.

    ``LightPC`` is the full design; ``LightPC-B`` disables the advanced
    PRAM management (aggregation, early return, reconstruction) while
    keeping the open-channel datapath.
    """

    dimms: int = 6
    lines_per_dimm: int = 1 << 14
    layout: Layout = "dual_channel"
    #: AXI port handshake cost, each direction.
    port_ns: float = 5.0
    #: Row-buffer (BRAM) access latency.
    buffer_ns: float = 4.0
    #: One combinational XOR decode cycle at the 1.6 GHz ASIC target.
    xor_decode_ns: float = 0.625
    #: Burst continuation cost of the second 32 B beat of a reconstruction
    #: read (the sibling die streams half + parity in one pipelined burst).
    reconstruct_extra_ns: float = 15.0
    write_aggregation: bool = True
    early_return_writes: bool = True
    ecc_reconstruction: bool = True
    #: Per-group media backlog past which write acceptance stalls.
    write_backlog_limit_ns: float = 6_000.0
    wear_threshold: int = 100
    wear_seed: int = 0x5EED
    #: Randomizer granularity in lines; 64 = one 4 KB page, preserving the
    #: intra-page adjacency the row buffers and channel interleaving need.
    wear_randomize_unit: int = 64
    rotate_seed_every: Optional[int] = None
    #: override the PRAM die timing (sensitivity sweeps); None = default
    pram_timing: Optional["PRAMTiming"] = None
    #: Engage the future-work symbol ECC when XCC cannot recover.
    symbol_ecc: bool = False

    @property
    def total_lines(self) -> int:
        return self.dimms * self.lines_per_dimm

    @classmethod
    def lightpc(cls, **overrides) -> "PSMConfig":
        return cls(**overrides)

    @classmethod
    def lightpc_b(cls, **overrides) -> "PSMConfig":
        overrides.setdefault("write_aggregation", False)
        overrides.setdefault("early_return_writes", False)
        overrides.setdefault("ecc_reconstruction", False)
        return cls(**overrides)


class PSM:
    """The persistent support module fronting the Bare-NVDIMM channels."""

    def __init__(self, config: Optional[PSMConfig] = None,
                 functional: bool = False) -> None:
        self.config = config or PSMConfig()
        self.functional = functional
        cfg = self.config
        self.nvdimms = [
            BareNVDIMM(cfg.lines_per_dimm, cfg.layout,
                       timing=cfg.pram_timing, dimm_id=i)
            for i in range(cfg.dimms)
        ]
        move_fn = self._move_line if functional else None
        self.wear = StartGap(
            lines=cfg.total_lines - 1,  # one physical spare line
            threshold=cfg.wear_threshold,
            seed=cfg.wear_seed,
            move_fn=move_fn,
            rotate_seed_every=cfg.rotate_seed_every,
            randomize_unit=cfg.wear_randomize_unit,
        )
        self.xcc = XORCodec(half_bytes=_HALF)
        self.symbol_ecc = SymbolECC() if cfg.symbol_ecc else None
        self._buffers: dict[tuple[int, int], WriteAggregationBuffer] = {}
        #: logical line -> (physical, dimm index, local line) memo for the
        #: batch path; valid only while the wear generation is unchanged
        #: (the gap moves every ``wear_threshold`` writes).
        self._translate_memo: dict[int, tuple[int, int, int]] = {}
        self._translate_memo_gen = -1
        #: randomize-unit -> randomized-unit memo for the batch path.  The
        #: Feistel result depends only on the randomizer instance (not on
        #: start/gap), so unlike :attr:`_translate_memo` this survives gap
        #: moves — exactly what makes unique-address flush streams cheap:
        #: one network walk covers ``randomize_unit`` adjacent lines.
        self._unit_memo: dict[int, int] = {}
        self._unit_randomizer: Optional[object] = None
        #: youngest data for lines still sitting in a row buffer
        self._pending: dict[int, bytes] = {}
        #: per-DIMM synchronous (DDR) channel occupancy
        self._channel_busy: dict[int, float] = {}
        self.read_latency = LatencyStats("psm.read")
        self.write_latency = LatencyStats("psm.write")
        self.buffer_hits = RatioStat()
        self.reconstructions = 0
        self.read_blocked_ns = 0.0
        self.write_stall_ns = 0.0
        self.background_ns = 0.0
        self.media_line_writes = 0
        self.mce_count = 0
        self.is_volatile = False

    # -- geometry -------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Host-visible capacity in bytes (logical lines)."""
        return self.wear.lines * CACHELINE_BYTES

    def _route(self, physical_line: int) -> tuple[BareNVDIMM, int]:
        dimm = self.nvdimms[physical_line % len(self.nvdimms)]
        return dimm, physical_line // len(self.nvdimms)

    def _translate(self, address: int) -> tuple[int, BareNVDIMM, int]:
        logical_line = address // CACHELINE_BYTES
        if logical_line >= self.wear.lines:
            raise AddressSpaceError(
                f"address {address:#x} outside OC-PMEM capacity "
                f"{self.capacity:#x}"
            )
        physical_line = self.wear.map(logical_line)
        dimm, local_line = self._route(physical_line)
        return physical_line, dimm, local_line

    def _buffer(self, dimm_id: int, group: int) -> WriteAggregationBuffer:
        key = (dimm_id, group)
        buf = self._buffers.get(key)
        if buf is None:
            buf = WriteAggregationBuffer(
                page_bytes=4096, beat_bytes=CACHELINE_BYTES,
                access_ns=self.config.buffer_ns,
            )
            self._buffers[key] = buf
        return buf

    def _move_line(self, src_physical: int, dst_physical: int) -> None:
        """Start-Gap data movement (functional mode only)."""
        src_dimm, src_line = self._route(src_physical)
        dst_dimm, dst_line = self._route(dst_physical)
        half0, parity = src_dimm.load_slot(src_line, 0)
        half1, _ = src_dimm.load_slot(src_line, 1)
        dst_dimm.store_line(dst_line, half0 + half1)

    # -- boundary ---------------------------------------------------------------

    def access(self, request: MemoryRequest) -> MemoryResponse:
        if request.op is MemoryOp.FLUSH:
            return MemoryResponse(request, complete_time=self.flush(request.time))
        if request.op is MemoryOp.RESET:
            return MemoryResponse(request, complete_time=self.reset(request.time))
        if request.size > CACHELINE_BYTES:
            raise ValueError("PSM boundary is cacheline-granular")
        if request.is_write:
            return self._serve_write(request)
        return self._serve_read(request)

    def access_batch(self, requests: BatchRequests) -> BatchResponses:
        """Serve a whole window with the scalar dispatch inlined.

        Value-identical to looping :meth:`access` (same float expressions
        in the same order).  The wins: logical->physical translation is
        memoized per wear generation instead of re-walking the Feistel
        network per access, per-DIMM channel occupancy and drain maxima
        live in locals (the drain max recomputed only after a die
        actually changed), and latencies/ratios land in the stats via one
        bulk record per batch.  Functional mode and the strawman layout
        keep the scalar loop.
        """
        window = requests if isinstance(requests, RequestWindow) \
            else RequestWindow.from_requests(requests)
        cfg = self.config
        if window is None or self.functional or cfg.layout != "dual_channel":
            return default_access_batch(self, requests)
        if window.size > CACHELINE_BYTES:
            raise ValueError("PSM boundary is cacheline-granular")
        if (
            _nphelper.kernels_enabled()
            and cfg.rotate_seed_every is None
            and not self.wear.track_wear
            and not any(
                die.track_wear for d in self.nvdimms for die in d.dies
            )
        ):
            return psm_access_window(self, window)
        port_ns = cfg.port_ns
        buffer_ns = cfg.buffer_ns
        limit_ns = cfg.write_backlog_limit_ns
        xor_ns = cfg.xor_decode_ns
        extra_ns = cfg.reconstruct_extra_ns
        aggregation = cfg.write_aggregation
        early_return = cfg.early_return_writes
        reconstruction = cfg.ecc_reconstruction
        wear = self.wear
        wear_lines = wear.lines
        record_write = wear.record_write
        nvdimms = self.nvdimms
        n_dimms = len(nvdimms)
        memo = self._translate_memo
        memo_gen = self._translate_memo_gen
        unit_memo = self._unit_memo
        if wear._randomizer is not self._unit_randomizer:
            unit_memo.clear()
            self._unit_randomizer = wear._randomizer
        randomizer_apply = wear._randomizer.apply
        unit_size = wear.randomize_unit
        units = wear._units
        buffers = self._buffers
        pending = self._pending
        ref_timing = nvdimms[0].dies[0].timing
        read_ns = ref_timing.read_ns
        half_occupancy_ns = ref_timing.write_occupancy_ns / 2.0
        channel_col = [
            self._channel_busy.get(d.dimm_id, 0.0) for d in nvdimms
        ]
        drain_cache = [0.0] * n_dimms
        drain_dirty = [True] * n_dimms
        background_ns = self.background_ns
        write_stall_ns = self.write_stall_ns
        read_blocked_ns = self.read_blocked_ns
        buffer_hit_count = 0
        buffer_total = 0
        reconstructions = 0
        addresses = window.addresses
        times = window.times
        is_write = window.is_write
        n = len(addresses)
        complete_col = [0.0] * n
        occupied_col = [0.0] * n
        blocked_col = [0.0] * n
        reconstructed: set[int] = set()
        overrides: Optional[dict[int, MemoryResponse]] = None
        read_latencies: list[float] = []
        write_latencies: list[float] = []
        error: Optional[AddressSpaceError] = None
        capacity = wear_lines * CACHELINE_BYTES
        for index in range(n):
            address = addresses[index]
            time = times[index]
            t = time + port_ns
            logical_line = address // CACHELINE_BYTES
            if logical_line >= wear_lines:
                error = AddressSpaceError(
                    f"address {address:#x} outside OC-PMEM capacity "
                    f"{capacity:#x}"
                )
                break
            generation = wear.generation
            if generation != memo_gen:
                memo.clear()
                memo_gen = generation
                if wear._randomizer is not self._unit_randomizer:
                    # Seed rotation / register restore replaced the
                    # network; plain gap moves keep the unit memo valid.
                    unit_memo.clear()
                    self._unit_randomizer = wear._randomizer
                    randomizer_apply = wear._randomizer.apply
            entry = memo.get(logical_line)
            if entry is None:
                # Inlined StartGap.map with the Feistel walk amortized
                # over the whole randomize unit (value-identical to
                # ``wear.map(logical_line)``).
                unit, offset = divmod(logical_line, unit_size)
                if unit >= units:
                    randomized = logical_line
                else:
                    r = unit_memo.get(unit)
                    if r is None:
                        r = randomizer_apply(unit)
                        unit_memo[unit] = r
                    randomized = r * unit_size + offset
                physical_line = (randomized + wear.start) % wear_lines
                if physical_line >= wear.gap:
                    physical_line += 1
                dimm_index = physical_line % n_dimms
                local_line = physical_line // n_dimms
                memo[logical_line] = (physical_line, dimm_index, local_line)
            else:
                physical_line, dimm_index, local_line = entry
            dimm = nvdimms[dimm_index]
            dies = dimm.dies
            group = local_line % 4
            if is_write[index]:
                background_ns += record_write(logical_line)
                base = group + group
                die0 = dies[base]
                die1 = dies[base + 1]
                b0 = die0.busy_until
                b1 = die1.busy_until
                group_max = b0 if b0 >= b1 else b1
                backlog = group_max - t
                if backlog < 0.0:
                    backlog = 0.0
                channel_wait = channel_col[dimm_index] - t
                if channel_wait < 0.0:
                    channel_wait = 0.0
                if channel_wait > backlog:
                    backlog = channel_wait
                stall = backlog - limit_ns
                if stall > 0.0:
                    t = t + stall
                else:
                    stall = 0.0
                write_stall_ns += stall
                if aggregation:
                    key = (dimm_index, group)
                    buf = buffers.get(key)
                    if buf is None:
                        buf = self._buffer(dimm_index, group)
                    absorbed, to_drain = buf.write(
                        t, local_line * CACHELINE_BYTES
                    )
                    buffer_total += 1
                    if absorbed:
                        buffer_hit_count += 1
                    if to_drain is not None:
                        page, beats = to_drain
                        self._drain_page(t, dimm, group, page, beats)
                        drain_dirty[dimm_index] = True
                    complete = t + buffer_ns + port_ns
                else:
                    channel = channel_col[dimm_index]
                    start = t if t >= channel else channel
                    accept, pulse_end = self._program_line(
                        start, dimm, local_line, physical_line,
                        data=None, staggered=False,
                    )
                    channel_col[dimm_index] = (
                        accept if early_return else pulse_end
                    )
                    drain_dirty[dimm_index] = True
                    complete = accept + port_ns
                if drain_dirty[dimm_index]:
                    dimm_max = 0.0
                    for die in dies:
                        if die.busy_until > dimm_max:
                            dimm_max = die.busy_until
                    drain_cache[dimm_index] = dimm_max
                    drain_dirty[dimm_index] = False
                else:
                    dimm_max = drain_cache[dimm_index]
                write_latencies.append(complete - time)
                complete_col[index] = complete
                occupied_col[index] = (
                    complete if complete >= dimm_max else dimm_max
                )
                blocked_col[index] = stall
                continue
            # -- read --
            if aggregation:
                key = (dimm_index, group)
                buf = buffers.get(key)
                if buf is None:
                    buf = self._buffer(dimm_index, group)
                if buf.read_hit(local_line * CACHELINE_BYTES):
                    complete = t + buffer_ns + port_ns
                    read_latencies.append(complete - time)
                    data = pending.get(physical_line)
                    if data is not None:
                        if overrides is None:
                            overrides = {}
                        overrides[index] = MemoryResponse(
                            window.request_at(index),
                            complete_time=complete,
                            data=data,
                        )
                    complete_col[index] = complete
                    occupied_col[index] = complete
                    continue
            channel_wait = channel_col[dimm_index] - t
            if channel_wait > 0.0:
                read_blocked_ns += channel_wait
                t += channel_wait
            base = group + group
            slot_address = (local_line // 4) * 64
            row = slot_address // 1024
            die0 = dies[base]
            die1 = dies[base + 1]
            b0 = die0.busy_until
            b1 = die1.busy_until
            cool0 = die0._cooling.get(row, 0.0)
            cool1 = die1._cooling.get(row, 0.0)
            until0 = b0 if b0 >= cool0 else cool0
            until1 = b1 if b1 >= cool1 else cool1
            if reconstruction and (t < until0 or t < until1):
                wait0 = until0 - t
                if wait0 < 0.0:
                    wait0 = 0.0
                wait1 = until1 - t
                if wait1 < 0.0:
                    wait1 = 0.0
                if wait0 <= wait1:
                    survivor = die0
                    survivor_wait = wait0
                else:
                    survivor = die1
                    survivor_wait = wait1
                if aggregation:
                    wait = 0.0
                else:
                    wait = survivor_wait if survivor_wait <= \
                        half_occupancy_ns else half_occupancy_ns
                read_blocked_ns += wait
                survivor.read_count += 2
                complete = (
                    t + wait + read_ns + extra_ns + xor_ns + port_ns
                )
                reconstructions += 1
                channel_col[dimm_index] = t + 20.0
                read_latencies.append(complete - time)
                reconstructed.add(index)
                complete_col[index] = complete
                occupied_col[index] = complete
                continue
            wait0 = until0 - t
            if wait0 < 0.0:
                wait0 = 0.0
            wait1 = until1 - t
            if wait1 < 0.0:
                wait1 = 0.0
            wait = wait0 if wait0 >= wait1 else wait1
            read_blocked_ns += wait
            start0 = t
            if b0 > start0:
                start0 = b0
            if cool0 > start0:
                start0 = cool0
            done0 = start0 + read_ns
            die0.busy_until = done0
            die0.read_count += 1
            start1 = t
            if b1 > start1:
                start1 = b1
            if cool1 > start1:
                start1 = cool1
            done1 = start1 + read_ns
            die1.busy_until = done1
            die1.read_count += 1
            drain_dirty[dimm_index] = True
            done = done0 if done0 >= done1 else done1
            complete = done + port_ns
            channel_col[dimm_index] = t + 20.0
            read_latencies.append(complete - time)
            complete_col[index] = complete
            occupied_col[index] = complete
            blocked_col[index] = wait
        self._translate_memo_gen = memo_gen
        channel_busy = self._channel_busy
        for dimm_index in range(n_dimms):
            channel_busy[dimm_index] = channel_col[dimm_index]
        self.background_ns = background_ns
        self.write_stall_ns = write_stall_ns
        self.read_blocked_ns = read_blocked_ns
        self.buffer_hits.record_many(buffer_hit_count, buffer_total)
        self.reconstructions += reconstructions
        if read_latencies:
            self.read_latency.record_many(read_latencies)
        if write_latencies:
            self.write_latency.record_many(write_latencies)
        if error is not None:
            raise error
        return ResponseWindow(
            window, complete_col, occupied_col, blocked_col,
            reconstructed=reconstructed if reconstructed else None,
            overrides=overrides,
        )

    def flush_extents(self, extents: list[Extent], time: float) -> FlushReport:
        """Drain dirty extents through the closed-form write fast path.

        The persistence cut's traffic is all-write, single issue time,
        runs of adjacent lines.  For the shipped configuration
        (aggregating dual-channel PSM, cacheline extents, no seed
        rotation or wear tracing) :meth:`_flush_extents_fast` serves it
        with the whole write pipeline — Start-Gap translation, backlog,
        row-buffer absorption, staggered page drains — inlined into one
        loop, the Feistel walk amortized per randomize unit, and stats
        landed via bulk records.  Sweep configurations lower onto
        :meth:`access_batch`; functional mode and the strawman layout
        keep the scalar loop.  All three are value-identical.  Write-back
        only: the row buffers stay open and programming keeps running in
        the background; SnG's memory synchronization remains a separate
        :meth:`flush` call, exactly as on the scalar path.
        """
        cfg = self.config
        if self.functional or cfg.layout != "dual_channel" or not extents:
            return default_flush_extents(self, extents, time)
        if (
            cfg.write_aggregation
            and cfg.rotate_seed_every is None
            and not self.wear.track_wear
            and all(e.size == CACHELINE_BYTES for e in extents)
            and not any(
                die.track_wear for dimm in self.nvdimms for die in dimm.dies
            )
        ):
            return self._flush_extents_fast(extents, time)
        window = window_from_extents(extents, time)
        if window is None:
            return default_flush_extents(self, extents, time)
        return report_from_responses(
            len(extents), time, self.access_batch(window)
        )

    def _flush_extents_fast(self, extents: list[Extent], time: float) -> FlushReport:
        """One-pass extent drain with the write pipeline fully inlined.

        Value-identical to serving the expanded window through
        :meth:`access_batch` (and therefore to the scalar loop): the same
        float expressions run in the same order for translation, backlog
        stalls, buffer absorption and the staggered page drains
        (:meth:`_drain_page` / :meth:`_program_line` / ``PRAMDevice.write``
        unrolled for the data-less early-return case).  The wins over the
        batched path: no per-line request/response dispatch, the Feistel
        walk runs once per randomize unit and the Start-Gap offsets apply
        incrementally over each extent's run, row-buffer hits skip the
        buffer method calls, and the drain loop touches die state through
        locals.  Preconditions (checked by :meth:`flush_extents`):
        aggregating dual-channel timing mode, cacheline-sized extents, no
        seed rotation, no wear tracing.
        """
        cfg = self.config
        port_ns = cfg.port_ns
        buffer_ns = cfg.buffer_ns
        limit_ns = cfg.write_backlog_limit_ns
        wear = self.wear
        wear_lines = wear.lines
        threshold = wear.threshold
        unit_memo = self._unit_memo
        if wear._randomizer is not self._unit_randomizer:
            unit_memo.clear()
            self._unit_randomizer = wear._randomizer
        randomizer_apply = wear._randomizer.apply
        unit_size = wear.randomize_unit
        units = wear._units
        nvdimms = self.nvdimms
        n_dimms = len(nvdimms)
        dies_col = [dimm.dies for dimm in nvdimms]
        dimm_lines = nvdimms[0].lines
        lines_per_page = 4096 // CACHELINE_BYTES
        buffers = self._buffers
        pending = self._pending
        xcc_encode = self.xcc.encode
        ref_timing = nvdimms[0].dies[0].timing
        service_ns = ref_timing.write_service_ns
        cooling_ns = ref_timing.cooling_ns
        channel_col = [
            self._channel_busy.get(d.dimm_id, 0.0) for d in nvdimms
        ]
        drain_cache = [0.0] * n_dimms
        drain_dirty = [True] * n_dimms
        background_ns = self.background_ns
        write_stall_ns = self.write_stall_ns
        media_line_writes = self.media_line_writes
        buffer_hit_count = 0
        write_count = wear.write_count
        start_reg = wear.start
        gap = wear.gap
        tp = time + port_ns
        n = 0
        for extent in extents:
            n += extent.lines
        complete_col = [0.0] * n
        occupied_col = [0.0] * n
        blocked_col = [0.0] * n
        write_latencies = [0.0] * n
        done = time
        blocked_total = 0.0
        index = 0
        error: Optional[AddressSpaceError] = None
        for extent in extents:
            line = extent.start // CACHELINE_BYTES
            remaining = extent.lines
            while remaining:
                if line >= wear_lines:
                    address = extent.start + (
                        extent.lines - remaining
                    ) * CACHELINE_BYTES
                    error = AddressSpaceError(
                        f"address {address:#x} outside OC-PMEM capacity "
                        f"{wear_lines * CACHELINE_BYTES:#x}"
                    )
                    break
                # One Feistel evaluation covers the run of lines sharing
                # this randomize unit (the scalar loop re-walks it per
                # line); the tail past the permutation domain stays put.
                unit, offset = divmod(line, unit_size)
                if unit >= units:
                    rbase = line - offset
                    span = remaining
                else:
                    r = unit_memo.get(unit)
                    if r is None:
                        r = randomizer_apply(unit)
                        unit_memo[unit] = r
                    rbase = r * unit_size
                    span = unit_size - offset
                    if span > remaining:
                        span = remaining
                cap = wear_lines - line
                if span > cap:
                    span = cap
                for off in range(offset, offset + span):
                    physical = rbase + off + start_reg
                    if physical >= wear_lines:
                        physical -= wear_lines
                    if physical >= gap:
                        physical += 1
                    dimm_index = physical % n_dimms
                    local_line = physical // n_dimms
                    # StartGap.record_write inlined (no rotation, no wear
                    # tracing by precondition); a gap move re-bases the
                    # incremental mapping for the lines that follow it.
                    write_count += 1
                    if write_count % threshold == 0:
                        wear.write_count = write_count
                        background_ns += wear._move_gap()
                        start_reg = wear.start
                        gap = wear.gap
                    dies = dies_col[dimm_index]
                    group = local_line & 3
                    base = group + group
                    die0 = dies[base]
                    die1 = dies[base + 1]
                    b0 = die0.busy_until
                    b1 = die1.busy_until
                    group_max = b0 if b0 >= b1 else b1
                    t = tp
                    backlog = group_max - t
                    if backlog < 0.0:
                        backlog = 0.0
                    channel_wait = channel_col[dimm_index] - t
                    if channel_wait > backlog:
                        backlog = channel_wait
                    stall = backlog - limit_ns
                    if stall > 0.0:
                        t = t + stall
                    else:
                        stall = 0.0
                    write_stall_ns += stall
                    page, beat = divmod(local_line, lines_per_page)
                    buf = buffers.get((dimm_index, group))
                    if buf is None:
                        buf = self._buffer(dimm_index, group)
                    open_page = buf._open
                    if open_page is not None and open_page.page == page:
                        # Row-buffer absorption with the buffer write
                        # unrolled (same stats, same dirty-beat state).
                        open_page.dirty.add(beat)
                        stats = buf.stats
                        stats.total += 1
                        stats.hits += 1
                        buffer_hit_count += 1
                    else:
                        # Page transition: the buffer method handles the
                        # close/open bookkeeping (rare — once per page).
                        _absorbed, to_drain = buf.write(
                            t, local_line * CACHELINE_BYTES
                        )
                        if to_drain is not None:
                            # _drain_page/_program_line/PRAMDevice.write
                            # inlined for the staggered data-less case:
                            # the drained page's beats share one cooling
                            # row and this buffer's CE group.
                            dpage, beats = to_drain
                            td = t
                            dl_base = dpage * lines_per_page
                            row = dpage
                            for beat_i in sorted(beats):
                                dl = dl_base + beat_i
                                if dl >= dimm_lines:
                                    continue
                                media_line_writes += 1
                                if pending:
                                    data = pending.pop(
                                        dl * n_dimms + dimm_index, None
                                    )
                                    if data is not None:
                                        xcc_encode(
                                            data[:_HALF], data[_HALF:]
                                        )
                                        nvdimms[dimm_index].store_line(
                                            dl, data
                                        )
                                b = die0.busy_until
                                cooling = die0._cooling
                                cool = cooling.get(row, 0.0)
                                s = td if td >= b else b
                                if cool > s:
                                    s = cool
                                p0 = s + service_ns
                                die0.busy_until = p0
                                if len(cooling) > 64:
                                    cooling = {
                                        rr: tt for rr, tt in cooling.items()
                                        if tt > td
                                    }
                                    die0._cooling = cooling
                                cooling[row] = p0 + cooling_ns
                                die0.write_count += 1
                                # sibling die staggered: issues once the
                                # first pulse ends
                                b = die1.busy_until
                                cooling = die1._cooling
                                cool = cooling.get(row, 0.0)
                                s = p0 if p0 >= b else b
                                if cool > s:
                                    s = cool
                                p1 = s + service_ns
                                die1.busy_until = p1
                                if len(cooling) > 64:
                                    cooling = {
                                        rr: tt for rr, tt in cooling.items()
                                        if tt > p0
                                    }
                                    die1._cooling = cooling
                                cooling[row] = p1 + cooling_ns
                                die1.write_count += 1
                                td = p1 if p1 >= p0 else p0
                            drain_dirty[dimm_index] = True
                    if drain_dirty[dimm_index]:
                        dimm_max = 0.0
                        for die in dies:
                            if die.busy_until > dimm_max:
                                dimm_max = die.busy_until
                        drain_cache[dimm_index] = dimm_max
                        drain_dirty[dimm_index] = False
                    else:
                        dimm_max = drain_cache[dimm_index]
                    complete = t + buffer_ns + port_ns
                    write_latencies[index] = complete - time
                    complete_col[index] = complete
                    occupied_col[index] = (
                        complete if complete >= dimm_max else dimm_max
                    )
                    blocked_col[index] = stall
                    blocked_total += stall
                    if complete > done:
                        done = complete
                    index += 1
                line += span
                remaining -= span
            if error is not None:
                break
        wear.write_count = write_count
        channel_busy = self._channel_busy
        for dimm_index in range(n_dimms):
            channel_busy[dimm_index] = channel_col[dimm_index]
        self.background_ns = background_ns
        self.write_stall_ns = write_stall_ns
        self.media_line_writes = media_line_writes
        self.buffer_hits.record_many(buffer_hit_count, index)
        if index:
            self.write_latency.record_many(
                write_latencies if index == n else write_latencies[:index]
            )
        if error is not None:
            raise error
        window = window_from_extents(extents, time)
        assert window is not None
        return FlushReport(
            lines=n,
            extents=len(extents),
            start_ns=time,
            done_ns=done,
            blocked_ns=blocked_total,
            responses=ResponseWindow(
                window, complete_col, occupied_col, blocked_col
            ),
        )

    # -- write path --------------------------------------------------------------

    def _serve_write(self, request: MemoryRequest) -> MemoryResponse:
        cfg = self.config
        t = request.time + cfg.port_ns
        physical_line, dimm, local_line = self._translate(request.address)
        group = dimm.group_of(local_line)
        logical_line = request.address // CACHELINE_BYTES
        self.background_ns += self.wear.record_write(logical_line)

        # Backpressure: a DIMM whose channel/media backlog is too deep
        # stalls the port until programming catches up.
        backlog = max(
            self._group_backlog(dimm, group, t),
            self._channel_wait(dimm, t),
        )
        stall = max(0.0, backlog - cfg.write_backlog_limit_ns)
        t += stall
        self.write_stall_ns += stall

        if cfg.write_aggregation:
            # The row buffer absorbs the write at BRAM speed; the channel
            # is held only for the handshake, programming happens in the
            # background (early return).
            buf = self._buffer(dimm.dimm_id, group)
            local_address = local_line * CACHELINE_BYTES
            absorbed, to_drain = buf.write(t, local_address)
            if request.data is not None:
                self._pending[physical_line] = request.data
            if to_drain is not None:
                page, beats = to_drain
                self._drain_page(t, dimm, group, page, beats)
            complete = t + cfg.buffer_ns + cfg.port_ns
            self.buffer_hits.record(absorbed)
        else:
            # Conventional synchronous path: the write occupies the DIMM's
            # DDR channel.  With early return the channel frees after the
            # transfer+accept handshake; without it (LightPC-B) the channel
            # is held until the PRAM core finishes programming *and*
            # cooling — the head-of-line blocking the PSM exists to remove.
            start = max(t, self._channel_busy.get(dimm.dimm_id, 0.0))
            accept, pulse_end = self._program_line(
                start, dimm, local_line, physical_line,
                data=request.data, staggered=False,
            )
            if cfg.early_return_writes:
                self._channel_busy[dimm.dimm_id] = accept
            else:
                # Synchronous DDR: the channel is held until the DIMM
                # acks — after the programming pulse makes data durable.
                self._channel_busy[dimm.dimm_id] = pulse_end
            # The controller's write queue posts the write; the
            # requester does not wait for the media.
            complete = accept + cfg.port_ns
        self.write_latency.record(complete - request.time)
        return MemoryResponse(
            request,
            complete_time=complete,
            occupied_until=dimm.drain(complete),
            blocked_ns=stall,
        )

    def _channel_wait(self, dimm: BareNVDIMM, time: float) -> float:
        return max(0.0, self._channel_busy.get(dimm.dimm_id, 0.0) - time)

    def _drain_page(
        self,
        time: float,
        dimm: BareNVDIMM,
        group: int,
        page: int,
        beats: set[int],
    ) -> None:
        """Program a closed page's dirty lines, staggered across the dies."""
        lines_per_page = 4096 // CACHELINE_BYTES
        t = time
        for beat in sorted(beats):
            local_line = page * lines_per_page + beat
            if local_line >= dimm.lines:
                continue
            physical_line = self._physical_of_local(dimm, local_line)
            data = self._pending.pop(physical_line, None)
            _, t = self._program_line(
                t, dimm, local_line, physical_line, data=data, staggered=True,
            )

    def _physical_of_local(self, dimm: BareNVDIMM, local_line: int) -> int:
        return local_line * len(self.nvdimms) + dimm.dimm_id

    def _program_line(
        self,
        time: float,
        dimm: BareNVDIMM,
        local_line: int,
        physical_line: int,
        data: Optional[bytes],
        staggered: bool,
    ) -> tuple[float, float]:
        """Program one cacheline onto its group's dies.

        Returns ``(accept_time, media_complete_time)``.  ``staggered``
        pipelines the per-die operations so at most one die of the group
        is programming at a time (LightPC row-buffer drains); the parallel
        variant is the conventional-controller behaviour of LightPC-B.
        """
        slots = dimm.slots_of(local_line)
        self.media_line_writes += 1
        if data is not None and dimm.layout == "dual_channel":
            half0, half1 = data[:_HALF], data[_HALF:]
            self.xcc.encode(half0, half1)  # one combinational cycle
            dimm.store_line(local_line, data)
        issue = time
        pulse_end = time
        accept = time
        for slot in slots:
            die = dimm.dies[slot.die]
            complete, _stable = die.write(
                issue, slot.address, size=_HALF * 2, early_return=True
            )
            accept = max(accept, complete)
            pulse_end = max(pulse_end, die.busy_until)
            if staggered:
                # next die starts once this pulse ends (cooling is
                # per-row and does not block the sibling's programming)
                issue = die.busy_until
        return accept, pulse_end

    def _group_backlog(self, dimm: BareNVDIMM, group: int, time: float) -> float:
        return max(
            0.0,
            max(d.busy_until for d in dimm.group_dies(group)) - time,
        )

    # -- read path ------------------------------------------------------------------

    def _serve_read(self, request: MemoryRequest) -> MemoryResponse:
        cfg = self.config
        t = request.time + cfg.port_ns
        physical_line, dimm, local_line = self._translate(request.address)
        group = dimm.group_of(local_line)

        # 1. row buffer holds the youngest copy?
        if cfg.write_aggregation:
            buf = self._buffer(dimm.dimm_id, group)
            if buf.read_hit(local_line * CACHELINE_BYTES):
                complete = t + cfg.buffer_ns + cfg.port_ns
                self.read_latency.record(complete - request.time)
                return MemoryResponse(
                    request,
                    complete_time=complete,
                    data=self._pending.get(physical_line),
                )

        # The synchronous DDR channel is shared per DIMM: a write being
        # held on it (LightPC-B) blocks every read behind it, whatever die
        # it targets — the head-of-line blocking of Fig. 16.
        channel_wait = self._channel_wait(dimm, t)
        if channel_wait > 0:
            self.read_blocked_ns += channel_wait
            t += channel_wait

        slots = dimm.slots_of(local_line)
        if cfg.layout == "dram_like":
            return self._read_dram_like(request, t, dimm, slots)

        die0 = dimm.dies[slots[0].die]
        die1 = dimm.dies[slots[1].die]
        corrupt0 = self.functional and dimm.is_corrupt(local_line, 0)
        corrupt1 = self.functional and dimm.is_corrupt(local_line, 1)
        busy0 = die0.is_busy(t, slots[0].address)
        busy1 = die1.is_busy(t, slots[1].address)

        if corrupt0 and corrupt1:
            return self._contained_error(request, t, dimm, local_line)

        if cfg.ecc_reconstruction and (busy0 or busy1 or corrupt0 or corrupt1):
            # Non-blocking service: read one die (its half + the co-located
            # parity regenerate the other half in one XOR cycle).  Queued
            # programming yields to reads; only the die's *active*
            # programming pulse cannot be preempted, so the worst wait is
            # bounded by the remaining pulse, approximated as half an
            # occupancy window.
            which = self._pick_survivor(
                die0.busy_wait(t, slots[0].address),
                die1.busy_wait(t, slots[1].address),
                corrupt0, corrupt1,
            )
            slot = slots[which]
            die = dimm.dies[slot.die]
            if cfg.write_aggregation:
                # Staggered drains keep at most one die of the group
                # actively programming; the survivor's backlog is queued
                # work that yields to reads.
                wait = 0.0
            else:
                wait = min(
                    die.busy_wait(t, slot.address),
                    die.timing.write_occupancy_ns / 2.0,
                )
            self.read_blocked_ns += wait
            # 64 B (half + parity) from one die: a pipelined two-beat
            # burst, slotted into the die's queue gaps (busy_until not
            # extended).
            die.read_count += 2
            complete = (
                t + wait + die.timing.read_ns + cfg.reconstruct_extra_ns
                + cfg.xor_decode_ns + cfg.port_ns
            )
            data = self._reconstruct_data(dimm, local_line, which)
            self.reconstructions += 1
            # the channel is held only for the pipelined data burst
            self._channel_busy[dimm.dimm_id] = t + 20.0
            self.read_latency.record(complete - request.time)
            return MemoryResponse(
                request, complete_time=complete, data=data, reconstructed=True
            )

        # Plain path: both halves in parallel; wait on busy dies — this is
        # the baseline's read-after-write head-of-line blocking.
        wait = max(
            die0.busy_wait(t, slots[0].address),
            die1.busy_wait(t, slots[1].address),
        )
        self.read_blocked_ns += wait
        c0, _ = die0.read(t, slots[0].address, _HALF)
        c1, _ = die1.read(t, slots[1].address, _HALF)
        complete = max(c0, c1) + cfg.port_ns
        # the channel is held only for the pipelined data burst
        self._channel_busy[dimm.dimm_id] = t + 20.0
        data: Optional[bytes] = None
        if self.functional:
            half0, parity0 = dimm.load_slot(local_line, 0)
            half1, _ = dimm.load_slot(local_line, 1)
            if not self.xcc.verify(half0, half1, parity0):
                # Shouldn't happen without injected faults; contained.
                return self._contained_error(request, t, dimm, local_line)
            data = half0 + half1
        self.read_latency.record(complete - request.time)
        return MemoryResponse(
            request, complete_time=complete, data=data, blocked_ns=wait
        )

    @staticmethod
    def _pick_survivor(
        wait0: float, wait1: float, corrupt0: bool, corrupt1: bool
    ) -> int:
        if corrupt0:
            return 1
        if corrupt1:
            return 0
        return 0 if wait0 <= wait1 else 1

    def _reconstruct_data(
        self, dimm: BareNVDIMM, local_line: int, survivor: int
    ) -> Optional[bytes]:
        if not self.functional:
            return None
        half, parity = dimm.load_slot(local_line, survivor)
        other = self.xcc.reconstruct(half, parity)
        return (half + other) if survivor == 0 else (other + half)

    def _contained_error(
        self, request: MemoryRequest, t: float, dimm: BareNVDIMM, local_line: int
    ) -> MemoryResponse:
        """Both copies are bad: containment bit -> host raises an MCE.

        With the future-work symbol ECC enabled, a deeper decode is
        attempted first (modelled as succeeding for single-slot-per-symbol
        damage, at its decode latency).
        """
        if self.symbol_ecc is not None:
            complete = t + self.symbol_ecc.decode_ns + self.config.port_ns
            self.symbol_ecc.corrections += 1
            self.read_latency.record(complete - request.time)
            return MemoryResponse(
                request, complete_time=complete, reconstructed=True
            )
        self.mce_count += 1
        raise MachineCheckError(
            f"uncorrectable error at line {local_line} of DIMM {dimm.dimm_id}"
        )

    def _read_dram_like(
        self, request: MemoryRequest, t: float, dimm: BareNVDIMM, slots
    ) -> MemoryResponse:
        """Strawman layout: every access enables all eight dies."""
        completes = []
        wait = 0.0
        for slot in slots:
            die = dimm.dies[slot.die]
            wait = max(wait, die.busy_wait(t, slot.address))
            c, _ = die.read(t, slot.address, _HALF)
            completes.append(c)
        self.read_blocked_ns += wait
        complete = max(completes) + self.config.port_ns
        self.read_latency.record(complete - request.time)
        return MemoryResponse(request, complete_time=complete, blocked_ns=wait)

    # -- flush & reset ports -------------------------------------------------------

    def flush(self, time: float) -> float:
        """Flush port: close all row buffers, drain all programming.

        This is the memory-synchronization interface SnG's Auto-Stop uses;
        after it returns there are no early-returned requests in flight.
        """
        t = time
        for (dimm_id, group), buf in self._buffers.items():
            closed = buf.flush()
            if closed is not None:
                page, beats = closed
                self._drain_page(t, self.nvdimms[dimm_id], group, page, beats)
        t = max([t] + [d.drain(t) for d in self.nvdimms])
        return t + self.config.port_ns

    def reset(self, time: float) -> float:
        """Reset port: wipe all media (MCE recovery / cold re-init)."""
        for dimm in self.nvdimms:
            dimm.wipe()
        self._pending.clear()
        self._buffers.clear()
        self._channel_busy.clear()
        self.wear = StartGap(
            lines=self.config.total_lines - 1,
            threshold=self.config.wear_threshold,
            seed=self.config.wear_seed,
            move_fn=self._move_line if self.functional else None,
            rotate_seed_every=self.config.rotate_seed_every,
            randomize_unit=self.config.wear_randomize_unit,
        )
        return time + 1_000.0  # bulk wipe handshake

    def drain(self, time: float) -> float:
        """Quiesce time without closing row buffers (fence semantics)."""
        return max([time] + [d.drain(time) for d in self.nvdimms])

    def power_cycle(self) -> None:
        """Power loss: media persists; volatile PSM state must have been
        flushed by SnG beforehand or pending data is lost (by design —
        that is exactly what the flush port is for).

        The wear-leveler's register file is volatile too: unless the
        EP-cut captured it (:meth:`capture_registers`) and Go restores it
        (:meth:`restore_wear_registers`), the mapping resets and stored
        data becomes unreachable — the paper persists exactly these <64 B
        at SnG time (§VIII).
        """
        lost = len(self._pending)
        self._pending.clear()
        self._buffers.clear()
        self._channel_busy.clear()
        for dimm in self.nvdimms:
            dimm.power_cycle()
        self._lost_pending_lines = lost
        from repro.ocpmem.wear import WearRegisters

        self.wear.restore_registers(WearRegisters(
            start=0, gap=self.wear.lines, write_count=0,
            seed=self.config.wear_seed, gap_cycles=0,
        ))

    # -- EP-cut register capture -------------------------------------------

    def capture_registers(self) -> bytes:
        """Serialize the wear-leveler register file for the EP-cut."""
        import pickle

        return pickle.dumps(self.wear.registers())

    def restore_wear_registers(self, blob: bytes) -> None:
        """Restore the register file Go read back from the BCB."""
        import pickle

        if not blob:
            return
        self.wear.restore_registers(pickle.loads(blob))

    # -- introspection -----------------------------------------------------------------

    @property
    def buffer_hit_ratio(self) -> float:
        """Write-aggregation buffer hit ratio at the port boundary."""
        return self.buffer_hits.ratio

    def counters(self) -> dict[str, float]:
        counters: dict[str, float] = {
            "media_line_writes": self.media_line_writes,
            "reconstructions": self.reconstructions,
            "read_blocked_ns": self.read_blocked_ns,
            "write_stall_ns": self.write_stall_ns,
            "buffer_hit_ratio": self.buffer_hits.ratio,
            "wear_gap_moves": self.wear.gap_moves,
            "mce_count": self.mce_count,
        }
        nvdimm = {"reads": 0, "writes": 0}
        for dimm in self.nvdimms:
            for key, value in dimm.counters().items():
                nvdimm[key] += value
        counters.update({f"nvdimm_{k}": v for k, v in nvdimm.items()})
        return counters

    def register_stats(self, stats: StatsRegistry) -> None:
        stats.register("read", self.read_latency)
        stats.register("write", self.write_latency)
        stats.register("buffer_hit_ratio", lambda: self.buffer_hits.ratio)
        stats.register("counters", self.counters)
        devices = stats.scoped("devices")
        for index, dimm in enumerate(self.nvdimms):
            dimm.register_stats(devices.scoped(f"dimm{index}"))

    def power_parts(self, counters: Mapping[str, float]) -> list[PowerPart]:
        """LightPC memory inventory: the PSM, bare DIMMs, lean board."""
        dimms = float(len(self.nvdimms))
        nvdimm = {
            "reads": counters.get("nvdimm_reads", 0.0) / dimms,
            "writes": counters.get("nvdimm_writes", 0.0) / dimms,
        }
        return [
            ("psm", 1.0, dict(counters)),
            ("bare_nvdimm", dimms, nvdimm),
            ("board_light", 1.0, None),
        ]
