"""Numpy-columnar kernel for the PSM's exact batch path.

Same contract as :mod:`repro.memory.columnar`: observational identity
with the Python batched loop (:meth:`PSM.access_batch`), which is itself
value-identical to the scalar port dispatch.  The equivalence suites run
both modes and compare ``repr``-for-``repr``.

The PSM pipeline splits cleanly into a *translation* stage that is pure
arithmetic and a *service* stage that is an irreducibly stateful
recurrence over shared die/buffer/channel state:

* **Translation** runs fully vectorized: logical lines, randomize units
  and unit offsets are whole-column integer ops; the Feistel network
  evaluates via :meth:`FeistelPermutation.apply_many` (one ufunc pass
  per round, cycle-walk by mask) over the units not already cached in a
  per-randomizer lookup table; Start-Gap's ``(start, gap)`` offsets
  apply per *segment* — the window is split at gap-move boundaries
  (known in advance from the write ordinals, one ``cumsum``) and each
  boundary replays ``StartGap._move_gap`` so registers, generation and
  ``background_ns`` advance exactly as in the scalar loop.
* **Service** keeps an exact Python loop, but a lean one: the
  translated columns arrive as plain lists, the row-buffer hit paths
  and drain bookkeeping are inlined (same state writes as the buffer
  methods), and no per-element stats or latency appends remain.
* **Latencies** materialize at the end as one ``complete - time``
  column, partitioned by the write mask into the two bulk
  ``record_many`` sinks (array ordering equals append ordering because
  both follow arrival order).
"""

from __future__ import annotations

from typing import Optional

from repro._np import np
from repro.memory.batch import RequestWindow, ResponseWindow
from repro.memory.request import (
    AddressSpaceError,
    CACHELINE_BYTES,
    MemoryResponse,
)

__all__ = ["psm_access_window"]


def _translate_columns(psm, addr, w, served):
    """Vectorized logical->physical translation for the served prefix.

    Returns ``(dimm_col, local_col, bk_col, bk_arr, page_col,
    background_adds)`` where the columns are plain lists (``bk_col`` is
    the flattened ``dimm * 4 + group`` buffer/die-group key, ``page_col``
    the die-local page and cooling row), ``bk_arr`` the same key column
    as an ndarray (for first-touch buffer ordering), and
    ``background_adds`` is the number of gap moves replayed (their cost
    is already applied to the wear registers via ``_move_gap``).  Must be called *before* the service loop: it
    advances ``wear.write_count`` and replays every gap move that the
    window's writes trigger, in element order.
    """
    wear = psm.wear
    wear_lines = wear.lines
    unit_size = wear.randomize_unit
    units = wear._units
    randomizer = wear._randomizer
    # Per-randomizer unit lookup table (ndarray analogue of the batched
    # path's ``_unit_memo`` dict); -1 marks an unevaluated unit.
    table = getattr(psm, "_unit_table", None)
    if table is None or psm._unit_table_randomizer is not randomizer \
            or len(table) != units:
        table = np.full(units, -1, dtype=np.int64)
        psm._unit_table = table
        psm._unit_table_randomizer = randomizer
    line = addr[:served] // CACHELINE_BYTES
    unit = line // unit_size
    offset = line - unit * unit_size
    in_domain = unit < units
    all_in_domain = bool(in_domain.all())
    domain_units = unit if all_in_domain else unit[in_domain]
    if len(domain_units):
        lookup = np.unique(domain_units)
        missing = lookup[table[lookup] < 0]
        if len(missing):
            table[missing] = randomizer.apply_many(missing)
    if all_in_domain:
        randomized = table[unit] * unit_size + offset
    else:
        randomized = np.where(
            in_domain,
            table[np.where(in_domain, unit, 0)] * unit_size + offset,
            line,
        )
    # Start-Gap offsets are segment-constant between gap moves; the
    # boundaries fall on the writes whose ordinal hits the threshold.
    w_served = w[:served]
    n_writes = int(w_served.sum())
    threshold = wear.threshold
    write_count = wear.write_count
    if n_writes:
        totals = np.cumsum(w_served) + write_count
        bound = w_served & (totals % threshold == 0)
        boundaries = np.nonzero(bound)[0].tolist() if bool(bound.any()) \
            else []
    else:
        boundaries = []
    physical = np.empty(served, dtype=np.int64)
    background_moves = 0
    seg_start = 0
    for boundary in boundaries:
        stop = boundary + 1  # the boundary write maps pre-move
        _apply_start_gap(
            physical, randomized, seg_start, stop,
            wear.start, wear.gap, wear_lines,
        )
        wear._move_gap()
        background_moves += 1
        seg_start = stop
    if seg_start < served:
        _apply_start_gap(
            physical, randomized, seg_start, served,
            wear.start, wear.gap, wear_lines,
        )
    wear.write_count = write_count + n_writes
    n_dimms = len(psm.nvdimms)
    dimm = physical % n_dimms
    local = physical // n_dimms
    # Flat (dimm, group) key: ``2 * bk`` indexes the group's first die in
    # the service loop's flattened die-state lists.
    bk = dimm * 4 + (local & 3)
    return (
        dimm.tolist(), local.tolist(), bk.tolist(), bk,
        (local >> 6).tolist(), background_moves,
    )


def _apply_start_gap(physical, randomized, lo, hi, start, gap, lines):
    segment = randomized[lo:hi] + start
    segment %= lines
    segment += segment >= gap
    physical[lo:hi] = segment


def psm_access_window(psm, window: RequestWindow) -> ResponseWindow:
    """Serve one window through the PSM, translation vectorized.

    Preconditions (checked by :meth:`PSM.access_batch` before routing
    here): timing-only mode, ``dual_channel`` layout, no seed rotation,
    no wear tracing (Start-Gap or per-die).  The service loop runs over
    plain-list columns with all die state held in flat local lists —
    ``busy``/``cooling``/op counters are committed back once per window
    — and the page-drain pipeline inlined (the same float expressions,
    in the same order, as ``_drain_page``/``_program_line``/
    ``PRAMDevice.write`` with ``early_return=True``).  Error ordering
    matches the Python loop: the served prefix's state and stats commit
    before the :class:`AddressSpaceError` is raised.
    """
    cfg = psm.config
    port_ns = cfg.port_ns
    buffer_ns = cfg.buffer_ns
    limit_ns = cfg.write_backlog_limit_ns
    xor_ns = cfg.xor_decode_ns
    extra_ns = cfg.reconstruct_extra_ns
    aggregation = cfg.write_aggregation
    early_return = cfg.early_return_writes
    reconstruction = cfg.ecc_reconstruction
    wear = psm.wear
    wear_lines = wear.lines
    nvdimms = psm.nvdimms
    n_dimms = len(nvdimms)
    pending = psm._pending
    xcc_encode = psm.xcc.encode
    ref_timing = nvdimms[0].dies[0].timing
    read_ns = ref_timing.read_ns
    service_ns = ref_timing.write_service_ns
    cooling_ns = ref_timing.cooling_ns
    accept_ns = ref_timing.accept_ns
    half_occupancy_ns = ref_timing.write_occupancy_ns / 2.0
    dimm_lines = nvdimms[0].lines

    # Flattened die state (dimm * 8 + die): attribute access leaves the
    # loop entirely; everything commits back once at the end.
    dies_flat = []
    for dimm in nvdimms:
        dies_flat.extend(dimm.dies)
    busy_flat = [die.busy_until for die in dies_flat]
    cool_flat = [die._cooling for die in dies_flat]
    rc_flat = [die.read_count for die in dies_flat]
    wc_flat = [die.write_count for die in dies_flat]
    # Flattened write-aggregation buffers (dimm * 4 + group), created
    # lazily through psm._buffer so psm._buffers stays authoritative.
    buffers_flat = [
        psm._buffers.get((dimm_index, group))
        for dimm_index in range(n_dimms) for group in range(4)
    ]

    channel_col = [psm._channel_busy.get(d.dimm_id, 0.0) for d in nvdimms]
    drain_cache = [0.0] * n_dimms
    drain_dirty = [True] * n_dimms
    write_stall_ns = psm.write_stall_ns
    read_blocked_ns = psm.read_blocked_ns
    media_line_writes = psm.media_line_writes
    buffer_hit_count = 0
    buffer_total = 0

    w_all, addr_all, t_all = window.arrays()
    n = len(addr_all)
    served = n
    error: Optional[AddressSpaceError] = None
    capacity = wear_lines * CACHELINE_BYTES
    if n and int(addr_all.max()) >= capacity:
        oob = addr_all // CACHELINE_BYTES >= wear_lines
        served = int(oob.argmax())
        bad = int(addr_all[served])
        error = AddressSpaceError(
            f"address {bad:#x} outside OC-PMEM capacity {capacity:#x}"
        )

    dimm_col, local_col, bk_col, bk_arr, page_col, background_moves = \
        _translate_columns(psm, addr_all, w_all, served)
    # ``background_ns += record_write(...)`` adds 0.0 per non-boundary
    # write; adding the non-zero move costs alone is bit-identical
    # because ``x + 0.0 == x`` for the non-negative accumulator.
    background_ns = psm.background_ns
    for _ in range(background_moves):
        background_ns += wear.GAP_MOVE_NS

    t_col = (t_all[:served] + port_ns).tolist()
    w_col = w_all[:served].tolist()

    # Flat mirrors of each touched buffer's open page (-2 = closed) and
    # its live dirty set: the hot read probe and write-absorb test become
    # two list loads instead of an object deref chain.  Every request
    # probes its own (dimm, group) buffer under write aggregation, so
    # creating the touched buffers up front — in first-touch order, so
    # ``psm._buffers`` insertion order matches the lazy loop — is
    # state-identical to creating them inside the loop.  Absorb-path
    # RatioStat increments are deferred per group (integer adds commute)
    # and committed with the rest of the stats.
    open_flat = [-2] * (n_dimms * 4)
    dirty_flat: list = [None] * (n_dimms * 4)
    absorb_flat = [0] * (n_dimms * 4)
    if aggregation and served:
        uniq, first = np.unique(bk_arr, return_index=True)
        for key in uniq[np.argsort(first)].tolist():
            buf = buffers_flat[key]
            if buf is None:
                buf = psm._buffer(key >> 2, key & 3)
                buffers_flat[key] = buf
            open_page = buf._open
            if open_page is not None:
                open_flat[key] = open_page.page
                dirty_flat[key] = open_page.dirty
        buffer_total += int(w_all[:served].sum())

    complete_col = [0.0] * n
    occupied_col = [0.0] * n
    blocked_col = [0.0] * n
    reconstructed: set[int] = set()
    recon_add = reconstructed.add
    overrides: Optional[dict[int, MemoryResponse]] = None

    # zip iteration loads all six columns per element in one tuple
    # unpack instead of six indexed reads; zip's shortest-input stop is
    # exactly ``served`` (every request column is the served prefix).
    for index, (t, is_w, dimm_index, local_line, bk, page) in enumerate(
        zip(t_col, w_col, dimm_col, local_col, bk_col, page_col)
    ):
        k0 = bk + bk
        k1 = k0 + 1
        if is_w:
            b0 = busy_flat[k0]
            b1 = busy_flat[k1]
            group_max = b0 if b0 >= b1 else b1
            backlog = group_max - t
            if backlog < 0.0:
                backlog = 0.0
            channel_wait = channel_col[dimm_index] - t
            if channel_wait < 0.0:
                channel_wait = 0.0
            if channel_wait > backlog:
                backlog = channel_wait
            stall = backlog - limit_ns
            if stall > 0.0:
                t = t + stall
            else:
                stall = 0.0
            write_stall_ns += stall
            if aggregation:
                if open_flat[bk] == page:
                    # Absorption inlined: same state writes as buf.write
                    # (the stats increments commit in bulk at the end).
                    dirty_flat[bk].add(local_line & 63)
                    absorb_flat[bk] += 1
                else:
                    buf = buffers_flat[bk]
                    _absorbed, to_drain = buf.write(
                        t, local_line * CACHELINE_BYTES
                    )
                    opened = buf._open
                    open_flat[bk] = opened.page
                    dirty_flat[bk] = opened.dirty
                    if to_drain is not None:
                        # _drain_page/_program_line/PRAMDevice.write
                        # inlined for the staggered early-return case:
                        # the drained page's beats share one cooling row
                        # and this buffer's die pair.
                        dpage, beats = to_drain
                        td = t
                        dl_base = dpage << 6
                        cool0 = cool_flat[k0]
                        cool1 = cool_flat[k1]
                        for beat in sorted(beats):
                            dl = dl_base + beat
                            if dl >= dimm_lines:
                                continue
                            media_line_writes += 1
                            if pending:
                                data = pending.pop(
                                    dl * n_dimms + dimm_index, None
                                )
                                if data is not None:
                                    xcc_encode(data[:32], data[32:])
                                    nvdimms[dimm_index].store_line(dl, data)
                            b = busy_flat[k0]
                            cool = cool0.get(dpage, 0.0)
                            s = td if td >= b else b
                            if cool > s:
                                s = cool
                            p0 = s + service_ns
                            busy_flat[k0] = p0
                            if len(cool0) > 64:
                                cool0 = {
                                    rr: tt for rr, tt in cool0.items()
                                    if tt > td
                                }
                                cool_flat[k0] = cool0
                            cool0[dpage] = p0 + cooling_ns
                            wc_flat[k0] += 1
                            # sibling die staggered: issues once the
                            # first pulse ends
                            b = busy_flat[k1]
                            cool = cool1.get(dpage, 0.0)
                            s = p0 if p0 >= b else b
                            if cool > s:
                                s = cool
                            p1 = s + service_ns
                            busy_flat[k1] = p1
                            if len(cool1) > 64:
                                cool1 = {
                                    rr: tt for rr, tt in cool1.items()
                                    if tt > p0
                                }
                                cool_flat[k1] = cool1
                            cool1[dpage] = p1 + cooling_ns
                            wc_flat[k1] += 1
                            td = p1 if p1 >= p0 else p0
                        drain_dirty[dimm_index] = True
                complete = t + buffer_ns + port_ns
            else:
                # Synchronous path: _program_line (staggered=False,
                # data-less) inlined; the channel holds to the accept
                # handshake (early return) or the pulse end (LightPC-B).
                channel = channel_col[dimm_index]
                start = t if t >= channel else channel
                media_line_writes += 1
                cool0 = cool_flat[k0]
                b = busy_flat[k0]
                cool = cool0.get(page, 0.0)
                s = start if start >= b else b
                if cool > s:
                    s = cool
                p0 = s + service_ns
                busy_flat[k0] = p0
                if len(cool0) > 64:
                    cool0 = {
                        rr: tt for rr, tt in cool0.items() if tt > start
                    }
                    cool_flat[k0] = cool0
                cool0[page] = p0 + cooling_ns
                wc_flat[k0] += 1
                cool1 = cool_flat[k1]
                b = busy_flat[k1]
                cool = cool1.get(page, 0.0)
                s = start if start >= b else b
                if cool > s:
                    s = cool
                p1 = s + service_ns
                busy_flat[k1] = p1
                if len(cool1) > 64:
                    cool1 = {
                        rr: tt for rr, tt in cool1.items() if tt > start
                    }
                    cool_flat[k1] = cool1
                cool1[page] = p1 + cooling_ns
                wc_flat[k1] += 1
                accept = start + accept_ns
                pulse_end = p0 if p0 >= p1 else p1
                channel_col[dimm_index] = (
                    accept if early_return else pulse_end
                )
                drain_dirty[dimm_index] = True
                complete = accept + port_ns
            if drain_dirty[dimm_index]:
                base = dimm_index << 3
                dimm_max = max(busy_flat[base:base + 8])
                if dimm_max < 0.0:
                    dimm_max = 0.0
                drain_cache[dimm_index] = dimm_max
                drain_dirty[dimm_index] = False
            else:
                dimm_max = drain_cache[dimm_index]
            complete_col[index] = complete
            occupied_col[index] = (
                complete if complete >= dimm_max else dimm_max
            )
            blocked_col[index] = stall
            continue
        # -- read --
        if aggregation and open_flat[bk] == page \
                and (local_line & 63) in dirty_flat[bk]:
            complete = t + buffer_ns + port_ns
            data = pending.get(local_line * n_dimms + dimm_index)
            if data is not None:
                if overrides is None:
                    overrides = {}
                overrides[index] = MemoryResponse(
                    window.request_at(index),
                    complete_time=complete,
                    data=data,
                )
            complete_col[index] = complete
            continue
        channel_wait = channel_col[dimm_index] - t
        if channel_wait > 0.0:
            read_blocked_ns += channel_wait
            t += channel_wait
        b0 = busy_flat[k0]
        b1 = busy_flat[k1]
        cool0 = cool_flat[k0].get(page, 0.0)
        cool1 = cool_flat[k1].get(page, 0.0)
        until0 = b0 if b0 >= cool0 else cool0
        until1 = b1 if b1 >= cool1 else cool1
        if reconstruction and (t < until0 or t < until1):
            if aggregation:
                # The clamped waits only pick the survivor die here, and
                # with at least one wait positive on this branch
                # ``max(x, 0) <= max(y, 0)`` iff ``x <= y``, so the
                # clamps fold away; the blocked wait itself is exactly
                # 0.0 (``+= 0.0`` / ``t + 0.0`` are bitwise identities
                # for the non-negative accumulator and t).
                survivor = k0 if until0 - t <= until1 - t else k1
                complete = t + read_ns + extra_ns + xor_ns + port_ns
            else:
                wait0 = until0 - t
                if wait0 < 0.0:
                    wait0 = 0.0
                wait1 = until1 - t
                if wait1 < 0.0:
                    wait1 = 0.0
                if wait0 <= wait1:
                    survivor = k0
                    survivor_wait = wait0
                else:
                    survivor = k1
                    survivor_wait = wait1
                wait = survivor_wait if survivor_wait <= \
                    half_occupancy_ns else half_occupancy_ns
                read_blocked_ns += wait
                complete = t + wait + read_ns + extra_ns + xor_ns + port_ns
            rc_flat[survivor] += 2
            channel_col[dimm_index] = t + 20.0
            recon_add(index)
            complete_col[index] = complete
            continue
        # ``until`` already folds busy/cooling, so the per-die start is
        # one compare and the blocked wait one monotonic subtraction —
        # bit-identical to the scalar clamp-each-then-max sequence.
        until = until0 if until0 >= until1 else until1
        wait = until - t
        if wait > 0.0:
            read_blocked_ns += wait
            blocked_col[index] = wait
        done0 = (t if t >= until0 else until0) + read_ns
        busy_flat[k0] = done0
        rc_flat[k0] += 1
        done1 = (t if t >= until1 else until1) + read_ns
        busy_flat[k1] = done1
        rc_flat[k1] += 1
        drain_dirty[dimm_index] = True
        done = done0 if done0 >= done1 else done1
        complete = done + port_ns
        channel_col[dimm_index] = t + 20.0
        complete_col[index] = complete

    # -- commit (same order as the batched loop) -----------------------------
    for k, die in enumerate(dies_flat):
        die.busy_until = busy_flat[k]
        die._cooling = cool_flat[k]
        die.read_count = rc_flat[k]
        die.write_count = wc_flat[k]
    channel_busy = psm._channel_busy
    for dimm_index in range(n_dimms):
        channel_busy[dimm_index] = channel_col[dimm_index]
    psm.background_ns = background_ns
    psm.write_stall_ns = write_stall_ns
    psm.read_blocked_ns = read_blocked_ns
    psm.media_line_writes = media_line_writes
    for key, absorbed in enumerate(absorb_flat):
        if absorbed:
            buffer_stats = buffers_flat[key].stats
            buffer_stats.total += absorbed
            buffer_stats.hits += absorbed
            buffer_hit_count += absorbed
    psm.buffer_hits.record_many(buffer_hit_count, buffer_total)
    # Every reconstruction added exactly one index to the set.
    psm.reconstructions += len(reconstructed)
    complete_arr = np.fromiter(complete_col, dtype=np.float64, count=n)
    # Reads occupy exactly until completion, so the loop only stores the
    # write rows' occupancy and the read rows merge in one where-pass.
    occupied_arr = np.where(
        w_all,
        np.fromiter(occupied_col, dtype=np.float64, count=n),
        complete_arr,
    )
    if served:
        w_served = w_all[:served]
        latency = complete_arr[:served] - t_all[:served]
        read_lat = latency[~w_served]
        write_lat = latency[w_served]
        if len(read_lat):
            psm.read_latency.record_many(read_lat)
        if len(write_lat):
            psm.write_latency.record_many(write_lat)
    if error is not None:
        raise error
    return ResponseWindow(
        window, complete_arr, occupied_arr, blocked_col,
        reconstructed=reconstructed if reconstructed else None,
        overrides=overrides,
    )
