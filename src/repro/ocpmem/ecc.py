"""ECC engines of the persistent support module.

Two engines, per the paper:

* :class:`XORCodec` (XCC, §V-A) — the shipping scheme.  A 64 B cacheline
  is striped as two 32 B halves across a dual-channel PRAM group; the PSM
  keeps their XOR as parity on separate media.  Because the code is fully
  combinational (parallel XOR gates), en/decoding is a single cycle and,
  crucially, a missing half — a die that is busy programming, or corrupted
  — can be regenerated from the surviving half and the parity without
  touching the busy die.  That regeneration is the PSM's non-blocking
  read-after-write service.

* :class:`SymbolECC` (§VIII, future work) — a finer-granularity
  symbol-based code layered behind XCC for the case where whole halves are
  lost.  Implemented as a Reed-Solomon code over GF(256) with two parity
  symbols (single-symbol correction, double-symbol detection) applied per
  interleaved column, at a real en/decode latency cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = ["EccResult", "SymbolECC", "UncorrectableError", "XORCodec", "xor_bytes"]


class UncorrectableError(Exception):
    """Data loss exceeds the code's correction capability.

    The PSM surfaces this as an *error containment bit* on the response;
    the host then raises a machine check exception (§V-A).
    """


def xor_bytes(a: bytes, b: bytes) -> bytes:
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    return bytes(x ^ y for x, y in zip(a, b))


@dataclass(frozen=True)
class EccResult:
    """Outcome of a decode attempt."""

    data: bytes
    reconstructed: bool = False
    corrected_symbols: int = 0


class XORCodec:
    """Half-and-half XOR parity over a dual-channel group (XCC).

    All operations are stateless byte math; the PSM decides *when* to call
    :meth:`reconstruct` (die busy) vs :meth:`verify` (die readable).
    """

    def __init__(self, half_bytes: int = 32) -> None:
        if half_bytes <= 0:
            raise ValueError("half size must be positive")
        self.half_bytes = half_bytes
        self.encodes = 0
        self.reconstructions = 0

    def encode(self, half0: bytes, half1: bytes) -> bytes:
        """Parity for a cacheline's two halves (one combinational cycle)."""
        self._check(half0)
        self._check(half1)
        self.encodes += 1
        return xor_bytes(half0, half1)

    def reconstruct(self, surviving: bytes, parity: bytes) -> bytes:
        """Regenerate the missing half from the surviving half + parity."""
        self._check(surviving)
        self._check(parity)
        self.reconstructions += 1
        return xor_bytes(surviving, parity)

    def verify(self, half0: bytes, half1: bytes, parity: bytes) -> bool:
        """Parity check; False means at least one half is corrupt."""
        return xor_bytes(half0, half1) == parity

    def correct(
        self,
        half0: Optional[bytes],
        half1: Optional[bytes],
        parity: Optional[bytes],
    ) -> EccResult:
        """Best-effort recovery given at most one missing component.

        Raises :class:`UncorrectableError` when two or more components are
        unavailable — XCC can regenerate exactly one missing half.
        """
        present = [x is not None for x in (half0, half1, parity)]
        if present.count(False) > 1:
            raise UncorrectableError("XCC cannot recover two missing components")
        if half0 is None:
            assert half1 is not None and parity is not None
            return EccResult(
                self.reconstruct(half1, parity) + half1, reconstructed=True
            )
        if half1 is None:
            assert parity is not None
            return EccResult(
                half0 + self.reconstruct(half0, parity), reconstructed=True
            )
        return EccResult(half0 + half1)

    def _check(self, half: bytes) -> None:
        if len(half) != self.half_bytes:
            raise ValueError(
                f"expected {self.half_bytes} B half, got {len(half)} B"
            )


# ---------------------------------------------------------------------------
# GF(256) Reed-Solomon for the symbol-based fallback (future-work extension)
# ---------------------------------------------------------------------------

_GF_POLY = 0x11D  # x^8 + x^4 + x^3 + x^2 + 1


def _build_gf_tables() -> tuple[list[int], list[int]]:
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= _GF_POLY
    for i in range(255, 512):
        exp[i] = exp[i - 255]
    return exp, log


_GF_EXP, _GF_LOG = _build_gf_tables()


def _gf_mul(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return _GF_EXP[_GF_LOG[a] + _GF_LOG[b]]


def _gf_div(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("GF division by zero")
    if a == 0:
        return 0
    return _GF_EXP[(_GF_LOG[a] - _GF_LOG[b]) % 255]


class SymbolECC:
    """RS(k+2, k) over GF(256): corrects one symbol, detects two.

    The codeword is ``data + [p0, p1]`` with ``p0 = sum(d_i)`` and
    ``p1 = sum(d_i * alpha^i)`` (alpha = 2).  Decoding computes the two
    syndromes; a single corrupted symbol is located by ``s1/s0`` and
    corrected by ``s0``.  En/decode latency is charged by the PSM when this
    engine is engaged (it is combinationally much deeper than XCC).
    """

    def __init__(self, data_symbols: int = 8, decode_ns: float = 35.0) -> None:
        if not 1 <= data_symbols <= 253:
            raise ValueError("data_symbols must be in [1, 253]")
        self.k = data_symbols
        self.decode_ns = decode_ns
        self.corrections = 0

    def encode(self, data: Sequence[int]) -> list[int]:
        if len(data) != self.k:
            raise ValueError(f"expected {self.k} data symbols, got {len(data)}")
        if any(not 0 <= s < 256 for s in data):
            raise ValueError("symbols must be bytes")
        p0 = 0
        p1 = 0
        for i, symbol in enumerate(data):
            p0 ^= symbol
            p1 ^= _gf_mul(symbol, _GF_EXP[i % 255])
        return list(data) + [p0, p1]

    def decode(self, codeword: Sequence[int]) -> EccResult:
        """Validate/correct a codeword; returns the data symbols."""
        if len(codeword) != self.k + 2:
            raise ValueError(f"expected {self.k + 2} symbols")
        data = list(codeword[: self.k])
        p0, p1 = codeword[self.k], codeword[self.k + 1]
        s0 = p0
        s1 = p1
        for i, symbol in enumerate(data):
            s0 ^= symbol
            s1 ^= _gf_mul(symbol, _GF_EXP[i % 255])
        if s0 == 0 and s1 == 0:
            return EccResult(bytes(data))
        if s0 == 0 or s1 == 0:
            # Syndromes disagree about the error pattern: >1 symbol bad,
            # or a parity symbol itself is corrupt in a way we can flag.
            raise UncorrectableError("inconsistent syndromes")
        locator = _gf_div(s1, s0)
        position = _GF_LOG[locator]
        if position >= self.k:
            raise UncorrectableError(f"error locator {position} out of range")
        data[position] ^= s0
        self.corrections += 1
        return EccResult(bytes(data), corrected_symbols=1)
