"""Bare-metal PRAM DIMM channels (paper §V-B, Fig. 13).

A Bare-NVDIMM is a rank of eight 32 B-granularity PRAM dies exposed to the
PSM without any DIMM-side firmware or volatile cache.  Two channel layouts
are modelled:

* ``dual_channel`` (the paper's design) — every two dies share a chip
  enable.  A 64 B cacheline is served by one group (2 x 32 B) while the
  other three groups stay available (*intra-DIMM parallelism*).
* ``dram_like`` (the strawman) — all eight dies share one CE, so the
  default access unit is 256 B: every cacheline access enables the whole
  rank, 64 B writes need read-modify of the 256 B unit, and requests
  serialize behind one another.

Data + parity co-location: each die slot stores a line's 32 B half
*and* the line's 32 B XOR parity (P = half0 ^ half1).  Reading either die
therefore yields enough to regenerate the other half in one combinational
XOR — the PSM's non-blocking read-after-write service — and is why the
Bare-NVDIMM provisions 2x capacity per line (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

from repro.memory.device import PRAMDevice, PRAMTiming
from repro.memory.request import CACHELINE_BYTES, PRAM_DEVICE_BYTES

__all__ = ["BareNVDIMM", "DieSlot", "Layout"]

Layout = Literal["dual_channel", "dram_like"]

_DIES = 8
_HALF = PRAM_DEVICE_BYTES          # 32 B data half per die
_SLOT_BYTES = _HALF * 2            # half + co-located parity


@dataclass(frozen=True)
class DieSlot:
    """One die's share of a cacheline: (die index, die-local byte address)."""

    die: int
    address: int


class BareNVDIMM:
    """One rank of eight bare PRAM dies with a selectable channel layout."""

    def __init__(
        self,
        lines: int,
        layout: Layout = "dual_channel",
        timing: Optional[PRAMTiming] = None,
        dimm_id: int = 0,
    ) -> None:
        if lines <= 0:
            raise ValueError("need at least one cacheline of capacity")
        if layout not in ("dual_channel", "dram_like"):
            raise ValueError(f"unknown layout {layout!r}")
        self.lines = lines
        self.layout = layout
        self.dimm_id = dimm_id
        self.groups = 4 if layout == "dual_channel" else 1
        self.dies_per_group = _DIES // self.groups
        slots_per_die = -(-lines // self.groups)  # ceil
        die_capacity = slots_per_die * _SLOT_BYTES
        self.dies = [
            PRAMDevice(die_capacity, timing, device_id=dimm_id * _DIES + i)
            for i in range(_DIES)
        ]
        #: (die, address) slots whose media ECC reports containment —
        #: injected by :meth:`corrupt_slot`, cleared by a fresh store.
        self._corrupted: set[tuple[int, int]] = set()

    # -- geometry ------------------------------------------------------------

    def group_of(self, line: int) -> int:
        self._check_line(line)
        return line % self.groups

    def slots_of(self, line: int) -> list[DieSlot]:
        """The die slots a cacheline occupies under the active layout.

        dual_channel: two dies of one group, each holding 32 B.
        dram_like: all eight dies, each holding 8 B of the line but
        enabled (and programmed) at their full 32 B granularity.
        """
        self._check_line(line)
        group = line % self.groups
        slot_index = line // self.groups
        base = group * self.dies_per_group
        return [
            DieSlot(die=base + i, address=slot_index * _SLOT_BYTES)
            for i in range(self.dies_per_group)
        ]

    def group_dies(self, group: int) -> list[PRAMDevice]:
        if not 0 <= group < self.groups:
            raise ValueError(f"group {group} outside [0, {self.groups})")
        base = group * self.dies_per_group
        return self.dies[base:base + self.dies_per_group]

    def _check_line(self, line: int) -> None:
        if not 0 <= line < self.lines:
            raise ValueError(f"line {line} outside [0, {self.lines})")

    # -- functional storage ----------------------------------------------------
    #
    # Functional contents only exist for the dual-channel layout (the
    # shipped design); the strawman layout is timing-only.

    def store_line(self, line: int, data: bytes) -> None:
        """Store a 64 B line's halves + co-located parity, no timing."""
        if len(data) != CACHELINE_BYTES:
            raise ValueError("store_line expects a full cacheline")
        if self.layout != "dual_channel":
            raise ValueError("functional storage is dual_channel-only")
        half0, half1 = data[:_HALF], data[_HALF:]
        parity = bytes(a ^ b for a, b in zip(half0, half1))
        slots = self.slots_of(line)
        self.dies[slots[0].die].storage.write(slots[0].address, half0 + parity)
        self.dies[slots[1].die].storage.write(slots[1].address, half1 + parity)
        self._corrupted.discard((slots[0].die, slots[0].address))
        self._corrupted.discard((slots[1].die, slots[1].address))

    def load_slot(self, line: int, which: int) -> tuple[bytes, bytes]:
        """(half, parity) stored on one die of the line's group."""
        if self.layout != "dual_channel":
            raise ValueError("functional storage is dual_channel-only")
        slot = self.slots_of(line)[which]
        raw = self.dies[slot.die].peek(slot.address, _SLOT_BYTES)
        return raw[:_HALF], raw[_HALF:]

    def corrupt_slot(self, line: int, which: int) -> None:
        """Fault injection: flip bits in one die's copy of a line half.

        The die's internal media ECC is modelled as detect-only for faults
        of this size, so subsequent reads of the slot carry the error
        containment bit (paper §V-A, Fig. 12b).
        """
        slot = self.slots_of(line)[which]
        raw = bytearray(self.dies[slot.die].peek(slot.address, _SLOT_BYTES))
        raw[0] ^= 0xFF
        self.dies[slot.die].storage.write(slot.address, bytes(raw))
        self._corrupted.add((slot.die, slot.address))

    def is_corrupt(self, line: int, which: int) -> bool:
        slot = self.slots_of(line)[which]
        return (slot.die, slot.address) in self._corrupted

    def wipe(self) -> None:
        """Reset-port support: clear all media contents and fault state."""
        for die in self.dies:
            die.storage.wipe()
            die.power_cycle()
        self._corrupted.clear()

    # -- timing helpers ---------------------------------------------------------

    def drain(self, time: float) -> float:
        return max([time] + [die.busy_until for die in self.dies])

    def power_cycle(self) -> None:
        for die in self.dies:
            die.power_cycle()

    def counters(self) -> dict[str, int]:
        return {
            "reads": sum(d.read_count for d in self.dies),
            "writes": sum(d.write_count for d in self.dies),
        }

    def group_counters(self, group: int) -> dict[str, int]:
        """Per-CE-group op counts (intra-DIMM parallelism observability)."""
        dies = self.group_dies(group)
        return {
            "reads": sum(d.read_count for d in dies),
            "writes": sum(d.write_count for d in dies),
        }

    def register_stats(self, stats) -> None:
        """Publish DIMM totals and per-group counters under this scope."""
        stats.register("counters", self.counters)
        for group in range(self.groups):
            stats.register(
                f"group{group}", lambda g=group: self.group_counters(g)
            )
