"""Open-channel PMEM: the paper's hardware contribution (PSM + Bare-NVDIMM)."""

from repro.ocpmem.ecc import (
    EccResult,
    SymbolECC,
    UncorrectableError,
    XORCodec,
    xor_bytes,
)
from repro.ocpmem.nvdimm import BareNVDIMM, DieSlot, Layout
from repro.ocpmem.psm import PSM, MachineCheckError, PSMConfig
from repro.ocpmem.wear import FeistelPermutation, StartGap, WearRegisters

__all__ = [
    "BareNVDIMM",
    "DieSlot",
    "EccResult",
    "FeistelPermutation",
    "Layout",
    "MachineCheckError",
    "PSM",
    "PSMConfig",
    "StartGap",
    "SymbolECC",
    "UncorrectableError",
    "WearRegisters",
    "XORCodec",
    "xor_bytes",
]
