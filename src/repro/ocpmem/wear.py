"""Start-Gap wear leveling with a static address randomizer (§V-A, [53]).

Start-Gap avoids per-line mapping tables entirely: the memory keeps one
spare line and two registers.  Every ``threshold`` writes, the *gap* (the
spare) moves down by one line — the line above it is copied into it — and
when the gap has traversed the whole space the *start* register advances,
rotating the logical-to-physical mapping by one.  A static randomizer
(a seeded Feistel permutation here) spreads logically-adjacent hot lines
across the physical space so the rotation actually levels wear.

The whole metadata footprint is the start/gap offsets, the write counter,
and the randomizer seed — the <64 B register file the paper persists at
the EP-cut (§VIII); :meth:`StartGap.registers` /
:meth:`StartGap.restore_registers` round-trip it.

The future-work extension (periodic seed rotation to resist adversarial
single-address write streams) is implemented by :meth:`rotate_seed`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro import _np as _nphelper

__all__ = ["FeistelPermutation", "StartGap", "WearRegisters"]

MoveFn = Callable[[int, int], None]


class FeistelPermutation:
    """Seeded bijection on [0, n) via a 4-round Feistel network.

    The network permutes a 2w-bit domain (the smallest even-bit-width
    power of two >= n); cycle-walking re-applies it until the value lands
    back inside [0, n), which preserves bijectivity on the subdomain.
    """

    ROUNDS = 4

    def __init__(self, n: int, seed: int) -> None:
        if n <= 0:
            raise ValueError("domain size must be positive")
        self.n = n
        self.seed = seed
        bits = max(2, (n - 1).bit_length())
        if bits % 2:
            bits += 1
        self._half_bits = bits // 2
        self._half_mask = (1 << self._half_bits) - 1
        self._domain = 1 << bits
        self._keys = [
            (seed * 0x9E3779B1 + r * 0x85EBCA77) & 0xFFFFFFFF
            for r in range(self.ROUNDS)
        ]

    def _round(self, value: int, key: int) -> int:
        value = (value ^ key) & 0xFFFFFFFF
        value = (value * 0xC2B2AE35 + 0x165667B1) & 0xFFFFFFFF
        value ^= value >> 13
        return value & self._half_mask

    def _permute_once(self, x: int) -> int:
        left = x >> self._half_bits
        right = x & self._half_mask
        for key in self._keys:
            left, right = right, left ^ self._round(right, key)
        return (left << self._half_bits) | right

    def apply(self, x: int) -> int:
        if not 0 <= x < self.n:
            raise ValueError(f"{x} outside domain [0, {self.n})")
        if self.n == 1:
            return 0
        y = self._permute_once(x)
        while y >= self.n:  # cycle-walk back into the subdomain
            y = self._permute_once(y)
        return y

    def _permute_once_many(self, x):
        """Vectorized :meth:`_permute_once` over a uint64 ndarray.

        One ufunc pass per Feistel round.  All arithmetic runs in uint64
        with explicit 32-bit masks, so every intermediate matches the
        arbitrary-precision Python ints masked by ``& 0xFFFFFFFF``.
        """
        np = _nphelper.np
        half_bits = np.uint64(self._half_bits)
        half_mask = np.uint64(self._half_mask)
        mask32 = np.uint64(0xFFFFFFFF)
        mul = np.uint64(0xC2B2AE35)
        add = np.uint64(0x165667B1)
        shift = np.uint64(13)
        left = x >> half_bits
        right = x & half_mask
        for key in self._keys:
            value = (right ^ np.uint64(key)) & mask32
            value = (value * mul + add) & mask32
            value ^= value >> shift
            value &= half_mask
            left, right = right, left ^ value
        return (left << half_bits) | right

    def apply_many(self, values):
        """Vectorized :meth:`apply` over an int64 ndarray of domain points.

        Cycle-walking re-permutes only the still-out-of-domain lanes via
        boolean masks until all land inside ``[0, n)``; the result equals
        element-wise :meth:`apply` exactly (same network, same walk).
        """
        np = _nphelper.np
        if self.n == 1:
            return np.zeros(len(values), dtype=np.int64)
        y = self._permute_once_many(values.astype(np.uint64))
        n = np.uint64(self.n)
        out = y >= n
        while bool(out.any()):
            y[out] = self._permute_once_many(y[out])
            out = y >= n
        return y.astype(np.int64)


@dataclass(frozen=True)
class WearRegisters:
    """The wear-leveler's persistent register file (fits in <64 B)."""

    start: int
    gap: int
    write_count: int
    seed: int
    gap_cycles: int


class StartGap:
    """Start-Gap wear-leveler over ``lines`` logical 64 B lines.

    Physical space is ``lines + 1`` (one spare).  ``move_fn(src, dst)`` is
    invoked for every gap movement so the owner (the PSM) can physically
    relocate data; it may be None for timing-only use.
    """

    #: Latency of one gap movement: one line read + one line write at media
    #: speed, performed in the background but charged to bookkeeping.
    GAP_MOVE_NS = 420.0

    def __init__(
        self,
        lines: int,
        threshold: int = 100,
        seed: int = 0x5EED,
        move_fn: Optional[MoveFn] = None,
        rotate_seed_every: Optional[int] = None,
        track_wear: bool = False,
        randomize_unit: int = 1,
    ) -> None:
        """``randomize_unit`` sets the randomizer's granularity in lines.

        The PSM uses 64 (one 4 KB page): pages scatter across the physical
        space for wear leveling while intra-page adjacency — what the
        per-die row buffers and the channel interleaving exploit — is
        preserved.  Start-Gap's per-line shifting still applies on top.
        """
        if lines <= 0:
            raise ValueError("need at least one line")
        if threshold <= 0:
            raise ValueError("gap-movement threshold must be positive")
        if randomize_unit <= 0:
            raise ValueError("randomize_unit must be positive")
        self.lines = lines
        self.threshold = threshold
        self.move_fn = move_fn
        self.rotate_seed_every = rotate_seed_every
        self.randomize_unit = randomize_unit
        units = max(1, lines // randomize_unit)
        self._units = units
        self._randomizer = FeistelPermutation(units, seed)
        self.start = 0
        self.gap = lines  # physical line `lines` is the initial spare
        self.write_count = 0
        self.gap_cycles = 0
        self.gap_moves = 0
        self.seed_rotations = 0
        #: Bumped whenever the logical-to-physical mapping changes (gap
        #: movement, seed rotation, register restore).  Lets callers
        #: memoize :meth:`map` results and invalidate by comparison
        #: instead of re-walking the Feistel network per access.
        self.generation = 0
        self.track_wear = track_wear
        self.physical_writes: dict[int, int] = {}

    # -- mapping ------------------------------------------------------------

    def map(self, logical_line: int) -> int:
        """Logical line -> physical line under randomizer + start/gap."""
        if not 0 <= logical_line < self.lines:
            raise ValueError(
                f"logical line {logical_line} outside [0, {self.lines})"
            )
        randomized = self._randomize_line(logical_line)
        physical = (randomized + self.start) % self.lines
        if physical >= self.gap:
            physical += 1
        return physical

    def _randomize_line(self, line: int) -> int:
        if self.randomize_unit == 1:
            return self._randomizer.apply(line) if self.lines > 1 else 0
        unit, offset = divmod(line, self.randomize_unit)
        if unit >= self._units:
            # The partial tail unit past the permutation domain stays put.
            return line
        return self._randomizer.apply(unit) * self.randomize_unit + offset

    # -- write bookkeeping ----------------------------------------------------

    def record_write(self, logical_line: int) -> float:
        """Count a write; returns background overhead ns (0 or one gap move)."""
        if self.track_wear:
            phys = self.map(logical_line)
            self.physical_writes[phys] = self.physical_writes.get(phys, 0) + 1
        self.write_count += 1
        overhead = 0.0
        if self.write_count % self.threshold == 0:
            overhead += self._move_gap()
        if (
            self.rotate_seed_every is not None
            and self.gap_cycles
            and self.gap_cycles % self.rotate_seed_every == 0
            and self.gap == self.lines
            and self.gap_moves  # rotate exactly once per qualifying wrap
        ):
            overhead += self._maybe_rotate_seed()
        return overhead

    def _move_gap(self) -> float:
        """One Start-Gap step: the line above the gap slides into it.

        "Above" is circular over the N+1 physical slots: when the gap sits
        at slot 0 the next movement copies the top slot into it, the spare
        returns to the top, and Start advances — completing one rotation
        of the whole logical-to-physical mapping.
        """
        self.generation += 1
        if self.gap == 0:
            if self.move_fn is not None:
                self.move_fn(self.lines, 0)
            self.gap = self.lines
            self.start = (self.start + 1) % self.lines
            self.gap_cycles += 1
            self.gap_moves += 1
            return self.GAP_MOVE_NS
        src = self.gap - 1
        if self.move_fn is not None:
            self.move_fn(src, self.gap)
        self.gap -= 1
        self.gap_moves += 1
        return self.GAP_MOVE_NS

    _rotated_at_cycle = -1

    def _maybe_rotate_seed(self) -> float:
        if self._rotated_at_cycle == self.gap_cycles:
            return 0.0
        self._rotated_at_cycle = self.gap_cycles
        return self.rotate_seed()

    def rotate_seed(self) -> float:
        """Future-work extension: re-seed the static randomizer.

        A real implementation would migrate data lazily alongside gap
        movements; here the migration is modelled as a bulk cost and, when
        a ``move_fn`` is present, performed eagerly via a cycle decomposition
        of old->new physical mapping so functional contents stay correct.
        """
        old_map = {l: self.map(l) for l in range(self.lines)} if self.move_fn else None
        new_seed = (self._randomizer.seed * 0x9E3779B1 + 0xABCD) & 0xFFFFFFFF
        self._randomizer = FeistelPermutation(self._units, new_seed)
        self.seed_rotations += 1
        self.generation += 1
        if old_map is not None and self.move_fn is not None:
            self._migrate(old_map)
        return self.GAP_MOVE_NS * self.lines  # bulk migration cost

    def _migrate(self, old_map: dict[int, int]) -> None:
        """Physically permute data from the old mapping to the new one.

        ``transfer`` (old physical -> new physical) is a bijection over the
        mapped slots; it is walked as disjoint cycles using the gap's spare
        slot as scratch, so every line's bytes land where the new mapping
        expects them.
        """
        assert self.move_fn is not None
        new_map = {l: self.map(l) for l in range(self.lines)}
        transfer = {old_map[l]: new_map[l] for l in range(self.lines)}
        inverse = {dst: src for src, dst in transfer.items()}
        scratch = self.gap  # the spare slot is mapped by no logical line
        done: set[int] = set()
        for first in list(transfer):
            if first in done or transfer[first] == first:
                done.add(first)
                continue
            self.move_fn(first, scratch)
            done.add(first)
            hole = first
            while True:
                src = inverse[hole]
                if src == first:
                    self.move_fn(scratch, hole)
                    break
                self.move_fn(src, hole)
                done.add(src)
                hole = src

    # -- register persistence (EP-cut) ---------------------------------------

    def registers(self) -> WearRegisters:
        return WearRegisters(
            start=self.start,
            gap=self.gap,
            write_count=self.write_count,
            seed=self._randomizer.seed,
            gap_cycles=self.gap_cycles,
        )

    def restore_registers(self, regs: WearRegisters) -> None:
        self.start = regs.start
        self.gap = regs.gap
        self.write_count = regs.write_count
        self.gap_cycles = regs.gap_cycles
        self._randomizer = FeistelPermutation(self._units, regs.seed)
        self.generation += 1

    # -- endurance analysis -----------------------------------------------------

    def wear_imbalance(self) -> float:
        """max/mean physical write count (1.0 = perfectly level)."""
        if not self.physical_writes:
            return 0.0
        counts = self.physical_writes.values()
        mean = sum(counts) / self.lines  # spread over all lines incl. cold
        return max(counts) / mean if mean else 0.0
