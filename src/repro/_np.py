"""Central numpy import guard and columnar-kernel mode switch.

Every module that optionally accelerates with numpy imports it from
here instead of growing its own ``try: import numpy`` block — one
place decides whether the interpreter has numpy and whether the
columnar kernels should use it.

Two independent questions are answered:

* :data:`HAVE_NUMPY` — is numpy importable at all?  Fixed at import
  time.  Setting the ``REPRO_NO_NUMPY`` environment variable before
  the first ``repro`` import forces False, which is how the CI
  fallback leg proves no-numpy parity without uninstalling anything.
* :func:`kernels_enabled` — should the exact-path columnar kernels
  (DRAM/PSM/PMEM ``access_batch`` and the window array backing) run
  vectorized right now?  Defaults to :data:`HAVE_NUMPY`; tests and
  benchmarks flip it per-run with :func:`set_kernel_mode` to compare
  the numpy kernels against the byte-identical Python loops on the
  same interpreter.

The kernels themselves guarantee observational identity with the
scalar loops (same float expressions in the same order — see
DESIGN.md "Columnar kernel layer"), so the mode switch changes *how*
a window is served, never *what* it returns.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = [
    "HAVE_NUMPY",
    "kernel_mode",
    "kernels_enabled",
    "np",
    "set_kernel_mode",
]

try:
    if os.environ.get("REPRO_NO_NUMPY"):
        raise ImportError("numpy disabled by REPRO_NO_NUMPY")
    import numpy as np  # type: ignore[no-redef]

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

#: None = follow HAVE_NUMPY; "numpy" = force kernels (raises without
#: numpy); "fallback" = force the pure-python loops.
_mode: Optional[str] = None


def set_kernel_mode(mode: Optional[str]) -> None:
    """Force the columnar-kernel mode for this process.

    ``"numpy"`` requires numpy to be importable; ``"fallback"`` runs
    the byte-identical Python loops even when numpy is present;
    ``None`` restores the default (numpy when available).
    """
    global _mode
    if mode not in (None, "numpy", "fallback"):
        raise ValueError(f"unknown kernel mode {mode!r}")
    if mode == "numpy" and not HAVE_NUMPY:
        raise RuntimeError("cannot force numpy kernels: numpy unavailable")
    _mode = mode


def kernel_mode() -> str:
    """The effective mode: ``"numpy"`` or ``"fallback"``."""
    if _mode is not None:
        return _mode
    return "numpy" if HAVE_NUMPY else "fallback"


def kernels_enabled() -> bool:
    """Should the exact-path columnar kernels run vectorized?"""
    if _mode is not None:
        return _mode == "numpy"
    return HAVE_NUMPY


def fold_left_sum(initial: float, values) -> float:
    """``initial + v0 + v1 + ...`` in strict left-to-right order.

    Bitwise-identical to the scalar ``total += value`` loop: numpy's
    ``add.accumulate`` is a sequential fold (unlike ``np.sum``'s
    pairwise reduction, which associates differently).  ``values`` is
    a 1-D float64 ndarray.
    """
    n = len(values)
    if n == 0:
        return initial
    buf = np.empty(n + 1, dtype=np.float64)
    buf[0] = initial
    buf[1:] = values
    return float(np.add.accumulate(buf)[-1])
