"""Media-error interposer: transient retries, stuck cells, retirement.

PRAM media wears out; the paper's PSM answers with XCC reconstruction
and Start-Gap wear leveling.  :class:`MediaFaultModel` injects the
failure side of that story at the port boundary, as a controller would
see it:

* a :data:`~repro.faults.plan.TRANSIENT` fault fails one read in flight
  and succeeds on the controller's retry — the caller sees true data
  plus a retry/backoff latency;
* a :data:`~repro.faults.plan.STUCK` fault is a permanently bad cell:
  reads are ECC detect→correct (correction latency, true data) until
  ``escalate_after`` corrections, then the controller escalates and
  *retires* the unit — remaps it to a spare, one-time migration cost,
  clean reads forever after.  With ``remap_enabled=False`` (the
  deliberately broken degradation rule) escalation has nowhere to go:
  the read returns corrupted bytes, which the persistency oracle flags
  as a torn line.

The model overrides only the scalar ``access``; the
:class:`~repro.memory.port.Interposer` override-detection contract then
routes ``access_batch`` and ``flush_extents`` through the scalar hook
element-wise, so every execution path sees identical fault behavior for
free.  Fault state is *media-side* (stuck cells stay stuck, the
retirement map lives in PSM metadata), so it deliberately survives
``power_cycle`` — which is exactly what compound drills need when a
second cut lands mid-recovery.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.faults.plan import TRANSIENT, MediaFault
from repro.memory.port import Interposer, MemoryBackend
from repro.memory.request import (
    CACHELINE_BYTES,
    MemoryRequest,
    MemoryResponse,
)
from repro.sim.stats import StatsRegistry

__all__ = ["MediaFaultModel"]


class MediaFaultModel(Interposer):
    """Inject transient and stuck-at media faults on the read path.

    Timing knobs are nanoseconds, charged on top of whatever the inner
    backend reports: ``retry_ns`` per transient controller retry,
    ``correction_ns`` per ECC detect→correct, ``migration_ns`` once per
    retired unit (the spare-copy).
    """

    def __init__(
        self,
        inner: MemoryBackend,
        faults: Sequence[MediaFault] = (),
        *,
        remap_enabled: bool = True,
        retry_ns: float = 250.0,
        correction_ns: float = 180.0,
        migration_ns: float = 1200.0,
        line_bytes: int = CACHELINE_BYTES,
    ) -> None:
        super().__init__(inner)
        self.remap_enabled = remap_enabled
        self.retry_ns = retry_ns
        self.correction_ns = correction_ns
        self.migration_ns = migration_ns
        self._line_bytes = line_bytes
        self._transient: set[int] = set()
        self._stuck: dict[int, int] = {}
        for fault in faults:
            if fault.kind == TRANSIENT:
                self._transient.add(fault.line)
            else:
                self._stuck[fault.line] = fault.escalate_after
        #: corrected reads served so far per stuck line
        self._corrected: dict[int, int] = {}
        self._retired: set[int] = set()
        self.transient_retries = 0
        self.ecc_corrections = 0
        self.units_retired = 0
        self.uncorrectable_reads = 0

    # -- fault semantics ----------------------------------------------------

    def _perturbed(
        self,
        request: MemoryRequest,
        response: MemoryResponse,
        extra_ns: float,
        *,
        corrupt: bool = False,
        reconstructed: bool = True,
    ) -> MemoryResponse:
        data = response.data
        if corrupt and data:
            # A stuck cell with no spare to remap to: the first byte
            # reads back inverted, so a whole-line version payload is no
            # longer uniform — the litmus torn-line detector fires.
            data = bytes([data[0] ^ 0xFF]) + data[1:]
        return MemoryResponse(
            request,
            complete_time=response.complete_time + extra_ns,
            occupied_until=max(response.occupied_until,
                               response.complete_time + extra_ns),
            data=data,
            reconstructed=reconstructed or response.reconstructed,
            blocked_ns=response.blocked_ns + extra_ns,
            error_contained=response.error_contained and not corrupt,
        )

    def access(self, request: MemoryRequest) -> MemoryResponse:
        response = self.inner.access(request)
        if not request.is_read:
            return response
        line = request.address // self._line_bytes
        if line in self._transient:
            # One in-flight flip; the controller's retry reads clean.
            self._transient.discard(line)
            self.transient_retries += 1
            return self._perturbed(request, response, self.retry_ns)
        if line in self._retired or line not in self._stuck:
            return response
        corrected = self._corrected.get(line, 0)
        if corrected < self._stuck[line]:
            self._corrected[line] = corrected + 1
            self.ecc_corrections += 1
            return self._perturbed(request, response, self.correction_ns)
        if self.remap_enabled:
            # Graceful degradation: retire the unit, migrate to a spare.
            self._retired.add(line)
            self.units_retired += 1
            return self._perturbed(request, response, self.migration_ns)
        self.uncorrectable_reads += 1
        return self._perturbed(request, response, self.correction_ns,
                               corrupt=True, reconstructed=False)

    # -- lifecycle ----------------------------------------------------------

    def power_cycle(self) -> None:
        # Stuck cells are physics and the retirement map is persistent
        # controller metadata: both survive the rails dropping.  An
        # armed transient is a pending in-flight flip and stays armed.
        self.inner.power_cycle()

    # -- introspection ------------------------------------------------------

    def counters(self) -> dict[str, float]:
        merged = dict(self.inner.counters())
        merged.update({
            "media_transient_retries": float(self.transient_retries),
            "media_ecc_corrections": float(self.ecc_corrections),
            "media_units_retired": float(self.units_retired),
            "media_uncorrectable_reads": float(self.uncorrectable_reads),
        })
        return merged

    def fault_counters(self) -> Mapping[str, int]:
        """Just this interposer's counters (drill report material)."""
        return {
            "transient_retries": self.transient_retries,
            "ecc_corrections": self.ecc_corrections,
            "units_retired": self.units_retired,
            "uncorrectable_reads": self.uncorrectable_reads,
        }

    def register_stats(self, stats: StatsRegistry) -> None:
        stats.register("media.transient_retries",
                       lambda: float(self.transient_retries))
        stats.register("media.ecc_corrections",
                       lambda: float(self.ecc_corrections))
        stats.register("media.units_retired",
                       lambda: float(self.units_retired))
        stats.register("media.uncorrectable_reads",
                       lambda: float(self.uncorrectable_reads))
        self.inner.register_stats(stats)
