"""Compound-fault subsystem: declarative fault plans, drilled end to end.

The paper validates Stop-and-Go by pulling AC from a prototype once per
run; real robustness questions are compound — what if the power fails
*again* while Go is replaying the EP-cut, mid wear-register restore?
What if the cut lands inside an in-flight ``flush_extents`` and tears
the extent?  What if the PSM line recovery reads back is worn out?
This package makes those scenarios first-class data:

* :mod:`repro.faults.plan`     — :class:`FaultPlan` / :class:`MediaFault`
  declarations plus the seeded :func:`generate_plan` generator
* :mod:`repro.faults.compound` — :class:`CompoundFaultInjector`, a cut
  *schedule* on one global tick count spanning program and recovery
  traffic
* :mod:`repro.faults.media`    — :class:`MediaFaultModel`, transient
  retry/backoff and stuck-at detect→correct→escalate→retire at the port
  boundary
* :mod:`repro.faults.drill`    — execution (looping Go protocol),
  oracle checks against recoverable-state rules, whole-scenario
  counterexample minimization, and the ``repro drill`` campaign
"""

from repro.faults.compound import CompoundFaultInjector
from repro.faults.drill import (
    DrillOutcome,
    DrillReport,
    DrillRun,
    DrillVerdict,
    drill_trial,
    execute_plan,
    minimize_drill,
    run_drill,
    run_drill_program,
)
from repro.faults.media import MediaFaultModel
from repro.faults.plan import (
    STUCK,
    TRANSIENT,
    FaultPlan,
    MediaFault,
    generate_plan,
)

__all__ = [
    "STUCK",
    "TRANSIENT",
    "CompoundFaultInjector",
    "DrillOutcome",
    "DrillReport",
    "DrillRun",
    "DrillVerdict",
    "FaultPlan",
    "MediaFault",
    "MediaFaultModel",
    "drill_trial",
    "execute_plan",
    "generate_plan",
    "minimize_drill",
    "run_drill",
    "run_drill_program",
]
