"""Multi-cut power-failure injection on one continuous tick count.

:class:`~repro.memory.port.FaultInjector` fires once and is done; real
power problems cluster (a failing PSU browns out again seconds into the
reboot it caused).  :class:`CompoundFaultInjector` generalizes the
injector to a *schedule* of cuts over one global operation count: when
the rails die (:meth:`power_fail`) the next scheduled cut re-arms
**without rewinding** ``op_index``, so cut indices keep counting through
whatever recovery traffic follows — a cut at ``cuts[0] + 1`` lands on
the very first access Go issues, i.e. inside recovery, before the wear
registers are restored.

All the prefix-splitting machinery is inherited unchanged: a later cut
landing inside an in-flight ``access_batch`` window or ``flush_extents``
extent list is served exactly up to the cut line (torn extents) on every
execution path.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.memory.port import FaultInjector, MemoryBackend

__all__ = ["CompoundFaultInjector"]


class CompoundFaultInjector(FaultInjector):
    """A :class:`FaultInjector` driven by a schedule of cuts.

    ``cuts`` are strictly increasing global operation indices.  The
    first is armed at construction; each :meth:`power_fail` (the rails
    actually dying) re-arms the next.  ``cuts_fired`` counts cuts that
    tripped, for drill accounting.
    """

    def __init__(
        self,
        inner: MemoryBackend,
        cuts: Sequence[int] = (),
        *,
        count_drains: bool = True,
    ) -> None:
        schedule = tuple(cuts)
        previous = -1
        for cut in schedule:
            if cut <= previous:
                raise ValueError(
                    f"cuts must be strictly increasing and >= 0, "
                    f"got {schedule}")
            previous = cut
        super().__init__(
            inner,
            crash_at_op=schedule[0] if schedule else None,
            count_drains=count_drains,
        )
        self.cuts = schedule
        #: index into ``cuts`` of the next cut to arm after a power_fail
        self._next_cut = 1 if schedule else 0
        self.cuts_fired = 0

    def power_fail(self) -> None:
        """Rails die; the next scheduled cut arms on the same tick count.

        ``op_index`` deliberately keeps counting: recovery traffic
        shares the global tick space, which is what lets a plan schedule
        a cut *inside* Go (crash-during-recovery) deterministically.
        """
        if self.tripped:
            self.cuts_fired += 1
        super().power_fail()
        if self._next_cut < len(self.cuts):
            self.crash_at_op = self.cuts[self._next_cut]
            self._next_cut += 1
            self.tripped = False
        else:
            self.crash_at_op = None

    def disarm(self) -> None:
        """Drop any remaining schedule (final observation must not cut)."""
        self.crash_at_op = None

    @property
    def cuts_remaining(self) -> int:
        """Scheduled cuts that have not yet tripped."""
        remaining = len(self.cuts) - self._next_cut
        if self.crash_at_op is not None and not self.tripped:
            remaining += 1
        return remaining

    def schedule(self, crash_at_op: Optional[int]) -> None:
        """Single-cut re-arming is a litmus-enumerator contract; a
        compound schedule is fixed at construction."""
        raise NotImplementedError(
            "CompoundFaultInjector takes its whole schedule at "
            "construction; build a fresh injector per plan")
