"""Compound-fault drills: nested cuts and degraded media, oracle-checked.

One drill = one litmus program × one :class:`~repro.faults.plan.FaultPlan`,
executed on every lowering (scalar / batch / extent) through the chain

    CompoundFaultInjector(MediaFaultModel(litmus_backend(program)))

with a looping Go protocol: each power failure power-cycles the chain,
issues one BCB probe read (the crash-during-Go window — the wear
registers are *not yet restored*), restores the committed wear blob,
then scrub-reads every observe line.  A later scheduled cut lands
anywhere in that traffic, and recovery simply runs again — Go is
idempotent, and the drill proves it stays so.

The oracle story: recovery traffic is read-only, so no matter how many
cuts land inside Go, the recovered state must be one the *first* cut
already allowed (`PersistencyModel.recovery_is_idempotent`), and no read
may hand the host corrupt bytes (`media_errors_contained`).  The
existing :func:`~repro.litmus.oracle.allowed_after` fold therefore
checks compound runs with ``crash_at = plan.cuts[0]`` — plus a direct
cross-check executing the plan truncated to its first cut and demanding
byte-identical observations.

On a violation, :func:`minimize_drill` delta-minimizes over *both* the
program's ops and the plan's cuts and media faults, so the reported
counterexample is 1-minimal in the whole scenario.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.engine.base import canonical_engine_name
from repro.faults.compound import CompoundFaultInjector
from repro.faults.media import MediaFaultModel
from repro.faults.plan import FaultPlan, generate_plan
from repro.litmus.engine import (
    EXECUTION_PATHS,
    drive_program,
    litmus_backend,
    observe_state,
)
from repro.litmus.generate import generate_program
from repro.litmus.ir import (
    LitmusProgram,
    build_timeline,
    prefix_events,
    total_ticks,
)
from repro.litmus.oracle import (
    Counterexample,
    PersistencyModel,
    allowed_after,
    check_observation,
)
from repro.memory.port import InjectedPowerFailure
from repro.memory.request import CACHELINE_BYTES, MemoryOp, MemoryRequest
from repro.orchestrate import Campaign, CampaignProgress, CampaignRunner

__all__ = [
    "DrillOutcome",
    "DrillReport",
    "DrillRun",
    "DrillVerdict",
    "drill_trial",
    "execute_plan",
    "minimize_drill",
    "run_drill",
    "run_drill_program",
]


@dataclass
class DrillRun:
    """One path's execution of one plan: final state plus accounting."""

    observed: dict[int, tuple[int, bool]]
    crashed: bool
    recoveries: int
    counters: dict[str, int]


def execute_plan(
    program: LitmusProgram,
    path: str,
    plan: FaultPlan,
    *,
    remap_enabled: bool = True,
) -> DrillRun:
    """Run ``program`` under ``plan`` via one lowering, to quiescence.

    The recovery loop terminates because every iteration either
    completes cleanly or consumes one scheduled cut, and the schedule
    is finite.  Before the final observation the injector is disarmed:
    a cut index beyond all program + recovery traffic never fires.
    """
    media = MediaFaultModel(litmus_backend(program), faults=plan.media,
                            remap_enabled=remap_enabled)
    port = CompoundFaultInjector(media, cuts=plan.cuts, count_drains=True)
    observe = program.observe_lines()
    drive = drive_program(port, program, path)

    recoveries = 0
    crashed = drive.crashed
    while crashed:
        crashed = False
        recoveries += 1     # Go passes *started*: nested cuts are visible
        port.power_fail()   # rails die; the next scheduled cut arms
        try:
            # Go, step 1: fetch the BCB.  One probe read *before* the
            # wear registers are restored — the crash-during-Go window
            # the plan's follow-on cuts aim for.
            port.access(MemoryRequest(
                MemoryOp.READ, address=observe[0] * CACHELINE_BYTES,
                time=0.0))
            # Go, step 2: restore the EP-cut register file.
            if drive.committed is not None:
                port.restore_wear_registers(drive.committed)
            # Go, step 3: scrub — touch every line recovery hands back.
            for line in observe:
                port.access(MemoryRequest(
                    MemoryOp.READ, address=line * CACHELINE_BYTES, time=0.0))
        except InjectedPowerFailure:
            crashed = True
    port.disarm()
    return DrillRun(
        observed=observe_state(port, program),
        crashed=drive.crashed,
        recoveries=recoveries,
        counters=dict(media.fault_counters()),
    )


@dataclass
class DrillVerdict:
    """Everything one program × plan drill established."""

    program: LitmusProgram
    plan: FaultPlan
    executed: int = 0
    recoveries: int = 0
    counters: dict = field(default_factory=dict)
    violations: list[Counterexample] = field(default_factory=list)
    divergences: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.divergences


def _scenario(program: LitmusProgram, plan: FaultPlan) -> str:
    return f"{program.render()} x {plan.render()}"


def run_drill_program(
    program: LitmusProgram,
    plan: FaultPlan,
    *,
    remap_enabled: bool = True,
    model: Optional[PersistencyModel] = None,
    paths: Sequence[str] = EXECUTION_PATHS,
) -> DrillVerdict:
    """Execute one compound-fault scenario on every path and check it."""
    for path in paths:
        # Paths are execution-engine registry names; unknown ones raise
        # the registry's ValueError (listing the available engines).
        canonical_engine_name(path)
    model = model or PersistencyModel()
    timeline = build_timeline(program)
    ticks = total_ticks(timeline)
    crash_at = next((cut for cut in plan.cuts if cut < ticks), None)
    events = prefix_events(timeline, crash_at)
    allowed = allowed_after(events, program.observe_lines(), model)
    rendered = _scenario(program, plan)
    verdict = DrillVerdict(program=program, plan=plan)

    runs: dict[str, DrillRun] = {}
    for path in paths:
        run = execute_plan(program, path, plan, remap_enabled=remap_enabled)
        runs[path] = run
        verdict.executed += 1
        verdict.recoveries = max(verdict.recoveries, run.recoveries)
        for key, value in run.counters.items():
            verdict.counters[key] = max(verdict.counters.get(key, 0), value)
        for line, version, ok_set, torn in check_observation(
                run.observed, allowed, model, final=crash_at is None):
            verdict.violations.append(Counterexample(
                program=rendered, path=path, crash_at=crash_at,
                line=line, observed=version, allowed=ok_set, torn=torn,
                trace=tuple(repr(event) for event in events),
            ))

    baseline_path = next(iter(runs))
    baseline = runs[baseline_path].observed
    for path, run in runs.items():
        if run.observed != baseline:
            verdict.divergences.append(
                f"{rendered}: state diverges — {baseline_path} read "
                f"{baseline}, {path} read {run.observed}")

    if model.recovery_is_idempotent and len(plan.cuts) > 1 \
            and crash_at is not None:
        # Direct recoverable-state cross-check: the nested-cut run must
        # land on exactly the state the first cut alone produces.  One
        # lowering suffices — cross-path identity is asserted above.
        probe_path = next(iter(paths))
        single = execute_plan(program, probe_path, plan.truncated(),
                              remap_enabled=remap_enabled)
        verdict.executed += 1
        nested = runs[probe_path].observed
        for line in sorted(nested):
            if nested[line] != single.observed[line]:
                verdict.violations.append(Counterexample(
                    program=rendered, path=probe_path, crash_at=crash_at,
                    line=line, observed=nested[line][0],
                    allowed=(single.observed[line][0],),
                    torn=nested[line][1],
                    trace=("recovery-not-idempotent",)
                    + tuple(repr(event) for event in events),
                ))
    return verdict


def _first_violation(
    program: LitmusProgram,
    plan: FaultPlan,
    *,
    remap_enabled: bool,
    model: Optional[PersistencyModel],
    paths: Sequence[str],
) -> Optional[Counterexample]:
    verdict = run_drill_program(program, plan, remap_enabled=remap_enabled,
                                model=model, paths=paths)
    return verdict.violations[0] if verdict.violations else None


def minimize_drill(
    program: LitmusProgram,
    plan: FaultPlan,
    *,
    remap_enabled: bool = True,
    model: Optional[PersistencyModel] = None,
    paths: Sequence[str] = EXECUTION_PATHS,
) -> Optional[Counterexample]:
    """Shrink a violating scenario to 1-minimality over ops AND faults.

    Classic greedy delta debugging, with the candidate space widened to
    the whole scenario: drop one IR op, one scheduled cut, or one media
    fault per step, keeping any removal that still violates.  The
    result is 1-minimal — removing any single remaining element makes
    the violation disappear.  Returns ``None`` if the scenario passes.
    """
    kwargs = dict(remap_enabled=remap_enabled, model=model, paths=paths)
    if _first_violation(program, plan, **kwargs) is None:
        return None
    current_program, current_plan = program, plan
    shrunk = True
    while shrunk:
        shrunk = False
        for index in range(len(current_program.ops)):
            ops = current_program.ops[:index] + current_program.ops[index + 1:]
            if not ops:
                continue
            candidate = LitmusProgram(
                current_program.name, ops, current_program.lines,
                regions=current_program.regions)
            if _first_violation(candidate, current_plan, **kwargs) is not None:
                current_program = candidate
                shrunk = True
                break
        if shrunk:
            continue
        for index in range(len(current_plan.cuts)):
            cuts = current_plan.cuts[:index] + current_plan.cuts[index + 1:]
            candidate_plan = FaultPlan(current_plan.name, cuts,
                                       current_plan.media)
            if _first_violation(current_program, candidate_plan,
                                **kwargs) is not None:
                current_plan = candidate_plan
                shrunk = True
                break
        if shrunk:
            continue
        for index in range(len(current_plan.media)):
            media = current_plan.media[:index] + current_plan.media[index + 1:]
            candidate_plan = FaultPlan(current_plan.name, current_plan.cuts,
                                       media)
            if _first_violation(current_program, candidate_plan,
                                **kwargs) is not None:
                current_plan = candidate_plan
                shrunk = True
                break
    final_program = LitmusProgram(
        f"{current_program.name}+min", current_program.ops,
        current_program.lines, regions=current_program.regions)
    final_plan = FaultPlan(f"{current_plan.name}+min", current_plan.cuts,
                           current_plan.media)
    violation = _first_violation(final_program, final_plan, **kwargs)
    assert violation is not None  # shrinking preserved the violation
    return violation


# -- campaign wiring --------------------------------------------------------


@dataclass
class DrillOutcome:
    """One trial's contribution to a drill campaign."""

    programs: int = 0
    operations: int = 0      # IR ops across generated programs
    cuts: int = 0            # scheduled power cuts across plans
    media_faults: int = 0
    executed: int = 0        # plan executions (all paths + idempotence probe)
    recoveries: int = 0      # Go passes started (max across paths)
    transient_retries: int = 0
    ecc_corrections: int = 0
    units_retired: int = 0
    violations: list[str] = field(default_factory=list)


@dataclass
class DrillReport:
    """Outcome of one compound-fault drill campaign."""

    component: str
    trials: int
    programs: int = 0
    operations: int = 0
    cuts: int = 0
    media_faults: int = 0
    executed: int = 0
    recoveries: int = 0
    transient_retries: int = 0
    ecc_corrections: int = 0
    units_retired: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return (f"{self.component}: {self.trials} trials, "
                f"{self.programs} programs, {self.cuts} cuts, "
                f"{self.media_faults} media faults "
                f"({self.executed} executions, {self.recoveries} recoveries, "
                f"{self.ecc_corrections} corrected, "
                f"{self.units_retired} retired) -> {verdict}")


def drill_trial(
    trial: int,
    rng: random.Random,
    shape: str = "all",
    paths: Sequence[str] = EXECUTION_PATHS,
    rules: Optional[dict] = None,
    remap_enabled: bool = True,
) -> DrillOutcome:
    """Generate one program + fault plan and drill it on every path.

    ``rules`` override :class:`PersistencyModel` fields (plain dict, so
    campaign params stay JSON-fingerprintable); ``remap_enabled=False``
    is the deliberately broken degradation rule the acceptance tests
    prove is detected and minimized end to end.
    """
    model = PersistencyModel(**rules) if rules else None
    program = generate_program(rng, shape)
    plan = generate_plan(rng, program)
    verdict = run_drill_program(program, plan, remap_enabled=remap_enabled,
                                model=model, paths=paths)
    outcome = DrillOutcome(
        programs=1,
        operations=len(program.ops),
        cuts=len(plan.cuts),
        media_faults=len(plan.media),
        executed=verdict.executed,
        recoveries=verdict.recoveries,
        transient_retries=verdict.counters.get("transient_retries", 0),
        ecc_corrections=verdict.counters.get("ecc_corrections", 0),
        units_retired=verdict.counters.get("units_retired", 0),
    )
    for divergence in verdict.divergences:
        outcome.violations.append(f"trial {trial}: {divergence}")
    if verdict.violations:
        outcome.violations.append(
            f"trial {trial}: {verdict.violations[0].render()}")
        minimized = minimize_drill(program, plan, remap_enabled=remap_enabled,
                                   model=model, paths=paths)
        if minimized is not None:
            outcome.violations.append(
                f"trial {trial} (minimized): {minimized.render()}")
    return outcome


def _merge(component: str, outcomes: list) -> DrillReport:
    report = DrillReport(component=component, trials=len(outcomes))
    for outcome in outcomes:
        report.programs += outcome.programs
        report.operations += outcome.operations
        report.cuts += outcome.cuts
        report.media_faults += outcome.media_faults
        report.executed += outcome.executed
        report.recoveries += outcome.recoveries
        report.transient_retries += outcome.transient_retries
        report.ecc_corrections += outcome.ecc_corrections
        report.units_retired += outcome.units_retired
        report.violations.extend(outcome.violations)
    return report


def run_drill(
    trials: int = 100,
    shape: str = "all",
    seed: int = 2206,
    *,
    remap_enabled: bool = True,
    rules: Optional[dict] = None,
    engine: Optional[str] = None,
    jobs: int = 1,
    cache_dir=None,
    progress: Optional[CampaignProgress] = None,
    trial_timeout: Optional[float] = None,
) -> DrillReport:
    """Run a drill campaign; the empty violation list is the pass.

    ``engine`` restricts the drills to one execution engine (registry
    name); the default drills every lowering and cross-checks them.
    """
    runner = CampaignRunner(jobs=jobs, cache_dir=cache_dir,
                            progress=progress, trial_timeout=trial_timeout)
    name = "drill" if shape in (None, "all") else f"drill-{shape}"
    params: dict = {"shape": shape or "all"}
    if not remap_enabled:
        params["remap_enabled"] = False
    if rules:
        params["rules"] = rules
    if engine is not None:
        # Fingerprinted: one-engine shards never alias all-engine ones.
        params["paths"] = (canonical_engine_name(engine),)
    # Streaming merge: fold shard summaries (columnar sums + violation
    # strings) instead of unpickling every cached trial body.
    summary = runner.run_summaries(Campaign(
        name=name, trials=trials, trial_fn=drill_trial,
        seed=seed, params=params,
    ))
    report = DrillReport(component=name, trials=summary.trials,
                         violations=list(summary.violations))
    for field_name in ("programs", "operations", "cuts", "media_faults",
                       "executed", "recoveries", "transient_retries",
                       "ecc_corrections", "units_retired"):
        setattr(report, field_name, summary.total(field_name))
    return report
