"""Declarative, seeded fault plans for compound-fault drills.

A :class:`FaultPlan` is the whole adversarial scenario for one drill in
data form: a strictly increasing sequence of power-cut tick indices
(global :class:`~repro.memory.port.FaultInjector` ticks, so later cuts
land inside the recovery traffic the first cut provoked) plus a set of
:class:`MediaFault` declarations the media-error interposer arms.

Plans are frozen, picklable and JSON-renderable, so they ride the
:mod:`repro.orchestrate` shard cache like any campaign parameter, and
:func:`generate_plan` draws every choice from the injected
``random.Random`` — a plan is a pure function of ``(rng, program)``
exactly as litmus programs are of ``(rng, shape)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.litmus.ir import LitmusProgram, build_timeline, total_ticks

__all__ = [
    "STUCK",
    "TRANSIENT",
    "FaultPlan",
    "MediaFault",
    "generate_plan",
]

#: A transient media fault: one read of the line fails at the media and
#: succeeds on the controller's retry (bit flip in flight, not in cell).
TRANSIENT = "transient"
#: A permanent stuck-at cell: every read needs ECC correction until the
#: controller escalates and retires/remaps the unit.
STUCK = "stuck"

_KINDS = (STUCK, TRANSIENT)


@dataclass(frozen=True)
class MediaFault:
    """One faulty media line and how it misbehaves.

    ``escalate_after`` (stuck faults only) is how many corrected reads
    the controller tolerates before escalating from detect→correct to
    unit retirement; transients ignore it.
    """

    line: int
    kind: str = STUCK
    escalate_after: int = 1

    def __post_init__(self) -> None:
        if self.line < 0:
            raise ValueError(f"negative fault line {self.line}")
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown media-fault kind {self.kind!r}; "
                f"have {', '.join(_KINDS)}")
        if self.escalate_after < 0:
            raise ValueError(
                f"escalate_after must be >= 0, got {self.escalate_after}")

    def render(self) -> str:
        if self.kind == TRANSIENT:
            return f"{self.kind}@L{self.line}"
        suffix = "" if self.escalate_after == 1 \
            else f"/esc{self.escalate_after}"
        return f"{self.kind}@L{self.line}{suffix}"


@dataclass(frozen=True)
class FaultPlan:
    """A compound-fault scenario: power-cut schedule plus media faults.

    ``cuts`` are global injector tick indices, strictly increasing.  The
    first cut lands inside the program's own traffic; later cuts count
    onward through whatever recovery traffic the drill issues, which is
    how a cut is scheduled *inside* Go.  A cut index beyond all traffic
    simply never fires (the drill disarms before its final observation).
    """

    name: str = "plan"
    cuts: tuple[int, ...] = ()
    media: tuple[MediaFault, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "cuts", tuple(self.cuts))
        object.__setattr__(self, "media", tuple(self.media))
        previous = -1
        for cut in self.cuts:
            if cut <= previous:
                raise ValueError(
                    f"cuts must be strictly increasing and >= 0, got "
                    f"{self.cuts}")
            previous = cut

    def first_cut(self) -> int | None:
        return self.cuts[0] if self.cuts else None

    def truncated(self, name: str | None = None) -> "FaultPlan":
        """The same scenario with only the first cut (idempotence probe)."""
        return FaultPlan(name=name or f"{self.name}~1cut",
                         cuts=self.cuts[:1], media=self.media)

    def render(self) -> str:
        cuts = ",".join(str(cut) for cut in self.cuts) or "-"
        media = ",".join(fault.render() for fault in self.media) or "-"
        return f"{self.name}[cuts={cuts}; media={media}]"


def generate_plan(
    rng: random.Random,
    program: LitmusProgram,
    *,
    max_cuts: int = 3,
    media_probability: float = 0.5,
) -> FaultPlan:
    """One seeded fault plan shaped to ``program``'s timeline.

    The first cut always lands inside the program's tick space (so every
    plan actually crashes, including inside an in-flight SNG_CUT
    writeback — the torn-extent case); follow-on cuts are spaced by at
    most one recovery window so they plausibly land on Go's probe read,
    between ``power_cycle`` and the wear-register restore, or in the
    recovery scrub.  Media faults are drawn from the observe set so the
    final read-back actually exercises them.
    """
    ticks = total_ticks(build_timeline(program))
    observe = program.observe_lines()
    #: Go issues one BCB probe read plus one scrub read per observe line
    #: (see repro.faults.drill) — the tick budget of one recovery pass.
    recovery_window = 1 + len(observe)

    count = 1
    if max_cuts >= 2 and rng.random() < 0.6:
        count += 1
    if max_cuts >= 3 and rng.random() < 0.35:
        count += 1
    cuts = [rng.randrange(max(1, ticks))]
    for _ in range(count - 1):
        cuts.append(cuts[-1] + 1 + rng.randrange(recovery_window + 1))

    media: list[MediaFault] = []
    if rng.random() < media_probability:
        wanted = 1 if len(observe) == 1 or rng.random() < 0.7 else 2
        for line in sorted(rng.sample(observe, wanted)):
            kind = STUCK if rng.random() < 0.6 else TRANSIENT
            media.append(MediaFault(line, kind))
    return FaultPlan(name="plan", cuts=tuple(cuts), media=tuple(media))
