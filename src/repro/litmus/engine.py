"""Crash-point enumeration: run litmus programs through the port stack.

Each program is lowered once per execution engine — ``scalar`` (one
``access`` per op), ``batch`` (the window engine: store/load runs
through ``access_batch``, the SnG writeback as one request window) and
``extent`` (the SnG writeback through ``flush_extents`` on coalesced
dirty extents) — and every lowering is executed once per crash point
with a fresh backend chain and a
:class:`~repro.memory.port.FaultInjector` armed at that index.  The
lowerings themselves live on the engines
(:mod:`repro.engine.lowering`); :func:`drive_program` here is the
registry dispatch, so a newly registered engine is immediately
enumerable as a litmus path.

All lowerings produce the *same* injector tick sequence (a batch of n
requests ticks n times, an extent of n lines ticks n times), so the
crash-point space is shared and, because the lowerings are
observationally equivalent by the PR 4/5 contracts, every crash point
must recover to byte-identical state on all paths — the engine asserts
exactly that, besides checking each recovered state against the
persistency oracle.

Enumeration is pruned by the SHA-256 digest of the crash prefix's
state-mutating event subsequence (:func:`repro.litmus.ir.prefix_digest`):
crash points separated only by loads/fences/markers reach the same
post-crash state and are verified once.

The wear threshold is configured astronomically high so the Start-Gap
mapping never moves during a program: ``power_cycle`` resets the wear
registers, and with a moved gap an *uncommitted* crash would read
through a stale mapping — a real LightPC hazard, but one owned by the
SnG register capture (exercised here via ``capture_registers`` /
``restore_wear_registers`` round-trips), not by the per-store
durability rules this oracle checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.engine.base import canonical_engine_name, resolve_engine
from repro.engine.lowering import DriveResult
from repro.litmus.ir import (
    LitmusProgram,
    build_timeline,
    iter_crash_points,
    prefix_digest,
    prefix_events,
    total_ticks,
)
from repro.litmus.oracle import (
    Counterexample,
    PersistencyModel,
    allowed_after,
    check_observation,
)
from repro.memory.port import AddressRange, AddressRangePartition, \
    FaultInjector, MemoryBackend
from repro.memory.request import CACHELINE_BYTES, MemoryOp, MemoryRequest
from repro.ocpmem.psm import PSM, PSMConfig

__all__ = [
    "EXECUTION_PATHS",
    "DriveResult",
    "ProgramVerdict",
    "drive_program",
    "litmus_backend",
    "observe_state",
    "run_program",
]

EXECUTION_PATHS = ("scalar", "batch", "extent")

#: Wear moves would entangle the oracle with Start-Gap remapping; park
#: the threshold far beyond any litmus program's store count.
_FROZEN_WEAR = 1 << 30


def _litmus_config() -> PSMConfig:
    return PSMConfig(dimms=2, lines_per_dimm=256,
                     wear_threshold=_FROZEN_WEAR)


def _make_inner(program: LitmusProgram) -> MemoryBackend:
    if program.regions == 1:
        return PSM(_litmus_config(), functional=True)
    span = -(-program.lines // program.regions)
    regions = []
    for index in range(program.regions):
        start = index * span * CACHELINE_BYTES
        end = min((index + 1) * span, program.lines) * CACHELINE_BYTES
        regions.append(AddressRange(
            start, end, PSM(_litmus_config(), functional=True)))
    return AddressRangePartition(regions)


def litmus_backend(program: LitmusProgram) -> MemoryBackend:
    """A fresh functional backend of the litmus topology for ``program``.

    Single-region programs get one frozen-wear functional PSM;
    multi-region programs an :class:`AddressRangePartition` over one PSM
    per region.  The compound-fault drills build their interposer chains
    on top of exactly this topology so drill and litmus verdicts are
    comparable.
    """
    return _make_inner(program)


@dataclass
class ProgramVerdict:
    """Everything one program's exhaustive enumeration established."""

    program: LitmusProgram
    #: injector ticks per lowering — the size of one path's crash space
    crash_points: int
    #: states actually executed (all paths, dedup survivors + completions)
    executed: int = 0
    #: crash points skipped because their mutating prefix was already seen
    deduped: int = 0
    violations: list[Counterexample] = field(default_factory=list)
    #: cross-path observational mismatches (scalar vs batch vs extent)
    divergences: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.divergences


def drive_program(port, program: LitmusProgram, path: str) -> DriveResult:
    """Issue ``program``'s port traffic through ``port`` via one engine.

    ``path`` is an execution-engine registry name (``batch`` resolves
    to the window engine by alias).  Every engine's lowering produces
    the identical injector tick sequence (see the module docstring), so
    any injector armed on ``port`` trips at the same global tick index
    regardless of ``path``.
    """
    return resolve_engine(path).drive_program(port, program)


def observe_state(port, program: LitmusProgram) -> dict[int, tuple[int, bool]]:
    """Read back every observe line: line -> (version byte, torn)."""
    observed: dict[int, tuple[int, bool]] = {}
    for line in program.observe_lines():
        response = port.access(MemoryRequest(
            MemoryOp.READ, address=line * CACHELINE_BYTES, time=0.0))
        data = response.data
        if not data or not any(data):
            observed[line] = (0, False)
        else:
            observed[line] = (data[0], len(set(data)) != 1)
    return observed


def _execute(program: LitmusProgram, path: str,
             crash_at: Optional[int]) -> dict[int, tuple[int, bool]]:
    """One run of ``program`` via ``path``, cut at ``crash_at`` ticks.

    Returns the post-run observation: line -> (version byte, torn),
    read back after ``power_fail`` + wear-register restore for crashed
    runs, or directly for the run to completion (``crash_at=None``).
    """
    port = FaultInjector(_make_inner(program), crash_at_op=crash_at,
                         count_drains=True)
    drive = drive_program(port, program, path)
    if drive.crashed:
        port.power_fail()
        if drive.committed is not None:
            port.restore_wear_registers(drive.committed)
    return observe_state(port, program)


def run_program(
    program: LitmusProgram,
    model: Optional[PersistencyModel] = None,
    paths: Sequence[str] = EXECUTION_PATHS,
) -> ProgramVerdict:
    """Exhaustively enumerate every crash point of every lowering."""
    for path in paths:
        # Any registered engine is a valid path; unknown names raise
        # the registry's ValueError (listing what *is* available).
        canonical_engine_name(path)
    model = model or PersistencyModel()
    timeline = build_timeline(program)
    lines = program.observe_lines()
    verdict = ProgramVerdict(program, crash_points=total_ticks(timeline))
    rendered = program.render()
    #: digest -> {path: observed} for the cross-path identity check
    states_by_digest: dict[object, dict[str, dict]] = {}

    for path in paths:
        seen: set[str] = set()
        for crash_at in iter_crash_points(timeline):
            if crash_at is None:
                key: object = "final"
            else:
                key = prefix_digest(timeline, crash_at)
                if key in seen:
                    verdict.deduped += 1
                    continue
                seen.add(key)
            observed = _execute(program, path, crash_at)
            verdict.executed += 1
            states_by_digest.setdefault(key, {})[path] = observed

            events = prefix_events(timeline, crash_at)
            allowed = allowed_after(events, lines, model)
            for line, version, ok_set, torn in check_observation(
                    observed, allowed, model, final=crash_at is None):
                verdict.violations.append(Counterexample(
                    program=rendered, path=path, crash_at=crash_at,
                    line=line, observed=version, allowed=ok_set, torn=torn,
                    trace=tuple(repr(event) for event in events),
                ))

    for key, per_path in sorted(states_by_digest.items(), key=lambda kv: str(kv[0])):
        baseline_path = next(iter(per_path))
        baseline = per_path[baseline_path]
        for path, observed in per_path.items():
            if observed != baseline:
                verdict.divergences.append(
                    f"{rendered}: state {str(key)[:12]} diverges — "
                    f"{baseline_path} read {baseline}, {path} read {observed}")
    return verdict
