"""Crash-consistency litmus engine.

Small generated programs of stores, loads, flushes, fences, SnG cuts
and checkpoint markers run through the :class:`~repro.memory.port`
interposer stack with the power cut at *every* operation index, and
every recovered state checked against the persistency model's allowed
outcomes (arXiv:2405.18575 applied to the LightPC port layer).

Layering:

* :mod:`repro.litmus.ir`        — the litmus-program IR and its timeline
* :mod:`repro.litmus.generate`  — seeded shape + fuzz generators
* :mod:`repro.litmus.oracle`    — allowed-outcome computation and checks
* :mod:`repro.litmus.engine`    — crash-point enumeration over the port
* :mod:`repro.litmus.minimize`  — counterexample delta-minimization
* :mod:`repro.litmus.campaign`  — CampaignRunner wiring (``repro litmus``)
"""

from repro.litmus.campaign import LitmusOutcome, LitmusReport, run_litmus
from repro.litmus.engine import EXECUTION_PATHS, ProgramVerdict, run_program
from repro.litmus.generate import SHAPES, generate_program
from repro.litmus.ir import LitmusOp, LitmusProgram, OpKind, build_timeline
from repro.litmus.minimize import minimize_counterexample
from repro.litmus.oracle import Counterexample, PersistencyModel

__all__ = [
    "Counterexample",
    "EXECUTION_PATHS",
    "LitmusOp",
    "LitmusOutcome",
    "LitmusProgram",
    "LitmusReport",
    "OpKind",
    "PersistencyModel",
    "ProgramVerdict",
    "SHAPES",
    "build_timeline",
    "generate_program",
    "minimize_counterexample",
    "run_litmus",
    "run_program",
]
