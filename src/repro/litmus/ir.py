"""The litmus-program IR and its port-operation timeline.

A litmus program is a short straight-line sequence over a tiny line
address space: stores (each carrying a unique version tag), loads, the
PSM flush port, a fence (port ``drain`` — ordering only, *no*
durability in the LightPC model), an SnG cut (write back every dirty
line, flush, capture the wear registers) and a checkpoint marker.

The timeline maps a program onto the exact sequence of
:class:`~repro.memory.port.FaultInjector` ticks its execution will
produce, *before* any execution happens: stores/loads/flushes tick
once, a fence ticks once (the litmus injector counts drains), and an
SnG cut ticks once per dirty-line writeback plus once for its flush.
Because writebacks and stores never depend on response data, the
timeline is a pure function of the program — crash-point enumeration
and prefix digests are computed from it without touching a backend.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.memory.request import CACHELINE_BYTES

__all__ = [
    "LitmusOp",
    "LitmusProgram",
    "OpKind",
    "TimelineEntry",
    "build_timeline",
    "line_value",
    "prefix_digest",
    "prefix_events",
]


class OpKind(enum.Enum):
    """One litmus IR opcode."""

    STORE = "store"          # write line := version (1 tick)
    LOAD = "load"            # read line (1 tick)
    FLUSH = "flush"          # PSM flush port: global durability barrier
    FENCE = "fence"          # port drain: ordering only, NOT durable
    SNG_CUT = "sng_cut"      # dirty writeback + flush + register capture
    CHECKPOINT = "checkpoint"  # marker only; no port traffic


@dataclass(frozen=True)
class LitmusOp:
    """One IR operation; ``line``/``version`` are opcode-dependent."""

    kind: OpKind
    line: int = -1
    version: int = 0

    def render(self) -> str:
        if self.kind is OpKind.STORE:
            return f"store L{self.line}=v{self.version}"
        if self.kind in (OpKind.LOAD, OpKind.FLUSH):
            return f"{self.kind.value} L{self.line}"
        return self.kind.value


@dataclass(frozen=True)
class LitmusProgram:
    """A straight-line litmus test over ``lines`` cache lines.

    ``regions`` > 1 asks the harness for an
    :class:`~repro.memory.port.AddressRangePartition` topology with the
    line space split evenly across that many backends — the
    partition-straddle shapes place extents abutting exactly at the
    region boundary.
    """

    name: str
    ops: tuple[LitmusOp, ...]
    lines: int
    regions: int = 1

    def __post_init__(self) -> None:
        if self.lines < 1:
            raise ValueError(f"program needs >= 1 line, got {self.lines}")
        if not 1 <= self.regions <= self.lines:
            raise ValueError(
                f"regions must be in 1..{self.lines}, got {self.regions}")
        seen: set[int] = set()
        for op in self.ops:
            if op.kind in (OpKind.STORE, OpKind.LOAD, OpKind.FLUSH):
                if not 0 <= op.line < self.lines:
                    raise ValueError(
                        f"{op.render()} outside line space 0..{self.lines - 1}")
            if op.kind is OpKind.STORE:
                if not 1 <= op.version <= 0xFF:
                    raise ValueError(
                        f"store version {op.version} outside 1..255")
                if op.version in seen:
                    raise ValueError(
                        f"duplicate store version {op.version}")
                seen.add(op.version)

    def stored_lines(self) -> list[int]:
        """Lines the program ever stores to, ascending."""
        return sorted({op.line for op in self.ops
                       if op.kind is OpKind.STORE})

    def observe_lines(self) -> list[int]:
        """Lines the recovery check reads back: every stored line plus
        its immediate neighbours (to catch stray writes), ascending."""
        lines: set[int] = set()
        for line in self.stored_lines():
            for candidate in (line - 1, line, line + 1):
                if 0 <= candidate < self.lines:
                    lines.add(candidate)
        return sorted(lines) or [0]

    def render(self) -> str:
        body = "; ".join(op.render() for op in self.ops)
        extra = f", {self.regions} regions" if self.regions > 1 else ""
        return f"{self.name}[{self.lines} lines{extra}]: {body}"


def line_value(version: int) -> bytes:
    """The whole-line payload for a store version (torn-write detector)."""
    return bytes([version & 0xFF]) * CACHELINE_BYTES


@dataclass(frozen=True)
class TimelineEntry:
    """One timeline event; ``ticks`` is 0 or 1 FaultInjector ticks."""

    event: tuple
    ticks: int = 1
    #: index of the IR op this entry lowers (for counterexample traces)
    op_index: int = -1


def build_timeline(program: LitmusProgram) -> list[TimelineEntry]:
    """The per-tick event sequence any lowering of ``program`` produces.

    Events are tuples: ``('store', line, version)``, ``('load', line)``,
    ``('flush',)``, ``('fence',)``, ``('writeback', line)``,
    ``('commit',)`` (zero-tick: the wear registers were captured right
    after a cut's flush completed) and ``('checkpoint',)`` (zero-tick).
    """
    timeline: list[TimelineEntry] = []
    dirty: set[int] = set()
    for index, op in enumerate(program.ops):
        if op.kind is OpKind.STORE:
            dirty.add(op.line)
            timeline.append(TimelineEntry(
                ("store", op.line, op.version), op_index=index))
        elif op.kind is OpKind.LOAD:
            timeline.append(TimelineEntry(("load", op.line), op_index=index))
        elif op.kind is OpKind.FLUSH:
            timeline.append(TimelineEntry(("flush",), op_index=index))
        elif op.kind is OpKind.FENCE:
            timeline.append(TimelineEntry(("fence",), op_index=index))
        elif op.kind is OpKind.SNG_CUT:
            for line in sorted(dirty):
                timeline.append(TimelineEntry(
                    ("writeback", line), op_index=index))
            timeline.append(TimelineEntry(("flush",), op_index=index))
            timeline.append(TimelineEntry(
                ("commit",), ticks=0, op_index=index))
            dirty.clear()
        elif op.kind is OpKind.CHECKPOINT:
            timeline.append(TimelineEntry(
                ("checkpoint",), ticks=0, op_index=index))
    return timeline


def total_ticks(timeline: list[TimelineEntry]) -> int:
    return sum(entry.ticks for entry in timeline)


def prefix_events(timeline: list[TimelineEntry],
                  crash_at: Optional[int]) -> list[tuple]:
    """Events applied before a crash at tick index ``crash_at``.

    The injector raises *before* forwarding the scheduled op, so ticks
    ``0..crash_at - 1`` complete; zero-tick entries apply as soon as the
    walk reaches them.  ``crash_at=None`` means the program ran whole.
    """
    events: list[tuple] = []
    tick = 0
    for entry in timeline:
        if entry.ticks:
            if crash_at is not None and tick == crash_at:
                break
            tick += entry.ticks
        events.append(entry.event)
    return events


#: Events that can change durable/row-buffer state *or* the oracle's
#: allowed set.  Loads and checkpoint markers are pure on both axes in
#: this simulator (reads never evict, markers emit no traffic), so two
#: crash prefixes equal on this subsequence reach the same post-crash
#: state and the same verdict — under every rule configuration.  Fences
#: never move media state (``drain`` closes no row buffer) but *do*
#: move the allowed set under a broken ``fence_is_barrier`` model, so
#: they stay in the digest: dedup must never hide a rule violation.
_MUTATING = {"store", "writeback", "flush", "fence", "commit"}


def prefix_digest(timeline: list[TimelineEntry],
                  crash_at: Optional[int]) -> str:
    """SHA-256 over the state-mutating subsequence of a crash prefix."""
    digest = hashlib.sha256()
    for event in prefix_events(timeline, crash_at):
        if event[0] in _MUTATING:
            digest.update(repr(event).encode("ascii"))
            digest.update(b"\x00")
    return digest.hexdigest()


def iter_crash_points(timeline: list[TimelineEntry]) -> Iterator[Optional[int]]:
    """Every crash tick index, then ``None`` for the run-to-completion."""
    for crash_at in range(total_ticks(timeline)):
        yield crash_at
    yield None
