"""Greedy delta-minimization of violating litmus programs.

When the oracle flags a program, the raw trace is rarely the story —
classic delta debugging applies: repeatedly drop one IR op, re-run the
full crash-point enumeration on the candidate, and keep any removal
that still violates.  The loop terminates because the program strictly
shrinks, and the result is 1-minimal: removing any single remaining op
makes the violation disappear.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.litmus.engine import EXECUTION_PATHS, run_program
from repro.litmus.ir import LitmusProgram
from repro.litmus.oracle import Counterexample, PersistencyModel

__all__ = ["minimize_counterexample"]


def _first_violation(program: LitmusProgram,
                     model: Optional[PersistencyModel],
                     paths: Sequence[str]) -> Optional[Counterexample]:
    verdict = run_program(program, model=model, paths=paths)
    return verdict.violations[0] if verdict.violations else None


def minimize_counterexample(
    program: LitmusProgram,
    model: Optional[PersistencyModel] = None,
    paths: Sequence[str] = EXECUTION_PATHS,
) -> Optional[Counterexample]:
    """Shrink ``program`` to a 1-minimal violator; its counterexample.

    Returns ``None`` when the program does not violate at all (nothing
    to minimize).  The returned counterexample references the minimized
    program, whose name gains a ``+min`` suffix so reports distinguish
    it from the generated original.
    """
    if _first_violation(program, model, paths) is None:
        return None
    current = program
    shrunk = True
    while shrunk:
        shrunk = False
        for index in range(len(current.ops)):
            candidate_ops = current.ops[:index] + current.ops[index + 1:]
            if not candidate_ops:
                continue
            candidate = LitmusProgram(
                current.name, candidate_ops, current.lines,
                regions=current.regions)
            if _first_violation(candidate, model, paths) is not None:
                current = candidate
                shrunk = True
                break
    final = LitmusProgram(
        f"{current.name}+min", current.ops, current.lines,
        regions=current.regions)
    violation = _first_violation(final, model, paths)
    assert violation is not None  # shrinking preserved the violation
    return violation
