"""Seeded litmus-program generators: four classic shapes plus a fuzzer.

Every generator draws all randomness from the injected
``random.Random`` — never module state — so a program is a pure
function of ``(shape, rng)`` and campaigns replay byte-identically at
any parallelism (the :mod:`repro.orchestrate` determinism contract).

The shapes target the orderings the LightPC port stack has actually to
get right:

* ``store-store-reorder``   — two lines racing a barrier; a crash
  between their drains may expose either order, but never an unstored
  value and never a flushed store lost.
* ``flush-without-fence``   — stores after the last flush are
  speculative; the oracle must allow both their presence and absence.
* ``dirty-extent-straddle`` — a store run crossing a wear-randomizer
  unit boundary, cut by SnG mid-writeback (the PR 5 extent path).
* ``partition-straddle``    — extents abutting exactly at an
  ``AddressRangePartition`` region boundary, so the extent lowering
  must split at the seam without dropping or doubling a line.
* ``fuzz``                  — weighted random mix of every opcode.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.litmus.ir import LitmusOp, LitmusProgram, OpKind

__all__ = ["SHAPES", "generate_program"]

#: wear_randomize_unit lines (PSMConfig default) — the straddle shape
#: crosses a multiple of this so its extent spans two randomizer units.
_RANDOMIZE_UNIT = 64


class _Builder:
    """Tiny helper threading unique store versions through a shape."""

    def __init__(self) -> None:
        self.ops: list[LitmusOp] = []
        self._version = 0

    def store(self, line: int) -> None:
        self._version += 1
        self.ops.append(LitmusOp(OpKind.STORE, line, self._version))

    def load(self, line: int) -> None:
        self.ops.append(LitmusOp(OpKind.LOAD, line))

    def flush(self, line: int = 0) -> None:
        self.ops.append(LitmusOp(OpKind.FLUSH, line))

    def fence(self) -> None:
        self.ops.append(LitmusOp(OpKind.FENCE))

    def cut(self) -> None:
        self.ops.append(LitmusOp(OpKind.SNG_CUT))

    def checkpoint(self) -> None:
        self.ops.append(LitmusOp(OpKind.CHECKPOINT))


def _store_store_reorder(rng: random.Random) -> LitmusProgram:
    lines = rng.randrange(4, 9)
    a, b = rng.sample(range(lines), 2)
    build = _Builder()
    build.store(a)
    build.store(b)
    build.flush(a)
    build.store(a)
    build.store(b)
    if rng.random() < 0.5:
        build.fence()
    build.load(b)
    build.load(a)
    return LitmusProgram("store-store-reorder", tuple(build.ops), lines)


def _flush_without_fence(rng: random.Random) -> LitmusProgram:
    lines = rng.randrange(3, 8)
    a = rng.randrange(lines)
    b = (a + 1 + rng.randrange(lines - 1)) % lines
    build = _Builder()
    build.store(a)
    build.flush(a)
    build.store(b)
    build.store(a)
    build.load(a)
    return LitmusProgram("flush-without-fence", tuple(build.ops), lines)


def _dirty_extent_straddle(rng: random.Random) -> LitmusProgram:
    # A run of stores crossing a randomizer-unit boundary, then an SnG
    # cut: the cut's writeback covers one coalesced extent straddling
    # the unit seam, and crash enumeration cuts inside the writeback.
    span = rng.randrange(3, 7)
    start = _RANDOMIZE_UNIT - rng.randrange(1, span)
    lines = _RANDOMIZE_UNIT + span + 2
    build = _Builder()
    for offset in range(span):
        build.store(start + offset)
    build.cut()
    build.store(start + rng.randrange(span))
    build.load(start)
    return LitmusProgram("dirty-extent-straddle", tuple(build.ops), lines)


def _partition_straddle(rng: random.Random) -> LitmusProgram:
    # Two regions split the line space at lines/2; the store run abuts
    # that seam from both sides so the extent lowering must split there.
    half = rng.randrange(4, 9)
    lines = 2 * half
    reach = rng.randrange(2, min(half, 4) + 1)
    build = _Builder()
    for line in range(half - reach, half + reach):
        build.store(line)
    build.cut()
    build.store(half - 1)
    build.store(half)
    if rng.random() < 0.5:
        build.flush(half)
    build.load(half - 1)
    return LitmusProgram("partition-straddle", tuple(build.ops), lines,
                         regions=2)


def _fuzz(rng: random.Random) -> LitmusProgram:
    lines = rng.randrange(2, 13)
    regions = 2 if lines >= 4 and rng.random() < 0.25 else 1
    count = rng.randrange(4, 13)
    build = _Builder()
    for _ in range(count):
        roll = rng.random()
        if roll < 0.50:
            build.store(rng.randrange(lines))
        elif roll < 0.65:
            build.load(rng.randrange(lines))
        elif roll < 0.75:
            build.flush(rng.randrange(lines))
        elif roll < 0.85:
            build.fence()
        elif roll < 0.95:
            build.cut()
        else:
            build.checkpoint()
    if not any(op.kind is OpKind.STORE for op in build.ops):
        build.store(rng.randrange(lines))
    return LitmusProgram("fuzz", tuple(build.ops), lines, regions=regions)


SHAPES: dict[str, Callable[[random.Random], LitmusProgram]] = {
    "store-store-reorder": _store_store_reorder,
    "flush-without-fence": _flush_without_fence,
    "dirty-extent-straddle": _dirty_extent_straddle,
    "partition-straddle": _partition_straddle,
    "fuzz": _fuzz,
}


def generate_program(rng: random.Random,
                     shape: Optional[str] = None) -> LitmusProgram:
    """One litmus program; ``shape=None``/``"all"`` picks per-trial."""
    if shape in (None, "all"):
        shape = rng.choice(sorted(SHAPES))
    try:
        generator = SHAPES[shape]
    except KeyError:
        raise ValueError(
            f"unknown litmus shape {shape!r}; "
            f"have {', '.join(sorted(SHAPES))}") from None
    return generator(rng)
