"""The persistency-model oracle: which recovered states are allowed.

The model is the LightPC port contract as documented in DESIGN.md §5:

* a store is *speculative* — it may or may not have reached media at a
  crash (row buffers drain in the background on page conflicts);
* the flush port is the only durability barrier: after ``flush()``
  every line reads its youngest stored version;
* a fence (``drain``) orders traffic but persists **nothing**;
* an SnG cut is a flush plus a wear-register capture, so it commits.

``allowed_after`` folds a timeline prefix into, per line, the version
guaranteed durable at the last barrier plus the set of versions stored
since — any of which a legal implementation may have drained early.
The rule booleans exist so tests can *break* the model on purpose
(e.g. pretend fences persist) and prove the engine reports the
violation with a minimized counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

__all__ = [
    "AllowedState",
    "Counterexample",
    "PersistencyModel",
    "allowed_after",
    "check_observation",
]


@dataclass(frozen=True)
class PersistencyModel:
    """Durability rules; defaults describe the real LightPC port."""

    #: the PSM flush port persists every outstanding store
    flush_is_barrier: bool = True
    #: a drain/fence persists outstanding stores (WRONG for LightPC —
    #: enable only to prove the engine detects oracle violations)
    fence_is_barrier: bool = False
    #: stores may drain to media early (row-buffer page conflicts); when
    #: False the oracle wrongly demands crash states never expose an
    #: unflushed store
    stores_may_drain_early: bool = True
    #: degraded media must stay *contained*: a worn/stuck line either
    #: corrects, retires to a spare, or machine-checks — it never hands
    #: the host corrupt bytes.  Torn observations are violations.  When
    #: False the oracle wrongly accepts torn lines as a legal degraded
    #: outcome, hiding broken remap/retirement paths.
    media_errors_contained: bool = True
    #: recovery must be idempotent: however many extra cuts land inside
    #: Go, the recovered state is one the *first* cut already allowed.
    #: When False the oracle wrongly widens a crash's allowed set to
    #: every version ever stored in the prefix — nested-cut data loss
    #: (a store regressing past its durability barrier) goes unseen.
    recovery_is_idempotent: bool = True


@dataclass
class AllowedState:
    """Per-line allowed outcomes after some event prefix."""

    #: version guaranteed durable (0 = initial zeroed media)
    base: int = 0
    #: versions stored since the last barrier; possibly durable
    maybe: set[int] = field(default_factory=set)
    #: youngest stored version (what a completed run must read)
    latest: int = 0

    def allowed(self, model: PersistencyModel) -> set[int]:
        if model.stores_may_drain_early:
            return {self.base} | self.maybe
        return {self.base}


def allowed_after(
    events: Iterable[tuple],
    lines: Iterable[int],
    model: Optional[PersistencyModel] = None,
) -> dict[int, AllowedState]:
    """Fold an applied-event prefix into per-line allowed outcomes."""
    model = model or PersistencyModel()
    events = list(events)
    states: dict[int, AllowedState] = {line: AllowedState() for line in lines}

    def barrier() -> None:
        for state in states.values():
            state.base = state.latest
            state.maybe.clear()

    for event in events:
        kind = event[0]
        if kind == "store":
            _, line, version = event
            state = states.setdefault(line, AllowedState())
            state.latest = version
            state.maybe.add(version)
        elif kind == "flush":
            if model.flush_is_barrier:
                barrier()
        elif kind == "fence":
            if model.fence_is_barrier:
                barrier()
        # loads, writebacks, commits and checkpoints never move the
        # allowed set: a writeback only re-dirties a row buffer (its
        # data is already in the maybe-set) and commit is about wear
        # registers, not data.
    if not model.recovery_is_idempotent:
        # Wrong-loose recoverable-state rule: fold every version a line
        # ever stored back into its maybe-set, as if repeated recovery
        # could legally resurrect (or lose) barrier-committed data.
        history: dict[int, set[int]] = {}
        for event in events:
            if event[0] == "store":
                history.setdefault(event[1], set()).add(event[2])
        for line, versions in history.items():
            states.setdefault(line, AllowedState()).maybe.update(versions)
    return states


@dataclass(frozen=True)
class Counterexample:
    """One oracle violation, with everything needed to replay it."""

    program: str          # rendered (possibly minimized) program
    path: str             # scalar | batch | extent
    crash_at: Optional[int]
    line: int
    observed: int
    allowed: tuple[int, ...]
    torn: bool = False
    trace: tuple[str, ...] = ()   # applied events up to the crash

    def render(self) -> str:
        where = "completion" if self.crash_at is None \
            else f"crash at op {self.crash_at}"
        if self.torn:
            what = f"line {self.line} torn (mixed versions)"
        else:
            what = (f"line {self.line} reads v{self.observed}, allowed "
                    f"{{{', '.join(f'v{v}' for v in self.allowed)}}}")
        return f"{self.program} [{self.path}, {where}]: {what}"


def check_observation(
    observed: Mapping[int, tuple[int, bool]],
    states: Mapping[int, AllowedState],
    model: PersistencyModel,
    *,
    final: bool = False,
) -> list[tuple[int, int, tuple[int, ...], bool]]:
    """Check a recovered (or final) state; returns raw violation tuples.

    ``observed`` maps line -> (version, torn).  For a completed run
    (``final=True``) every line must read its youngest stored version;
    after a crash it must read a member of the allowed set.
    """
    bad: list[tuple[int, int, tuple[int, ...], bool]] = []
    for line in sorted(observed):
        version, torn = observed[line]
        state = states.get(line, AllowedState())
        if torn:
            # A torn line is corrupt media reaching the host; only the
            # (wrong-loose) uncontained-media rule excuses it.
            if model.media_errors_contained:
                bad.append((line, version, tuple(sorted(state.maybe)), True))
            continue
        if final:
            allowed = {state.latest}
        else:
            allowed = state.allowed(model)
        if version not in allowed:
            bad.append((line, version, tuple(sorted(allowed)), False))
    return bad
