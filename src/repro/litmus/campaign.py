"""Litmus campaigns: millions of litmus×crash-point trials, sharded.

One campaign trial = one generated program, exhaustively enumerated
(every crash point × every execution path) by
:func:`repro.litmus.engine.run_program`.  Trials ride the
:mod:`repro.orchestrate` machinery unchanged — per-trial hashed RNGs,
shard cache, byte-identical serial/parallel merges — so the litmus
engine scales the same way the crash fuzzers do, and ``repro litmus``
inherits ``--jobs/--cache-dir/--progress`` for free.

On a violation the trial minimizes the offending program
(:mod:`repro.litmus.minimize`) and reports both the original and the
1-minimal counterexample, as plain strings so shard results stay
trivially picklable and cacheable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.engine.base import canonical_engine_name
from repro.litmus.engine import EXECUTION_PATHS, run_program
from repro.litmus.generate import generate_program
from repro.litmus.minimize import minimize_counterexample
from repro.litmus.oracle import PersistencyModel
from repro.orchestrate import Campaign, CampaignProgress, CampaignRunner

__all__ = ["LitmusOutcome", "LitmusReport", "litmus_trial", "run_litmus"]


@dataclass
class LitmusOutcome:
    """One trial's contribution: enumeration counters plus violations."""

    programs: int = 0
    operations: int = 0      # IR ops across generated programs
    crash_points: int = 0    # one lowering's crash space, summed
    executed: int = 0        # states executed (all paths, post-dedup)
    deduped: int = 0         # crash points pruned by the prefix digest
    violations: list[str] = field(default_factory=list)


@dataclass
class LitmusReport:
    """Outcome of one litmus campaign."""

    component: str
    trials: int
    programs: int = 0
    operations: int = 0
    crash_points: int = 0
    executed: int = 0
    deduped: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return (f"{self.component}: {self.trials} trials, "
                f"{self.programs} programs, {self.crash_points} crash points "
                f"({self.executed} states executed, {self.deduped} deduped) "
                f"-> {verdict}")


def litmus_trial(
    trial: int,
    rng: random.Random,
    shape: str = "all",
    paths: Sequence[str] = EXECUTION_PATHS,
    rules: Optional[dict] = None,
) -> LitmusOutcome:
    """Generate one program and enumerate it exhaustively.

    ``rules`` override :class:`PersistencyModel` fields (a plain dict so
    campaign params stay JSON-fingerprintable); passing a deliberately
    wrong rule set is how tests prove the campaign surfaces violations
    and minimized counterexamples end to end.
    """
    model = PersistencyModel(**rules) if rules else None
    program = generate_program(rng, shape)
    verdict = run_program(program, model=model, paths=paths)
    outcome = LitmusOutcome(
        programs=1,
        operations=len(program.ops),
        crash_points=verdict.crash_points,
        executed=verdict.executed,
        deduped=verdict.deduped,
    )
    for divergence in verdict.divergences:
        outcome.violations.append(f"trial {trial}: {divergence}")
    if verdict.violations:
        outcome.violations.append(
            f"trial {trial}: {verdict.violations[0].render()}")
        minimized = minimize_counterexample(program, model=model,
                                            paths=paths)
        if minimized is not None:
            outcome.violations.append(
                f"trial {trial} (minimized): {minimized.render()}")
    return outcome


def _merge(component: str, outcomes: list[LitmusOutcome]) -> LitmusReport:
    report = LitmusReport(component=component, trials=len(outcomes))
    for outcome in outcomes:
        report.programs += outcome.programs
        report.operations += outcome.operations
        report.crash_points += outcome.crash_points
        report.executed += outcome.executed
        report.deduped += outcome.deduped
        report.violations.extend(outcome.violations)
    return report


def run_litmus(
    trials: int = 200,
    shape: str = "all",
    seed: int = 2405,
    *,
    rules: Optional[dict] = None,
    engine: Optional[str] = None,
    jobs: int = 1,
    cache_dir=None,
    progress: Optional[CampaignProgress] = None,
) -> LitmusReport:
    """Run a litmus campaign; the empty violation list is the pass.

    ``engine`` restricts enumeration to one execution engine (registry
    name); the default enumerates every lowering and cross-checks them.
    """
    runner = CampaignRunner(jobs=jobs, cache_dir=cache_dir, progress=progress)
    name = "litmus" if shape in (None, "all") else f"litmus-{shape}"
    params: dict = {"shape": shape or "all"}
    if rules:
        params["rules"] = rules
    if engine is not None:
        # Part of the campaign fingerprint: a one-engine run must never
        # reload an all-engine shard (or vice versa).
        params["paths"] = (canonical_engine_name(engine),)
    # Streaming merge: shard *summaries* (columnar sums + violations)
    # fold straight into the report; cached shard bodies are never
    # unpickled and executed shards cross the process boundary packed.
    summary = runner.run_summaries(Campaign(
        name=name, trials=trials, trial_fn=litmus_trial,
        seed=seed, params=params,
    ))
    return LitmusReport(
        component=name,
        trials=summary.trials,
        programs=summary.total("programs"),
        operations=summary.total("operations"),
        crash_points=summary.total("crash_points"),
        executed=summary.total("executed"),
        deduped=summary.total("deduped"),
        violations=list(summary.violations),
    )
