"""STREAM sustainable-bandwidth benchmark (paper Fig. 17, [68]).

The four kernels walk arrays far larger than the cache, element by
element at 8 B granularity:

* ``copy``  — c[i] = a[i]            (1 read, 1 write per element)
* ``scale`` — b[i] = s * c[i]        (1 read, 1 write)
* ``add``   — c[i] = a[i] + b[i]     (2 reads, 1 write)
* ``triad`` — a[i] = b[i] + s * c[i] (2 reads, 1 write)

Add and Triad read two arrays per element, so their traffic is more
read-heavy — the paper's explanation for why they land closer to the
DRAM baseline on OC-PMEM.  Bandwidth is bytes-moved / wall-time as
measured by the caller.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from repro.workloads.trace import TraceRecord

__all__ = ["STREAM_KERNELS", "StreamKernel", "stream_kernel"]

_WORD = 8

STREAM_KERNELS = ("copy", "scale", "add", "triad")

#: (source arrays, destination array) per kernel, as array indices 0..2
_KERNEL_SHAPES: dict[str, tuple[tuple[int, ...], int]] = {
    "copy": ((0,), 2),
    "scale": ((2,), 1),
    "add": ((0, 1), 2),
    "triad": ((1, 2), 0),
}

#: Compute instructions per element (loads/stores are separate records).
_KERNEL_FLOPS: dict[str, int] = {"copy": 1, "scale": 2, "add": 2, "triad": 3}


@dataclass(frozen=True)
class StreamKernel:
    """A re-iterable trace for one STREAM kernel over 3 arrays."""

    #: fixed per-element access pattern throughout — stationary by
    #: construction, so the epoch engine may skip its steady state
    #: (``refs`` is the matching trace length hint)
    stationary = True

    kernel: str
    elements: int
    array_bytes: int
    base_address: int = 0

    def __post_init__(self) -> None:
        if self.kernel not in _KERNEL_SHAPES:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; expected {STREAM_KERNELS}"
            )
        if self.elements * _WORD > self.array_bytes:
            raise ValueError("array too small for element count")

    def _array_base(self, index: int) -> int:
        return self.base_address + index * self.array_bytes

    def __iter__(self) -> Iterator[TraceRecord]:
        sources, destination = _KERNEL_SHAPES[self.kernel]
        flops = _KERNEL_FLOPS[self.kernel]
        for i in range(self.elements):
            offset = i * _WORD
            for src in sources:
                yield TraceRecord(
                    instructions=0,
                    address=self._array_base(src) + offset,
                    is_write=False,
                )
            yield TraceRecord(
                instructions=flops,
                address=self._array_base(destination) + offset,
                is_write=True,
            )

    def windows(self, window: int = 4096) -> Iterator[list[TraceRecord]]:
        """The kernel's trace chunked into record windows (see
        :meth:`repro.workloads.trace.TraceGenerator.windows`)."""
        if window <= 0:
            raise ValueError("window must be positive")
        records = iter(self)
        while True:
            chunk = list(itertools.islice(records, window))
            if not chunk:
                return
            yield chunk

    @property
    def bytes_moved(self) -> int:
        """Bytes the kernel nominally transfers (STREAM's own accounting)."""
        sources, _ = _KERNEL_SHAPES[self.kernel]
        return self.elements * _WORD * (len(sources) + 1)

    @property
    def refs(self) -> int:
        sources, _ = _KERNEL_SHAPES[self.kernel]
        return self.elements * (len(sources) + 1)


def stream_kernel(
    kernel: str, elements: int = 32_768, array_bytes: int | None = None
) -> StreamKernel:
    """Build a kernel with arrays sized ~4x past the element span."""
    if array_bytes is None:
        array_bytes = elements * _WORD
    return StreamKernel(kernel=kernel, elements=elements, array_bytes=array_bytes)
