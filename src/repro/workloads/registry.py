"""Table II: benchmark characterization targets for all 17 workloads.

The paper characterizes five suites — Crypto (AES, SHA512), HPC proxies
(miniFE, AMG, SNAP), SPEC CPU2006 (perlbench, bzip2, gcc, mcf, astar,
cactusADM, dealII, wrf), and in-memory DBs (Redis, KeyDB, Memcached,
SQLite) — by memory read/write counts, read/write ratio, row-buffer hit
counts, D$ hit ratios, and threading.  Those published numbers are the
*calibration targets* here: each entry carries the paper's Table II row
plus the locality-profile parameters that make the synthetic trace land
near it, and the characterization experiment measures the result back.

``read_after_write`` is tuned from the paper's Fig. 16 narrative: wrf
re-reads its own recent predictions heavily (most head-of-line blocking),
mcf writes so rarely that read-after-write conflicts are rare.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.trace import LocalityProfile

__all__ = ["CATEGORIES", "WORKLOAD_SPECS", "WorkloadSpec", "spec", "workload_names"]

CATEGORIES = ("crypto", "hpc", "spec", "inmemdb")


@dataclass(frozen=True)
class WorkloadSpec:
    """One Table II row + the trace parameters that approximate it."""

    name: str
    category: str
    #: Paper-reported memory reads/writes (absolute counts).
    paper_reads: float
    paper_writes: float
    #: Paper-reported read/write ratio ("#Write" column context).
    paper_rw_ratio: float
    #: Paper-reported row-buffer hit count.
    paper_rb_hits: float
    #: Paper-reported D$ hit ratios (percent).
    paper_read_hit: float
    paper_write_hit: float
    multithread: bool
    profile: LocalityProfile

    @property
    def threads(self) -> int:
        return 8 if self.multithread else 1


def _profile(
    read_hit: float,
    write_hit: float,
    rw_ratio: float,
    *,
    ws_lines: int,
    raw: float,
    page_loc: float,
    seq: float = 0.2,
    ipa: float = 3.0,
) -> LocalityProfile:
    """Derive trace knobs from Table II targets.

    The derivation works backwards from the target *miss* budget:

    * ``raw`` here is the share of read **misses** that are read-after-
      write traffic (the Fig. 16 narrative: nearly all of wrf's misses
      chase freshly written pages, nearly none of mcf's do).  The
      CPU-level RAW probability is therefore miss_rate * raw, keeping the
      D$ hit target intact while controlling the memory-level RAW mix.
    * the remaining miss budget is provided by uniform working-set
      accesses; the hot-set fraction absorbs everything else.
    * the write-hit target maps to store temporal locality (re-dirtying
      recent lines), and ``page_loc`` to the page clustering that drives
      PSM row-buffer behaviour.
    """
    miss = max(0.004, 1.0 - read_hit / 100.0)
    raw_prob = min(0.5, miss * raw / 0.9)  # ~90% of RAW-page reads miss
    residual = max(0.002, miss - raw_prob * 0.9)
    hot_fraction = min(0.998, max(0.05, 1.0 - residual / (1.0 - raw_prob)))
    write_fraction = 1.0 / (1.0 + rw_ratio)
    return LocalityProfile(
        working_set_lines=ws_lines,
        hot_lines=192,
        hot_fraction=hot_fraction,
        sequential_fraction=seq,
        write_fraction=write_fraction,
        read_after_write=raw_prob,
        write_page_locality=page_loc,
        write_line_reuse=min(0.99, max(0.0, write_hit / 100.0)),
        instructions_per_access=ipa,
    )


WORKLOAD_SPECS: dict[str, WorkloadSpec] = {}


def _register(spec_: WorkloadSpec) -> None:
    WORKLOAD_SPECS[spec_.name] = spec_


_register(WorkloadSpec(
    "aes", "crypto", 21.7e6, 4.5e6, 4.8, 1, 99.5, 98.9, False,
    _profile(99.5, 98.9, 4.8, ws_lines=512, raw=0.30, page_loc=0.97,
             seq=0.05, ipa=8.0),
))
_register(WorkloadSpec(
    "sha512", "crypto", 6.3e6, 0.438e6, 14.0, 1, 99.9, 99.9, False,
    _profile(99.9, 99.9, 14.0, ws_lines=256, raw=0.20, page_loc=0.98,
             seq=0.05, ipa=10.0),
))
_register(WorkloadSpec(
    "minife", "hpc", 419e6, 37.3e6, 11.0, 3.9e3, 93.3, 99.4, True,
    _profile(93.3, 99.4, 11.0, ws_lines=32_768, raw=0.55, page_loc=0.90,
             seq=0.30, ipa=3.5),
))
_register(WorkloadSpec(
    "amg", "hpc", 513e6, 46.7e6, 11.0, 116e3, 84.1, 89.8, True,
    _profile(84.1, 89.8, 11.0, ws_lines=65_536, raw=0.45, page_loc=0.75,
             seq=0.25, ipa=3.5),
))
_register(WorkloadSpec(
    "snap", "hpc", 370e6, 137e6, 2.7, 54e3, 97.9, 99.0, True,
    _profile(97.9, 99.0, 2.7, ws_lines=32_768, raw=0.70, page_loc=0.85,
             seq=0.30, ipa=3.0),
))
_register(WorkloadSpec(
    "perlbench", "spec", 239e6, 38.9e6, 6.1, 892, 80.2, 81.3, False,
    _profile(80.2, 81.3, 6.1, ws_lines=16_384, raw=0.35, page_loc=0.55,
             seq=0.15, ipa=3.0),
))
_register(WorkloadSpec(
    "bzip2", "spec", 123e6, 47.2e6, 2.6, 774, 94.6, 54.4, False,
    _profile(94.6, 54.4, 2.6, ws_lines=16_384, raw=0.50, page_loc=0.30,
             seq=0.35, ipa=3.0),
))
_register(WorkloadSpec(
    "gcc", "spec", 360e6, 81.3e6, 4.4, 70e3, 99.0, 98.4, False,
    _profile(99.0, 98.4, 4.4, ws_lines=16_384, raw=0.65, page_loc=0.88,
             seq=0.20, ipa=3.0),
))
_register(WorkloadSpec(
    "mcf", "spec", 578e6, 1.7e6, 345.0, 10e3, 93.4, 95.5, False,
    _profile(93.4, 95.5, 345.0, ws_lines=65_536, raw=0.05, page_loc=0.80,
             seq=0.10, ipa=2.5),
))
_register(WorkloadSpec(
    "astar", "spec", 789e6, 296e6, 2.7, 20e3, 96.2, 98.7, False,
    _profile(96.2, 98.7, 2.7, ws_lines=32_768, raw=0.70, page_loc=0.85,
             seq=0.20, ipa=2.5),
))
_register(WorkloadSpec(
    "cactusadm", "spec", 428e6, 36.8e6, 12.0, 9.1e3, 96.1, 94.1, False,
    _profile(96.1, 94.1, 12.0, ws_lines=32_768, raw=0.45, page_loc=0.80,
             seq=0.30, ipa=3.5),
))
_register(WorkloadSpec(
    "dealii", "spec", 352e6, 26.7e6, 13.0, 229e3, 75.8, 97.5, False,
    _profile(75.8, 97.5, 13.0, ws_lines=65_536, raw=0.30, page_loc=0.90,
             seq=0.15, ipa=3.0),
))
_register(WorkloadSpec(
    "wrf", "spec", 345e6, 80.1e6, 4.3, 1.2e3, 96.2, 94.2, False,
    _profile(96.2, 94.2, 4.3, ws_lines=32_768, raw=0.95, page_loc=0.80,
             seq=0.25, ipa=3.0),
))
_register(WorkloadSpec(
    "redis", "inmemdb", 377e6, 60.4e6, 6.2, 37e3, 97.9, 99.1, True,
    _profile(97.9, 99.1, 6.2, ws_lines=65_536, raw=0.60, page_loc=0.88,
             seq=0.15, ipa=4.0),
))
_register(WorkloadSpec(
    "keydb", "inmemdb", 195e6, 75.7e6, 2.6, 51e3, 97.7, 99.0, True,
    _profile(97.7, 99.0, 2.6, ws_lines=65_536, raw=0.65, page_loc=0.88,
             seq=0.15, ipa=4.0),
))
_register(WorkloadSpec(
    "memcached", "inmemdb", 354e6, 57.3e6, 6.2, 12e3, 95.3, 98.5, True,
    _profile(95.3, 98.5, 6.2, ws_lines=65_536, raw=0.55, page_loc=0.85,
             seq=0.15, ipa=4.0),
))
_register(WorkloadSpec(
    "sqlite", "inmemdb", 187e6, 14.9e6, 13.0, 126, 78.1, 98.4, True,
    _profile(78.1, 98.4, 13.0, ws_lines=65_536, raw=0.30, page_loc=0.85,
             seq=0.10, ipa=4.0),
))


def workload_names(category: str | None = None) -> list[str]:
    """All workload names, optionally filtered by suite."""
    if category is None:
        return list(WORKLOAD_SPECS)
    if category not in CATEGORIES:
        raise ValueError(f"unknown category {category!r}")
    return [n for n, s in WORKLOAD_SPECS.items() if s.category == category]


def spec(name: str) -> WorkloadSpec:
    try:
        return WORKLOAD_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(WORKLOAD_SPECS)}"
        ) from None
