"""Trace persistence: save/load reference streams as compact binary.

Synthetic traces are regenerable from seeds, but artifact workflows want
them on disk: to diff runs across code versions, to hand a colleague the
exact stream behind a number, or to replay a captured trace from another
tool.  Two on-disk layouts share one magic:

* **v1 (row-major)** — ``header | record*`` where each record packs
  (instructions, address, flags) little-endian.  Reading a window at
  offset *k* costs O(k): the stream must be parsed from the start.
* **v2 (columnar)** — ``header | instructions u32* | addresses u64* |
  flags u8*``.  The three column blocks are fixed-offset, so a window
  ``[lo, hi)`` is a constant-time slice; when numpy is importable the
  columns are ``memmap``-backed and shared read-only across forked
  campaign workers (zero copies, zero re-parsing per trial), with a
  pure-python ``mmap`` fallback mirroring :mod:`repro.engine.columnar`.

:func:`load_trace` auto-detects the version; :func:`open_trace` returns
a random-access :class:`ColumnarTrace` handle (process-local handles are
cached so every trial in a worker shares one mapping).
"""

from __future__ import annotations

import mmap
import struct
from pathlib import Path
from typing import Iterable, Iterator, Sequence, Union

# One central guard decides numpy availability (tests monkeypatch the
# module-level HAVE_NUMPY re-export to force the pure-python branch).
from repro._np import HAVE_NUMPY, np as _np
from repro.workloads.trace import TraceRecord

__all__ = [
    "ColumnarTrace",
    "HAVE_NUMPY",
    "RecordStream",
    "TraceFormatError",
    "TraceWindow",
    "load_trace",
    "open_trace",
    "read_window",
    "save_trace",
    "save_trace_columnar",
    "trace_meta",
    "trace_stats",
]

_MAGIC = b"LPCTRACE"
_VERSION_ROW = 1
_VERSION_COLUMNAR = 2
_HEADER = struct.Struct("<8sHQ")          # magic, version, count
_RECORD = struct.Struct("<IQB")           # instructions, address, flags
_FLAG_WRITE = 0x1

_INSTR_BYTES = 4
_ADDR_BYTES = 8
_FLAG_BYTES = 1


class TraceFormatError(ValueError):
    """Not a trace file, or an unsupported version."""


def save_trace(records: Iterable[TraceRecord],
               path: Union[str, Path]) -> int:
    """Write records to ``path`` in the v1 row format; record count."""
    path = Path(path)
    body = bytearray()
    count = 0
    for record in records:
        flags = _FLAG_WRITE if record.is_write else 0
        body += _RECORD.pack(record.instructions, record.address, flags)
        count += 1
    with path.open("wb") as handle:
        handle.write(_HEADER.pack(_MAGIC, _VERSION_ROW, count))
        handle.write(bytes(body))
    return count


def save_trace_columnar(records, path: Union[str, Path]) -> int:
    """Write records to ``path`` in the v2 columnar format; record count.

    ``records`` is any iterable of :class:`TraceRecord`; sources that
    expose a ``columns()`` method (:class:`~repro.workloads.trace
    .TraceGenerator` views do) are consumed column-wise without ever
    materialising record objects.
    """
    path = Path(path)
    columns = getattr(records, "columns", None)
    if columns is not None:
        instructions, addresses, writes = columns()
    else:
        instructions, addresses, writes = [], [], []
        for record in records:
            instructions.append(record.instructions)
            addresses.append(record.address)
            writes.append(record.is_write)
    count = len(instructions)
    with path.open("wb") as handle:
        handle.write(_HEADER.pack(_MAGIC, _VERSION_COLUMNAR, count))
        if HAVE_NUMPY:
            handle.write(_np.asarray(
                instructions, dtype="<u4").tobytes())
            handle.write(_np.asarray(addresses, dtype="<u8").tobytes())
            handle.write(_np.asarray(
                [1 if w else 0 for w in writes], dtype="<u1").tobytes())
        else:
            handle.write(struct.pack(f"<{count}I", *instructions))
            handle.write(struct.pack(f"<{count}Q", *addresses))
            handle.write(bytes(1 if w else 0 for w in writes))
    return count


def _read_header(path: Path) -> tuple[int, int]:
    with path.open("rb") as handle:
        header = handle.read(_HEADER.size)
    if len(header) < _HEADER.size:
        raise TraceFormatError(f"{path}: truncated header")
    magic, version, count = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise TraceFormatError(f"{path}: not a trace file")
    if version not in (_VERSION_ROW, _VERSION_COLUMNAR):
        raise TraceFormatError(
            f"{path}: version {version} unsupported "
            f"(want {_VERSION_ROW} or {_VERSION_COLUMNAR})")
    return version, count


class TraceWindow:
    """A ``[lo, hi)`` view into a :class:`ColumnarTrace` — no copies.

    Satisfies the engine layer's trace protocol: re-iterable, with the
    ``stationary`` marker and a ``count`` length hint, so it plugs into
    ``Machine.run`` / ``MultiCoreComplex.run_traces`` exactly like a
    generated stream.
    """

    #: windows of a Table II-calibrated trace keep one locality profile
    #: end to end, so the epoch engine may advance them analytically
    stationary = True

    def __init__(self, trace: "ColumnarTrace", lo: int, hi: int) -> None:
        if not (0 <= lo <= hi <= trace.count):
            raise IndexError(
                f"window [{lo}, {hi}) outside trace of {trace.count} records")
        self._trace = trace
        self.lo = lo
        self.hi = hi

    @property
    def count(self) -> int:
        return self.hi - self.lo

    def __len__(self) -> int:
        return self.count

    def __iter__(self) -> Iterator[TraceRecord]:
        return self._trace._iter_range(self.lo, self.hi)

    def columns(self):
        """(instructions, addresses, is_write) parallel column slices."""
        return self._trace._columns_range(self.lo, self.hi)


class ColumnarTrace:
    """Random-access handle over a v2 columnar trace file.

    numpy builds get ``memmap``-backed columns (one shared page-cache
    mapping per process, zero-copy windows); without numpy the file is
    ``mmap``-ed read-only and records are unpacked lazily per row.  Both
    paths yield identical :class:`TraceRecord` streams.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        version, count = _read_header(self.path)
        if version != _VERSION_COLUMNAR:
            raise TraceFormatError(
                f"{self.path}: v{version} traces have no columnar index; "
                f"re-save with save_trace_columnar()")
        self.count = count
        body = count * (_INSTR_BYTES + _ADDR_BYTES + _FLAG_BYTES)
        if self.path.stat().st_size < _HEADER.size + body:
            raise TraceFormatError(f"{self.path}: truncated columns")
        self._instr_off = _HEADER.size
        self._addr_off = self._instr_off + count * _INSTR_BYTES
        self._flag_off = self._addr_off + count * _ADDR_BYTES
        if HAVE_NUMPY:
            self._instructions = _np.memmap(
                self.path, mode="r", dtype="<u4", offset=self._instr_off,
                shape=(count,))
            self._addresses = _np.memmap(
                self.path, mode="r", dtype="<u8", offset=self._addr_off,
                shape=(count,))
            self._flags = _np.memmap(
                self.path, mode="r", dtype="<u1", offset=self._flag_off,
                shape=(count,))
            self._mm = None
        else:
            self._file = self.path.open("rb")
            self._mm = mmap.mmap(self._file.fileno(), 0,
                                 access=mmap.ACCESS_READ)

    # -- views -------------------------------------------------------------

    def window(self, lo: int, hi: int) -> TraceWindow:
        """Constant-time ``[lo, hi)`` view (the zero-copy fast path)."""
        return TraceWindow(self, lo, hi)

    def records(self) -> Iterator[TraceRecord]:
        return self._iter_range(0, self.count)

    def _columns_range(self, lo: int, hi: int):
        if HAVE_NUMPY:
            return (self._instructions[lo:hi], self._addresses[lo:hi],
                    self._flags[lo:hi])
        span = hi - lo
        instructions = struct.unpack_from(
            f"<{span}I", self._mm, self._instr_off + lo * _INSTR_BYTES)
        addresses = struct.unpack_from(
            f"<{span}Q", self._mm, self._addr_off + lo * _ADDR_BYTES)
        flags = self._mm[self._flag_off + lo:self._flag_off + hi]
        return instructions, addresses, flags

    def _iter_range(self, lo: int, hi: int) -> Iterator[TraceRecord]:
        instructions, addresses, flags = self._columns_range(lo, hi)
        for i in range(hi - lo):
            yield TraceRecord(
                instructions=int(instructions[i]),
                address=int(addresses[i]),
                is_write=bool(int(flags[i]) & _FLAG_WRITE),
            )

    def close(self) -> None:
        if self._mm is not None:
            self._mm.close()
            self._file.close()


#: process-local handle cache: every trial in a warm worker shares one
#: mapping of the campaign's trace file instead of reopening it
_SHARED_HANDLES: dict[str, ColumnarTrace] = {}


def open_trace(path: Union[str, Path], shared: bool = True) -> ColumnarTrace:
    """Open a v2 columnar trace for random access.

    ``shared=True`` (the default) caches the handle per process, which
    is what makes trace distribution zero-copy under a warm worker
    pool: the first trial maps the file, every later trial reuses the
    mapping.
    """
    if not shared:
        return ColumnarTrace(path)
    key = str(Path(path).resolve())
    handle = _SHARED_HANDLES.get(key)
    if handle is None:
        handle = ColumnarTrace(path)
        _SHARED_HANDLES[key] = handle
    return handle


def load_trace(path: Union[str, Path]) -> Iterator[TraceRecord]:
    """Stream records back from ``path`` (either version)."""
    path = Path(path)
    version, count = _read_header(path)
    if version == _VERSION_COLUMNAR:
        yield from ColumnarTrace(path).records()
        return
    with path.open("rb") as handle:
        handle.seek(_HEADER.size)
        for index in range(count):
            blob = handle.read(_RECORD.size)
            if len(blob) < _RECORD.size:
                raise TraceFormatError(
                    f"{path}: truncated at record {index}/{count}")
            instructions, address, flags = _RECORD.unpack(blob)
            yield TraceRecord(
                instructions=instructions,
                address=address,
                is_write=bool(flags & _FLAG_WRITE),
            )


def read_window(path: Union[str, Path], lo: int, hi: int) -> list[TraceRecord]:
    """Records ``[lo, hi)`` of a trace file, version-appropriately.

    v2 files answer in O(hi - lo) through the columnar index; v1 files
    pay the honest sequential parse from record zero — exactly the cost
    the columnar format exists to delete, which is why the campaign
    benchmark uses this function for both of its arms.
    """
    import itertools

    path = Path(path)
    version, count = _read_header(path)
    if hi > count:
        raise IndexError(f"window [{lo}, {hi}) outside {count}-record trace")
    if version == _VERSION_COLUMNAR:
        return list(open_trace(path).window(lo, hi))
    return list(itertools.islice(load_trace(path), lo, hi))


def trace_meta(path: Union[str, Path]) -> dict[str, int]:
    """Header-only facts about a trace file: format version and count."""
    version, count = _read_header(Path(path))
    return {"version": version, "records": count}


class RecordStream:
    """Materialised records presented through the trace-view protocol.

    What :func:`read_window` windows of a *v1* file get wrapped in, so
    a row-format trial presents the engine layer the exact interface a
    zero-copy :class:`TraceWindow` does (``stationary``, ``count``,
    re-iterability) — the two arms of the campaign benchmark differ
    only in what the window *costs*, never in what the engine sees.
    """

    stationary = True

    def __init__(self, records: Sequence[TraceRecord]) -> None:
        self._records = list(records)

    @property
    def count(self) -> int:
        return len(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)


def trace_stats(path: Union[str, Path]) -> dict[str, float]:
    """Quick summary of a trace file (counts, mix, footprint)."""
    reads = writes = instructions = 0
    lines: set[int] = set()
    for record in load_trace(path):
        if record.is_write:
            writes += 1
        else:
            reads += 1
        instructions += record.instructions
        lines.add(record.address // 64)
    total = reads + writes
    return {
        "records": total,
        "reads": reads,
        "writes": writes,
        "write_fraction": writes / total if total else 0.0,
        "instructions": instructions,
        "footprint_bytes": len(lines) * 64,
    }
