"""Trace persistence: save/load reference streams as compact binary.

Synthetic traces are regenerable from seeds, but artifact workflows want
them on disk: to diff runs across code versions, to hand a colleague the
exact stream behind a number, or to replay a captured trace from another
tool.  The format is deliberately dumb and stable:

``header | record*`` where the header is magic, version, and count, and
each record packs (instructions, address, flags) little-endian.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.workloads.trace import TraceRecord

__all__ = ["TraceFormatError", "load_trace", "save_trace", "trace_stats"]

_MAGIC = b"LPCTRACE"
_VERSION = 1
_HEADER = struct.Struct("<8sHQ")          # magic, version, count
_RECORD = struct.Struct("<IQB")           # instructions, address, flags
_FLAG_WRITE = 0x1


class TraceFormatError(ValueError):
    """Not a trace file, or an unsupported version."""


def save_trace(records: Iterable[TraceRecord],
               path: Union[str, Path]) -> int:
    """Write records to ``path``; returns the record count."""
    path = Path(path)
    body = bytearray()
    count = 0
    for record in records:
        flags = _FLAG_WRITE if record.is_write else 0
        body += _RECORD.pack(record.instructions, record.address, flags)
        count += 1
    with path.open("wb") as handle:
        handle.write(_HEADER.pack(_MAGIC, _VERSION, count))
        handle.write(bytes(body))
    return count


def load_trace(path: Union[str, Path]) -> Iterator[TraceRecord]:
    """Stream records back from ``path``."""
    path = Path(path)
    with path.open("rb") as handle:
        header = handle.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise TraceFormatError(f"{path}: truncated header")
        magic, version, count = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise TraceFormatError(f"{path}: not a trace file")
        if version != _VERSION:
            raise TraceFormatError(
                f"{path}: version {version} unsupported (want {_VERSION})")
        for index in range(count):
            blob = handle.read(_RECORD.size)
            if len(blob) < _RECORD.size:
                raise TraceFormatError(
                    f"{path}: truncated at record {index}/{count}")
            instructions, address, flags = _RECORD.unpack(blob)
            yield TraceRecord(
                instructions=instructions,
                address=address,
                is_write=bool(flags & _FLAG_WRITE),
            )


def trace_stats(path: Union[str, Path]) -> dict[str, float]:
    """Quick summary of a trace file (counts, mix, footprint)."""
    reads = writes = instructions = 0
    lines: set[int] = set()
    for record in load_trace(path):
        if record.is_write:
            writes += 1
        else:
            reads += 1
        instructions += record.instructions
        lines.add(record.address // 64)
    total = reads + writes
    return {
        "records": total,
        "reads": reads,
        "writes": writes,
        "write_fraction": writes / total if total else 0.0,
        "instructions": instructions,
        "footprint_bytes": len(lines) * 64,
    }
