"""Locality-controlled synthetic memory-reference traces.

The paper's 17 workloads were ported to RISC-V and run on the prototype;
here they are substituted by synthetic traces whose *measurable*
characteristics — read/write mix, D$ hit ratios, row-buffer locality,
read-after-write tendency — are controlled by a :class:`LocalityProfile`
and land near the paper's Table II when replayed through the real cache
model (the characterization experiment measures them back; see
``repro.analysis.experiments.table2``).

The generator composes four address streams:

* a **hot set** sized to (mostly) fit the 16 KB D$ — temporal reuse,
* **sequential runs** at 8 B stride — spatial locality within lines,
* a **cold working set** — capacity misses,
* a **recent-write window** — read-after-write traffic, the access
  pattern that provokes the head-of-line blocking LightPC's PSM removes.

Writes cluster in a slowly-rotating *write page* with configurable
probability, which is what produces PSM row-buffer hits and, in the
baseline, write bursts that serialize on the PRAM dies.
"""

from __future__ import annotations

import itertools
import random
from collections import deque
from dataclasses import dataclass
from typing import Iterator

from repro.memory.request import CACHELINE_BYTES, ROW_BYTES

__all__ = ["LocalityProfile", "TraceGenerator", "TraceRecord"]

_WORD = 8  # access granularity within a line


@dataclass(frozen=True)
class TraceRecord:
    """One memory reference plus the compute preceding it."""

    instructions: int
    address: int
    is_write: bool


@dataclass(frozen=True)
class LocalityProfile:
    """Knobs controlling a synthetic workload's memory behaviour."""

    working_set_lines: int = 16_384
    hot_lines: int = 192
    hot_fraction: float = 0.9
    #: Expected length (in 8 B words) of a sequential run.
    sequential_run: float = 8.0
    #: Probability a reference enters/continues a sequential run.
    sequential_fraction: float = 0.2
    write_fraction: float = 0.2
    #: Probability a read targets the page of a recent write.  This is the
    #: *CPU-level* probability; keep it near the target miss rate so the
    #: D$ hit ratio survives — the share of *memory-level* reads that are
    #: read-after-write is then raw / miss-rate.
    read_after_write: float = 0.1
    #: Probability a write lands in the current write page.
    write_page_locality: float = 0.7
    #: Probability a write re-dirties a recently written line (store
    #: temporal locality; drives the D$ write-hit ratio).
    write_line_reuse: float = 0.0
    #: Mean compute instructions between memory references.
    instructions_per_access: float = 3.0

    def __post_init__(self) -> None:
        if self.hot_lines > self.working_set_lines:
            raise ValueError("hot set cannot exceed the working set")
        for name in ("hot_fraction", "sequential_fraction", "write_fraction",
                     "read_after_write", "write_page_locality",
                     "write_line_reuse"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name}={value} outside [0, 1]")


class TraceGenerator:
    """Deterministic, lazily-evaluated trace stream for one thread."""

    RECENT_WRITES = 64

    def __init__(
        self,
        profile: LocalityProfile,
        seed: int = 0,
        base_address: int = 0,
        footprint_limit: int | None = None,
    ) -> None:
        self.profile = profile
        self.seed = seed
        self.base_address = base_address
        self.footprint_limit = footprint_limit

    def records(self, count: int) -> Iterator[TraceRecord]:
        """Yield ``count`` trace records (regenerable: same seed, same trace)."""
        p = self.profile
        rng = random.Random((self.seed << 16) ^ 0x5CA1AB1E)
        ws_bytes = p.working_set_lines * CACHELINE_BYTES
        if self.footprint_limit is not None:
            ws_bytes = min(ws_bytes, self.footprint_limit)
        hot_bytes = min(p.hot_lines * CACHELINE_BYTES, ws_bytes)
        recent_writes: deque[int] = deque(maxlen=self.RECENT_WRITES)
        seq_pos = 0
        seq_left = 0
        write_page = 0
        continue_run = (
            1.0 - 1.0 / p.sequential_run if p.sequential_run > 1 else 0.0
        )

        for _ in range(count):
            gap = p.instructions_per_access
            instructions = int(rng.expovariate(1.0 / gap)) if gap > 0 else 0
            is_write = rng.random() < p.write_fraction

            if is_write:
                if recent_writes and rng.random() < p.write_line_reuse:
                    # store temporal locality: re-dirty a hot line
                    address = rng.choice(recent_writes) + rng.randrange(
                        0, CACHELINE_BYTES, _WORD
                    )
                elif rng.random() < p.write_page_locality:
                    address = write_page * ROW_BYTES + rng.randrange(
                        0, ROW_BYTES, _WORD
                    )
                else:
                    address = rng.randrange(0, ws_bytes, _WORD)
                    write_page = address // ROW_BYTES
                recent_writes.append(address - address % CACHELINE_BYTES)
            elif recent_writes and rng.random() < p.read_after_write:
                # Read-after-write traffic targets the *page* of a recent
                # store: sibling lines of a freshly-dirtied region (wrf's
                # forecast-history pattern).  The exact written line would
                # still be cached; its page neighbours reach memory and
                # collide with the in-flight programming.
                written = rng.choice(recent_writes)
                page_base = written - written % ROW_BYTES
                address = page_base + rng.randrange(0, ROW_BYTES, _WORD)
            elif seq_left > 0 or rng.random() < p.sequential_fraction:
                if seq_left <= 0:
                    # streams mostly revisit the hot region (loop bodies
                    # re-scanning resident arrays); cold streams are rare
                    span = hot_bytes if rng.random() < p.hot_fraction else ws_bytes
                    seq_pos = rng.randrange(0, span, _WORD)
                    seq_left = max(1, int(rng.expovariate(1.0 / p.sequential_run)))
                address = seq_pos
                seq_pos = (seq_pos + _WORD) % ws_bytes
                seq_left -= 1
                if rng.random() > continue_run:
                    seq_left = 0
            elif rng.random() < p.hot_fraction:
                address = rng.randrange(0, hot_bytes, _WORD)
            else:
                address = rng.randrange(0, ws_bytes, _WORD)

            yield TraceRecord(
                instructions=instructions,
                address=self.base_address + address,
                is_write=is_write,
            )

    def columns(self, count: int) -> tuple[list[int], list[int], list[bool]]:
        """The same trace as (instructions, addresses, is_write) columns.

        Same records in the same order as :meth:`records`, shaped for
        :func:`repro.workloads.trace_io.save_trace_columnar`.
        """
        instructions: list[int] = []
        addresses: list[int] = []
        writes: list[bool] = []
        for record in self.records(count):
            instructions.append(record.instructions)
            addresses.append(record.address)
            writes.append(record.is_write)
        return instructions, addresses, writes

    def windows(
        self, count: int, window: int = 4096
    ) -> Iterator[list[TraceRecord]]:
        """The same trace chunked into record windows.

        Same records in the same order as :meth:`records`; the chunked
        shape feeds :meth:`repro.cpu.core.Core.execute_window` and the
        batched memory path without per-record dispatch.
        """
        if window <= 0:
            raise ValueError("window must be positive")
        records = self.records(count)
        while True:
            chunk = list(itertools.islice(records, window))
            if not chunk:
                return
            yield chunk
