"""Workload objects: Table II specs bound to runnable trace streams."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.workloads.registry import WORKLOAD_SPECS, WorkloadSpec, spec
from repro.workloads.trace import TraceGenerator, TraceRecord

__all__ = [
    "ReplayWorkload",
    "Workload",
    "all_workloads",
    "load_workload",
    "materialize_traces",
    "replay_workload",
]

#: Default scaled-down reference count per workload (the paper's runs are
#: 10^8–10^9 references; proportions are preserved, magnitude is not).
DEFAULT_REFS = 60_000


@dataclass(frozen=True)
class Workload:
    """A runnable workload: spec + per-thread trace streams."""

    spec: WorkloadSpec
    refs: int = DEFAULT_REFS
    seed: int = 42

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def threads(self) -> int:
        return self.spec.threads

    def traces(self, refs: int | None = None) -> list[Iterable[TraceRecord]]:
        """One lazily-generated trace per thread.

        Threads of a multithreaded workload share the working-set layout
        but stride their hot regions apart (distinct base addresses) the
        way per-thread heaps do, except for a shared region at the base —
        contention on the shared backend comes from timing, not aliasing.
        """
        total = refs if refs is not None else self.refs
        per_thread = max(1, total // self.threads)
        ws_bytes = self.spec.profile.working_set_lines * 64
        out: list[Iterable[TraceRecord]] = []
        for thread in range(self.threads):
            generator = TraceGenerator(
                self.spec.profile,
                seed=self.seed * 1009 + thread,
                base_address=thread * ws_bytes,
            )
            out.append(_Replayable(generator, per_thread))
        return out

    def total_refs(self) -> int:
        return max(1, self.refs // self.threads) * self.threads


@dataclass(frozen=True)
class _Replayable:
    """Re-iterable view over a deterministic generator."""

    #: one fixed locality profile end to end — statistically stationary,
    #: so the epoch engine may advance its steady state analytically
    #: (``count`` doubles as the engine layer's trace length hint)
    stationary = True

    generator: TraceGenerator
    count: int

    def __iter__(self) -> Iterator[TraceRecord]:
        return self.generator.records(self.count)

    def columns(self) -> tuple[list[int], list[int], list[bool]]:
        """Column-wise view (``save_trace_columnar``'s fast path)."""
        return self.generator.columns(self.count)


@dataclass(frozen=True)
class ReplayWorkload:
    """A workload replayed from pre-materialised trace streams.

    Quacks like :class:`Workload` everywhere ``Machine`` looks —
    ``spec`` / ``name`` / ``threads`` / ``refs`` / ``traces()`` — but
    its per-thread streams are fixed views (typically zero-copy
    :class:`~repro.workloads.trace_io.TraceWindow` slices of a shared
    columnar file) instead of seeded generators.  ``traces(refs)``
    ignores the override: the streams *are* the workload.
    """

    spec: WorkloadSpec
    streams: tuple = ()
    refs: int = 0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def threads(self) -> int:
        return len(self.streams)

    def traces(self, refs: int | None = None) -> list:
        return list(self.streams)

    def total_refs(self) -> int:
        return sum(getattr(s, "count", 0) for s in self.streams)


def materialize_traces(workload: Workload, directory: str | os.PathLike,
                       refs: int | None = None) -> list[Path]:
    """Write the workload's per-thread streams as columnar trace files.

    Idempotent and content-addressed: file names carry (spec, refs,
    seed, thread), so a campaign can materialise once and every worker
    maps the same files read-only.  Returns one path per thread.
    """
    from repro.workloads.trace_io import save_trace_columnar

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    total = refs if refs is not None else workload.refs
    per_thread = max(1, total // workload.threads)
    paths: list[Path] = []
    for thread, stream in enumerate(workload.traces(refs)):
        path = directory / (
            f"{workload.name}-r{per_thread}-s{workload.seed}"
            f"-t{thread}.coltrace")
        if not path.exists():
            tmp = path.with_suffix(".tmp")
            save_trace_columnar(stream, tmp)
            os.replace(tmp, path)
        paths.append(path)
    return paths


def replay_workload(name: str, paths: Sequence[str | os.PathLike],
                    windows: Sequence[tuple[int, int]] | None = None,
                    refs: int | None = None) -> ReplayWorkload:
    """Bind columnar trace files (or windows of them) to a spec.

    ``refs`` overrides the nominal reference count the workload reports
    (``Machine.run`` derives kernel-noise volume from it); the default
    is the summed stream length, but a replay of a generated workload
    should pass the *original* refs so runs stay byte-identical to the
    generator-backed ones even when threads don't divide it evenly.
    """
    from repro.workloads.trace_io import open_trace

    streams = []
    for index, path in enumerate(paths):
        trace = open_trace(path)
        lo, hi = (0, trace.count) if windows is None else windows[index]
        streams.append(trace.window(lo, hi))
    workload_spec = spec(name)
    total = refs if refs is not None else sum(s.count for s in streams)
    return ReplayWorkload(spec=workload_spec, streams=tuple(streams),
                          refs=total)


def load_workload(name: str, refs: int = DEFAULT_REFS, seed: int = 42) -> Workload:
    return Workload(spec=spec(name), refs=refs, seed=seed)


def all_workloads(
    refs: int = DEFAULT_REFS, seed: int = 42, category: str | None = None
) -> list[Workload]:
    out = []
    for name, s in WORKLOAD_SPECS.items():
        if category is not None and s.category != category:
            continue
        out.append(Workload(spec=s, refs=refs, seed=seed))
    return out
