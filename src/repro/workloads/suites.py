"""Workload objects: Table II specs bound to runnable trace streams."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.workloads.registry import WORKLOAD_SPECS, WorkloadSpec, spec
from repro.workloads.trace import TraceGenerator, TraceRecord

__all__ = ["Workload", "all_workloads", "load_workload"]

#: Default scaled-down reference count per workload (the paper's runs are
#: 10^8–10^9 references; proportions are preserved, magnitude is not).
DEFAULT_REFS = 60_000


@dataclass(frozen=True)
class Workload:
    """A runnable workload: spec + per-thread trace streams."""

    spec: WorkloadSpec
    refs: int = DEFAULT_REFS
    seed: int = 42

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def threads(self) -> int:
        return self.spec.threads

    def traces(self, refs: int | None = None) -> list[Iterable[TraceRecord]]:
        """One lazily-generated trace per thread.

        Threads of a multithreaded workload share the working-set layout
        but stride their hot regions apart (distinct base addresses) the
        way per-thread heaps do, except for a shared region at the base —
        contention on the shared backend comes from timing, not aliasing.
        """
        total = refs if refs is not None else self.refs
        per_thread = max(1, total // self.threads)
        ws_bytes = self.spec.profile.working_set_lines * 64
        out: list[Iterable[TraceRecord]] = []
        for thread in range(self.threads):
            generator = TraceGenerator(
                self.spec.profile,
                seed=self.seed * 1009 + thread,
                base_address=thread * ws_bytes,
            )
            out.append(_Replayable(generator, per_thread))
        return out

    def total_refs(self) -> int:
        return max(1, self.refs // self.threads) * self.threads


@dataclass(frozen=True)
class _Replayable:
    """Re-iterable view over a deterministic generator."""

    #: one fixed locality profile end to end — statistically stationary,
    #: so the epoch engine may advance its steady state analytically
    #: (``count`` doubles as the engine layer's trace length hint)
    stationary = True

    generator: TraceGenerator
    count: int

    def __iter__(self) -> Iterator[TraceRecord]:
        return self.generator.records(self.count)


def load_workload(name: str, refs: int = DEFAULT_REFS, seed: int = 42) -> Workload:
    return Workload(spec=spec(name), refs=refs, seed=seed)


def all_workloads(
    refs: int = DEFAULT_REFS, seed: int = 42, category: str | None = None
) -> list[Workload]:
    out = []
    for name, s in WORKLOAD_SPECS.items():
        if category is not None and s.category != category:
            continue
        out.append(Workload(spec=s, refs=refs, seed=seed))
    return out
