"""Workload substrate: synthetic traces calibrated to the paper's Table II."""

from repro.workloads.characterize import Characterization, characterize
from repro.workloads.registry import (
    CATEGORIES,
    WORKLOAD_SPECS,
    WorkloadSpec,
    spec,
    workload_names,
)
from repro.workloads.stream import STREAM_KERNELS, StreamKernel, stream_kernel
from repro.workloads.suites import (
    ReplayWorkload,
    Workload,
    all_workloads,
    load_workload,
    materialize_traces,
    replay_workload,
)
from repro.workloads.trace import LocalityProfile, TraceGenerator, TraceRecord
from repro.workloads.trace_io import (
    ColumnarTrace,
    RecordStream,
    TraceFormatError,
    TraceWindow,
    load_trace,
    open_trace,
    read_window,
    save_trace,
    save_trace_columnar,
    trace_meta,
    trace_stats,
)

__all__ = [
    "CATEGORIES",
    "Characterization",
    "characterize",
    "ColumnarTrace",
    "LocalityProfile",
    "RecordStream",
    "ReplayWorkload",
    "STREAM_KERNELS",
    "StreamKernel",
    "TraceFormatError",
    "TraceGenerator",
    "TraceRecord",
    "TraceWindow",
    "WORKLOAD_SPECS",
    "Workload",
    "WorkloadSpec",
    "all_workloads",
    "load_trace",
    "load_workload",
    "materialize_traces",
    "open_trace",
    "read_window",
    "replay_workload",
    "save_trace",
    "save_trace_columnar",
    "spec",
    "trace_meta",
    "trace_stats",
    "stream_kernel",
    "workload_names",
]
