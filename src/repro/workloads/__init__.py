"""Workload substrate: synthetic traces calibrated to the paper's Table II."""

from repro.workloads.characterize import Characterization, characterize
from repro.workloads.registry import (
    CATEGORIES,
    WORKLOAD_SPECS,
    WorkloadSpec,
    spec,
    workload_names,
)
from repro.workloads.stream import STREAM_KERNELS, StreamKernel, stream_kernel
from repro.workloads.suites import Workload, all_workloads, load_workload
from repro.workloads.trace import LocalityProfile, TraceGenerator, TraceRecord
from repro.workloads.trace_io import (
    TraceFormatError,
    load_trace,
    save_trace,
    trace_stats,
)

__all__ = [
    "CATEGORIES",
    "Characterization",
    "characterize",
    "LocalityProfile",
    "STREAM_KERNELS",
    "StreamKernel",
    "TraceFormatError",
    "TraceGenerator",
    "TraceRecord",
    "WORKLOAD_SPECS",
    "Workload",
    "WorkloadSpec",
    "all_workloads",
    "load_trace",
    "load_workload",
    "save_trace",
    "spec",
    "trace_stats",
    "stream_kernel",
    "workload_names",
]
