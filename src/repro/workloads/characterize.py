"""Workload characterization — reproducing the paper's Table II method.

The paper profiles each ported workload's memory behaviour (read/write
counts and ratio, D$ hit ratios, row-buffer hits, threading) on the
prototype.  Here the same quantities are *measured back* from the
synthetic traces through the real cache and row-buffer models, so the
registry's calibration targets are verified by measurement rather than
asserted.

Ratios are steady-state: each thread's trace is replayed once to warm
its cache, counters are reset, and a second replay is measured — the
paper's long runs amortize cold misses the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.cache import Cache, CacheConfig
from repro.memory.rowbuffer import WriteAggregationBuffer
from repro.workloads.suites import Workload

__all__ = ["Characterization", "characterize"]


@dataclass(frozen=True)
class Characterization:
    """Measured Table II row for one workload."""

    workload: str
    reads: int
    writes: int
    rw_ratio: float
    read_hit: float
    write_hit: float
    #: PSM row-buffer hit ratio of the write stream
    rb_hit: float
    rb_hits: int
    threads: int


def characterize(workload: Workload, refs: int | None = None) -> Characterization:
    """Measure one workload's Table II quantities from its traces."""
    reads = writes = 0
    read_hits = read_total = 0
    write_hits = write_total = 0
    rb_hits = rb_total = 0

    for trace in workload.traces(refs):
        cache = Cache(CacheConfig())
        for record in trace:  # warmup pass
            cache.access(record.address, record.is_write)
        cache.reset_stats()
        buffer = WriteAggregationBuffer(beat_bytes=64)
        for record in trace:  # measured pass
            cache.access(record.address, record.is_write)
            if record.is_write:
                writes += 1
                absorbed, _ = buffer.write(0.0, record.address)
                rb_hits += absorbed
                rb_total += 1
            else:
                reads += 1
        read_hits += cache.read_hits.hits
        read_total += cache.read_hits.total
        write_hits += cache.write_hits.hits
        write_total += cache.write_hits.total

    return Characterization(
        workload=workload.name,
        reads=reads,
        writes=writes,
        rw_ratio=reads / max(writes, 1),
        read_hit=read_hits / max(read_total, 1),
        write_hit=write_hits / max(write_total, 1),
        rb_hit=rb_hits / max(rb_total, 1),
        rb_hits=rb_hits,
        threads=workload.threads,
    )
