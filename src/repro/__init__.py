"""LightPC reproduction: simulated OC-PMEM hardware + persistence-centric OS.

Reproduces *LightPC: Hardware and Software Co-Design for Energy-Efficient
Full System Persistence* (ISCA 2022) as a pure-Python simulation platform.
See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured index.

Top-level convenience imports cover the primary public API; subsystem
detail lives in the subpackages (``repro.ocpmem``, ``repro.pecos``,
``repro.pmem``, ``repro.workloads``, ...).
"""

__version__ = "1.0.0"
