"""The PecOS kernel: init_task tree, process population, devices.

This is the OS state SnG operates on.  The busy configuration of the
paper's validation (§III-B) runs ~72 user and ~48 kernel processes on
top of a full default driver population; :func:`Kernel.populate` builds
that world.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.pecos.bootloader import Bootloader
from repro.pecos.device import default_dpm_list
from repro.pecos.scheduler import Scheduler
from repro.pecos.task import Registers, Task, TaskState, VMA, VMAKind

__all__ = ["Kernel", "KernelConfig"]


@dataclass(frozen=True)
class KernelConfig:
    """Shape of the OS world SnG must stop."""

    cores: int = 8
    user_processes: int = 72
    kernel_threads: int = 48
    #: fraction of tasks asleep at any instant (the rest are on queues)
    sleeping_fraction: float = 0.6
    #: default driver population (the prototype loads all default
    #: packages; ~350 entries of dpm_list)
    extra_drivers: int = 400
    #: deterministic world-building seed
    seed: int = 7


class Kernel:
    """Kernel state: task tree + scheduler + dpm list + bootloader."""

    def __init__(self, config: Optional[KernelConfig] = None) -> None:
        self.config = config or KernelConfig()
        self.scheduler = Scheduler(self.config.cores)
        self.dpm = default_dpm_list(self.config.extra_drivers)
        self.bootloader = Bootloader()
        self.init_task = Task(name="init", kernel_thread=True,
                              state=TaskState.RUNNABLE)
        #: system-wide atomic persistent flag Drive-to-Idle sets
        self.persistent_flag = False
        self._populated = False

    # -- world building ----------------------------------------------------

    def populate(self) -> None:
        """Create the busy-configuration process population."""
        if self._populated:
            raise RuntimeError("kernel already populated")
        cfg = self.config
        rng = random.Random(cfg.seed)
        for i in range(cfg.kernel_threads):
            task = Task(name=f"kworker/{i}", kernel_thread=True)
            task.registers = Registers(
                pc=0x8000_0000 + i * 0x1000, sp=0x9000_0000 + i * 0x4000,
                page_table_root=0,
            )
            self.init_task.adopt(task)
        for i in range(cfg.user_processes):
            task = Task(name=f"user{i:02d}")
            task.registers = Registers(
                pc=0x0001_0000 + i * 0x100, sp=0x7fff_0000 - i * 0x8000,
                gpr_checksum=rng.getrandbits(32),
                page_table_root=0x1_0000_0000 + i * 0x1000,
            )
            heap = rng.choice([1 << 16, 1 << 18, 1 << 20])
            task.vmas = [
                VMA(VMAKind.CODE, start=0x10000, length=1 << 16),
                VMA(VMAKind.HEAP, start=0x4000_0000, length=heap,
                    dirty_bytes=rng.randrange(heap // 4, heap)),
                VMA(VMAKind.STACK, start=0x7fff_0000, length=1 << 14,
                    dirty_bytes=rng.randrange(0, 1 << 14)),
            ]
            self.init_task.adopt(task)

        # Scatter states: some running/runnable on queues, the rest asleep.
        tasks = self.all_tasks()
        rng.shuffle(tasks)
        n_sleeping = int(len(tasks) * cfg.sleeping_fraction)
        for task in tasks[:n_sleeping]:
            task.state = TaskState.INTERRUPTIBLE
            task.pending_work_items = rng.randrange(0, 3)
        self.scheduler.enqueue_balanced(tasks[n_sleeping:])
        self._populated = True

    def reset_world(self) -> None:
        """Rewind to the just-populated state without rebuilding devices.

        The dpm list is by far the most expensive part of kernel
        construction (hundreds of :class:`DeviceDriver` dataclasses),
        and nothing about it is world-specific: drivers only ever
        change power state, IRQ masking, and MMIO contents, all of
        which :meth:`DeviceDriver.reset` rewinds in place.  Everything
        else — scheduler queues, the task tree, the bootloader commit,
        the persistent flag — is rebuilt, then :meth:`populate` reruns
        deterministically from ``config.seed``, so a reset kernel is
        indistinguishable from a fresh one.  This is the kernel half of
        ``Machine.reset()``'s conformance contract.
        """
        for driver in self.dpm.drivers:
            driver.reset()
        self.dpm.dcbs.clear()
        self.scheduler = Scheduler(self.config.cores)
        self.bootloader = Bootloader()
        self.init_task = Task(name="init", kernel_thread=True,
                              state=TaskState.RUNNABLE)
        self.persistent_flag = False
        if hasattr(self, "address_spaces"):
            del self.address_spaces
        self._populated = False
        self.populate()

    # -- queries -------------------------------------------------------------

    def all_tasks(self) -> list[Task]:
        """Every PCB reachable from init_task (excluding init itself)."""
        return [t for t in self.init_task.walk() if t is not self.init_task]

    def sleeping_tasks(self) -> list[Task]:
        return [t for t in self.all_tasks() if t.is_sleeping]

    def user_tasks(self) -> list[Task]:
        return [t for t in self.all_tasks() if t.is_user]

    def task_count(self) -> int:
        return len(self.all_tasks())

    def total_dirty_vma_bytes(self) -> int:
        return sum(t.dirty_vma_bytes() for t in self.all_tasks())

    def total_vma_bytes(self) -> int:
        return sum(t.total_vma_bytes() for t in self.all_tasks())

    # -- virtual memory integration (§IV-C) -----------------------------

    def attach_address_spaces(self, backend, table_base: int,
                              table_bytes: int = 1 << 22) -> int:
        """Give every user task a real page table in ``backend`` memory.

        Each task's VMAs are mapped at 4 KB granularity; the PCB's
        ``page_table_root`` then points at a table that physically lives
        in the backend — persistent on OC-PMEM, gone with DRAM — which is
        exactly what lets Go "restore the virtual memory space" by just
        reloading the root per process.  Returns the number of spaces
        built.  Physical frames are assigned bump-style after the table
        region (layout fidelity is not the point; persistence is).
        """
        from dataclasses import replace

        from repro.pecos.vm import (
            AddressSpace,
            PAGE_BYTES,
            PageFlags,
            PageTableAllocator,
        )

        allocator = PageTableAllocator(
            base=table_base, limit=table_base + table_bytes)
        next_frame = table_base + table_bytes
        self.address_spaces: dict[int, AddressSpace] = {}
        for index, task in enumerate(self.user_tasks()):
            space = AddressSpace(backend, allocator, asid=index + 1)
            for vma in task.vmas:
                length = ((vma.length + PAGE_BYTES - 1)
                          // PAGE_BYTES) * PAGE_BYTES
                space.map_range(vma.start, next_frame, length,
                                flags=PageFlags.ALL)
                next_frame += length
            task.registers = replace(task.registers,
                                     page_table_root=space.root)
            self.address_spaces[task.pid] = space
        return len(self.address_spaces)

    def everything_locked_down(self) -> bool:
        """Drive-to-Idle's postcondition: no task can change anything."""
        return (
            self.scheduler.runnable_count() == 0
            and all(
                t.state is TaskState.UNINTERRUPTIBLE for t in self.all_tasks()
            )
        )
