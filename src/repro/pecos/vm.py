"""Virtual memory: Sv39-style page tables living in simulated memory.

Go's final act is to "restore the virtual memory space and flush TLB" so
rescheduled tasks resume with their exact address spaces (§IV-C): the
PCB's page-table root pointer is all the kernel needs *because the page
tables themselves live in OC-PMEM* and survive power loss.  On LegacyPC
the same tables live in DRAM and are gone — one concrete reason SysPC
must dump whole system images.

The model is functional: :class:`AddressSpace` builds a real three-level
radix page table out of 512-entry nodes stored as bytes in whatever
memory backend it is given (the PSM or the DRAM subsystem), and
:meth:`translate` performs the actual walk, reading each level back from
the backend.  Kill the power and the walk either still works (OC-PMEM)
or faults on a zeroed node (DRAM) — which the tests assert.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Protocol

from repro.memory.request import MemoryOp, MemoryRequest

__all__ = [
    "AddressSpace",
    "PAGE_BYTES",
    "PageFault",
    "PageFlags",
    "PageTableAllocator",
]

PAGE_BYTES = 4096
_LEVELS = 3
_INDEX_BITS = 9
_ENTRIES = 1 << _INDEX_BITS          # 512 PTEs per node
_PTE = struct.Struct("<Q")
_PTE_BYTES = _PTE.size
#: PTE layout: bit 0 = valid, bits 1-3 = flags, bits 12+ = frame address
_VALID = 0x1


class PageFault(Exception):
    """Translation failed: no valid mapping for the address."""

    def __init__(self, va: int, reason: str) -> None:
        super().__init__(f"page fault at VA {va:#x}: {reason}")
        self.va = va
        self.reason = reason


class PageFlags:
    """PTE permission bits (subset)."""

    READ = 0x2
    WRITE = 0x4
    EXEC = 0x8
    ALL = READ | WRITE | EXEC


class _Backend(Protocol):
    def access(self, request: MemoryRequest): ...


@dataclass
class PageTableAllocator:
    """Bump allocator for page-table nodes inside a backend's space.

    The kernel reserves a physical region for page tables; nodes are
    PAGE_BYTES-aligned frames from it.
    """

    base: int
    limit: int
    _next: int = -1

    def __post_init__(self) -> None:
        if self.base % PAGE_BYTES:
            raise ValueError("allocator base must be page-aligned")
        if self._next < 0:
            self._next = self.base

    def alloc_node(self) -> int:
        if self._next + PAGE_BYTES > self.limit:
            raise MemoryError("page-table region exhausted")
        frame = self._next
        self._next += PAGE_BYTES
        return frame


class AddressSpace:
    """One process's three-level page table, stored in backend memory."""

    def __init__(
        self,
        backend: _Backend,
        allocator: PageTableAllocator,
        asid: int = 0,
    ) -> None:
        self.backend = backend
        self.allocator = allocator
        self.asid = asid
        self.root = allocator.alloc_node()
        self._zero_node(self.root)
        self.mapped_pages = 0

    # -- raw PTE I/O through the backend -------------------------------------

    def _zero_node(self, node: int) -> None:
        for offset in range(0, PAGE_BYTES, 64):
            self.backend.access(MemoryRequest(
                MemoryOp.WRITE, address=node + offset, size=64,
                data=bytes(64), time=0.0,
            ))

    def _read_pte(self, node: int, index: int) -> int:
        line = node + (index * _PTE_BYTES // 64) * 64
        response = self.backend.access(MemoryRequest(
            MemoryOp.READ, address=line, size=64, time=0.0))
        if response.data is None:
            raise PageFault(0, "page-table memory returned no data "
                               "(backend not functional?)")
        offset = (index * _PTE_BYTES) % 64
        return _PTE.unpack_from(response.data, offset)[0]

    def _write_pte(self, node: int, index: int, value: int) -> None:
        line = node + (index * _PTE_BYTES // 64) * 64
        response = self.backend.access(MemoryRequest(
            MemoryOp.READ, address=line, size=64, time=0.0))
        image = bytearray(response.data or bytes(64))
        _PTE.pack_into(image, (index * _PTE_BYTES) % 64, value)
        self.backend.access(MemoryRequest(
            MemoryOp.WRITE, address=line, size=64, data=bytes(image),
            time=0.0))

    # -- mapping ---------------------------------------------------------------

    @staticmethod
    def _indices(va: int) -> tuple[int, ...]:
        vpn = va // PAGE_BYTES
        out = []
        for level in reversed(range(_LEVELS)):
            out.append((vpn >> (level * _INDEX_BITS)) & (_ENTRIES - 1))
        return tuple(out)

    def map(self, va: int, pa: int, flags: int = PageFlags.READ | PageFlags.WRITE) -> None:
        """Install a 4 KB mapping va -> pa."""
        if va % PAGE_BYTES or pa % PAGE_BYTES:
            raise ValueError("va and pa must be page-aligned")
        node = self.root
        indices = self._indices(va)
        for index in indices[:-1]:
            pte = self._read_pte(node, index)
            if pte & _VALID:
                node = pte & ~0xFFF
            else:
                child = self.allocator.alloc_node()
                self._zero_node(child)
                self._write_pte(node, index, child | _VALID)
                node = child
        self._write_pte(node, indices[-1], pa | flags | _VALID)
        self.mapped_pages += 1

    def translate(self, va: int, *, want: int = PageFlags.READ) -> int:
        """Walk the table (reading each level from memory); returns PA."""
        node = self.root
        indices = self._indices(va)
        for depth, index in enumerate(indices):
            pte = self._read_pte(node, index)
            if not pte & _VALID:
                raise PageFault(va, f"invalid PTE at level {depth}")
            if depth == _LEVELS - 1:
                if want and not pte & want:
                    raise PageFault(va, "permission denied")
                return (pte & ~0xFFF) | (va % PAGE_BYTES)
            node = pte & ~0xFFF
        raise AssertionError("unreachable")

    def unmap(self, va: int) -> None:
        """Invalidate a mapping (leaf PTE only; nodes are not reclaimed)."""
        node = self.root
        indices = self._indices(va)
        for index in indices[:-1]:
            pte = self._read_pte(node, index)
            if not pte & _VALID:
                raise PageFault(va, "unmap of unmapped address")
            node = pte & ~0xFFF
        self._write_pte(node, indices[-1], 0)
        self.mapped_pages -= 1

    def map_range(self, va: int, pa: int, length: int,
                  flags: int = PageFlags.ALL) -> None:
        for offset in range(0, length, PAGE_BYTES):
            self.map(va + offset, pa + offset, flags)
