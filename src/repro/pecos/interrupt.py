"""Interrupt fabric: the power-event signal and inter-processor interrupts.

The power-event interrupt nominates the first core that seizes it as the
SnG *master*; the master then drives *workers* through IPIs — first to
park just-woken tasks, later to offline cores one by one (paper §III-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim.engine import Simulator

__all__ = ["InterruptController", "IPI_LATENCY_NS"]

#: Cross-core interrupt delivery latency (fabric + handler entry).
IPI_LATENCY_NS = 5_000.0


@dataclass
class InterruptController:
    """Delivers the power-event signal and routes IPIs between cores."""

    sim: Simulator
    cores: int
    ipi_latency_ns: float = IPI_LATENCY_NS
    _handlers: dict[int, Callable[[int, object], None]] = field(
        default_factory=dict
    )
    master: Optional[int] = None
    ipis_sent: int = 0

    def register(self, core: int, handler: Callable[[int, object], None]) -> None:
        if not 0 <= core < self.cores:
            raise ValueError(f"no core {core}")
        self._handlers[core] = handler

    def raise_power_event(self, seized_by: int = 0) -> int:
        """AC-loss interrupt: the seizing core becomes the SnG master."""
        if not 0 <= seized_by < self.cores:
            raise ValueError(f"no core {seized_by}")
        if self.master is not None:
            raise RuntimeError("power event already seized")
        self.master = seized_by
        return seized_by

    def send_ipi(self, source: int, target: int, payload: object = None) -> None:
        """Deliver an IPI after the fabric latency."""
        handler = self._handlers.get(target)
        if handler is None:
            raise RuntimeError(f"core {target} has no IPI handler")
        self.ipis_sent += 1
        self.sim.call_after(
            self.ipi_latency_ns,
            lambda: handler(source, payload),
            name=f"ipi:{source}->{target}",
        )

    def reset(self) -> None:
        self.master = None
        self.ipis_sent = 0
