"""Device drivers and the dpm (device power management) framework.

Auto-Stop suspends peripherals through the standard dpm callback chain —
``dpm_prepare()`` (block probes), ``dpm_suspend()`` (quiesce I/O, disable
interrupts, power down), ``dpm_suspend_noirq()`` (store device state) —
walking ``dpm_list`` in dependency order; Go resumes them in inverse
order via ``dpm_resume_noirq()``/``dpm_resume()``/``dpm_complete()``
(paper §IV-B, Fig. 10).  Device state and memory-mapped peripheral
regions are snapshotted into Device Control Blocks (DCBs).

Device stop is the single largest share of SnG's Stop latency (~38% when
busy, Fig. 8b), so per-callback costs here are first-class quantities.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
__all__ = [
    "DCB",
    "DeviceDriver",
    "DevicePMError",
    "DevicePMList",
    "DeviceState",
    "default_dpm_list",
]


class DevicePMError(RuntimeError):
    """Callback invoked out of the dpm-regulated order."""


class DeviceState(enum.Enum):
    ACTIVE = "active"
    PREPARED = "prepared"
    SUSPENDED = "suspended"
    SUSPENDED_NOIRQ = "noirq"
    OFF = "off"


@dataclass
class DCB:
    """Device control block: the persistent snapshot of one device."""

    device: str
    context_bytes: int
    mmio_image: bytes
    irq_enabled: bool


@dataclass
class DeviceDriver:
    """One entry of dpm_list with its callback costs.

    ``order`` encodes the dependency position dpm regulates; suspension
    walks ascending order, resume walks descending.
    """

    name: str
    order: int
    #: callback latencies, nanoseconds
    prepare_ns: float = 2_500.0
    suspend_ns: float = 14_000.0
    suspend_noirq_ns: float = 4_000.0
    resume_noirq_ns: float = 3_500.0
    resume_ns: float = 9_000.0
    complete_ns: float = 1_500.0
    #: device context + MMIO region dumped into the DCB
    context_bytes: int = 512
    mmio_bytes: int = 256
    #: SPI/GPIO-style peripherals need manual handling (extra cost)
    manual: bool = False

    state: DeviceState = DeviceState.ACTIVE
    irq_enabled: bool = True
    _mmio: bytes = field(default=b"", repr=False)

    def __post_init__(self) -> None:
        if not self._mmio:
            seed = sum(self.name.encode()) & 0xFF
            self._mmio = bytes((seed + i) & 0xFF for i in range(self.mmio_bytes))

    def reset(self) -> None:
        """Rewind to the just-constructed state (``Kernel.reset_world``).

        Everything mutable is rewound: power state, IRQ masking, and
        the MMIO image (regenerated from the name-derived pattern, so a
        trial's ``scribble_mmio`` churn does not leak into the next)."""
        self.state = DeviceState.ACTIVE
        self.irq_enabled = True
        self._mmio = b""
        self.__post_init__()

    # -- suspend chain ------------------------------------------------------

    def dpm_prepare(self) -> float:
        if self.state is not DeviceState.ACTIVE:
            raise DevicePMError(f"{self.name}: prepare from {self.state}")
        self.state = DeviceState.PREPARED
        return self.prepare_ns

    def dpm_suspend(self) -> float:
        if self.state is not DeviceState.PREPARED:
            raise DevicePMError(f"{self.name}: suspend from {self.state}")
        self.irq_enabled = False
        self.state = DeviceState.SUSPENDED
        cost = self.suspend_ns
        if self.manual:
            cost *= 1.5  # hand-rolled SPI/GPIO quiescing
        return cost

    def dpm_suspend_noirq(self) -> tuple[float, DCB]:
        if self.state is not DeviceState.SUSPENDED:
            raise DevicePMError(f"{self.name}: noirq from {self.state}")
        self.state = DeviceState.SUSPENDED_NOIRQ
        dcb = DCB(
            device=self.name,
            context_bytes=self.context_bytes,
            mmio_image=self._mmio,
            irq_enabled=False,
        )
        return self.suspend_noirq_ns, dcb

    # -- resume chain ---------------------------------------------------------

    def dpm_resume_noirq(self, dcb: DCB) -> float:
        if self.state is not DeviceState.SUSPENDED_NOIRQ:
            raise DevicePMError(f"{self.name}: resume_noirq from {self.state}")
        if dcb.device != self.name:
            raise DevicePMError(f"DCB for {dcb.device} applied to {self.name}")
        self._mmio = dcb.mmio_image
        self.irq_enabled = True
        self.state = DeviceState.SUSPENDED
        return self.resume_noirq_ns

    def dpm_resume(self) -> float:
        if self.state is not DeviceState.SUSPENDED:
            raise DevicePMError(f"{self.name}: resume from {self.state}")
        self.state = DeviceState.PREPARED
        return self.resume_ns

    def dpm_complete(self) -> float:
        if self.state is not DeviceState.PREPARED:
            raise DevicePMError(f"{self.name}: complete from {self.state}")
        self.state = DeviceState.ACTIVE
        return self.complete_ns

    @property
    def mmio_snapshot(self) -> bytes:
        return self._mmio

    def scribble_mmio(self) -> None:
        """Simulate runtime MMIO churn (so restore is observable)."""
        self._mmio = bytes((b + 1) & 0xFF for b in self._mmio)


class DevicePMList:
    """dpm_list: drivers in dependency order plus the DCB store."""

    def __init__(self, drivers: list[DeviceDriver]) -> None:
        names = [d.name for d in drivers]
        if len(set(names)) != len(names):
            raise ValueError("duplicate driver names in dpm_list")
        self.drivers = sorted(drivers, key=lambda d: d.order)
        self.dcbs: dict[str, DCB] = {}

    def __len__(self) -> int:
        return len(self.drivers)

    def suspend_all(self) -> float:
        """Run the full suspend chain in dpm order; returns total ns."""
        total = 0.0
        for driver in self.drivers:
            total += driver.dpm_prepare()
        for driver in self.drivers:
            total += driver.dpm_suspend()
        for driver in self.drivers:
            cost, dcb = driver.dpm_suspend_noirq()
            self.dcbs[driver.name] = dcb
            total += cost
        return total

    def resume_all(self) -> float:
        """Inverse-order resume chain from the stored DCBs."""
        total = 0.0
        for driver in reversed(self.drivers):
            dcb = self.dcbs.get(driver.name)
            if dcb is None:
                raise DevicePMError(f"no DCB stored for {driver.name}")
            total += driver.dpm_resume_noirq(dcb)
        for driver in reversed(self.drivers):
            total += driver.dpm_resume()
        for driver in reversed(self.drivers):
            total += driver.dpm_complete()
        self.dcbs.clear()
        return total

    def all_state(self, state: DeviceState) -> bool:
        return all(d.state is state for d in self.drivers)


def default_dpm_list(extra_drivers: int = 0) -> DevicePMList:
    """The prototype's default device population.

    The base set mirrors a small RISC-V SoC board (UART, SPI, GPIO, net,
    block, timers, ...).  ``extra_drivers`` pads the list toward the
    worst-case 730-entry dpm_list of the scalability study (Fig. 22).
    """
    base = [
        DeviceDriver("uart0", order=0, context_bytes=128, mmio_bytes=64),
        DeviceDriver("uart1", order=1, context_bytes=128, mmio_bytes=64),
        DeviceDriver("spi0", order=2, manual=True, context_bytes=256),
        DeviceDriver("gpio0", order=3, manual=True, context_bytes=64,
                     mmio_bytes=32),
        DeviceDriver("eth0", order=4, context_bytes=2048, mmio_bytes=1024,
                     suspend_ns=26_000.0, resume_ns=21_000.0),
        DeviceDriver("blk0", order=5, context_bytes=1024,
                     suspend_ns=32_000.0, resume_ns=24_000.0),
        DeviceDriver("rtc0", order=6, context_bytes=32, mmio_bytes=32),
        DeviceDriver("timer0", order=7, context_bytes=64, mmio_bytes=32),
        DeviceDriver("plic", order=8, context_bytes=512, mmio_bytes=512),
        DeviceDriver("clint", order=9, context_bytes=128, mmio_bytes=64),
    ]
    for i in range(extra_drivers):
        base.append(
            DeviceDriver(
                f"dev{i:03d}", order=10 + i,
                prepare_ns=1_200.0, suspend_ns=5_000.0,
                suspend_noirq_ns=1_800.0, resume_noirq_ns=1_400.0,
                resume_ns=3_200.0, complete_ns=700.0,
                context_bytes=256, mmio_bytes=128,
            )
        )
    return DevicePMList(base)
