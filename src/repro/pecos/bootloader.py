"""Bootloader support: BCB, MEPC, and the Stop commit (paper §IV-B/C).

Some machine-mode registers (IPI, power-down, security) are invisible
even to the kernel, so Auto-Stop's final act raises an exception into the
bootloader, which dumps them — together with the return address Go should
re-execute from (the Machine Exception Program Counter) and a commit flag
— into the Bootloader Control Block in OC-PMEM's reserved area.

On power-up, Go *is* the bootloader: it checks the commit; if present, it
restores the BCB and jumps to MEPC; otherwise it falls through to a cold
``start_kernel``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["BCB", "Bootloader", "BootDecision", "MachineRegisters"]


@dataclass(frozen=True)
class MachineRegisters:
    """Machine-mode register file only the bootloader may touch."""

    mstatus: int = 0
    mie: int = 0
    mtvec: int = 0
    pmp_checksum: int = 0
    power_down_ctl: int = 0


@dataclass(frozen=True)
class BCB:
    """Bootloader control block — the EP-cut's machine-level half."""

    machine_registers: MachineRegisters
    #: where kernel-side Go re-executes (machine exception PC)
    mepc: int
    #: per-core kernel task/stack pointers Go hands to the workers
    cpu_up_task_pointers: tuple[int, ...]
    wear_registers_blob: bytes = b""
    committed: bool = False


@dataclass(frozen=True)
class BootDecision:
    """What the bootloader decided at power-on."""

    warm: bool
    bcb: Optional[BCB] = None


class Bootloader:
    """Berkeley-bootloader stand-in with timing for its SnG duties."""

    #: storing machine registers + MEPC to the BCB reserved area
    BCB_STORE_NS = 180_000.0
    #: the final commit write + cache dump + memory synchronization is
    #: charged separately by Auto-Stop via the PSM flush port
    COMMIT_STORE_NS = 45_000.0
    #: loading and validating the BCB at power-up
    BCB_LOAD_NS = 150_000.0

    def __init__(self) -> None:
        #: the OC-PMEM reserved area (survives power cycles)
        self._reserved: Optional[BCB] = None
        self.exception_entries = 0

    # -- Stop side -----------------------------------------------------------

    def enter_from_exception(self) -> None:
        """System-level exception switches context from kernel to us."""
        self.exception_entries += 1

    def store_bcb(self, bcb: BCB) -> float:
        """Persist machine registers + MEPC; returns the cost in ns."""
        if bcb.committed:
            raise ValueError("store the BCB first, commit separately")
        self._reserved = bcb
        return self.BCB_STORE_NS

    def commit(self) -> float:
        """Write the Stop commit — the EP-cut is now authoritative."""
        if self._reserved is None:
            raise RuntimeError("commit without a stored BCB")
        self._reserved = BCB(
            machine_registers=self._reserved.machine_registers,
            mepc=self._reserved.mepc,
            cpu_up_task_pointers=self._reserved.cpu_up_task_pointers,
            wear_registers_blob=self._reserved.wear_registers_blob,
            committed=True,
        )
        return self.COMMIT_STORE_NS

    # -- Go side ---------------------------------------------------------------

    def power_on(self) -> tuple[BootDecision, float]:
        """Check the commit: warm recovery vs cold start_kernel."""
        if self._reserved is not None and self._reserved.committed:
            return BootDecision(warm=True, bcb=self._reserved), self.BCB_LOAD_NS
        return BootDecision(warm=False), 0.0

    def clear_commit(self) -> None:
        """Go consumed the EP-cut; a second power-up must cold boot
        unless a new Stop commits."""
        self._reserved = None

    @property
    def has_commit(self) -> bool:
        return self._reserved is not None and self._reserved.committed
