"""Signal delivery: the kernel-exit path Drive-to-Idle rides (§IV-A).

Drive-to-Idle cannot just yank a user task off a core: it sets
TIF_SIGPENDING and posts a *fake signal*, so the task drains its pending
signals through the ordinary kernel-mode-stack exit path (``entry.S``)
and context-switches out through code that is already crash-safe.  The
flip side is why the terminal state is TASK_UNINTERRUPTIBLE: a task in
interruptible sleep can be woken by any stray signal, which would let it
run *after* the EP-cut is drawn — the non-determinism §III-B warns
about.  Uninterruptible tasks are immune.

This module models exactly those mechanics: per-task pending queues,
wake-on-signal semantics by task state, and delivery at the kernel-exit
boundary.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.pecos.task import Task, TaskFlags, TaskState

__all__ = ["DeliveryRecord", "Signal", "SignalDelivery"]


class Signal(enum.IntEnum):
    """The signals the model distinguishes."""

    SIGHUP = 1
    SIGKILL = 9
    SIGUSR1 = 10
    SIGTERM = 15
    #: SnG's fake signal: carries no handler semantics, exists purely to
    #: drive the task through the kernel-exit path and off the core.
    SIGFAKE = 63


@dataclass
class DeliveryRecord:
    """One delivered signal (for audit in tests)."""

    pid: int
    signal: Signal
    woke_task: bool


class SignalDelivery:
    """Pending queues + delivery for a set of tasks."""

    def __init__(self) -> None:
        self._pending: dict[int, deque[Signal]] = {}
        self._handlers: dict[tuple[int, Signal], Callable[[Task], None]] = {}
        self.delivered: list[DeliveryRecord] = []

    # -- posting -----------------------------------------------------------

    def post(self, task: Task, signal: Signal) -> bool:
        """Queue a signal; returns True if it woke a sleeper.

        Interruptible sleepers wake (that is what the state means);
        uninterruptible tasks keep sleeping — SnG's lockdown relies on
        exactly this immunity.
        """
        self._pending.setdefault(task.pid, deque()).append(signal)
        task.set_sigpending()
        if task.state is TaskState.INTERRUPTIBLE:
            task.state = TaskState.RUNNABLE
            return True
        return False

    def post_fake_signal(self, task: Task) -> bool:
        """Drive-to-Idle's nudge for user tasks."""
        if not task.is_user:
            raise ValueError("fake signals target user tasks; kernel "
                             "threads handle pending work instead")
        return self.post(task, Signal.SIGFAKE)

    # -- handlers -------------------------------------------------------------

    def register_handler(
        self, task: Task, signal: Signal,
        handler: Callable[[Task], None],
    ) -> None:
        if signal is Signal.SIGKILL:
            raise ValueError("SIGKILL cannot be caught")
        self._handlers[(task.pid, signal)] = handler

    # -- delivery at the kernel-exit boundary -----------------------------------

    def has_pending(self, task: Task) -> bool:
        return bool(self._pending.get(task.pid))

    def deliver_pending(self, task: Task) -> list[DeliveryRecord]:
        """Drain the task's queue (the entry.S exit path).

        Returns the delivery records.  Clears TIF_SIGPENDING when done.
        """
        records: list[DeliveryRecord] = []
        queue = self._pending.get(task.pid)
        while queue:
            signal = queue.popleft()
            handler = self._handlers.get((task.pid, signal))
            if handler is not None:
                handler(task)
            elif signal is Signal.SIGKILL:
                task.state = TaskState.ZOMBIE
            records.append(DeliveryRecord(
                pid=task.pid, signal=signal, woke_task=False))
        task.flags &= ~TaskFlags.SIGPENDING
        self.delivered.extend(records)
        return records

    def pending_count(self, task: Task) -> int:
        return len(self._pending.get(task.pid, ()))
