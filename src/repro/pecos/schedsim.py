"""A live, time-sliced kernel world: tasks that actually compute.

The static :class:`repro.pecos.kernel.Kernel` world is enough to *price*
SnG; this module makes the world run.  Tasks carry work (abstract units),
a round-robin scheduler executes them in time slices on simulated cores,
tasks sleep and wake, and a power event can land at any instant —
mid-slice, mid-wakeup — after which Stop parks the world and Go resumes
it.  The headline property (asserted in tests): **the total work
completed across a power cycle equals the work a never-interrupted run
completes**, i.e. the EP-cut loses nothing and duplicates nothing.

Progress is stored in each task's PCB (``Registers.pc`` advances with
work done), which is exactly the paper's §IV-C argument: PCBs on OC-PMEM
carry the whole execution environment, so the kernel scheduler can
simply run the task again.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.pecos.kernel import Kernel
from repro.pecos.task import Registers, Task, TaskState

__all__ = ["LiveWorld", "LiveTask", "WorldClock"]

#: work units executed per nanosecond of slice time
_WORK_RATE = 0.001


@dataclass
class LiveTask:
    """A task with actual work to do; progress is persisted in its PCB."""

    task: Task
    total_work: int
    #: after this much work, the task sleeps for ``sleep_ns``
    sleep_every: int = 0
    sleep_ns: float = 0.0
    _sleeping_until: float = 0.0
    _since_sleep: int = 0

    @property
    def done_work(self) -> int:
        """Completed work lives in the PCB's program counter."""
        return self.task.registers.pc

    @property
    def finished(self) -> bool:
        return self.done_work >= self.total_work

    def run_slice(self, now_ns: float, slice_ns: float) -> float:
        """Execute up to one slice; returns time consumed."""
        if self.finished:
            return 0.0
        budget = int(slice_ns * _WORK_RATE)
        remaining = self.total_work - self.done_work
        if self.sleep_every:
            remaining = min(remaining, self.sleep_every - self._since_sleep)
        work = max(1, min(budget, remaining))
        self.task.save_registers(self.task.registers.advanced(work))
        self._since_sleep += work
        if (self.sleep_every and self._since_sleep >= self.sleep_every
                and not self.finished):
            self._since_sleep = 0
            self._sleeping_until = now_ns + work / _WORK_RATE + self.sleep_ns
            self.task.state = TaskState.INTERRUPTIBLE
        return work / _WORK_RATE

    def maybe_wake(self, now_ns: float) -> bool:
        if (self.task.state is TaskState.INTERRUPTIBLE
                and now_ns >= self._sleeping_until):
            self.task.state = TaskState.RUNNABLE
            return True
        return False


@dataclass
class WorldClock:
    """Wall-clock of the live world (survives Stop/Go via OC-PMEM)."""

    now_ns: float = 0.0

    def advance(self, delta_ns: float) -> None:
        if delta_ns < 0:
            raise ValueError("time flows forward")
        self.now_ns += delta_ns


class LiveWorld:
    """Round-robin execution of live tasks over a kernel's cores."""

    def __init__(self, kernel: Kernel, slice_ns: float = 4_000.0) -> None:
        self.kernel = kernel
        self.slice_ns = slice_ns
        self.clock = WorldClock()
        self.live: dict[int, LiveTask] = {}
        self.slices_run = 0

    # -- world building -----------------------------------------------------

    def spawn(self, name: str, work: int, sleep_every: int = 0,
              sleep_ns: float = 0.0) -> LiveTask:
        """Create a runnable task carrying ``work`` units."""
        task = Task(name=name)
        task.registers = Registers(pc=0)
        self.kernel.init_task.adopt(task)
        live = LiveTask(task=task, total_work=work,
                        sleep_every=sleep_every, sleep_ns=sleep_ns)
        self.live[task.pid] = live
        self.kernel.scheduler.enqueue_balanced([task])
        return live

    # -- execution -------------------------------------------------------------

    def _runnable(self) -> list[LiveTask]:
        return [
            lt for lt in self.live.values()
            if lt.task.state is TaskState.RUNNABLE and not lt.finished
        ]

    def run_for(self, duration_ns: float) -> int:
        """Advance the world; returns work completed in the window."""
        deadline = self.clock.now_ns + duration_ns
        before = self.total_done()
        stalled_rounds = 0
        while self.clock.now_ns < deadline:
            for live in self.live.values():
                live.maybe_wake(self.clock.now_ns)
            runnable = self._runnable()
            if not runnable:
                if all(lt.finished for lt in self.live.values()):
                    break
                self.clock.advance(self.slice_ns)  # idle tick
                stalled_rounds += 1
                if stalled_rounds > 1_000_000:
                    raise RuntimeError("world wedged: nothing ever wakes")
                continue
            stalled_rounds = 0
            # one scheduling round: each core runs one slice round-robin
            cores = self.kernel.config.cores
            consumed = 0.0
            for live in runnable[:cores]:
                live.task.state = TaskState.RUNNING
                consumed = max(
                    consumed,
                    live.run_slice(self.clock.now_ns, self.slice_ns),
                )
                if live.task.state is TaskState.RUNNING:
                    live.task.state = TaskState.RUNNABLE
                self.slices_run += 1
            self.clock.advance(max(consumed, 1.0))
        return self.total_done() - before

    def run_to_completion(self, max_ns: float = 1e12) -> int:
        done = self.run_for(max_ns)
        if not self.all_finished():
            raise RuntimeError("work remained after max_ns")
        return done

    # -- queries --------------------------------------------------------------------

    def total_done(self) -> int:
        return sum(lt.done_work for lt in self.live.values())

    def total_work(self) -> int:
        return sum(lt.total_work for lt in self.live.values())

    def all_finished(self) -> bool:
        return all(lt.finished for lt in self.live.values())

    def snapshot_progress(self) -> dict[int, int]:
        return {pid: lt.done_work for pid, lt in self.live.items()}

    # -- Stop/Go interplay -------------------------------------------------------------

    def prepare_for_stop(self) -> None:
        """A power event mid-run: sleeping live tasks will be woken and
        parked by Drive-to-Idle like any other task; nothing to do here —
        progress already lives in the PCBs."""

    def resume_after_go(self) -> None:
        """Go re-enqueued every task as RUNNABLE; sleepers whose timer
        already elapsed across the outage just run."""
        for live in self.live.values():
            live._sleeping_until = min(live._sleeping_until,
                                       self.clock.now_ns)
