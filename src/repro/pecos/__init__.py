"""PecOS: the persistence-centric OS model (tasks, scheduler, dpm, SnG)."""

from repro.pecos.bootloader import BCB, BootDecision, Bootloader, MachineRegisters
from repro.pecos.device import (
    DCB,
    DeviceDriver,
    DevicePMError,
    DevicePMList,
    DeviceState,
    default_dpm_list,
)
from repro.pecos.interrupt import InterruptController
from repro.pecos.kernel import Kernel, KernelConfig
from repro.pecos.scheduler import RunQueue, Scheduler, balance_assign
from repro.pecos.schedsim import LiveTask, LiveWorld, WorldClock
from repro.pecos.signals import DeliveryRecord, Signal, SignalDelivery
from repro.pecos.sng import GoReport, SnG, SnGTiming, StopReport
from repro.pecos.sng_events import EventStopReport, run_event_driven_stop
from repro.pecos.task import Registers, Task, TaskFlags, TaskState, VMA, VMAKind
from repro.pecos.vm import (
    AddressSpace,
    PAGE_BYTES,
    PageFault,
    PageFlags,
    PageTableAllocator,
)

__all__ = [
    "AddressSpace",
    "BCB",
    "BootDecision",
    "Bootloader",
    "DCB",
    "DeviceDriver",
    "DevicePMError",
    "DevicePMList",
    "DeviceState",
    "DeliveryRecord",
    "EventStopReport",
    "GoReport",
    "InterruptController",
    "Kernel",
    "KernelConfig",
    "MachineRegisters",
    "PAGE_BYTES",
    "PageFault",
    "PageFlags",
    "PageTableAllocator",
    "Registers",
    "RunQueue",
    "LiveTask",
    "LiveWorld",
    "Scheduler",
    "Signal",
    "SignalDelivery",
    "SnG",
    "SnGTiming",
    "StopReport",
    "Task",
    "TaskFlags",
    "TaskState",
    "VMA",
    "VMAKind",
    "WorldClock",
    "balance_assign",
    "default_dpm_list",
    "run_event_driven_stop",
]
