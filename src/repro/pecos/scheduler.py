"""Per-core run queues and the load-balanced task distribution SnG uses.

Drive-to-Idle wakes every sleeping task and must park them all; it
assigns the just-woken tasks across cores "in a balanced way" so stopping
completes as fast as the machine allows (paper §IV-A).  The scheduler
here provides the run-queue mechanics and that balanced assignment.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.pecos.task import Task, TaskState

__all__ = ["RunQueue", "Scheduler", "balance_assign"]


@dataclass
class RunQueue:
    """One core's FIFO run queue."""

    cpu: int
    _queue: deque[Task] = field(default_factory=deque)

    def enqueue(self, task: Task) -> None:
        task.cpu = self.cpu
        task.state = TaskState.RUNNABLE
        self._queue.append(task)

    def dequeue(self, task: Task) -> None:
        try:
            self._queue.remove(task)
        except ValueError:
            raise RuntimeError(
                f"task {task.name!r} not on cpu{self.cpu} run queue"
            ) from None
        task.cpu = None

    def pop_next(self) -> Optional[Task]:
        if not self._queue:
            return None
        task = self._queue.popleft()
        task.state = TaskState.RUNNING
        return task

    def __len__(self) -> int:
        return len(self._queue)

    def tasks(self) -> tuple[Task, ...]:
        return tuple(self._queue)


class Scheduler:
    """All run queues plus the operations SnG needs."""

    def __init__(self, cores: int) -> None:
        if cores <= 0:
            raise ValueError("need at least one core")
        self.run_queues = [RunQueue(cpu=i) for i in range(cores)]

    @property
    def cores(self) -> int:
        return len(self.run_queues)

    def queue_of(self, cpu: int) -> RunQueue:
        return self.run_queues[cpu]

    def enqueue_balanced(self, tasks: Iterable[Task]) -> dict[int, list[Task]]:
        """Distribute tasks across the emptiest queues; returns placement."""
        placement: dict[int, list[Task]] = {q.cpu: [] for q in self.run_queues}
        for task in tasks:
            queue = min(self.run_queues, key=len)
            queue.enqueue(task)
            placement[queue.cpu].append(task)
        return placement

    def runnable_count(self) -> int:
        return sum(len(q) for q in self.run_queues)

    def drain_all(self) -> list[Task]:
        """Remove every task from every queue (Drive-to-Idle's endgame)."""
        removed: list[Task] = []
        for queue in self.run_queues:
            while True:
                task = queue.pop_next()
                if task is None:
                    break
                removed.append(task)
        return removed

    def occupancy(self) -> list[int]:
        return [len(q) for q in self.run_queues]


def balance_assign(
    items: Sequence[Task], cores: int
) -> list[list[Task]]:
    """Round-robin items over cores — SnG's worker assignment heuristic."""
    if cores <= 0:
        raise ValueError("need at least one core")
    buckets: list[list[Task]] = [[] for _ in range(cores)]
    for index, item in enumerate(items):
        buckets[index % cores].append(item)
    return buckets
