"""Device dependency graphs for dpm ordering (§IV-B).

"As there may be dependency among devices, SnG calls them in the order
that dpm regulated."  The base :class:`DevicePMList` encodes that order
as a flat integer; real systems derive it from a dependency DAG (a
device must suspend before its parent bus, resume after it).  This
module builds the flat order from explicit dependency edges:

* ``(consumer, supplier)`` edges mean *consumer depends on supplier*
  (e.g. ``eth0`` depends on ``pcie0``);
* suspension must visit consumers before suppliers, resume the reverse —
  i.e. suspend order is a reverse topological sort of the supplier graph;
* cycles are configuration bugs and are rejected with the cycle printed.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx

from repro.pecos.device import DeviceDriver, DevicePMList

__all__ = ["DependencyCycleError", "build_dpm_list", "suspend_order"]


class DependencyCycleError(ValueError):
    """The device dependency graph has a cycle."""


def suspend_order(
    drivers: Sequence[DeviceDriver],
    dependencies: Iterable[tuple[str, str]],
) -> list[str]:
    """Suspend-safe visiting order (consumers before their suppliers).

    ``dependencies`` holds (consumer, supplier) pairs.  Drivers not
    mentioned in any edge keep their relative declaration order, after
    all constrained drivers at the same depth.
    """
    by_name = {driver.name: driver for driver in drivers}
    graph = nx.DiGraph()
    graph.add_nodes_from(by_name)
    for consumer, supplier in dependencies:
        for name in (consumer, supplier):
            if name not in by_name:
                raise ValueError(f"dependency names unknown driver {name!r}")
        # edge supplier -> consumer: supplier must still be up while the
        # consumer suspends, so the consumer comes first
        graph.add_edge(supplier, consumer)
    try:
        # reverse topological order of the supplier graph = consumers first
        ordered = list(reversed(list(nx.lexicographical_topological_sort(
            graph, key=lambda n: by_name[n].order))))
    except nx.NetworkXUnfeasible:
        cycle = nx.find_cycle(graph)
        raise DependencyCycleError(
            f"device dependency cycle: {' -> '.join(a for a, _ in cycle)}"
        ) from None
    return ordered


def build_dpm_list(
    drivers: Sequence[DeviceDriver],
    dependencies: Iterable[tuple[str, str]] = (),
) -> DevicePMList:
    """A :class:`DevicePMList` whose order honours the dependency DAG."""
    order = suspend_order(drivers, dependencies)
    position = {name: index for index, name in enumerate(order)}
    for driver in drivers:
        driver.order = position[driver.name]
    return DevicePMList(list(drivers))
