"""Stop-and-Go: the single execution persistence cut (paper §III-B, §IV).

``Stop`` has two phases:

* **Drive-to-Idle** — triggered by the power-event interrupt.  The seizing
  core (master) sets the system-wide persistent flag and traverses all
  PCBs from init_task; sleeping tasks are woken and assigned to workers in
  a balanced way via IPIs; user tasks get a fake signal (TIF_SIGPENDING),
  kernel tasks run their pending work; every task is context-switched out
  as soon as possible, made TASK_UNINTERRUPTIBLE, and removed from its run
  queue.  No cache flush or fence happens here, which is why this phase is
  only ~12% of Stop.

* **Auto-Stop** — suspends devices through the dpm callback chain (DCBs
  into OC-PMEM, the dominant cost), clears the per-core kernel task/stack
  pointers, dumps each core's dirty cachelines and offlines the workers
  one by one over IPIs, then raises an exception into the bootloader,
  which stores the machine-mode registers + MEPC into the BCB, writes the
  Stop commit, and performs the final cache dump + memory synchronization
  through the PSM's flush port.

``Go`` inverts it: bootloader checks the commit, restores the BCB, powers
workers up one by one, resumes devices in inverse dpm order, restores
MMIO regions and the wear-leveler registers, flushes TLBs, and reschedules
kernel then user tasks by flipping TASK_UNINTERRUPTIBLE back to normal.

Timing constants are documented inline; Fig. 8b's decomposition, Fig. 20's
flush latency, Fig. 21's down/up timelines, and Fig. 22's scalability
sweep all read off this implementation.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Callable, Optional

from repro.memory.port import MemoryBackend
from repro.pecos.bootloader import BCB, MachineRegisters
from repro.pecos.interrupt import InterruptController
from repro.pecos.kernel import Kernel
from repro.pecos.scheduler import balance_assign
from repro.pecos.signals import SignalDelivery
from repro.pecos.task import Task
from repro.sim.engine import Simulator

__all__ = ["GoReport", "SnG", "SnGTiming", "StopReport"]


@dataclass(frozen=True)
class SnGTiming:
    """Per-item costs (nanoseconds) of the SnG code paths.

    Calibrated so the default busy configuration (120 processes, full
    driver population, 8 cores) lands in the paper's 8.6–10.5 ms band
    with roughly the Fig. 8b split (process stop ~12%, device stop ~38%,
    offline the rest).
    """

    #: master's PCB traversal per task (walk + mask bookkeeping)
    pcb_visit_ns: float = 900.0
    #: waking one sleeping task on a worker (IPI handled separately)
    task_wake_ns: float = 22_000.0
    #: driving one task to idle: fake-signal handling on the kernel-mode
    #: stack / pending work, context switch out, dequeue, lockdown
    task_park_ns: float = 42_000.0
    #: extra cost per pending work item a woken kernel task must finish
    pending_work_ns: float = 9_000.0
    #: swapping the idle task into a core's run queue
    idle_place_ns: float = 15_000.0
    #: reading one byte of peripheral MMIO into the DCB
    mmio_dump_ns_per_byte: float = 6.0
    #: flushing one dirty cacheline into OC-PMEM
    cacheline_flush_ns: float = 200.0
    #: one core's offline handshake: register dump, ready report, power-off
    core_offline_ns: float = 230_000.0
    #: one core's power-up + register reconfiguration during Go
    core_online_ns: float = 260_000.0
    #: per-core TLB flush when preparing ready-to-schedule state
    tlb_flush_ns: float = 30_000.0
    #: re-enqueueing one task during Go
    task_resched_ns: float = 6_000.0


@dataclass
class StopReport:
    """Stop latency decomposition (Fig. 8b) plus audit facts."""

    process_stop_ns: float
    device_stop_ns: float
    offline_ns: float
    tasks_stopped: int
    drivers_suspended: int
    cachelines_flushed: int
    ipis: int
    commit_stored: bool

    @property
    def total_ns(self) -> float:
        return self.process_stop_ns + self.device_stop_ns + self.offline_ns

    @property
    def total_ms(self) -> float:
        return self.total_ns / 1e6

    def fractions(self) -> dict[str, float]:
        total = self.total_ns
        if total <= 0:
            return {"process_stop": 0.0, "device_stop": 0.0, "offline": 0.0}
        return {
            "process_stop": self.process_stop_ns / total,
            "device_stop": self.device_stop_ns / total,
            "offline": self.offline_ns / total,
        }


@dataclass
class GoReport:
    """Go latency decomposition and recovery audit."""

    bcb_restore_ns: float
    core_online_ns: float
    device_resume_ns: float
    reschedule_ns: float
    tasks_resumed: int
    warm: bool

    @property
    def total_ns(self) -> float:
        return (
            self.bcb_restore_ns + self.core_online_ns
            + self.device_resume_ns + self.reschedule_ns
        )

    @property
    def total_ms(self) -> float:
        return self.total_ns / 1e6


class SnG:
    """Stop-and-Go orchestrator bound to a kernel and a memory port.

    The memory side is wired either from a whole ``port`` (any
    :class:`repro.memory.port.MemoryBackend`, whose ``flush`` /
    ``capture_registers`` / ``restore_wear_registers`` ports SnG drives)
    or from the individual callables — ``flush_port`` is
    ``(time_ns) -> done_ns``.  Explicit callables win over the port, so
    tests can still stub a single surface.  ``dirty_lines_fn`` reports
    per-core dirty cacheline counts at the cut.
    """

    def __init__(
        self,
        kernel: Kernel,
        flush_port: Optional[Callable[[float], float]] = None,
        dirty_lines_fn: Optional[Callable[[], list[int]]] = None,
        timing: Optional[SnGTiming] = None,
        sim: Optional[Simulator] = None,
        capture_hw_state: Optional[Callable[[], bytes]] = None,
        restore_hw_state: Optional[Callable[[bytes], None]] = None,
        port: Optional[MemoryBackend] = None,
    ) -> None:
        if port is not None:
            flush_port = flush_port or port.flush
            capture_hw_state = capture_hw_state or port.capture_registers
            restore_hw_state = restore_hw_state or port.restore_wear_registers
        if flush_port is None:
            raise TypeError("SnG needs flush_port= or port=")
        if dirty_lines_fn is None:
            raise TypeError("SnG needs dirty_lines_fn")
        self.kernel = kernel
        self.port = port
        self.flush_port = flush_port
        self.dirty_lines_fn = dirty_lines_fn
        self.capture_hw_state = capture_hw_state
        self.restore_hw_state = restore_hw_state
        self.timing = timing or SnGTiming()
        self.sim = sim or Simulator()
        self.interrupts = InterruptController(
            sim=self.sim, cores=kernel.config.cores
        )
        self.signals = SignalDelivery()
        self.last_stop: Optional[StopReport] = None
        self.last_go: Optional[GoReport] = None
        #: pickled PCB snapshot taken at the EP-cut, used by the
        #: consistency checks to prove Go resumed identical state
        self._pcb_snapshot: Optional[bytes] = None
        #: pid -> (state key, canonical entry pickle); unchanged tasks
        #: reuse their previous serialization at the next cut
        self._pcb_cache: dict[int, tuple[tuple, bytes]] = {}
        self.pcb_entries_serialized = 0
        self.pcb_entries_reused = 0

    # ------------------------------------------------------------------
    # Stop
    # ------------------------------------------------------------------

    def stop(self, at_ns: float = 0.0, seized_by: int = 0) -> StopReport:
        """Run the full Stop sequence; returns its latency decomposition."""
        kernel = self.kernel
        t = self.timing
        cores = kernel.config.cores
        self.interrupts.reset()
        master = self.interrupts.raise_power_event(seized_by)

        # ---- Drive-to-Idle -------------------------------------------------
        kernel.persistent_flag = True
        tasks = kernel.all_tasks()
        traversal_ns = len(tasks) * t.pcb_visit_ns

        sleeping = [task for task in tasks if task.is_sleeping]
        for task in sleeping:
            if task.is_user:
                # fake signal: ride the entry.S exit path off the core
                self.signals.post_fake_signal(task)
        assignments = balance_assign(sleeping, cores)
        ipis = sum(1 for bucket in assignments if bucket)

        # Worker timelines run in parallel; each parks its waken tasks and
        # then the tasks already on its run queue.
        worker_ns = [0.0] * cores
        for cpu, bucket in enumerate(assignments):
            for task in bucket:
                worker_ns[cpu] += t.task_wake_ns + t.task_park_ns
                worker_ns[cpu] += task.pending_work_items * t.pending_work_ns
                task.pending_work_items = 0
                self._park(task)
        for queue in kernel.scheduler.run_queues:
            for task in queue.tasks():
                worker_ns[queue.cpu] += t.task_park_ns
                task.set_need_resched()
        for task in kernel.scheduler.drain_all():
            self._park(task)
        # Each core finally places its idle task and synchronizes.
        idle_sync_ns = t.idle_place_ns
        process_stop_ns = (
            traversal_ns + max(worker_ns, default=0.0) + idle_sync_ns
        )

        if not kernel.everything_locked_down():
            raise RuntimeError("Drive-to-Idle failed to lock down all tasks")
        self._pcb_snapshot = self._snapshot_pcbs()

        # ---- Auto-Stop: device stop ---------------------------------------
        device_stop_ns = kernel.dpm.suspend_all()
        mmio_bytes = sum(d.mmio_bytes for d in kernel.dpm.drivers)
        device_stop_ns += mmio_bytes * t.mmio_dump_ns_per_byte
        # master flushes its own cache after writing the DCBs
        dirty = self.dirty_lines_fn()
        if len(dirty) != cores:
            raise ValueError(
                f"dirty_lines_fn returned {len(dirty)} cores, expected {cores}"
            )
        device_stop_ns += dirty[master] * t.cacheline_flush_ns

        # ---- Auto-Stop: offline -------------------------------------------
        # Clear the per-core execution pointers so Go can resynchronize.
        cpu_up_pointers = tuple(0 for _ in range(cores))
        offline_ns = 0.0
        flushed = dirty[master]
        worker_dump_ns = 0.0
        for cpu in range(cores):
            if cpu == master:
                continue
            # The IPI chain and ready reports serialize worker by worker;
            # each worker dumps its own cache concurrently once poked, so
            # the dump term is the slowest worker, not the sum.
            offline_ns += self.interrupts.ipi_latency_ns + t.core_offline_ns
            worker_dump_ns = max(
                worker_dump_ns, dirty[cpu] * t.cacheline_flush_ns
            )
            flushed += dirty[cpu]
            self.interrupts.ipis_sent += 1
        offline_ns += worker_dump_ns
        # Exception into the bootloader: machine registers + MEPC -> BCB.
        kernel.bootloader.enter_from_exception()
        bcb = BCB(
            machine_registers=MachineRegisters(
                mstatus=0x8000_0000_0000_0000, mie=0x888, mtvec=0x8000_1000
            ),
            mepc=0x8020_0000,
            cpu_up_task_pointers=cpu_up_pointers,
            wear_registers_blob=self._wear_blob(),
        )
        offline_ns += kernel.bootloader.store_bcb(bcb)
        kernel.persistent_flag = False  # cleared before the final commit
        offline_ns += kernel.bootloader.commit()
        # Final master cache dump + memory synchronization (flush port).
        start = at_ns + process_stop_ns + device_stop_ns + offline_ns
        offline_ns += max(0.0, self.flush_port(start) - start)
        offline_ns += t.core_offline_ns  # the master offlines last

        report = StopReport(
            process_stop_ns=process_stop_ns,
            device_stop_ns=device_stop_ns,
            offline_ns=offline_ns,
            tasks_stopped=len(tasks),
            drivers_suspended=len(kernel.dpm),
            cachelines_flushed=flushed,
            ipis=self.interrupts.ipis_sent + ipis,
            commit_stored=kernel.bootloader.has_commit,
        )
        self.last_stop = report
        return report

    def _park(self, task: Task) -> None:
        """Context-switch a task out for good (registers land in the PCB)."""
        if self.signals.has_pending(task):
            # the kernel-exit path drains pending signals first (entry.S)
            self.signals.deliver_pending(task)
        task.save_registers(task.registers.advanced(0))
        task.lockdown()

    def _snapshot_pcbs(self) -> bytes:
        """Incremental per-task PCB digest.

        Each task serializes to a standalone canonical pickle of
        ``(pid, name, registers, dirty_vma_bytes)``; the snapshot is the
        concatenation in traversal order.  A per-pid cache keyed on the
        tuple's value skips re-serializing tasks whose state is unchanged
        since the previous cut — re-parked tasks save
        ``registers.advanced(0)``, which compares *equal*, so steady-state
        cuts re-pickle only tasks that actually progressed.  Equal values
        pickle to equal bytes, which is why Go's byte-match audit
        (:meth:`verify_resumed_state`) still holds under reuse.
        """
        cache = self._pcb_cache
        fresh: dict[int, tuple[tuple, bytes]] = {}
        entries: list[bytes] = []
        for task in self.kernel.all_tasks():
            pid = task.pid
            key = (task.name, task.registers, task.dirty_vma_bytes())
            cached = cache.get(pid)
            if cached is not None and cached[0] == key:
                blob = cached[1]
                self.pcb_entries_reused += 1
            else:
                blob = pickle.dumps((pid,) + key)
                self.pcb_entries_serialized += 1
            fresh[pid] = (key, blob)
            entries.append(blob)
        self._pcb_cache = fresh  # dead pids fall out of the cache
        return b"".join(entries)

    def _wear_blob(self) -> bytes:
        if self.capture_hw_state is not None:
            return self.capture_hw_state()
        return b""

    # ------------------------------------------------------------------
    # Go
    # ------------------------------------------------------------------

    def go(self) -> GoReport:
        """Power recovery: re-execute everything from the EP-cut."""
        kernel = self.kernel
        t = self.timing
        cores = kernel.config.cores

        decision, bcb_restore_ns = kernel.bootloader.power_on()
        if not decision.warm:
            return GoReport(
                bcb_restore_ns=0.0, core_online_ns=0.0,
                device_resume_ns=0.0, reschedule_ns=0.0,
                tasks_resumed=0, warm=False,
            )
        assert decision.bcb is not None
        if self.restore_hw_state is not None:
            self.restore_hw_state(decision.bcb.wear_registers_blob)

        # Workers power up one by one: idle-task pointer + IPI each.
        core_online_ns = 0.0
        for _cpu in range(cores - 1):
            core_online_ns += (
                t.core_online_ns + self.interrupts.ipi_latency_ns
            )
        core_online_ns += t.core_online_ns  # the master reconfigures itself

        # Devices come back in inverse dpm order; MMIO regions restored.
        device_resume_ns = kernel.dpm.resume_all()
        mmio_bytes = sum(d.mmio_bytes for d in kernel.dpm.drivers)
        device_resume_ns += mmio_bytes * t.mmio_dump_ns_per_byte

        # Ready-to-schedule: TLB flush per core, then kernel tasks first,
        # user tasks second, all flipped back to TASK_NORMAL.
        reschedule_ns = cores * t.tlb_flush_ns
        kernel_tasks = [t_ for t_ in kernel.all_tasks() if not t_.is_user]
        user_tasks = [t_ for t_ in kernel.all_tasks() if t_.is_user]
        resumed = 0
        for task in kernel_tasks + user_tasks:
            task.release()
            resumed += 1
            reschedule_ns += t.task_resched_ns
        kernel.scheduler.enqueue_balanced(kernel_tasks + user_tasks)
        kernel.bootloader.clear_commit()

        report = GoReport(
            bcb_restore_ns=bcb_restore_ns,
            core_online_ns=core_online_ns,
            device_resume_ns=device_resume_ns,
            reschedule_ns=reschedule_ns,
            tasks_resumed=resumed,
            warm=True,
        )
        self.last_go = report
        return report

    # ------------------------------------------------------------------
    # Consistency audit
    # ------------------------------------------------------------------

    def verify_resumed_state(self) -> bool:
        """Go's world must byte-match the EP-cut's PCB snapshot."""
        if self._pcb_snapshot is None:
            raise RuntimeError("no EP-cut snapshot recorded")
        return self._snapshot_pcbs() == self._pcb_snapshot
